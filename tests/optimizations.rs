//! Integration tests of the compiler-optimization analogs and the scheduler
//! against real transcoding workloads.

use vtx_codec::{instr, EncoderConfig, Preset};
use vtx_core::experiments::compiler_opts::compiler_opt_run;
use vtx_core::experiments::scheduler::scheduler_study_with_tasks;
use vtx_core::TranscodeOptions;
use vtx_opt::{compile, BinaryVariant};
use vtx_sched::TranscodeTask;
use vtx_tests::tiny_transcoder;
use vtx_uarch::config::UarchConfig;

#[test]
fn autofdo_reduces_icache_misses_and_speeds_up() {
    let t = tiny_transcoder("cricket", 8, 17);
    let cfg = EncoderConfig::default();
    let opts = TranscodeOptions::default();
    let base = t.transcode(&cfg, &opts).unwrap();

    let binary = compile(
        BinaryVariant::AutoFdo,
        instr::kernel_table(),
        Some(&base.profile.profile),
        &UarchConfig::baseline(),
    )
    .unwrap();
    let fdo = t
        .transcode(&cfg, &opts.clone().with_binary(&binary))
        .unwrap();

    assert!(
        fdo.summary.mpki.l1i < base.summary.mpki.l1i,
        "l1i mpki {:.2} -> {:.2}",
        base.summary.mpki.l1i,
        fdo.summary.mpki.l1i
    );
    assert!(fdo.seconds < base.seconds);
    // The transcode output itself is untouched by a layout change.
    assert_eq!(fdo.bitrate_kbps, base.bitrate_kbps);
    assert_eq!(fdo.psnr_db, base.psnr_db);
}

#[test]
fn graphite_reduces_data_misses_without_changing_output() {
    let t = tiny_transcoder("bike", 8, 19);
    let cfg = EncoderConfig::default();
    let opts = TranscodeOptions::default();
    let base = t.transcode(&cfg, &opts).unwrap();

    let binary = compile(
        BinaryVariant::Graphite,
        instr::kernel_table(),
        None,
        &UarchConfig::baseline(),
    )
    .unwrap();
    let gra = t
        .transcode(&cfg, &opts.clone().with_binary(&binary))
        .unwrap();

    let base_data = base.summary.mpki.l1d + base.summary.mpki.l2;
    let gra_data = gra.summary.mpki.l1d + gra.summary.mpki.l2;
    assert!(
        gra_data < base_data,
        "data mpki {base_data:.2} -> {gra_data:.2}"
    );
    assert!(gra.seconds < base.seconds);
    assert_eq!(gra.bitrate_kbps, base.bitrate_kbps);
    assert_eq!(gra.psnr_db, base.psnr_db);
}

#[test]
fn compiler_opt_run_reports_positive_speedups() {
    let t = tiny_transcoder("game2", 8, 23);
    let run = compiler_opt_run(
        &t,
        "game2",
        &[(23, 2, Preset::Veryfast), (30, 1, Preset::Medium)],
        &TranscodeOptions::default().with_sample_shift(1),
    )
    .unwrap();
    assert!(run.autofdo_speedup > 1.0, "{}", run.autofdo_speedup);
    assert!(run.graphite_speedup > 1.0, "{}", run.graphite_speedup);
    // Sanity ceiling: single-digit-to-low-double-digit percent, not 2x.
    assert!(run.autofdo_speedup < 1.5);
    assert!(run.graphite_speedup < 1.5);
}

#[test]
fn scheduler_study_orders_policies_correctly() {
    let tasks = vec![
        TranscodeTask::new("desktop", 30, 4, Preset::Veryfast),
        TranscodeTask::new("holi", 12, 1, Preset::Veryfast),
        TranscodeTask::new("game2", 18, 2, Preset::Veryfast),
    ];
    let study = scheduler_study_with_tasks(&tasks, 29, 2).unwrap();
    // best <= smart (one-to-one constraint) and smart should beat random's
    // expectation on these heterogeneous tasks.
    assert!(study.best.total_time <= study.smart.total_time + 1e-12);
    assert!(
        study.smart.total_time <= study.random_total * 1.02,
        "smart {} vs random {}",
        study.smart.total_time,
        study.random_total
    );
    // One-to-one: all assigned configs distinct.
    let mut seen = [false; 4];
    for &c in &study.smart.assignment {
        assert!(!seen[c]);
        seen[c] = true;
    }
}
