//! Shared helpers for the vtx integration tests.

use vtx_core::Transcoder;
use vtx_frame::{synth, vbench, Video, VideoSpec};

/// A catalog spec shrunk to test size (fast in debug builds) while keeping
/// the entropy-driven content character.
pub fn tiny_spec(name: &str, frames: u32) -> VideoSpec {
    let mut spec = vbench::by_name(name).expect("catalog video");
    spec.sim_width = 64;
    spec.sim_height = 48;
    spec.sim_frames = frames;
    spec
}

/// A tiny synthetic clip for `name`.
pub fn tiny_video(name: &str, frames: u32, seed: u64) -> Video {
    synth::generate(&tiny_spec(name, frames), seed)
}

/// A transcoding workload over a tiny clip.
pub fn tiny_transcoder(name: &str, frames: u32, seed: u64) -> Transcoder {
    Transcoder::from_video(tiny_video(name, frames, seed)).expect("mezzanine encode")
}
