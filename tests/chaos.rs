//! Fault-tolerance acceptance tests: the canonical kill-2-of-8 scenario,
//! exactly-once terminal accounting under crashes, hedging, graceful
//! degradation, whole-fleet loss, and the real executor surviving a worker
//! crash mid-run.

use vtx_chaos::{DegradeConfig, FaultPlan};
use vtx_serve::chaos::ChaosConfig;
use vtx_serve::exec::{run_real, ExecConfig};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::service::{render_event_log, EventRecord, ServeConfig};
use vtx_serve::sim::{simulate_trace, SimOutcome};
use vtx_serve::workload::WorkloadSpec;

/// The acceptance scenario: 8 servers, 2 killed at 30% of the run, one 3×
/// fail-slow straggler, everything a pure function of the seed.
fn faulted(policy: &str, seed: u64, workload: &WorkloadSpec) -> SimOutcome {
    let jobs = workload.generate().unwrap();
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap();
    let cfg = ServeConfig {
        chaos: ChaosConfig::kill_two_straggle_one(seed, 8, horizon),
        ..ServeConfig::default()
    };
    simulate_trace(
        &jobs,
        seed,
        Fleet::sized(8).unwrap(),
        policy_by_name(policy, seed).unwrap(),
        cfg,
    )
    .unwrap()
}

#[test]
fn killed_fleet_keeps_serving_with_exactly_once_accounting() {
    let w = WorkloadSpec::smoke(42);
    let out = faulted("smart", 42, &w);
    let r = &out.report;
    assert_eq!(r.offered, 60);
    assert_eq!(
        r.completed + r.shed_total(),
        r.offered,
        "every admitted job reaches exactly one terminal state: {r:?}"
    );
    assert!(r.completed > 0, "the surviving 6 servers keep serving");
    assert_eq!(r.sojourn.count, r.completed);
    // Fault accounting matches the plan.
    assert_eq!(r.faults.crashes, 2);
    assert_eq!(r.faults.slowdowns, 1);
    // Availability reflects two dead servers, MTTR only exists if work
    // was actually lost in the detection window.
    assert!(
        r.availability > 0.5 && r.availability < 1.0,
        "availability {} should sit between half-dead and healthy",
        r.availability
    );
    assert!(r.goodput_jps <= r.throughput_jps);
    if r.faults.requeued > 0 {
        assert!(r.mttr_us > 0, "requeued work implies a recovery span");
    }
    // The event log tells the whole story: faults, verdicts, and the
    // detector never resurrects a dead server.
    let downs = out
        .event_log
        .iter()
        .filter(|e| matches!(e, EventRecord::Down { .. }))
        .count();
    assert_eq!(downs, 2, "both crashed servers get a down verdict");
}

#[test]
fn faulted_runs_are_byte_identical_across_reruns() {
    let w = WorkloadSpec::smoke(42);
    for policy in ["random", "rr", "smart", "port"] {
        let a = faulted(policy, 42, &w);
        let b = faulted(policy, 42, &w);
        assert_eq!(a.assignments, b.assignments, "{policy}");
        assert_eq!(
            render_event_log(&a.event_log),
            render_event_log(&b.event_log),
            "{policy}"
        );
        assert_eq!(a.report.render(), b.report.render(), "{policy}");
    }
}

#[test]
fn smart_beats_random_tail_latency_under_faults() {
    // The paper's placement-quality claim must survive fault injection:
    // the model-driven policy (which also penalizes suspected servers)
    // keeps a tighter p99 than blind random placement on the same
    // faulted fleet.
    let w = WorkloadSpec::bundled(42);
    let smart = faulted("smart", 42, &w);
    let random = faulted("random", 42, &w);
    assert!(
        smart.report.sojourn.p99_us < random.report.sojourn.p99_us,
        "smart faulted p99 ({}) must beat random faulted p99 ({})",
        smart.report.sojourn.p99_us,
        random.report.sojourn.p99_us
    );
}

#[test]
fn hedging_duplicates_interactive_stragglers() {
    let w = WorkloadSpec::smoke(7);
    let jobs = w.generate().unwrap();
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap();
    // Straggler faults plus an aggressive hedge trigger: interactive jobs
    // stuck past 30% of their deadline budget get a duplicate.
    let mut chaos = ChaosConfig::kill_two_straggle_one(7, 8, horizon);
    chaos.hedge_after = 0.3;
    let cfg = ServeConfig {
        chaos,
        ..ServeConfig::default()
    };
    let out = simulate_trace(
        &jobs,
        7,
        Fleet::sized(8).unwrap(),
        policy_by_name("smart", 7).unwrap(),
        cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(
        r.completed + r.shed_total(),
        r.offered,
        "conservation holds"
    );
    assert!(
        r.faults.hedges_launched > 0,
        "slow interactive jobs must trigger hedges: {:?}",
        r.faults
    );
    assert!(r.faults.hedges_won <= r.faults.hedges_launched);
    // Exactly-once: hedge launches appear in the event log too.
    let hedge_events = out
        .event_log
        .iter()
        .filter(|e| matches!(e, EventRecord::Hedge { .. }))
        .count() as u64;
    assert_eq!(hedge_events, r.faults.hedges_launched);
}

#[test]
fn degradation_ladder_sheds_quality_not_jobs() {
    let w = WorkloadSpec::smoke(42);
    let jobs = w.generate().unwrap();
    // Kill 6 of 8 servers one second in: detected capacity collapses and
    // the backlog per surviving server explodes.
    let mut plan = FaultPlan::none(8);
    for s in 2..8 {
        plan = plan.with_crash(s, 1_000_000).unwrap();
    }
    let cfg = ServeConfig {
        chaos: ChaosConfig {
            plan,
            degrade: DegradeConfig {
                enabled: true,
                backlog_per_unit: 2.0,
                max_level: 4,
            },
            ..ChaosConfig::default()
        },
        ..ServeConfig::default()
    };
    let out = simulate_trace(
        &jobs,
        42,
        Fleet::sized(8).unwrap(),
        policy_by_name("smart", 42).unwrap(),
        cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.completed + r.shed_total(), r.offered);
    assert!(
        r.faults.peak_degrade_level > 0,
        "capacity collapse must climb the ladder: {:?}",
        r.faults
    );
    assert!(
        r.faults.degraded_jobs > 0,
        "climbing the ladder must actually downgrade dispatched presets"
    );
    let degrade_events = out
        .event_log
        .iter()
        .filter(|e| matches!(e, EventRecord::Degrade { .. }))
        .count();
    assert!(degrade_events > 0);
}

#[test]
fn whole_fleet_loss_strands_nothing_silently() {
    let w = WorkloadSpec::smoke(3);
    let jobs = w.generate().unwrap();
    let mut plan = FaultPlan::none(5);
    for s in 0..5 {
        plan = plan.with_crash(s, 0).unwrap();
    }
    let cfg = ServeConfig {
        chaos: ChaosConfig {
            plan,
            ..ChaosConfig::default()
        },
        ..ServeConfig::default()
    };
    let out = simulate_trace(
        &jobs,
        3,
        Fleet::table_iv(),
        policy_by_name("rr", 3).unwrap(),
        cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.completed, 0, "a fleet dead from t=0 completes nothing");
    assert_eq!(
        r.shed_total(),
        r.offered,
        "every admitted job still reaches a terminal state: {r:?}"
    );
    assert_eq!(r.availability, 0.0, "no server-time was ever alive");
}

#[test]
fn real_executor_survives_a_worker_crash() {
    // Satellite: kill a real worker thread mid-run and prove the service
    // recovers — every admitted job terminally accounted exactly once.
    let w = WorkloadSpec::real_smoke(42);
    let plan = FaultPlan::none(5).with_crash(2, 40_000).unwrap();
    let cfg = ExecConfig {
        arrival_compression: 50,
        serve: ServeConfig {
            chaos: ChaosConfig {
                plan,
                ..ChaosConfig::default()
            },
            ..ServeConfig::default()
        },
        ..ExecConfig::default()
    };
    let out = run_real(
        &w,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        &cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.offered, w.jobs as u64);
    assert_eq!(
        r.completed + r.shed_total(),
        r.offered,
        "conservation under a real worker crash: {r:?}"
    );
    assert_eq!(r.sojourn.count, r.completed);
    assert!(r.completed > 0, "the surviving 4 workers keep transcoding");
    assert_eq!(r.faults.crashes, 1);
    assert!(
        r.availability < 1.0,
        "a crashed server must dent availability"
    );
    let downs = out
        .event_log
        .iter()
        .filter(|e| matches!(e, EventRecord::Down { .. }))
        .count();
    assert_eq!(downs, 1, "the dead worker gets exactly one down verdict");
}
