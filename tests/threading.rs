//! Wavefront-threading determinism: `EncoderConfig::threads` must never
//! change anything observable — bitstream, reconstruction quality, or any
//! simulated profiler counter. The paper's characterization only stays
//! meaningful under threading because of this invariant (the measured
//! instruction stream must be the serial one, merely produced faster).

use vtx_codec::encoder::{encode_video, EncodeResult};
use vtx_codec::{EncoderConfig, Preset};
use vtx_frame::quality;
use vtx_tests::tiny_video;
use vtx_trace::layout::CodeLayout;
use vtx_trace::{ProfileReport, Profiler};
use vtx_uarch::config::UarchConfig;

fn profiler(sample_shift: u32) -> Profiler {
    let kernels = vtx_codec::instr::kernel_table();
    let mut p = Profiler::new(
        &UarchConfig::baseline(),
        kernels,
        CodeLayout::default_order(kernels),
    )
    .unwrap();
    p.set_sample_shift(sample_shift);
    p
}

fn encode_at(
    cfg: &EncoderConfig,
    threads: u32,
    sample_shift: u32,
    clip: &vtx_frame::Video,
) -> (EncodeResult, ProfileReport) {
    let mut p = profiler(sample_shift);
    let cfg = cfg.clone().with_threads(threads);
    let r = encode_video(clip, &cfg, &mut p).unwrap();
    (r, p.finish())
}

#[test]
fn bit_identical_across_threads_and_presets() {
    let clip = tiny_video("bike", 6, 11);
    for preset in [Preset::Ultrafast, Preset::Medium] {
        let cfg = preset.config();
        let (base, base_rep) = encode_at(&cfg, 1, 0, &clip);
        let base_psnr = quality::sequence_psnr(&clip.frames, &base.recon).unwrap();

        for threads in [2u32, 4] {
            let (r, rep) = encode_at(&cfg, threads, 0, &clip);
            let label = format!("{} threads={threads}", preset.name());
            assert_eq!(base.bitstream, r.bitstream, "bitstream differs: {label}");
            assert_eq!(base.recon, r.recon, "reconstruction differs: {label}");
            let psnr = quality::sequence_psnr(&clip.frames, &r.recon).unwrap();
            assert_eq!(base_psnr, psnr, "psnr differs: {label}");
            assert_eq!(base.stats, r.stats, "stats differ: {label}");
            assert_eq!(base_rep.counts, rep.counts, "counts differ: {label}");
            assert_eq!(
                base_rep.profile, rep.profile,
                "per-kernel totals differ: {label}"
            );
            assert_eq!(base_rep.hotspots, rep.hotspots, "hotspots differ: {label}");
        }
    }
}

#[test]
fn sampled_profiles_identical_across_threads() {
    // Burst sampling (as the sweeps use) must interact correctly with the
    // per-worker recording shards: the active-unit pattern is a pure
    // function of the raster unit index, so shards filter identically.
    let clip = tiny_video("cricket", 6, 5);
    let cfg = EncoderConfig::default();
    let (base, base_rep) = encode_at(&cfg, 1, 2, &clip);
    let (r, rep) = encode_at(&cfg, 4, 2, &clip);
    assert_eq!(base.bitstream, r.bitstream);
    assert_eq!(base_rep.counts, rep.counts);
    assert_eq!(base_rep.profile, rep.profile);
}

#[test]
fn auto_thread_count_is_still_deterministic() {
    let clip = tiny_video("girl", 6, 9);
    let cfg = EncoderConfig::default();
    let (base, base_rep) = encode_at(&cfg, 1, 0, &clip);
    // threads = 0 resolves to the machine's core count — whatever that is,
    // output must not change.
    let (r, rep) = encode_at(&cfg, 0, 0, &clip);
    assert_eq!(base.bitstream, r.bitstream);
    assert_eq!(base_rep.counts, rep.counts);
}

/// Acceptance: >= 1.8x wall-clock speedup at 4 threads on a catalog clip.
/// Ignored by default — wall-clock assertions need a quiet machine with at
/// least 4 cores. Run with:
/// `cargo test --release --test threading -- --ignored`
#[test]
#[ignore = "wall-clock benchmark; run explicitly on a quiet >=4-core machine"]
fn wavefront_speedup_at_four_threads() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 4 {
        eprintln!("skipping wall-clock speedup check: need >= 4 cores, have {cores}");
        return;
    }

    // A bigger clip so per-frame parallel work dominates: 20x12 MBs gives
    // 12 rows for 4 workers. Sampling at shift 3 keeps the serial stitch
    // (cache-simulation replay) a small fraction of total work, as in the
    // real sweeps.
    let mut spec = vtx_tests::tiny_spec("bike", 8);
    spec.sim_width = 320;
    spec.sim_height = 192;
    let clip = vtx_frame::synth::generate(&spec, 11);
    let cfg = EncoderConfig::default();

    // Warm-up, and correctness while we're here.
    let (a, _) = encode_at(&cfg, 1, 3, &clip);
    let (b, _) = encode_at(&cfg, 4, 3, &clip);
    assert_eq!(a.bitstream, b.bitstream);

    let t0 = std::time::Instant::now();
    let _ = encode_at(&cfg, 1, 3, &clip);
    let serial = t0.elapsed();
    let t1 = std::time::Instant::now();
    let _ = encode_at(&cfg, 4, 3, &clip);
    let parallel = t1.elapsed();

    let speedup = serial.as_secs_f64() / parallel.as_secs_f64();
    assert!(
        speedup >= 1.8,
        "speedup {speedup:.2}x (serial {serial:?}, 4 threads {parallel:?})"
    );
}
