//! End-to-end integration: synthetic video → mezzanine → decode → re-encode
//! → decode again, across crates, with profiling running throughout.

use vtx_codec::{decode_video, encode_video, instr, EncoderConfig, Preset, RateControlMode};
use vtx_core::TranscodeOptions;
use vtx_core::Transcoder;
use vtx_frame::quality;
use vtx_tests::{tiny_transcoder, tiny_video};
use vtx_trace::layout::CodeLayout;
use vtx_trace::Profiler;
use vtx_uarch::config::UarchConfig;

fn profiler() -> Profiler {
    let kernels = instr::kernel_table();
    Profiler::new(
        &UarchConfig::baseline(),
        kernels,
        CodeLayout::default_order(kernels),
    )
    .unwrap()
}

#[test]
fn full_transcode_pipeline_reports_consistent_metrics() {
    let t = tiny_transcoder("cricket", 8, 1);
    let r = t
        .transcode(&EncoderConfig::default(), &TranscodeOptions::default())
        .unwrap();
    assert!(r.seconds > 0.0);
    assert!(r.bitrate_kbps > 0.0);
    assert!(r.psnr_db > 25.0, "psnr {}", r.psnr_db);
    assert!((r.summary.topdown.sum() - 1.0).abs() < 1e-9);
    // The profile must cover both decode and encode kernels.
    let names: Vec<&str> = r.profile.hotspots.iter().map(|(n, _)| n.as_str()).collect();
    assert!(names.contains(&"dec_parse"), "decoder was profiled");
    assert!(
        names.contains(&"sad") || names.contains(&"satd"),
        "encoder was profiled"
    );
}

#[test]
fn decoder_reproduces_encoder_reconstruction_for_every_preset_class() {
    for preset in [
        Preset::Ultrafast,
        Preset::Veryfast,
        Preset::Medium,
        Preset::Slow,
    ] {
        let v = tiny_video("game2", 6, 9);
        let mut p = profiler();
        let cfg = preset.config().with_crf(23.0).with_refs(2);
        let enc = encode_video(&v, &cfg, &mut p).unwrap();
        let dec = decode_video(&enc.bitstream, &mut p).unwrap();
        for (i, (d, e)) in dec.frames.iter().zip(enc.recon.iter()).enumerate() {
            assert_eq!(d, e, "{}: frame {i} mismatch", preset.name());
        }
    }
}

#[test]
fn all_rate_control_modes_produce_decodable_streams() {
    let v = tiny_video("bike", 8, 4);
    let modes = [
        RateControlMode::Cqp(28),
        RateControlMode::Crf(23.0),
        RateControlMode::Abr { bitrate_kbps: 120 },
        RateControlMode::Cbr { bitrate_kbps: 120 },
        RateControlMode::TwoPassAbr { bitrate_kbps: 120 },
        RateControlMode::Vbv {
            crf: 23.0,
            max_kbps: 200,
        },
    ];
    for mode in modes {
        let mut p = profiler();
        let mut cfg = EncoderConfig::default();
        cfg.rc = mode;
        let enc = encode_video(&v, &cfg, &mut p).unwrap();
        let dec =
            decode_video(&enc.bitstream, &mut p).unwrap_or_else(|e| panic!("{}: {e}", mode.name()));
        assert_eq!(dec.frames.len(), v.frames.len(), "{}", mode.name());
        let psnr = quality::sequence_psnr(&v.frames, &dec.frames).unwrap();
        assert!(psnr > 22.0, "{}: psnr {psnr}", mode.name());
    }
}

#[test]
fn abr_and_cbr_land_near_their_target_bitrate() {
    // A generous tolerance: the clip is very short, so the controller has
    // few frames to converge.
    let v = tiny_video("cricket", 12, 2);
    for target in [100u32, 300] {
        let mut p = profiler();
        let mut cfg = EncoderConfig::default();
        cfg.rc = RateControlMode::Abr {
            bitrate_kbps: target,
        };
        let enc = encode_video(&v, &cfg, &mut p).unwrap();
        let duration = v.frames.len() as f64 / f64::from(v.spec.fps);
        let kbps = enc.bitstream.bitrate_kbps(duration);
        assert!(
            kbps > f64::from(target) * 0.3 && kbps < f64::from(target) * 3.0,
            "target {target} got {kbps:.0}"
        );
    }
}

#[test]
fn every_uarch_config_can_run_a_transcode() {
    let t = tiny_transcoder("desktop", 6, 3);
    for cfg in UarchConfig::table_iv() {
        let opts = TranscodeOptions::on(cfg.clone()).with_sample_shift(2);
        let r = t.transcode(&EncoderConfig::default(), &opts).unwrap();
        assert!(r.seconds > 0.0, "{}", cfg.name);
        assert_eq!(r.profile.config_name, cfg.name);
    }
}

#[test]
fn modified_configs_do_not_slow_down_the_baseline_workload() {
    // Table IV's variants only add resources (except be_op1's L3 trade-off),
    // so at minimum fe_op, be_op2 and bs_op must never be slower.
    let t = tiny_transcoder("cricket", 8, 5);
    let cfg = EncoderConfig::default();
    let base = t
        .transcode(&cfg, &TranscodeOptions::default())
        .unwrap()
        .seconds;
    for u in [
        UarchConfig::fe_op(),
        UarchConfig::be_op2(),
        UarchConfig::bs_op(),
    ] {
        let s = t
            .transcode(&cfg, &TranscodeOptions::on(u.clone()))
            .unwrap()
            .seconds;
        assert!(s <= base * 1.001, "{} took {s} vs baseline {base}", u.name);
    }
}

#[test]
fn sample_shift_keeps_instruction_counts_exact() {
    // A somewhat larger clip so 1-in-2 sampling still sees enough
    // macroblocks for a stable estimate.
    let mut spec = vtx_tests::tiny_spec("girl", 8);
    spec.sim_width = 96;
    spec.sim_height = 64;
    let t = Transcoder::from_video(vtx_frame::synth::generate(&spec, 6)).unwrap();
    let cfg = EncoderConfig::default();
    let full = t.transcode(&cfg, &TranscodeOptions::default()).unwrap();
    let sampled = t
        .transcode(&cfg, &TranscodeOptions::default().with_sample_shift(1))
        .unwrap();
    assert_eq!(
        full.profile.counts.instructions,
        sampled.profile.counts.instructions
    );
    // Sampled time should be within a factor of the detailed estimate.
    let ratio = sampled.seconds / full.seconds;
    assert!((0.6..1.7).contains(&ratio), "ratio {ratio}");
}
