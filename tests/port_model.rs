//! Integration tests for the vtx-port issue-port model: inference
//! determinism across identical-seed runs, inferred-vs-ground-truth
//! throughput tolerance on every Table IV configuration, port-aware
//! Top-down accounting, and the port-informed serving policy end to end.

use vtx_port::infer::{infer, validate, BlockedPortBench};
use vtx_port::{dispatch_bound, render_inference_report, solve, PortLayout, UopMix};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::service::ServeConfig;
use vtx_serve::sim::simulate;
use vtx_serve::workload::WorkloadSpec;
use vtx_uarch::config::UarchConfig;
use vtx_uarch::hierarchy::LevelCounters;
use vtx_uarch::interval::{CoreModel, ExecutionCounts};

fn sample_counts() -> ExecutionCounts {
    ExecutionCounts {
        instructions: 1_000_000,
        uops: 1_100_000,
        branches: 100_000,
        branch_mispredicts: 2_000,
        inst_fetch: LevelCounters {
            l1: 300_000,
            l2: 2_000,
            l3: 200,
            l4: 0,
            mem: 50,
        },
        itlb_misses: 100,
        loads: LevelCounters {
            l1: 200_000,
            l2: 8_000,
            l3: 1_500,
            l4: 0,
            mem: 700,
        },
        stores: LevelCounters {
            l1: 80_000,
            l2: 3_000,
            l3: 400,
            l4: 0,
            mem: 150,
        },
        heavy_ops: 5_000,
        redirects: 300,
    }
}

#[test]
fn inference_report_is_byte_deterministic_across_runs() {
    // The CI `port-inference-determinism` job asserts this on the rendered
    // example output; here it is asserted in-process for every seed class.
    let a = render_inference_report(42);
    let b = render_inference_report(42);
    assert_eq!(a, b, "identical seeds must render byte-identical reports");
    assert_ne!(
        a,
        render_inference_report(43),
        "different seeds must actually change the measurements"
    );
    assert!(a.contains("exact=true"));
    assert!(!a.contains("FAILED"), "{a}");
}

#[test]
fn inference_recovers_every_table_iv_mapping_within_tolerance() {
    // Acceptance criterion: on every Table IV configuration the inferred
    // model's predicted throughput stays within 5% relative error of the
    // (noisy) ground-truth measurements across the full mix suite.
    for (i, cfg) in UarchConfig::table_iv().iter().enumerate() {
        let truth = PortLayout::for_config(cfg);
        let bench = BlockedPortBench::new(truth.clone(), 1_000 + i as u64);
        let model = infer(&bench).expect("inference must not conflict");
        assert_eq!(
            model.layout.render(),
            truth.render(),
            "{}: recovered mapping must match the hidden layout",
            cfg.name
        );
        let v = validate(&model, &bench).expect("validation mixes are well-formed");
        assert!(
            v.max_rel_error < 0.05,
            "{}: max rel error {} breaches the 5% tolerance",
            cfg.name,
            v.max_rel_error
        );
        assert!(
            v.cases >= 38,
            "{}: suite shrank to {} mixes",
            cfg.name,
            v.cases
        );
    }
}

#[test]
fn port_aware_topdown_sums_to_one_on_every_config() {
    let counts = sample_counts();
    for cfg in &UarchConfig::table_iv() {
        let mix = UopMix::for_preset_rank(9);
        let bound = dispatch_bound(cfg, &mix).expect("table kernels are served");
        let flat = CoreModel::new(cfg).run(&counts);
        let ported = CoreModel::new(cfg)
            .with_dispatch_bound(bound)
            .expect("solver bound is positive and finite")
            .run(&counts);
        let td = ported.topdown();
        assert!(
            (td.sum() - 1.0).abs() < 1e-9,
            "{}: port-aware Top-down sums to {}",
            cfg.name,
            td.sum()
        );
        assert!(
            ported.total_cycles >= flat.total_cycles,
            "{}: a dispatch bound can only slow the core",
            cfg.name
        );
        assert!(
            td.backend_core >= flat.topdown().backend_core - 1e-12,
            "{}: port pressure must surface as backend-core share",
            cfg.name
        );
    }
}

#[test]
fn solver_bound_never_exceeds_nominal_width() {
    for cfg in &UarchConfig::table_iv() {
        let width = f64::from(cfg.dispatch_width);
        for rank in 0..10 {
            let mix = UopMix::for_preset_rank(rank);
            let layout = PortLayout::for_config(cfg);
            let s = solve(&layout, &mix, width).unwrap();
            assert!(s.uops_per_cycle <= width + 1e-9);
            assert!(s.uops_per_cycle > 0.0);
        }
    }
}

#[test]
fn port_policy_serves_no_worse_than_smart_on_p99() {
    // Serving-layer acceptance: `--policy port` must be selectable and no
    // worse than `smart` on p99 sojourn over the bundled workload.
    let w = WorkloadSpec::bundled(42);
    let run = |name: &str| {
        simulate(
            &w,
            Fleet::table_iv(),
            policy_by_name(name, w.seed).expect("policy resolves"),
            ServeConfig::default(),
        )
        .unwrap()
    };
    let smart = run("smart");
    let port = run("port");
    assert!(
        port.report.sojourn.p99_us <= smart.report.sojourn.p99_us,
        "port p99 {} must not exceed smart p99 {}",
        port.report.sojourn.p99_us,
        smart.report.sojourn.p99_us
    );
    // And the engine stays deterministic with the new policy.
    let again = run("port");
    assert_eq!(port.assignments, again.assignments);
    assert_eq!(port.report.render(), again.report.render());
}
