//! End-to-end telemetry: record a real (tiny) sweep with the collector on,
//! export Chrome trace-event JSON, and validate the document schema with a
//! real JSON parser.
//!
//! The whole pipeline shares one global collector, so everything lives in a
//! single test function — parallel test threads would steal each other's
//! events.

use serde_json::Value;

use vtx_codec::EncoderConfig;
use vtx_core::experiments::sweep::crf_refs_sweep;
use vtx_core::{trace_export, TranscodeOptions, Transcoder};
use vtx_frame::{synth, vbench};
use vtx_telemetry::Collector;

fn tiny_transcoder() -> Transcoder {
    let mut spec = vbench::by_name("cricket").unwrap();
    spec.sim_width = 64;
    spec.sim_height = 48;
    spec.sim_frames = 5;
    Transcoder::from_video(synth::generate(&spec, 3)).unwrap()
}

/// Every trace event must carry the trace-event-format core fields.
fn assert_event_schema(event: &Value) {
    let obj = event.as_object().expect("event is a JSON object");
    assert!(obj["name"].is_string(), "name: {event}");
    assert!(obj["cat"].is_string(), "cat: {event}");
    let ph = obj["ph"].as_str().expect("ph is a string");
    assert!(obj["ts"].is_u64(), "ts: {event}");
    assert!(obj["pid"].is_u64(), "pid: {event}");
    assert!(obj["tid"].is_u64(), "tid: {event}");
    match ph {
        "X" => assert!(obj["dur"].is_u64(), "complete event needs dur: {event}"),
        "i" | "C" | "M" => {}
        other => panic!("unexpected phase {other:?}: {event}"),
    }
}

fn events_named<'a>(events: &'a [Value], name: &str) -> Vec<&'a Value> {
    events
        .iter()
        .filter(|e| e["name"].as_str() == Some(name))
        .collect()
}

#[test]
fn sweep_trace_exports_valid_chrome_json() {
    // Start from a clean slate: recording is off by default, so the
    // collector may hold nothing yet, but be explicit for clarity.
    Collector::drain();
    trace_export::clear_profiles();
    Collector::enable();

    let t = tiny_transcoder();
    let opts = TranscodeOptions::default().with_sample_shift(2);
    let points = crf_refs_sweep(&t, &[20, 40], &[1, 2], &EncoderConfig::default(), &opts).unwrap();
    assert_eq!(points.len(), 4);
    Collector::disable();

    assert_eq!(
        trace_export::recorded_configs(),
        vec!["baseline".to_owned()],
        "the sweep ran on one simulated config"
    );

    let json = trace_export::chrome_trace_json();
    let doc: Value = serde_json::from_str(&json).expect("exporter emits valid JSON");
    let events = doc["traceEvents"]
        .as_array()
        .expect("traceEvents array")
        .clone();
    assert!(doc["vtxDroppedEvents"].is_u64());
    for e in &events {
        assert_event_schema(e);
    }

    // One "X" span per sweep point, carrying crf/refs args.
    let sweep_spans = events_named(&events, "sweep_point");
    assert_eq!(sweep_spans.len(), 4, "one span per grid point");
    for span in &sweep_spans {
        assert_eq!(span["ph"], "X");
        assert!(span["args"]["crf"].is_u64(), "{span}");
        assert!(span["args"]["refs"].is_u64(), "{span}");
    }
    let crfs: Vec<u64> = sweep_spans
        .iter()
        .filter_map(|s| s["args"]["crf"].as_u64())
        .collect();
    assert!(crfs.contains(&20) && crfs.contains(&40));

    // Per-frame codec spans, grouped by frame type.
    let frame_spans: Vec<&Value> = events
        .iter()
        .filter(|e| e["name"].as_str().is_some_and(|n| n.starts_with("frame/")))
        .collect();
    assert!(!frame_spans.is_empty(), "encoder emits per-frame spans");
    assert!(
        !events_named(&events, "frame/I").is_empty(),
        "every encode opens with an I frame"
    );
    for span in &frame_spans {
        assert_eq!(span["ph"], "X");
        assert!(span["args"]["display"].is_u64());
    }

    // Decode-side frame spans too (the transcode pipeline decodes the
    // mezzanine before re-encoding).
    assert!(
        events.iter().any(|e| {
            e["name"]
                .as_str()
                .is_some_and(|n| n.starts_with("decode_frame/"))
        }),
        "decoder emits per-frame spans"
    );

    // Stage and experiment spans from vtx-core.
    assert!(!events_named(&events, "transcode").is_empty());
    assert!(!events_named(&events, "transcode/decode").is_empty());
    assert!(!events_named(&events, "transcode/encode").is_empty());
    assert!(!events_named(&events, "experiment/sweep").is_empty());

    // Progress heartbeats recorded as instants.
    let progress = events_named(&events, "progress");
    assert_eq!(progress.len(), 4, "one tick per sweep point");
    assert!(progress
        .iter()
        .any(|p| p["args"]["completed"].as_u64() == Some(4)));

    // Metadata: the wall-clock process track plus one simulated-time track
    // per configuration seen during the run.
    let process_names: Vec<&str> = events_named(&events, "process_name")
        .iter()
        .filter_map(|e| e["args"]["name"].as_str())
        .collect();
    assert!(
        process_names.contains(&"vtx wall-clock"),
        "{process_names:?}"
    );
    assert!(
        process_names.contains(&"sim: baseline"),
        "{process_names:?}"
    );
    assert!(
        !events_named(&events, "thread_name").is_empty(),
        "worker threads are named"
    );

    // The simulated-time track carries the interval-model breakdown as
    // complete events on its own pid.
    let base = events_named(&events, "base");
    assert!(!base.is_empty(), "sim track renders the cycle breakdown");
    assert!(base[0]["pid"].as_u64().unwrap() >= trace_export::SIM_PID_BASE);

    // The flamegraph exporter sees the same profiles.
    let folded = trace_export::flamegraph_collapsed();
    assert!(folded.contains("baseline;"), "{folded}");
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("stack weight");
        assert!(!stack.is_empty());
        weight.parse::<u64>().expect("numeric weight");
    }

    // A second drain is empty: the exporter consumed the events.
    assert!(Collector::drain().events.is_empty());
    trace_export::clear_profiles();
}
