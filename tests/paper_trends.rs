//! The paper's qualitative findings, asserted as integration tests: if a
//! refactor breaks one of these shapes, the reproduction no longer
//! reproduces.

use vtx_codec::{EncoderConfig, Preset};
use vtx_core::experiments::presets::preset_study_subset;
use vtx_core::experiments::sweep::crf_refs_sweep;
use vtx_core::TranscodeOptions;
use vtx_tests::tiny_transcoder;

fn opts() -> TranscodeOptions {
    TranscodeOptions::default().with_sample_shift(1)
}

#[test]
fn crf_increases_backend_and_decreases_badspec() {
    // Figure 3: raising crf raises the back-end share and lowers bad
    // speculation (operational-intensity/roofline argument). This trend
    // needs the catalog geometry — on 64x48 toy clips denominator effects
    // dominate — so it uses the real simulated 720p bike clip.
    let t = vtx_core::Transcoder::from_catalog("bike", 42).unwrap();
    let pts = crf_refs_sweep(&t, &[8, 44], &[3], &EncoderConfig::default(), &opts()).unwrap();
    let lo = &pts[0].summary.topdown;
    let hi = &pts[1].summary.topdown;
    assert!(
        hi.backend() > lo.backend(),
        "backend {:.3} -> {:.3}",
        lo.backend(),
        hi.backend()
    );
    assert!(
        hi.bad_speculation <= lo.bad_speculation + 0.01,
        "bad spec {:.3} -> {:.3}",
        lo.bad_speculation,
        hi.bad_speculation
    );
}

#[test]
fn refs_increase_transcoding_time_and_shrink_output() {
    // Figure 2 / Figure 4: refs trade time for size. All-P encode so every
    // frame is an anchor and refs genuinely bind on the short test clip.
    let t = tiny_transcoder("cricket", 12, 7);
    let mut cfg = EncoderConfig::default();
    cfg.bframes = 0;
    let pts = crf_refs_sweep(&t, &[23], &[1, 4], &cfg, &opts()).unwrap();
    assert!(
        pts[1].summary.seconds > pts[0].summary.seconds,
        "time {} -> {}",
        pts[0].summary.seconds,
        pts[1].summary.seconds
    );
    assert!(
        pts[1].bitrate_kbps <= pts[0].bitrate_kbps * 1.02,
        "size {} -> {}",
        pts[0].bitrate_kbps,
        pts[1].bitrate_kbps
    );
}

#[test]
fn branch_mispredicts_fall_with_crf() {
    // Figure 5a's driver: raising crf removes coefficient-coding and
    // search work, and with it branch mispredictions. The *count* falls
    // strongly and monotonically; the per-kilo-instruction normalization
    // floors at high crf where the fixed (branch-heavy) decode stage
    // dominates the shrinking instruction count — a documented divergence
    // (EXPERIMENTS.md).
    let t = vtx_core::Transcoder::from_catalog("bike", 42).unwrap();
    let cfg = EncoderConfig::default();
    let lo = t
        .transcode(&cfg.clone().with_crf(6.0), &opts())
        .unwrap()
        .profile
        .counts
        .branch_mispredicts;
    let hi = t
        .transcode(&cfg.with_crf(44.0), &opts())
        .unwrap()
        .profile
        .counts
        .branch_mispredicts;
    assert!(
        hi * 2 < lo,
        "mispredicts should at least halve: {lo} -> {hi}"
    );
}

#[test]
fn presets_get_slower_and_less_memory_bound() {
    // Figure 6: transcoding time rises from ultrafast to slower presets and
    // the back-end share falls (higher operational intensity). Like the
    // Figure 3 trend above, this needs the catalog geometry: on a 64x48 toy
    // clip ultrafast's lower operational intensity makes it *memory*-bound
    // enough to lose the time ordering outright.
    let t = vtx_core::Transcoder::from_catalog("bike", 13).unwrap();
    let runs = preset_study_subset(
        &t,
        &[Preset::Ultrafast, Preset::Veryfast, Preset::Slow],
        &opts(),
    )
    .unwrap();
    assert!(runs[0].summary.seconds < runs[2].summary.seconds);
    assert!(runs[1].summary.seconds < runs[2].summary.seconds);
    assert!(
        runs[2].summary.topdown.backend() < runs[0].summary.topdown.backend(),
        "backend {:.3} (ultrafast) vs {:.3} (slow)",
        runs[0].summary.topdown.backend(),
        runs[2].summary.topdown.backend()
    );
}

#[test]
fn complex_videos_are_more_badspec_and_less_memory_bound() {
    // Figure 7: entropy up => bad speculation up, back-end down.
    let calm = tiny_transcoder("desktop", 8, 21);
    let busy = tiny_transcoder("holi", 8, 21);
    let cfg = EncoderConfig::default();
    let calm_r = calm.transcode(&cfg, &opts()).unwrap();
    let busy_r = busy.transcode(&cfg, &opts()).unwrap();
    assert!(
        busy_r.summary.topdown.bad_speculation > calm_r.summary.topdown.bad_speculation,
        "bs {:.3} vs {:.3}",
        calm_r.summary.topdown.bad_speculation,
        busy_r.summary.topdown.bad_speculation
    );
    assert!(
        busy_r.summary.topdown.backend_memory < calm_r.summary.topdown.backend_memory,
        "be-mem {:.3} vs {:.3}",
        calm_r.summary.topdown.backend_memory,
        busy_r.summary.topdown.backend_memory
    );
}

#[test]
fn complex_videos_cost_more_bits() {
    let calm = tiny_transcoder("desktop", 8, 33);
    let busy = tiny_transcoder("holi", 8, 33);
    let cfg = EncoderConfig::default();
    let calm_r = calm.transcode(&cfg, &opts()).unwrap();
    let busy_r = busy.transcode(&cfg, &opts()).unwrap();
    assert!(
        busy_r.bitrate_kbps > calm_r.bitrate_kbps * 2.0,
        "busy {} vs calm {}",
        busy_r.bitrate_kbps,
        calm_r.bitrate_kbps
    );
}
