//! Cross-crate integration tests for the vtx-cache segment cache wired
//! through the serving stack: byte-determinism of cached simulated runs,
//! exactly-once job conservation when hits skip the transcode, real-
//! executor common-subset artifact determinism, and partial-manifest
//! delivery when a rung's units never complete.

use vtx_cache::{CacheSpec, EvictPolicy};
use vtx_container::manifest::DEGRADED_TAG;
use vtx_serve::exec::{run_real_segmented, ExecConfig};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::segment::{SegmentOptions, SegmentPlan};
use vtx_serve::service::{render_event_log, EventRecord, ServeConfig};
use vtx_serve::sim::{simulate_trace, SimOutcome};
use vtx_serve::workload::WorkloadSpec;

/// 32 MiB cache spec with the given eviction policy and the default
/// lookup cost.
fn spec(policy: EvictPolicy) -> CacheSpec {
    CacheSpec {
        capacity_bytes: 32 << 20,
        policy,
        ..CacheSpec::default()
    }
}

/// A segmented, popularity-skewed simulated run with the cache armed:
/// the full integration path (Zipf trace -> segment plan -> unit tables
/// -> cached dispatch).
fn cached_segmented_sim(seed: u64, policy: EvictPolicy) -> (SegmentPlan, SimOutcome) {
    let workload = WorkloadSpec::bundled(seed).with_popularity(1.0, 0.25);
    let jobs = workload.generate().expect("trace generates");
    let opts = SegmentOptions {
        target_ms: 500,
        ..SegmentOptions::default()
    };
    let plan = SegmentPlan::expand(&jobs, &opts).expect("plan expands");
    let cfg = ServeConfig {
        cache: Some(spec(policy)),
        unit_frames: plan.unit_frames(),
        unit_rungs: plan.unit_rungs(),
        unit_segs: plan.unit_segs(),
        unit_bytes: plan.unit_bytes().expect("unit bytes"),
        ..ServeConfig::default()
    };
    let pol = policy_by_name("smart", seed).expect("policy exists");
    let out =
        simulate_trace(&plan.units, seed, Fleet::table_iv(), pol, cfg).expect("simulation runs");
    (plan, out)
}

#[test]
fn cached_segmented_sim_is_byte_identical_per_eviction_policy() {
    for policy in EvictPolicy::ALL {
        let (_, a) = cached_segmented_sim(19, policy);
        let (_, b) = cached_segmented_sim(19, policy);
        assert_eq!(
            render_event_log(&a.event_log),
            render_event_log(&b.event_log),
            "{}: same-seed cached event logs must be byte-identical",
            policy.name()
        );
        let (sa, sb) = (a.report.cache.unwrap(), b.report.cache.unwrap());
        assert_eq!(sa, sb, "{}: cache stats must replay exactly", policy.name());
        assert!(
            sa.hits > 0,
            "{}: a Zipf(1.0) trace must produce repeat hits",
            policy.name()
        );
        assert_eq!(a.report.shed_by_rung, b.report.shed_by_rung);
    }
}

#[test]
fn cache_hits_complete_each_unit_exactly_once() {
    let (plan, out) = cached_segmented_sim(7, EvictPolicy::Gdsf);
    let r = &out.report;
    assert_eq!(
        r.offered,
        r.completed + r.shed_total(),
        "every offered unit is either completed or shed"
    );

    // Exactly-once at the event level: no unit id may complete twice,
    // whether it was transcoded or served from cache.
    let mut completes = vec![0u32; plan.units.len()];
    let mut hits = 0u64;
    for ev in &out.event_log {
        match ev {
            EventRecord::Complete { id, .. } => completes[*id as usize] += 1,
            EventRecord::CacheHit { .. } => hits += 1,
            _ => {}
        }
    }
    assert!(
        completes.iter().all(|&c| c <= 1),
        "a unit completed more than once"
    );
    assert_eq!(
        completes.iter().map(|&c| u64::from(c)).sum::<u64>(),
        r.completed,
        "report completion count must match the event log"
    );
    let stats = r.cache.as_ref().expect("cache stats present");
    assert_eq!(hits, stats.hits, "CacheHit events must match cache stats");
    assert!(stats.hits > 0, "the hot head of the catalog must hit");
}

#[test]
fn cached_real_runs_agree_on_artifacts() {
    // Wall-clock scheduling makes per-run hit/miss counts racy in real
    // mode, so the determinism contract is common-subset: same completed
    // units -> byte-identical manifests and muxed segments.
    let seed = 7u64;
    let workload = WorkloadSpec::real_smoke(seed).with_popularity(1.0, 0.2);
    let parents = workload.generate().expect("trace generates");
    let opts = SegmentOptions {
        target_ms: 500,
        ..SegmentOptions::default()
    };
    let plan = SegmentPlan::expand(&parents, &opts).expect("plan expands");
    let mut cfg = ExecConfig {
        arrival_compression: 20,
        ..ExecConfig::default()
    };
    cfg.serve.cache = Some(spec(EvictPolicy::Gdsf));
    cfg.serve.unit_rungs = plan.unit_rungs();
    cfg.serve.unit_segs = plan.unit_segs();
    cfg.serve.unit_bytes = plan.unit_bytes().expect("unit bytes");

    let run = |seed| {
        let pol = policy_by_name("smart", seed).expect("policy exists");
        run_real_segmented(&plan, seed, Fleet::table_iv(), pol, &cfg).expect("real run")
    };
    let (a, b) = (run(seed), run(seed));
    for out in [&a, &b] {
        let r = &out.report;
        assert_eq!(r.offered, r.completed + r.shed_total());
        let stats = r.cache.as_ref().expect("cache stats present");
        assert!(
            stats.hits + stats.misses >= r.completed,
            "every completed unit did at least one cache lookup (retries re-probe)"
        );
    }
    assert_eq!(
        plan.manifests_partial(&a.event_log),
        plan.manifests_partial(&b.event_log),
        "common-subset manifests must agree across real runs"
    );
    assert_eq!(
        plan.materialize(seed, &a.event_log).expect("mux a"),
        plan.materialize(seed, &b.event_log).expect("mux b"),
        "common-subset muxed artifacts must agree across real runs"
    );
}

#[test]
fn partial_manifests_flag_missing_rungs_degraded() {
    let (plan, out) = cached_segmented_sim(3, EvictPolicy::Lru);

    // Pick one parent and drop every `hi`-rung (rung 0) completion from
    // its log: delivery should fall back to a degraded master that still
    // lists the finished rungs.
    let victim_parent = plan.meta[0].parent_job;
    let truncated: Vec<EventRecord> = out
        .event_log
        .iter()
        .filter(|ev| {
            !matches!(ev, EventRecord::Complete { id, .. }
                if plan.meta[*id as usize].parent_job == victim_parent
                    && plan.meta[*id as usize].rung == 0)
        })
        .cloned()
        .collect();

    let full = plan.manifests(&truncated);
    let partial = plan.manifests_partial(&truncated);
    let master = format!("job{victim_parent}/master.m3u8");
    assert!(
        !full.iter().any(|(rel, _)| *rel == master),
        "all-or-nothing delivery drops the parent entirely"
    );
    let (_, body) = partial
        .iter()
        .find(|(rel, _)| *rel == master)
        .expect("partial delivery still serves the parent");
    assert!(
        body.contains(DEGRADED_TAG),
        "served master must carry the degraded tag"
    );
    assert!(
        partial.len() > full.len(),
        "partial delivery serves strictly more files on a degraded run"
    );
}
