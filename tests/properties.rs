//! Property-based tests on cross-crate invariants.

use proptest::prelude::*;

use vtx_codec::entropy::cabac::{CabacReader, CabacWriter};
use vtx_codec::entropy::cavlc::{CavlcReader, CavlcWriter};
use vtx_codec::entropy::{EntropyReader, EntropyWriter};
use vtx_codec::quant::{dequant4x4, quant4x4};
use vtx_codec::transform::{dct4x4, idct4x4, Block4x4};
use vtx_codec::types::Qp;
use vtx_codec::{decode_video, encode_video, instr, EncoderConfig};
use vtx_frame::{Frame, Plane, Video};
use vtx_trace::layout::CodeLayout;
use vtx_trace::Profiler;
use vtx_uarch::config::UarchConfig;
use vtx_uarch::interval::{CoreModel, ExecutionCounts};

fn profiler() -> Profiler {
    let kernels = instr::kernel_table();
    Profiler::new(
        &UarchConfig::baseline(),
        kernels,
        CodeLayout::default_order(kernels),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The transform/quantization pipeline at qp<=6 reconstructs residuals
    /// within +-2 of the original for arbitrary content.
    #[test]
    fn transform_quant_roundtrip_is_tight_at_low_qp(
        vals in proptest::array::uniform16(-100i32..100),
        qp in 0u8..=6,
    ) {
        let src: Block4x4 = vals;
        let mut b = src;
        dct4x4(&mut b);
        quant4x4(&mut b, Qp::new(i32::from(qp)), true);
        dequant4x4(&mut b, Qp::new(i32::from(qp)));
        idct4x4(&mut b);
        for (o, s) in b.iter().zip(src.iter()) {
            prop_assert!((o - s).abs() <= 2, "{b:?} vs {src:?}");
        }
    }

    /// Quantization at any qp never increases coefficient magnitude sign-
    /// flips: reconstructed residual error is bounded by ~the quant step.
    #[test]
    fn quant_error_bounded_by_step(
        vals in proptest::array::uniform16(-128i32..128),
        qp in 0u8..=51,
    ) {
        let q = Qp::new(i32::from(qp));
        let src: Block4x4 = vals;
        let mut b = src;
        dct4x4(&mut b);
        quant4x4(&mut b, q, false);
        dequant4x4(&mut b, q);
        idct4x4(&mut b);
        let bound = (q.qstep() * 1.5 + 3.0) as i32;
        for (o, s) in b.iter().zip(src.iter()) {
            prop_assert!((o - s).abs() <= bound, "qp {qp}: err {} > {bound}", (o - s).abs());
        }
    }

    /// Both entropy backends round-trip arbitrary syntax streams.
    #[test]
    fn entropy_backends_roundtrip(
        values in proptest::collection::vec((0u32..200_000, any::<bool>()), 1..200),
    ) {
        // CAVLC
        let mut w = CavlcWriter::new();
        for (v, bit) in &values {
            w.put_ue(3, *v);
            w.put_bit(5, *bit);
            w.put_se(7, *v as i32 - 100_000);
        }
        let bytes = w.finish();
        let mut r = CavlcReader::new(&bytes);
        for (v, bit) in &values {
            prop_assert_eq!(r.get_ue(3).unwrap(), *v);
            prop_assert_eq!(r.get_bit(5).unwrap(), *bit);
            prop_assert_eq!(r.get_se(7).unwrap(), *v as i32 - 100_000);
        }
        // CABAC
        let mut w = CabacWriter::new();
        for (v, bit) in &values {
            w.put_ue(3, *v);
            w.put_bit(5, *bit);
            w.put_se(7, *v as i32 - 100_000);
        }
        let bytes = w.finish();
        let mut r = CabacReader::new(&bytes);
        for (v, bit) in &values {
            prop_assert_eq!(r.get_ue(3).unwrap(), *v);
            prop_assert_eq!(r.get_bit(5).unwrap(), *bit);
            prop_assert_eq!(r.get_se(7).unwrap(), *v as i32 - 100_000);
        }
    }

    /// Top-down categories always sum to exactly 1 for any counts.
    #[test]
    fn topdown_partitions_slots(
        instructions in 1u64..10_000_000,
        mispredicts in 0u64..50_000,
        l2 in 0u64..100_000,
        l3 in 0u64..20_000,
        mem in 0u64..10_000,
        stores_mem in 0u64..50_000,
        heavy in 0u64..200_000,
    ) {
        let mut c = ExecutionCounts::default();
        c.instructions = instructions;
        c.uops = instructions + heavy;
        c.branches = instructions / 5;
        c.branch_mispredicts = mispredicts.min(c.branches);
        c.loads.l1 = instructions / 3;
        c.loads.l2 = l2;
        c.loads.l3 = l3;
        c.loads.mem = mem;
        c.stores.l1 = instructions / 10;
        c.stores.mem = stores_mem;
        c.heavy_ops = heavy;
        c.redirects = instructions / 100;
        let bd = CoreModel::new(&UarchConfig::baseline()).run(&c);
        let td = bd.topdown();
        prop_assert!((td.sum() - 1.0).abs() < 1e-9, "{td:?}");
        prop_assert!(td.retiring >= 0.0 && td.frontend >= 0.0);
        prop_assert!(td.bad_speculation >= 0.0 && td.backend() >= 0.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The decoder must never panic on arbitrary garbage — it either parses
    /// something or returns a structured error.
    #[test]
    fn decoder_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let mut p = profiler();
        let bs = vtx_codec::encoder::Bitstream { data: bytes };
        let _ = decode_video(&bs, &mut p);
    }

    /// Garbage wrapped in a valid-looking container header must also fail
    /// gracefully (this exercises the entropy decoders on noise).
    #[test]
    fn decoder_never_panics_on_wrapped_garbage(
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        cabac in any::<bool>(),
    ) {
        let mut data = Vec::new();
        data.extend_from_slice(vtx_codec::encoder::MAGIC);
        data.push(vtx_codec::encoder::VERSION);
        data.extend_from_slice(&32u16.to_le_bytes()); // width
        data.extend_from_slice(&32u16.to_le_bytes()); // height
        data.push(30); // fps
        data.extend_from_slice(&1u16.to_le_bytes()); // frame count
        data.push(if cabac { 1 } else { 0 }); // flags
        data.push(1); // refs
        data.push(0); // deblock a
        data.push(0); // deblock b
        data.push(8); // scale
        data.push(0); // frame type I
        data.extend_from_slice(&0u16.to_le_bytes()); // display index
        data.push(23); // qp
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        data.extend_from_slice(&payload);
        let mut p = profiler();
        let bs = vtx_codec::encoder::Bitstream { data };
        let _ = decode_video(&bs, &mut p);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Encode -> decode is a bit-exact round trip for random pixel content
    /// (the toughest possible input: pure noise).
    #[test]
    fn random_content_roundtrips(seed in 0u64..1000, crf in 10u8..45) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let mut spec = vtx_frame::vbench::by_name("cat").unwrap();
        spec.sim_width = 32;
        spec.sim_height = 32;
        spec.sim_frames = 3;
        let frames: Vec<Frame> = (0..3)
            .map(|_| {
                let mut f = Frame::new(32, 32);
                randomize(f.y_mut(), &mut rng);
                randomize(f.u_mut(), &mut rng);
                randomize(f.v_mut(), &mut rng);
                f
            })
            .collect();
        let video = Video::new(spec, frames);
        let mut p = profiler();
        let cfg = EncoderConfig::default().with_crf(f64::from(crf));
        let enc = encode_video(&video, &cfg, &mut p).unwrap();
        let dec = decode_video(&enc.bitstream, &mut p).unwrap();
        for (d, e) in dec.frames.iter().zip(enc.recon.iter()) {
            prop_assert_eq!(d, e);
        }
    }
}

fn randomize(p: &mut Plane, rng: &mut impl rand::Rng) {
    for v in p.samples_mut() {
        *v = rng.gen();
    }
}
