//! Integration tests for the vtx-serve online serving layer: determinism
//! of the discrete-event engine, the smart-beats-random tail-latency claim,
//! shedding under pressure, and the real threaded executor driving actual
//! transcodes through the same service core.

use vtx_obs::ObsConfig;
use vtx_sched::{auction, hungarian};
use vtx_serve::chaos::ChaosConfig;
use vtx_serve::exec::{run_real, ExecConfig};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::{policy_by_name, DispatchPolicy, PortPolicy, SmartPolicy};
use vtx_serve::queue::QueueConfig;
use vtx_serve::service::{render_event_log, ServeConfig};
use vtx_serve::sim::{simulate, simulate_trace, SimOutcome};
use vtx_serve::workload::{parse_trace, render_trace, WorkloadSpec};

fn sim(workload: &WorkloadSpec, policy: &str) -> SimOutcome {
    simulate(
        workload,
        Fleet::table_iv(),
        policy_by_name(policy, workload.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap()
}

#[test]
fn engine_is_deterministic_across_policies() {
    // The acceptance bar: identical seed + workload ⇒ identical event log,
    // assignment sequence and rendered report — for every policy.
    let w = WorkloadSpec::smoke(42);
    for policy in ["random", "round_robin", "smart"] {
        let a = sim(&w, policy);
        let b = sim(&w, policy);
        assert_eq!(a.assignments, b.assignments, "{policy}: assignments");
        assert_eq!(
            render_event_log(&a.event_log),
            render_event_log(&b.event_log),
            "{policy}: event log"
        );
        assert_eq!(a.report.render(), b.report.render(), "{policy}: report");
    }
}

#[test]
fn policies_actually_differ() {
    let w = WorkloadSpec::smoke(42);
    let random = sim(&w, "random");
    let smart = sim(&w, "smart");
    assert_ne!(
        random.assignments, smart.assignments,
        "policies must produce different placements on a heterogeneous fleet"
    );
}

#[test]
fn smart_beats_random_on_p99_sojourn() {
    // The serving-layer restatement of Fig 9: characterization-driven
    // placement wins not just on makespan but on tail latency.
    let w = WorkloadSpec::bundled(42);
    let random = sim(&w, "random");
    let smart = sim(&w, "smart");
    assert!(
        smart.report.sojourn.p99_us < random.report.sojourn.p99_us,
        "smart p99 {} should beat random p99 {}",
        smart.report.sojourn.p99_us,
        random.report.sojourn.p99_us
    );
    assert!(
        smart.report.sojourn.mean_us < random.report.sojourn.mean_us,
        "smart mean {} should beat random mean {}",
        smart.report.sojourn.mean_us,
        random.report.sojourn.mean_us
    );
}

#[test]
fn tiny_queues_shed_and_interactive_survives() {
    let w = WorkloadSpec::bundled(42);
    let cfg = ServeConfig {
        queue: QueueConfig {
            per_class_cap: [2, 2, 2],
        },
        ..ServeConfig::default()
    };
    let out = simulate(
        &w,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.completed + r.shed_total(), r.offered, "conservation");
    assert!(r.shed_total() > 0, "2-deep queues under 2.4 Hz must shed");
    // Priority shedding: interactive jobs displace batch, never vice versa,
    // so the interactive completion rate stays above the batch rate.
    let frac = |class: usize| {
        let done = r.sojourn_by_class[class].count as f64;
        done / (done + 1.0) // avoid 0/0; comparison only
    };
    assert!(
        r.sojourn_by_class[0].count > 0,
        "interactive traffic must get through"
    );
    assert!(frac(0) > 0.0 && frac(2) > 0.0);
}

#[test]
fn timeouts_retry_deterministically() {
    // Clamp every timeout low enough that long encodes get killed: the
    // retry/shed path must be exercised and stay byte-deterministic.
    let w = WorkloadSpec::smoke(7);
    let mut jobs = w.generate().unwrap();
    for j in &mut jobs {
        j.timeout_us = 1_500_000;
    }
    let run = || {
        simulate_trace(
            &jobs,
            w.seed,
            Fleet::table_iv(),
            policy_by_name("round_robin", w.seed).unwrap(),
            ServeConfig {
                max_retries: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report);
    assert_eq!(
        render_event_log(&a.event_log),
        render_event_log(&b.event_log)
    );
    assert!(a.report.retries > 0, "tight timeouts must trigger retries");
    assert!(
        a.report.shed[3] > 0,
        "some jobs must exhaust the retry budget (shed={:?})",
        a.report.shed
    );
    assert_eq!(
        a.report.completed + a.report.shed_total(),
        a.report.offered,
        "conservation holds through the retry path"
    );
}

#[test]
fn arrival_trace_roundtrips_through_text() {
    let w = WorkloadSpec::smoke(42);
    let jobs = w.generate().unwrap();
    let parsed = parse_trace(&render_trace(&jobs)).unwrap();
    assert_eq!(jobs, parsed);
    // A parsed trace replays to the same outcome as the in-memory one.
    let a = simulate_trace(
        &jobs,
        w.seed,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap();
    let b = simulate_trace(
        &parsed,
        w.seed,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap();
    assert_eq!(a.report.render(), b.report.render());
}

#[test]
fn real_executor_accounts_for_every_job() {
    // The real path: actual Transcoder jobs on per-server worker threads,
    // driven through the same ServiceCore as the simulation. Wall-clock
    // runs are not byte-reproducible; what must hold is conservation and
    // that real work got done. CI runs this under RUST_TEST_THREADS=1.
    let w = WorkloadSpec::real_smoke(42);
    let cfg = ExecConfig {
        arrival_compression: 50,
        ..ExecConfig::default()
    };
    let out = run_real(
        &w,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        &cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.offered, w.jobs as u64);
    assert_eq!(
        r.completed + r.shed_total(),
        r.offered,
        "every job completes or is shed: {r:?}"
    );
    assert!(r.completed > 0, "tiny transcodes must actually complete");
    assert_eq!(r.sojourn.count, r.completed);
    assert_eq!(
        out.assignments.len() as u64,
        r.completed + r.retries + r.shed[3],
        "one assignment per dispatch attempt"
    );
    let busy: u64 = r.servers.iter().map(|s| s.busy_us).sum();
    assert!(busy > 0, "servers must have accumulated busy time");
}

/// XL configuration used by the fleet-scale tests: no event log, obs
/// plane off — mirrors what the fig9_xl bench and `--xl` example run.
fn xl_config(cells: usize) -> ServeConfig {
    ServeConfig {
        collect_event_log: false,
        obs: ObsConfig::disabled(),
        cells,
        ..ServeConfig::default()
    }
}

#[test]
fn auction_matches_hungarian_on_fig9_sized_matrices() {
    // The XL path replaces per-dispatch Hungarian with an ε-scaling
    // auction. On fig9-sized problems (≤ 8 jobs × 8 servers) both must
    // find an assignment of identical total cost: the auction scales
    // costs internally so its final ε guarantees exact optimality on
    // integer inputs.
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % 30_000_000
    };
    for trial in 0..200usize {
        let m = 1 + trial % 8; // jobs
        let n = 1 + (trial / 8) % 8; // servers
        let cost_u: Vec<Vec<u64>> = (0..m).map(|_| (0..n).map(|_| next()).collect()).collect();
        let cost_f: Vec<Vec<f64>> = cost_u
            .iter()
            .map(|row| row.iter().map(|&c| c as f64).collect())
            .collect();
        let a = auction::solve_padded(&cost_u).expect("auction solves");
        let h = hungarian::solve_padded(&cost_f).expect("hungarian solves");
        let assigned = |sol: &[Option<usize>]| sol.iter().flatten().count();
        assert_eq!(
            assigned(&a),
            assigned(&h),
            "trial {trial}: both must assign min(jobs, servers) = {}",
            m.min(n)
        );
        let auction_total = auction::assignment_cost(&cost_u, &a);
        let hungarian_total: u64 = h
            .iter()
            .enumerate()
            .filter_map(|(j, s)| s.map(|s| cost_u[j][s]))
            .sum();
        assert_eq!(
            auction_total, hungarian_total,
            "trial {trial} ({m}x{n}): auction total must equal the Hungarian optimum"
        );
    }
}

#[test]
fn cost_cache_does_not_change_fig9_output() {
    // The smart/port cost cache must be a pure speedup: the faulted fig9
    // scenario (Suspect and Down transitions invalidate the cache) must
    // produce byte-identical reports, event logs and assignments with the
    // cache on and off.
    let w = WorkloadSpec::bundled(42);
    let jobs = w.generate().unwrap();
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap();
    type PolicyCtor = fn() -> Box<dyn DispatchPolicy>;
    let pairs: [(&str, PolicyCtor, PolicyCtor); 2] = [
        (
            "smart",
            || Box::new(SmartPolicy::new()),
            || Box::new(SmartPolicy::uncached()),
        ),
        (
            "port",
            || Box::new(PortPolicy::new()),
            || Box::new(PortPolicy::uncached()),
        ),
    ];
    for (name, cached, uncached) in pairs {
        for faulted in [false, true] {
            let cfg = if faulted {
                ServeConfig {
                    chaos: ChaosConfig::kill_two_straggle_one(w.seed, 8, horizon),
                    ..ServeConfig::default()
                }
            } else {
                ServeConfig::default()
            };
            let fleet = if faulted {
                Fleet::sized(8).unwrap()
            } else {
                Fleet::table_iv()
            };
            let a = simulate_trace(&jobs, w.seed, fleet.clone(), cached(), cfg.clone()).unwrap();
            let b = simulate_trace(&jobs, w.seed, fleet, uncached(), cfg).unwrap();
            assert_eq!(
                a.assignments, b.assignments,
                "{name} faulted={faulted}: assignments"
            );
            assert_eq!(
                render_event_log(&a.event_log),
                render_event_log(&b.event_log),
                "{name} faulted={faulted}: event log"
            );
            assert_eq!(a.report, b.report, "{name} faulted={faulted}: report");
        }
    }
}

#[test]
fn xl_smoke_is_byte_deterministic_and_conserves_jobs() {
    // Scaled-down XL (500 servers / 20k jobs) through the two-level
    // cell + auction dispatch path: two same-seed runs must agree exactly,
    // and every admitted job must reach exactly one terminal state.
    let w = WorkloadSpec::xl_smoke(42);
    let run = || {
        simulate(
            &w,
            Fleet::sized(500).unwrap(),
            policy_by_name("smart", w.seed).unwrap(),
            xl_config(0),
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.assignments, b.assignments, "xl: assignments");
    assert_eq!(a.report, b.report, "xl: report");
    assert_eq!(a.report.render(), b.report.render(), "xl: rendered report");
    let r = &a.report;
    assert_eq!(r.offered, w.jobs as u64, "xl: all jobs offered");
    assert_eq!(
        r.completed + r.shed_total(),
        r.offered,
        "xl: conservation through the cell path"
    );
    assert_eq!(
        r.sojourn.count, r.completed,
        "xl: one sojourn per completion"
    );
    let per_server: u64 = r.servers.iter().map(|s| s.jobs).sum();
    assert_eq!(
        per_server, r.completed,
        "xl: per-server completions sum to the fleet total (no double billing)"
    );
}

#[test]
fn cell_rebalance_conserves_jobs() {
    // Forcing a different cell plan moves jobs between cells but must
    // never lose or double-bill one. An odd, non-divisor cell count
    // exercises uneven cells; assignments must stay inside the fleet.
    let w = WorkloadSpec::xl_smoke(7);
    let n_servers = 500usize;
    let out = simulate(
        &w,
        Fleet::sized(n_servers).unwrap(),
        policy_by_name("smart", w.seed).unwrap(),
        xl_config(7),
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.completed + r.shed_total(), r.offered, "conservation");
    assert!(r.completed > 0, "cells must still serve traffic");
    assert!(
        out.assignments.iter().all(|&(_, s)| s < n_servers),
        "every assignment lands on a real server"
    );
    let per_server: u64 = r.servers.iter().map(|s| s.jobs).sum();
    assert_eq!(per_server, r.completed, "per-server sums match completions");
}
