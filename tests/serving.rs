//! Integration tests for the vtx-serve online serving layer: determinism
//! of the discrete-event engine, the smart-beats-random tail-latency claim,
//! shedding under pressure, and the real threaded executor driving actual
//! transcodes through the same service core.

use vtx_serve::exec::{run_real, ExecConfig};
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::queue::QueueConfig;
use vtx_serve::service::{render_event_log, ServeConfig};
use vtx_serve::sim::{simulate, simulate_trace, SimOutcome};
use vtx_serve::workload::{parse_trace, render_trace, WorkloadSpec};

fn sim(workload: &WorkloadSpec, policy: &str) -> SimOutcome {
    simulate(
        workload,
        Fleet::table_iv(),
        policy_by_name(policy, workload.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap()
}

#[test]
fn engine_is_deterministic_across_policies() {
    // The acceptance bar: identical seed + workload ⇒ identical event log,
    // assignment sequence and rendered report — for every policy.
    let w = WorkloadSpec::smoke(42);
    for policy in ["random", "round_robin", "smart"] {
        let a = sim(&w, policy);
        let b = sim(&w, policy);
        assert_eq!(a.assignments, b.assignments, "{policy}: assignments");
        assert_eq!(
            render_event_log(&a.event_log),
            render_event_log(&b.event_log),
            "{policy}: event log"
        );
        assert_eq!(a.report.render(), b.report.render(), "{policy}: report");
    }
}

#[test]
fn policies_actually_differ() {
    let w = WorkloadSpec::smoke(42);
    let random = sim(&w, "random");
    let smart = sim(&w, "smart");
    assert_ne!(
        random.assignments, smart.assignments,
        "policies must produce different placements on a heterogeneous fleet"
    );
}

#[test]
fn smart_beats_random_on_p99_sojourn() {
    // The serving-layer restatement of Fig 9: characterization-driven
    // placement wins not just on makespan but on tail latency.
    let w = WorkloadSpec::bundled(42);
    let random = sim(&w, "random");
    let smart = sim(&w, "smart");
    assert!(
        smart.report.sojourn.p99_us < random.report.sojourn.p99_us,
        "smart p99 {} should beat random p99 {}",
        smart.report.sojourn.p99_us,
        random.report.sojourn.p99_us
    );
    assert!(
        smart.report.sojourn.mean_us < random.report.sojourn.mean_us,
        "smart mean {} should beat random mean {}",
        smart.report.sojourn.mean_us,
        random.report.sojourn.mean_us
    );
}

#[test]
fn tiny_queues_shed_and_interactive_survives() {
    let w = WorkloadSpec::bundled(42);
    let cfg = ServeConfig {
        queue: QueueConfig {
            per_class_cap: [2, 2, 2],
        },
        ..ServeConfig::default()
    };
    let out = simulate(
        &w,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.completed + r.shed_total(), r.offered, "conservation");
    assert!(r.shed_total() > 0, "2-deep queues under 2.4 Hz must shed");
    // Priority shedding: interactive jobs displace batch, never vice versa,
    // so the interactive completion rate stays above the batch rate.
    let frac = |class: usize| {
        let done = r.sojourn_by_class[class].count as f64;
        done / (done + 1.0) // avoid 0/0; comparison only
    };
    assert!(
        r.sojourn_by_class[0].count > 0,
        "interactive traffic must get through"
    );
    assert!(frac(0) > 0.0 && frac(2) > 0.0);
}

#[test]
fn timeouts_retry_deterministically() {
    // Clamp every timeout low enough that long encodes get killed: the
    // retry/shed path must be exercised and stay byte-deterministic.
    let w = WorkloadSpec::smoke(7);
    let mut jobs = w.generate().unwrap();
    for j in &mut jobs {
        j.timeout_us = 1_500_000;
    }
    let run = || {
        simulate_trace(
            &jobs,
            w.seed,
            Fleet::table_iv(),
            policy_by_name("round_robin", w.seed).unwrap(),
            ServeConfig {
                max_retries: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.report, b.report);
    assert_eq!(
        render_event_log(&a.event_log),
        render_event_log(&b.event_log)
    );
    assert!(a.report.retries > 0, "tight timeouts must trigger retries");
    assert!(
        a.report.shed[3] > 0,
        "some jobs must exhaust the retry budget (shed={:?})",
        a.report.shed
    );
    assert_eq!(
        a.report.completed + a.report.shed_total(),
        a.report.offered,
        "conservation holds through the retry path"
    );
}

#[test]
fn arrival_trace_roundtrips_through_text() {
    let w = WorkloadSpec::smoke(42);
    let jobs = w.generate().unwrap();
    let parsed = parse_trace(&render_trace(&jobs)).unwrap();
    assert_eq!(jobs, parsed);
    // A parsed trace replays to the same outcome as the in-memory one.
    let a = simulate_trace(
        &jobs,
        w.seed,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap();
    let b = simulate_trace(
        &parsed,
        w.seed,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap();
    assert_eq!(a.report.render(), b.report.render());
}

#[test]
fn real_executor_accounts_for_every_job() {
    // The real path: actual Transcoder jobs on per-server worker threads,
    // driven through the same ServiceCore as the simulation. Wall-clock
    // runs are not byte-reproducible; what must hold is conservation and
    // that real work got done. CI runs this under RUST_TEST_THREADS=1.
    let w = WorkloadSpec::real_smoke(42);
    let cfg = ExecConfig {
        arrival_compression: 50,
        ..ExecConfig::default()
    };
    let out = run_real(
        &w,
        Fleet::table_iv(),
        policy_by_name("smart", w.seed).unwrap(),
        &cfg,
    )
    .unwrap();
    let r = &out.report;
    assert_eq!(r.offered, w.jobs as u64);
    assert_eq!(
        r.completed + r.shed_total(),
        r.offered,
        "every job completes or is shed: {r:?}"
    );
    assert!(r.completed > 0, "tiny transcodes must actually complete");
    assert_eq!(r.sojourn.count, r.completed);
    assert_eq!(
        out.assignments.len() as u64,
        r.completed + r.retries + r.shed[3],
        "one assignment per dispatch attempt"
    );
    let busy: u64 = r.servers.iter().map(|s| s.busy_us).sum();
    assert!(busy > 0, "servers must have accumulated busy time");
}
