//! Container-layer acceptance across crates: a real encode packaged to
//! CMAF roundtrips through the demuxer byte-exactly, truncated and
//! corrupted boxes come back as structured errors (never panics), a
//! same-seed double run of the whole encode→package path is
//! byte-identical, and a demuxed media segment decodes standalone through
//! the real decoder to the same pixels as the full-clip decode.

use vtx_codec::{decode_video, encode_video, instr, Bitstream, Preset};
use vtx_container::manifest::{parse_master, render_master, render_media};
use vtx_container::package::{master_playlist, media_playlist, package_stream};
use vtx_container::segment::{samples_to_stream, HEADER_LEN};
use vtx_container::{demux, mux, Ladder, Packaged};
use vtx_tests::tiny_video;
use vtx_trace::layout::CodeLayout;
use vtx_trace::Profiler;
use vtx_uarch::config::UarchConfig;

/// The fixed segment plan every test uses: a 12-frame clip cut into
/// 4-frame closed GOPs (forced IDRs at frames 4 and 8).
const POINTS: [u32; 3] = [0, 4, 8];

fn profiler() -> Profiler {
    let kernels = instr::kernel_table();
    Profiler::new(
        &UarchConfig::baseline(),
        kernels,
        CodeLayout::default_order(kernels),
    )
    .unwrap()
}

/// Encodes a tiny clip with forced keyframes at the segment points so the
/// stream splits into standalone closed GOPs.
fn encoded_stream(seed: u64) -> Vec<u8> {
    let v = tiny_video("cricket", 12, seed);
    let cfg = Preset::Veryfast
        .config()
        .with_crf(26.0)
        .with_refs(1)
        .with_force_kf(POINTS[1..].to_vec());
    let mut p = profiler();
    encode_video(&v, &cfg, &mut p).unwrap().bitstream.data
}

#[test]
fn real_encode_packages_and_demuxes_byte_exactly() {
    let stream = encoded_stream(7);
    let pkg = package_stream(&stream, &POINTS).unwrap();
    assert_eq!(pkg.media.len(), POINTS.len());

    let info = demux::parse_init(&pkg.init).unwrap();
    assert_eq!(info.codec_header, &stream[..HEADER_LEN]);
    assert_eq!((info.width, info.height), (64, 48));
    assert_eq!(info.duration, 12);
    // Exact inversion: re-muxing the parsed form reproduces the bytes.
    assert_eq!(mux::init_segment(&info.codec_header).unwrap(), pkg.init);

    let mut total_samples = 0;
    for (i, m) in pkg.media.iter().enumerate() {
        let parsed = demux::parse_media(m).unwrap();
        assert_eq!(parsed.seq, i as u32, "segment {i} sequence number");
        assert_eq!(parsed.base_time, POINTS[i], "segment {i} base time");
        assert!(parsed.samples[0].sync, "segment {i} starts at a keyframe");
        total_samples += parsed.samples.len();
        assert_eq!(
            mux::media_segment(parsed.seq, parsed.base_time, &parsed.samples),
            *m,
            "segment {i} re-mux is byte-identical"
        );
    }
    assert_eq!(
        total_samples, 12,
        "every frame lands in exactly one segment"
    );
}

#[test]
fn truncated_and_corrupted_boxes_are_structured_errors() {
    let stream = encoded_stream(5);
    let pkg = package_stream(&stream, &POINTS).unwrap();

    // Every proper prefix of an init or media segment must fail cleanly.
    for cut in 0..pkg.init.len() {
        demux::parse_init(&pkg.init[..cut]).unwrap_err();
    }
    let media = &pkg.media[0];
    for cut in 0..media.len() {
        demux::parse_media(&media[..cut]).unwrap_err();
    }

    // Flipping any single byte may or may not change the parse outcome,
    // but it must never panic — sizes and fourccs included.
    for i in 0..media.len() {
        let mut c = media.clone();
        c[i] ^= 0xFF;
        let _ = demux::parse_media(&c);
    }
    for i in 0..pkg.init.len() {
        let mut c = pkg.init.clone();
        c[i] ^= 0xFF;
        let _ = demux::parse_init(&c);
    }

    // Deterministic garbage is rejected on every entry point.
    let garbage: Vec<u8> = (0u32..512)
        .map(|i| (i.wrapping_mul(37) % 251) as u8)
        .collect();
    demux::parse_init(&garbage).unwrap_err();
    demux::parse_media(&garbage).unwrap_err();
    package_stream(&garbage, &[0]).unwrap_err();
    parse_master("#EXTM3U\nnot a playlist").unwrap_err();
}

#[test]
fn same_seed_double_run_is_byte_identical() {
    // The full path — synth, encode, package, playlists — twice from the
    // same seed, compared byte for byte. This is the in-process version of
    // the CI container-determinism job's two-run `diff -r`.
    let run = |seed: u64| -> (Packaged, String, String) {
        let stream = encoded_stream(seed);
        let pkg = package_stream(&stream, &POINTS).unwrap();
        let master = render_master(&master_playlist(&Ladder::standard()));
        let media = render_media(&media_playlist("hi", &POINTS, 12, 24));
        (pkg, master, media)
    };
    let a = run(9);
    let b = run(9);
    assert_eq!(a, b, "same seed must reproduce every artifact byte");
    let c = run(10);
    assert_ne!(a.0, c.0, "a different seed must change the encoded bytes");
    assert_eq!(a.1, c.1, "playlists depend only on the plan, not the seed");
}

#[test]
fn demuxed_segment_decodes_standalone_through_the_real_decoder() {
    let stream = encoded_stream(3);
    let pkg = package_stream(&stream, &POINTS).unwrap();
    let info = demux::parse_init(&pkg.init).unwrap();

    // Decode the middle segment alone: closed GOPs mean it must not need
    // anything outside its own samples.
    let parsed = demux::parse_media(&pkg.media[1]).unwrap();
    let standalone = Bitstream {
        data: samples_to_stream(&info.codec_header, &parsed.samples),
    };
    let mut p = profiler();
    let seg_dec = decode_video(&standalone, &mut p).unwrap();
    assert_eq!(seg_dec.frames.len(), parsed.samples.len());

    // And it reproduces exactly the frames the full-clip decode yields for
    // that window — segmentation is transparent to the pixels.
    let full_dec = decode_video(&Bitstream { data: stream }, &mut p).unwrap();
    let window = &full_dec.frames[POINTS[1] as usize..POINTS[2] as usize];
    assert_eq!(seg_dec.frames.len(), window.len());
    for (i, (s, f)) in seg_dec.frames.iter().zip(window).enumerate() {
        assert_eq!(s, f, "frame {i} of the standalone segment decode");
    }
}
