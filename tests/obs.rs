//! Observability-plane acceptance tests: the Chrome trace roundtrip
//! (parses, spans nest, byte-identical per seed), the windowed-sketch
//! error bound against the exact report quantiles on the fig9 workload,
//! conservation checked from the job trace alone, determinism of the
//! alert stream and Prometheus exposition, and the bench-trajectory
//! schema roundtrip.

use vtx_obs::json::{parse, JsonValue};
use vtx_obs::{milli, BenchTrajectory, QuantileSketch, TrajectoryRow, JOB_PID};
use vtx_serve::chaos::ChaosConfig;
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::service::ServeConfig;
use vtx_serve::sim::{simulate, simulate_trace, SimOutcome};
use vtx_serve::workload::{Priority, WorkloadSpec};
use vtx_serve::CLASS_NAMES;
use vtx_telemetry::chrome::ChromeTrace;

fn sim(workload: &WorkloadSpec, policy: &str) -> SimOutcome {
    simulate(
        workload,
        Fleet::table_iv(),
        policy_by_name(policy, workload.seed).unwrap(),
        ServeConfig::default(),
    )
    .unwrap()
}

/// The chaos acceptance scenario: richer lifecycle (requeues, hedges,
/// sheds) so the trace exercises every span kind.
fn faulted(policy: &str, seed: u64, workload: &WorkloadSpec) -> SimOutcome {
    let jobs = workload.generate().unwrap();
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap();
    let cfg = ServeConfig {
        chaos: ChaosConfig::kill_two_straggle_one(seed, 8, horizon),
        ..ServeConfig::default()
    };
    simulate_trace(
        &jobs,
        seed,
        Fleet::sized(8).unwrap(),
        policy_by_name(policy, seed).unwrap(),
        cfg,
    )
    .unwrap()
}

fn chrome_json(out: &SimOutcome) -> String {
    let mut trace = ChromeTrace::new();
    out.obs
        .tracker()
        .add_chrome_tracks(&mut trace, &CLASS_NAMES);
    trace.to_json()
}

#[test]
fn chrome_trace_roundtrip_parses_and_spans_nest() {
    let w = WorkloadSpec::smoke(42);
    let out = faulted("smart", 42, &w);
    let doc = parse(&chrome_json(&out)).expect("trace JSON must parse");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "faulted smoke run must emit events");

    // Every event sits on the job process; per job track, the queued span
    // opens no later than the first attempt span, and every attempt span
    // for one job starts at or after the queued span's start.
    let mut saw_attempt = false;
    for ev in events {
        assert_eq!(
            ev.get("pid").and_then(JsonValue::as_u64),
            Some(JOB_PID),
            "all job-track events live on pid {JOB_PID}"
        );
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap();
        if name == "attempt" || name == "hedge" {
            saw_attempt = true;
            let tid = ev.get("tid").and_then(JsonValue::as_u64).unwrap();
            let ts = ev.get("ts").and_then(JsonValue::as_u64).unwrap();
            let queued_ts = events
                .iter()
                .find(|q| {
                    q.get("name").and_then(JsonValue::as_str) == Some("queued")
                        && q.get("tid").and_then(JsonValue::as_u64) == Some(tid)
                })
                .and_then(|q| q.get("ts").and_then(JsonValue::as_u64))
                .expect("every attempt has a queued span on its track");
            assert!(
                queued_ts <= ts,
                "job {tid}: attempt at {ts} precedes queueing at {queued_ts}"
            );
        }
    }
    assert!(saw_attempt, "run must dispatch at least one attempt");
}

#[test]
fn same_seed_observability_outputs_are_byte_identical() {
    let w = WorkloadSpec::smoke(42);
    let a = faulted("smart", 42, &w);
    let b = faulted("smart", 42, &w);
    assert_eq!(chrome_json(&a), chrome_json(&b), "Chrome trace JSON");
    assert_eq!(
        a.obs.tracker().render_text(&CLASS_NAMES),
        b.obs.tracker().render_text(&CLASS_NAMES),
        "plain-text job trace"
    );
    assert_eq!(
        a.obs.render_alerts(&CLASS_NAMES),
        b.obs.render_alerts(&CLASS_NAMES),
        "alert stream"
    );
    assert_eq!(
        a.obs.render_prometheus(&CLASS_NAMES),
        b.obs.render_prometheus(&CLASS_NAMES),
        "Prometheus exposition"
    );
}

#[test]
fn sketch_p99_matches_exact_report_within_error_bound() {
    // The acceptance bound: on the fig9 bundled workload, the cumulative
    // per-class sketch p99 must sit within the sketch's stated relative
    // error of the exact nearest-rank p99 the report computes.
    let w = WorkloadSpec::bundled(42);
    let out = sim(&w, "smart");
    for (i, class) in Priority::ALL.iter().enumerate() {
        let exact = &out.report.sojourn_by_class[i];
        let sketch = out.obs.windows().cumulative(i);
        assert_eq!(
            sketch.count(),
            exact.count,
            "{}: sketch saw every completion",
            class.name()
        );
        if exact.count == 0 {
            continue;
        }
        for (permille, exact_q) in [(500, exact.p50_us), (990, exact.p99_us)] {
            let est = sketch.quantile_permille(permille);
            let bound = exact_q as f64 * QuantileSketch::RELATIVE_ERROR_BOUND + 1.0;
            let err = (est as f64 - exact_q as f64).abs();
            assert!(
                err <= bound,
                "{} q{permille}: sketch {est} vs exact {exact_q} (err {err} > {bound})",
                class.name()
            );
        }
    }
}

#[test]
fn conservation_holds_from_the_trace_alone() {
    for (label, out) in [
        ("clean", sim(&WorkloadSpec::smoke(42), "smart")),
        ("faulted", faulted("smart", 42, &WorkloadSpec::smoke(42))),
    ] {
        let stats = out
            .obs
            .tracker()
            .check_conservation()
            .unwrap_or_else(|e| panic!("{label}: {e}"));
        assert_eq!(stats.arrived, out.report.offered, "{label}: arrivals");
        assert_eq!(
            stats.completed, out.report.completed,
            "{label}: completions"
        );
        assert_eq!(stats.shed, out.report.shed_total(), "{label}: sheds");
    }
}

#[test]
fn trajectory_schema_roundtrips_through_its_own_validator() {
    let out = faulted("smart", 42, &WorkloadSpec::smoke(42));
    let r = &out.report;
    let mut traj = BenchTrajectory::new("obs_test");
    traj.push(TrajectoryRow {
        scenario: "faulted".to_owned(),
        policy: r.policy.clone(),
        seed: r.seed,
        servers: 8,
        cells: 0,
        segments: 0,
        offered: r.offered,
        completed: r.completed,
        slo_violations: r.slo_violations,
        shed: r.shed_total(),
        shed_rung: r.shed_by_rung.first().copied().unwrap_or(0),
        p50_sojourn_us: r.sojourn.p50_us,
        p99_sojourn_us: r.sojourn.p99_us,
        throughput_milli_jps: milli(r.throughput_jps),
        goodput_milli_jps: milli(r.goodput_jps),
        availability_milli: milli(r.availability),
        cache_hit_milli: 0,
        alerts: out.obs.alerts().len() as u64,
        makespan_us: r.makespan_us,
        wall_ms: 0,
    });
    let json = traj.to_json();
    let back = BenchTrajectory::validate_str(&json).expect("schema-valid");
    assert_eq!(back.bench, "obs_test");
    assert_eq!(back.rows.len(), 1);
    assert_eq!(back.rows[0], traj.rows[0]);
    // And a second serialization is byte-identical.
    assert_eq!(json, back.to_json());
}
