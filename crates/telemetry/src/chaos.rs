//! Fault-injection and recovery metrics.
//!
//! The chaos layer (`vtx-chaos` + the serving engines) reports what it
//! injected and what the service did about it: fault counters by kind,
//! recovery counters (requeues, hedges), a detector-state gauge (servers
//! currently believed up) and the degradation-ladder level. Names are
//! pre-declared `&'static` strings like every other metric module, so the
//! handles flow through the existing dump / trace-export layer.

use crate::metrics::{self, Counter, Gauge};

/// Total faults injected (crashes + slowdown windows + stalls).
pub fn faults_injected() -> &'static Counter {
    metrics::counter("chaos/faults_injected")
}

/// Fail-stop crashes injected.
pub fn crashes() -> &'static Counter {
    metrics::counter("chaos/crashes")
}

/// In-flight jobs requeued off crashed/suspected servers.
pub fn requeues() -> &'static Counter {
    metrics::counter("chaos/requeues")
}

/// Hedged duplicate dispatches launched.
pub fn hedges() -> &'static Counter {
    metrics::counter("chaos/hedges")
}

/// Servers the failure detector currently believes are up.
pub fn servers_up_gauge() -> &'static Gauge {
    metrics::gauge("chaos/servers_up")
}

/// Current graceful-degradation ladder level (0 = full quality).
pub fn degrade_level_gauge() -> &'static Gauge {
    metrics::gauge("chaos/degrade_level")
}

/// Publishes one detector snapshot.
pub fn publish_detector(servers_up: usize) {
    servers_up_gauge().set(servers_up as f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let before = crashes().value();
        crashes().add(2);
        assert_eq!(crashes().value(), before + 2);
        let before = requeues().value();
        requeues().add(1);
        hedges().add(1);
        faults_injected().add(3);
        assert_eq!(requeues().value(), before + 1);
    }

    #[test]
    fn detector_snapshot_sets_the_gauge() {
        publish_detector(7);
        assert!((servers_up_gauge().value() - 7.0).abs() < 1e-12);
        degrade_level_gauge().set(2.0);
        assert!((degrade_level_gauge().value() - 2.0).abs() < 1e-12);
    }
}
