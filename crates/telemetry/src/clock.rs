//! Process-wide monotonic clock: microseconds since the first observation.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds since the process epoch (set on first call).
///
/// Monotonic and cheap; all telemetry timestamps share this epoch so spans
/// from different threads line up on one timeline.
pub(crate) fn now_us() -> u64 {
    let epoch = *EPOCH.get_or_init(Instant::now);
    Instant::now().duration_since(epoch).as_micros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic() {
        let a = now_us();
        let b = now_us();
        assert!(b >= a);
    }
}
