//! Heartbeat progress reporting for long experiment runs.
//!
//! An 816-point sweep at ~50ms/point runs for most of a minute with no
//! output; [`ProgressReporter`] gives it a `completed/total` heartbeat with
//! rate and ETA. Updates are one atomic increment; a line is printed to
//! stderr at most once per configured interval, and only when progress
//! output is wanted (collector enabled or `VTX_PROGRESS` set).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::collector::Collector;
use crate::span::instant;

/// Whether progress heartbeats should print: either telemetry is enabled or
/// the `VTX_PROGRESS` environment variable is set (to anything but `0`).
pub fn progress_wanted() -> bool {
    if Collector::is_enabled() {
        return true;
    }
    match std::env::var("VTX_PROGRESS") {
        Ok(v) => v != "0",
        Err(_) => false,
    }
}

/// Tracks `completed/total` work items and prints rate-limited heartbeat
/// lines with an ETA. Sharable across worker threads by reference.
#[derive(Debug)]
pub struct ProgressReporter {
    label: &'static str,
    total: u64,
    completed: AtomicU64,
    started: Instant,
    /// Microseconds-since-start of the last printed heartbeat.
    last_print_us: AtomicU64,
    /// Minimum microseconds between heartbeat lines.
    interval_us: u64,
    enabled: bool,
}

impl ProgressReporter {
    /// Creates a reporter for `total` items, printing at most one line per
    /// second.
    pub fn new(label: &'static str, total: u64) -> Self {
        Self::with_interval(label, total, 1_000_000)
    }

    /// Creates a reporter with an explicit minimum print interval.
    pub fn with_interval(label: &'static str, total: u64, interval_us: u64) -> Self {
        ProgressReporter {
            label,
            total,
            completed: AtomicU64::new(0),
            started: Instant::now(),
            last_print_us: AtomicU64::new(0),
            interval_us,
            enabled: progress_wanted(),
        }
    }

    /// Items completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Marks one item complete; prints a heartbeat if the interval elapsed
    /// (and always on the final item). Safe from any thread.
    pub fn tick(&self) {
        let done = self.completed.fetch_add(1, Ordering::Relaxed) + 1;
        // Telemetry event regardless of print gating (cheap, ring-bounded).
        instant("progress", |a| {
            a.str("label", self.label)
                .u64("completed", done)
                .u64("total", self.total);
        });
        if !self.enabled {
            return;
        }
        let now_us = self.started.elapsed().as_micros() as u64;
        let last = self.last_print_us.load(Ordering::Relaxed);
        let is_final = done >= self.total;
        if !is_final && now_us.saturating_sub(last) < self.interval_us {
            return;
        }
        // One printer per interval; losers skip rather than blocking.
        if self
            .last_print_us
            .compare_exchange(last, now_us, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
            && !is_final
        {
            return;
        }
        eprintln!("{}", self.heartbeat_line(done, now_us));
    }

    /// Formats a heartbeat line: `label: completed/total (pct) rate/s ETA`.
    fn heartbeat_line(&self, done: u64, now_us: u64) -> String {
        let secs = (now_us as f64 / 1e6).max(1e-9);
        let rate = done as f64 / secs;
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * done as f64 / self.total as f64
        };
        let eta_s = if rate > 0.0 && self.total > done {
            (self.total - done) as f64 / rate
        } else {
            0.0
        };
        format!(
            "[{}] {}/{} ({:.0}%) {:.1}/s eta {:.0}s",
            self.label, done, self.total, pct, rate, eta_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ticks_across_threads() {
        let r = ProgressReporter::with_interval("test", 8, u64::MAX);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    r.tick();
                    r.tick();
                });
            }
        });
        assert_eq!(r.completed(), 8);
    }

    #[test]
    fn heartbeat_line_formats_eta() {
        let r = ProgressReporter::with_interval("sweep", 100, u64::MAX);
        // 10 done in 2 simulated seconds -> 5/s -> 18s remaining.
        let line = r.heartbeat_line(10, 2_000_000);
        assert!(line.contains("[sweep] 10/100 (10%)"), "{line}");
        assert!(line.contains("5.0/s"), "{line}");
        assert!(line.contains("eta 18s"), "{line}");
    }

    #[test]
    fn zero_total_reports_hundred_percent() {
        let r = ProgressReporter::with_interval("empty", 0, u64::MAX);
        let line = r.heartbeat_line(0, 1_000_000);
        assert!(line.contains("(100%)"), "{line}");
    }
}
