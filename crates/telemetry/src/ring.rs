//! Bounded per-thread event buffers.
//!
//! Each thread that records telemetry owns one [`EventRing`]; pushes touch
//! only that ring (an uncontended mutex — "lock-free-ish": no cross-thread
//! contention on the hot path), and the global collector drains all rings
//! when a trace is exported. Capacity is bounded: once full, new events are
//! counted as dropped rather than growing without limit.

use crate::span::ArgValue;

/// Default per-thread capacity (events). At ~100 bytes/event this bounds a
/// thread's buffer to a few MiB.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// What kind of record an [`Event`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed span: `ts_us`..`ts_us + dur_us` covers the region.
    Span {
        /// Span duration in microseconds.
        dur_us: u64,
    },
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (`value` in args, name = counter track).
    Counter,
}

/// One telemetry record.
#[derive(Debug, Clone)]
pub struct Event {
    /// Static event name (span or marker name).
    pub name: &'static str,
    /// Category (groups related events in trace viewers).
    pub cat: &'static str,
    /// Record kind.
    pub kind: EventKind,
    /// Microseconds since the process epoch.
    pub ts_us: u64,
    /// Small stable id of the recording thread (assigned at registration).
    pub tid: u64,
    /// Structured arguments (empty for most events).
    pub args: Vec<(&'static str, ArgValue)>,
}

/// A bounded buffer of events belonging to one thread.
#[derive(Debug)]
pub struct EventRing {
    events: Vec<Event>,
    capacity: usize,
    dropped: u64,
}

impl EventRing {
    /// Creates a ring with the given capacity (events).
    pub fn with_capacity(capacity: usize) -> Self {
        EventRing {
            events: Vec::new(),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// Appends an event, or counts it as dropped when the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.events.len() < self.capacity {
            self.events.push(event);
        } else {
            self.dropped += 1;
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes all buffered events, leaving the ring empty; returns the events
    /// and the drop count accumulated since the last take.
    pub fn take(&mut self) -> (Vec<Event>, u64) {
        let dropped = std::mem::take(&mut self.dropped);
        (std::mem::take(&mut self.events), dropped)
    }
}

impl Default for EventRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str) -> Event {
        Event {
            name,
            cat: "test",
            kind: EventKind::Instant,
            ts_us: 0,
            tid: 0,
            args: Vec::new(),
        }
    }

    #[test]
    fn bounded_with_drop_counting() {
        let mut r = EventRing::with_capacity(2);
        r.push(ev("a"));
        r.push(ev("b"));
        r.push(ev("c"));
        r.push(ev("d"));
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 2);
        let (events, dropped) = r.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "a");
        assert_eq!(dropped, 2);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = EventRing::with_capacity(0);
        r.push(ev("a"));
        r.push(ev("b"));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
