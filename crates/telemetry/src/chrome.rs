//! Chrome trace-event JSON exporter.
//!
//! Produces the JSON-object flavour of the [trace-event format] — a
//! `{"traceEvents": [...]}` document loadable in Perfetto or
//! `chrome://tracing`. Spans become `"X"` (complete) events, instants `"i"`,
//! counter samples `"C"`, and process/thread names are attached with `"M"`
//! metadata records. Synthetic tracks (e.g. simulated-time cycle breakdowns)
//! can be added alongside the recorded wall-clock events by picking an unused
//! `pid`.
//!
//! The writer is hand-rolled string building (this crate takes no
//! dependencies); the unit tests in the workspace test crate re-parse the
//! output with `serde_json` to keep it honest.
//!
//! [trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::collector::Trace;
use crate::escape_json_into;
use crate::ring::EventKind;
use crate::span::ArgValue;

/// The `pid` used for recorded wall-clock events.
pub const WALL_PID: u64 = 1;

/// A builder accumulating trace-event records; [`ChromeTrace::to_json`]
/// renders the final document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    records: Vec<String>,
    /// Events dropped at the ring layer, surfaced as a metadata arg.
    dropped: u64,
}

fn push_args_json(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push_str(",\"args\":{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape_json_into(out, k);
        out.push_str("\":");
        out.push_str(&v.to_json());
    }
    out.push('}');
}

fn push_common(out: &mut String, name: &str, cat: &str, ph: char, ts_us: u64, pid: u64, tid: u64) {
    out.push_str("{\"name\":\"");
    escape_json_into(out, name);
    out.push_str("\",\"cat\":\"");
    escape_json_into(out, cat);
    out.push_str("\",\"ph\":\"");
    out.push(ph);
    out.push_str("\",\"ts\":");
    out.push_str(&ts_us.to_string());
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
}

impl ChromeTrace {
    /// An empty trace document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Converts a drained [`Trace`] into trace-event records under
    /// [`WALL_PID`], including thread-name metadata for every registered
    /// thread.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut out = ChromeTrace::new();
        out.dropped = trace.dropped;
        out.add_process_name(WALL_PID, "vtx wall-clock");
        for (tid, name) in &trace.threads {
            out.add_thread_name(WALL_PID, *tid, name);
        }
        for e in &trace.events {
            match e.kind {
                EventKind::Span { dur_us } => {
                    out.add_complete(e.name, e.cat, e.ts_us, dur_us, (WALL_PID, e.tid), &e.args);
                }
                EventKind::Instant => {
                    out.add_instant(e.name, e.cat, e.ts_us, WALL_PID, e.tid, &e.args);
                }
                EventKind::Counter => {
                    let value = e
                        .args
                        .iter()
                        .find_map(|(k, v)| match (k, v) {
                            (&"value", ArgValue::F64(f)) => Some(*f),
                            _ => None,
                        })
                        .unwrap_or(0.0);
                    out.add_counter(e.name, e.ts_us, WALL_PID, value);
                }
            }
        }
        out
    }

    /// Adds an `"X"` complete event covering `[ts_us, ts_us + dur_us]` on
    /// the `(pid, tid)` track.
    pub fn add_complete(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: u64,
        dur_us: u64,
        track: (u64, u64),
        args: &[(&'static str, ArgValue)],
    ) {
        let mut rec = String::with_capacity(96);
        push_common(&mut rec, name, cat, 'X', ts_us, track.0, track.1);
        rec.push_str(",\"dur\":");
        rec.push_str(&dur_us.to_string());
        if !args.is_empty() {
            push_args_json(&mut rec, args);
        }
        rec.push('}');
        self.records.push(rec);
    }

    /// Adds an `"i"` instant event (thread scope).
    pub fn add_instant(
        &mut self,
        name: &str,
        cat: &str,
        ts_us: u64,
        pid: u64,
        tid: u64,
        args: &[(&'static str, ArgValue)],
    ) {
        let mut rec = String::with_capacity(96);
        push_common(&mut rec, name, cat, 'i', ts_us, pid, tid);
        rec.push_str(",\"s\":\"t\"");
        if !args.is_empty() {
            push_args_json(&mut rec, args);
        }
        rec.push('}');
        self.records.push(rec);
    }

    /// Adds a `"C"` counter sample; trace viewers draw these as a filled
    /// area chart per `name`.
    pub fn add_counter(&mut self, name: &str, ts_us: u64, pid: u64, value: f64) {
        let mut rec = String::with_capacity(96);
        push_common(&mut rec, name, "vtx", 'C', ts_us, pid, 0);
        rec.push_str(",\"args\":{\"value\":");
        rec.push_str(&ArgValue::F64(value).to_json());
        rec.push_str("}}");
        self.records.push(rec);
    }

    /// Names a process track (`"M"` / `process_name` metadata).
    pub fn add_process_name(&mut self, pid: u64, name: &str) {
        let mut rec = String::with_capacity(96);
        push_common(&mut rec, "process_name", "__metadata", 'M', 0, pid, 0);
        rec.push_str(",\"args\":{\"name\":\"");
        escape_json_into(&mut rec, name);
        rec.push_str("\"}}");
        self.records.push(rec);
    }

    /// Names a thread track (`"M"` / `thread_name` metadata).
    pub fn add_thread_name(&mut self, pid: u64, tid: u64, name: &str) {
        let mut rec = String::with_capacity(96);
        push_common(&mut rec, "thread_name", "__metadata", 'M', 0, pid, tid);
        rec.push_str(",\"args\":{\"name\":\"");
        escape_json_into(&mut rec, name);
        rec.push_str("\"}}");
        self.records.push(rec);
    }

    /// Number of records accumulated so far (including metadata).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been added.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Renders the `{"traceEvents": [...]}` document. Ring-buffer drops are
    /// reported in a top-level `"vtxDroppedEvents"` field so truncated traces
    /// are detectable.
    pub fn to_json(&self) -> String {
        let mut out =
            String::with_capacity(32 + self.records.iter().map(String::len).sum::<usize>());
        out.push_str("{\"traceEvents\":[");
        for (i, rec) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(rec);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\",\"vtxDroppedEvents\":");
        out.push_str(&self.dropped.to_string());
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::{Event, EventKind};

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                Event {
                    name: "sweep_point",
                    cat: "experiment",
                    kind: EventKind::Span { dur_us: 1500 },
                    ts_us: 100,
                    tid: 1,
                    args: vec![
                        ("crf", ArgValue::U64(23)),
                        ("note", ArgValue::Str("a\"b".into())),
                    ],
                },
                Event {
                    name: "placed",
                    cat: "sched",
                    kind: EventKind::Instant,
                    ts_us: 230,
                    tid: 2,
                    args: Vec::new(),
                },
                Event {
                    name: "queue_depth",
                    cat: "vtx",
                    kind: EventKind::Counter,
                    ts_us: 300,
                    tid: 1,
                    args: vec![("value", ArgValue::F64(4.0))],
                },
            ],
            threads: vec![(1, "main".into()), (2, "worker-0".into())],
            dropped: 7,
        }
    }

    #[test]
    fn renders_all_event_kinds() {
        let json = ChromeTrace::from_trace(&sample_trace()).to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"sweep_point\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":1500"));
        assert!(json.contains("\"crf\":23"));
        assert!(json.contains("\"note\":\"a\\\"b\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"queue_depth\""));
        assert!(json.contains("\"vtxDroppedEvents\":7"));
    }

    #[test]
    fn thread_and_process_metadata_present() {
        let json = ChromeTrace::from_trace(&sample_trace()).to_json();
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"vtx wall-clock\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"worker-0\""));
    }

    #[test]
    fn synthetic_track_on_custom_pid() {
        let mut t = ChromeTrace::new();
        t.add_process_name(40, "sim: crf23");
        t.add_complete("decode", "sim", 0, 900, (40, 1), &[]);
        t.add_complete("encode", "sim", 900, 4100, (40, 1), &[]);
        let json = t.to_json();
        assert!(json.contains("\"pid\":40"));
        assert!(json.contains("\"sim: crf23\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
    }

    #[test]
    fn empty_trace_is_valid_document() {
        let json = ChromeTrace::new().to_json();
        assert_eq!(
            json,
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\",\"vtxDroppedEvents\":0}"
        );
    }

    /// Structural sanity without a JSON parser: balanced braces/brackets and
    /// no raw control characters. (Full serde_json validation lives in the
    /// workspace `vtx-tests` crate, which may take heavy deps.)
    #[test]
    fn output_is_structurally_balanced() {
        let json = ChromeTrace::from_trace(&sample_trace()).to_json();
        let mut depth = 0i64;
        let mut in_str = false;
        let mut escape = false;
        for c in json.chars() {
            if in_str {
                if escape {
                    escape = false;
                } else if c == '\\' {
                    escape = true;
                } else if c == '"' {
                    in_str = false;
                }
                assert!(c as u32 >= 0x20, "raw control char in string");
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }
}
