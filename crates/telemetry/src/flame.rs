//! Flamegraph collapsed-stack writer.
//!
//! Emits the `frame;frame;frame weight` line format consumed by
//! `flamegraph.pl` and `inferno-flamegraph`. Weights are arbitrary `u64`
//! units — the vtx pipeline feeds simulated instruction counts from
//! `KernelProfile` hotspots, so the rendered flamegraph shows where the
//! *simulated* machine spent its instructions.

use std::collections::BTreeMap;

/// Accumulates `(stack, weight)` samples and renders collapsed-stack text.
///
/// Identical stacks are merged (weights summed), and output lines are sorted
/// lexicographically so the result is deterministic.
#[derive(Debug, Default)]
pub struct CollapsedStacks {
    totals: BTreeMap<String, u64>,
}

impl CollapsedStacks {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` under the stack `frames` (root first). Semicolons in
    /// frame names are replaced with ':' to keep the format unambiguous;
    /// empty stacks and zero weights are ignored.
    pub fn add<S: AsRef<str>>(&mut self, frames: &[S], weight: u64) {
        if frames.is_empty() || weight == 0 {
            return;
        }
        let key = frames
            .iter()
            .map(|f| f.as_ref().replace([';', '\n'], ":"))
            .collect::<Vec<_>>()
            .join(";");
        *self.totals.entry(key).or_insert(0) += weight;
    }

    /// Number of distinct stacks accumulated.
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether no stacks have been added.
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Renders the collapsed-stack text, one `stack weight` line per entry.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (stack, weight) in &self.totals {
            let _ = writeln!(out, "{stack} {weight}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_identical_stacks() {
        let mut cs = CollapsedStacks::new();
        cs.add(&["transcode", "encode", "me_sad"], 100);
        cs.add(&["transcode", "encode", "me_sad"], 50);
        cs.add(&["transcode", "decode", "idct"], 25);
        assert_eq!(cs.len(), 2);
        let text = cs.render();
        assert!(text.contains("transcode;encode;me_sad 150\n"));
        assert!(text.contains("transcode;decode;idct 25\n"));
    }

    #[test]
    fn sanitizes_separator_characters() {
        let mut cs = CollapsedStacks::new();
        cs.add(&["a;b", "c\nd"], 1);
        assert_eq!(cs.render(), "a:b;c:d 1\n");
    }

    #[test]
    fn ignores_empty_and_zero() {
        let mut cs = CollapsedStacks::new();
        cs.add::<&str>(&[], 10);
        cs.add(&["x"], 0);
        assert!(cs.is_empty());
        assert_eq!(cs.render(), "");
    }

    #[test]
    fn output_is_sorted_and_deterministic() {
        let mut cs = CollapsedStacks::new();
        cs.add(&["b"], 1);
        cs.add(&["a"], 2);
        assert_eq!(cs.render(), "a 2\nb 1\n");
    }
}
