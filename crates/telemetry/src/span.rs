//! Span guards and instant events.

use crate::clock::now_us;
use crate::collector::{push_event, Collector};
use crate::ring::{Event, EventKind};

/// One structured argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Text (owned; built only while recording is enabled).
    Str(String),
}

impl ArgValue {
    /// Renders the value as a JSON fragment.
    pub(crate) fn to_json(&self) -> String {
        match self {
            ArgValue::U64(v) => v.to_string(),
            ArgValue::I64(v) => v.to_string(),
            ArgValue::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_owned()
                }
            }
            ArgValue::Str(s) => {
                let mut out = String::with_capacity(s.len() + 2);
                out.push('"');
                crate::escape_json_into(&mut out, s);
                out.push('"');
                out
            }
        }
    }
}

/// Builder for span/event arguments. Only constructed while recording is
/// enabled, so argument formatting costs nothing when telemetry is off.
#[derive(Debug, Default)]
pub struct Args {
    pub(crate) items: Vec<(&'static str, ArgValue)>,
}

impl Args {
    /// Adds an unsigned-integer argument.
    pub fn u64(&mut self, key: &'static str, value: u64) -> &mut Self {
        self.items.push((key, ArgValue::U64(value)));
        self
    }

    /// Adds a signed-integer argument.
    pub fn i64(&mut self, key: &'static str, value: i64) -> &mut Self {
        self.items.push((key, ArgValue::I64(value)));
        self
    }

    /// Adds a floating-point argument.
    pub fn f64(&mut self, key: &'static str, value: f64) -> &mut Self {
        self.items.push((key, ArgValue::F64(value)));
        self
    }

    /// Adds a string argument.
    pub fn str(&mut self, key: &'static str, value: &str) -> &mut Self {
        self.items.push((key, ArgValue::Str(value.to_owned())));
        self
    }
}

/// An RAII wall-clock span: created by [`Span::enter`], recorded when
/// dropped.
///
/// When the [`Collector`] is disabled the guard is inert — construction is a
/// relaxed atomic load plus a branch, and neither construction nor drop
/// allocates.
#[derive(Debug)]
#[must_use = "a span measures the region it is alive for"]
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start_us: u64,
    args: Vec<(&'static str, ArgValue)>,
    active: bool,
}

impl Span {
    /// Opens a span named `name` in the default category.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        Self::enter_cat(name, "vtx")
    }

    /// Opens a span with an explicit category.
    #[inline]
    pub fn enter_cat(name: &'static str, cat: &'static str) -> Span {
        if !Collector::is_enabled() {
            return Span::inert(name, cat);
        }
        Span {
            name,
            cat,
            start_us: now_us(),
            args: Vec::new(),
            active: true,
        }
    }

    /// Opens a span with arguments; `fill` runs only while recording is
    /// enabled, so argument construction is free when telemetry is off.
    #[inline]
    pub fn enter_with(name: &'static str, fill: impl FnOnce(&mut Args)) -> Span {
        if !Collector::is_enabled() {
            return Span::inert(name, "vtx");
        }
        let mut args = Args::default();
        fill(&mut args);
        Span {
            name,
            cat: "vtx",
            start_us: now_us(),
            args: args.items,
            active: true,
        }
    }

    #[inline]
    fn inert(name: &'static str, cat: &'static str) -> Span {
        // `Vec::new` does not allocate: the disabled path is allocation-free.
        Span {
            name,
            cat,
            start_us: 0,
            args: Vec::new(),
            active: false,
        }
    }

    /// Whether this guard is recording (false when the collector was
    /// disabled at entry).
    pub fn is_recording(&self) -> bool {
        self.active
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let dur_us = now_us().saturating_sub(self.start_us);
        let name = self.name;
        let cat = self.cat;
        let ts_us = self.start_us;
        let args = std::mem::take(&mut self.args);
        push_event(|tid| Event {
            name,
            cat,
            kind: EventKind::Span { dur_us },
            ts_us,
            tid,
            args,
        });
    }
}

/// Records a point-in-time event with arguments. A no-op (no allocation,
/// `fill` not called) while the collector is disabled.
#[inline]
pub fn instant(name: &'static str, fill: impl FnOnce(&mut Args)) {
    if !Collector::is_enabled() {
        return;
    }
    let mut args = Args::default();
    fill(&mut args);
    let ts_us = now_us();
    push_event(|tid| Event {
        name,
        cat: "vtx",
        kind: EventKind::Instant,
        ts_us,
        tid,
        args: args.items,
    });
}

/// Records a sampled counter value under `name`. Rendered as a counter
/// track by the Chrome exporter. A no-op while the collector is disabled.
#[inline]
pub fn counter_sample(name: &'static str, value: f64) {
    if !Collector::is_enabled() {
        return;
    }
    let ts_us = now_us();
    push_event(|tid| Event {
        name,
        cat: "vtx",
        kind: EventKind::Counter,
        ts_us,
        tid,
        args: vec![("value", ArgValue::F64(value))],
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Collector;

    #[test]
    fn span_records_duration_and_args() {
        let _guard = crate::test_lock();
        Collector::enable();
        {
            let _s = Span::enter_with("span_records_duration_and_args", |a| {
                a.u64("crf", 23).str("video", "bike");
            });
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let trace = Collector::drain();
        let spans = trace.events_named("span_records_duration_and_args");
        assert!(!spans.is_empty());
        let e = spans[0];
        match e.kind {
            EventKind::Span { dur_us } => assert!(dur_us >= 1000, "dur {dur_us}"),
            ref other => panic!("expected span, got {other:?}"),
        }
        assert!(e
            .args
            .iter()
            .any(|(k, v)| *k == "crf" && *v == ArgValue::U64(23)));
        assert!(e
            .args
            .iter()
            .any(|(k, v)| *k == "video" && *v == ArgValue::Str("bike".into())));
    }

    #[test]
    fn disabled_span_is_inert() {
        let _guard = crate::test_lock();
        Collector::disable();
        let s = Span::enter("disabled_span_is_inert");
        assert!(!s.is_recording());
        drop(s);
        instant("disabled_span_is_inert", |a| {
            a.u64("never", 1);
        });
        let trace = Collector::drain();
        assert!(trace.events_named("disabled_span_is_inert").is_empty());
    }

    #[test]
    fn arg_values_render_as_json() {
        assert_eq!(ArgValue::U64(7).to_json(), "7");
        assert_eq!(ArgValue::I64(-3).to_json(), "-3");
        assert_eq!(ArgValue::F64(1.5).to_json(), "1.5");
        assert_eq!(ArgValue::F64(f64::NAN).to_json(), "null");
        assert_eq!(ArgValue::Str("a\"b".into()).to_json(), "\"a\\\"b\"");
    }
}
