//! # vtx-telemetry — host-side observability for the vtx pipeline
//!
//! The simulator observes the *simulated* machine; this crate observes the
//! *host-side pipeline that drives it* — the 816-point parameter sweeps, the
//! preset/video studies, the scheduler — with wall-clock spans, metrics and
//! exportable traces. It is deliberately tiny and dependency-free:
//!
//! * [`Span`] — RAII guards timing a region of host execution. Guards record
//!   into a bounded per-thread [`ring::EventRing`]; the global [`Collector`]
//!   drains all rings into one [`Trace`]. When the collector is disabled
//!   (the default) every span operation is a single relaxed atomic load and
//!   **performs no allocation**.
//! * [`metrics`] — process-wide counters, gauges and log₂-bucket latency
//!   histograms with p50/p90/p99 summaries, keyed by static names.
//! * [`chrome`] — a Chrome trace-event JSON exporter; the output loads in
//!   Perfetto or `chrome://tracing` and can carry synthetic tracks (e.g.
//!   simulated-time cycle breakdowns) alongside the wall-clock tracks.
//! * [`flame`] — a flamegraph collapsed-stack writer
//!   (`inferno` / `flamegraph.pl` input format).
//! * [`progress::ProgressReporter`] — completed/total heartbeat lines with
//!   ETA for long experiment runs.
//!
//! # Quickstart
//!
//! ```
//! use vtx_telemetry::{chrome::ChromeTrace, Collector, Span};
//!
//! Collector::enable();
//! {
//!     let _outer = Span::enter("experiment");
//!     let _inner = Span::enter_with("point", |a| {
//!         a.u64("crf", 23);
//!         a.u64("refs", 3);
//!     });
//! }
//! let trace = Collector::drain();
//! assert_eq!(trace.events.len(), 2);
//! let json = ChromeTrace::from_trace(&trace).to_json();
//! assert!(json.contains("\"traceEvents\""));
//! Collector::disable();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod chrome;
mod clock;
mod collector;
pub mod flame;
pub mod metrics;
pub mod ports;
pub mod progress;
pub mod ring;
mod span;

pub use collector::{Collector, Trace};
pub use ring::{Event, EventKind};
pub use span::{counter_sample, instant, ArgValue, Args, Span};

/// Escapes a string for inclusion inside a JSON string literal (quotes not
/// included).
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Serializes unit tests that touch the global collector (enable/disable/
/// drain are process-wide; parallel tests would steal each other's events).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    #[test]
    fn escape_json_handles_specials() {
        let mut out = String::new();
        super::escape_json_into(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\u0001");
    }
}
