//! Per-execution-port utilization gauges.
//!
//! The port-level execution model (`vtx-port`) reports how saturated each
//! issue port of the simulated core is at steady state. Gauges need
//! `&'static` names, so this module pre-declares one gauge per port slot up
//! to [`MAX_PORTS`] and hands them out by index; the solver publishes into
//! them after every solve and they flow through the existing metric dump /
//! trace-export layer like every other gauge.

use crate::metrics::{self, Counter, Gauge};

/// Largest port index with a pre-declared gauge (real layouts use 6–8).
pub const MAX_PORTS: usize = 16;

/// Static gauge names, one per port slot (`port/p0_util` … `port/p15_util`).
const UTIL_NAMES: [&str; MAX_PORTS] = [
    "port/p0_util",
    "port/p1_util",
    "port/p2_util",
    "port/p3_util",
    "port/p4_util",
    "port/p5_util",
    "port/p6_util",
    "port/p7_util",
    "port/p8_util",
    "port/p9_util",
    "port/p10_util",
    "port/p11_util",
    "port/p12_util",
    "port/p13_util",
    "port/p14_util",
    "port/p15_util",
];

/// The utilization gauge for port `port` (0-based).
///
/// # Panics
///
/// Panics if `port >= MAX_PORTS`; no modelled core has that many issue
/// ports, so an out-of-range index is a caller bug.
pub fn utilization_gauge(port: usize) -> &'static Gauge {
    assert!(
        port < MAX_PORTS,
        "port index {port} out of range (max {MAX_PORTS})"
    );
    metrics::gauge(UTIL_NAMES[port])
}

/// How many steady-state port solves have run in this process.
pub fn solver_runs() -> &'static Counter {
    metrics::counter("port/solver_runs")
}

/// The gauge holding the most recent port-model dispatch bound (uops/cycle).
pub fn dispatch_bound_gauge() -> &'static Gauge {
    metrics::gauge("port/dispatch_bound")
}

/// Publishes one solve: per-port utilizations, the dispatch bound, and the
/// run counter. Ports beyond `utilization.len()` keep their previous value,
/// so callers switching between layouts of different widths should publish
/// the larger layout last or ignore stale tails.
pub fn publish(utilization: &[f64], dispatch_bound: f64) {
    for (p, u) in utilization.iter().enumerate().take(MAX_PORTS) {
        utilization_gauge(p).set(*u);
    }
    dispatch_bound_gauge().set(dispatch_bound);
    solver_runs().add(1);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauges_are_distinct_and_settable() {
        utilization_gauge(0).set(0.25);
        utilization_gauge(5).set(0.75);
        assert!((utilization_gauge(0).value() - 0.25).abs() < 1e-12);
        assert!((utilization_gauge(5).value() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn publish_sets_everything() {
        let before = solver_runs().value();
        publish(&[0.1, 0.2, 0.3], 3.5);
        assert_eq!(solver_runs().value(), before + 1);
        assert!((dispatch_bound_gauge().value() - 3.5).abs() < 1e-12);
        assert!((utilization_gauge(2).value() - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_port_panics() {
        let _ = utilization_gauge(MAX_PORTS);
    }
}
