//! Process-wide metrics: counters, gauges and log₂-bucket histograms.
//!
//! Metrics are keyed by static names and live for the whole process:
//! [`counter`], [`gauge`] and [`histogram`] hand out `&'static` handles, so
//! hot paths pay a registry lookup only once if they cache the handle, and
//! updates are plain atomic operations either way.
//!
//! ```
//! use vtx_telemetry::metrics;
//!
//! metrics::counter("doc/points").add(3);
//! metrics::histogram("doc/latency_us").record(1500);
//! assert!(metrics::counter("doc/points").value() >= 3);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest `f64` sample.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value (0.0 if never set).
    pub fn value(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets: bucket `i` covers `[2^(i-1), 2^i)` (bucket 0
/// holds zeros), so 65 buckets cover the whole `u64` range.
pub const BUCKETS: usize = 65;

/// A log₂-bucket histogram of `u64` samples (typically microseconds).
///
/// Recording is one atomic increment; quantile summaries report the upper
/// bound of the bucket containing the requested rank, so they overestimate
/// by at most 2× — the right trade for "is p99 10µs or 10ms?" questions.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

/// p50/p90/p99 plus count and mean, as reported by [`Histogram::summary`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Total samples recorded.
    pub count: u64,
    /// Mean sample value.
    pub mean: f64,
    /// Median upper bound.
    pub p50: u64,
    /// 90th-percentile upper bound.
    pub p90: u64,
    /// 99th-percentile upper bound.
    pub p99: u64,
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples (wrapping on u64 overflow).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Upper bound of the bucket containing the `q`-quantile sample
    /// (`0.0 < q <= 1.0`).
    ///
    /// # Empty input
    ///
    /// An empty histogram returns 0 for every `q` — callers never see a
    /// sentinel or panic, matching `LatencyStats::from_samples` in the
    /// serving layer (empty → all-zero stats). Out-of-range `q` values are
    /// clamped into the valid rank range rather than rejected.
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the quantile sample, 1-based, clamped into [1, total].
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i: 2^i - 1 (0 for the zero bucket);
                // bucket 64 covers up to u64::MAX, where 1 << 64 would
                // overflow.
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
            }
        }
        u64::MAX
    }

    /// The p50/p90/p99 summary.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        let mean = if count == 0 {
            0.0
        } else {
            self.sum.load(Ordering::Relaxed) as f64 / count as f64
        };
        HistogramSummary {
            count,
            mean,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> MutexGuard<'static, BTreeMap<&'static str, Metric>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Metric>>> = OnceLock::new();
    // A panic while registering (e.g. a kind mismatch) never leaves the map
    // half-updated, so a poisoned lock is still safe to reuse.
    REGISTRY
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// The counter registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::default()))))
    {
        Metric::Counter(c) => c,
        _ => panic!("metric '{name}' already registered with a different kind"),
    }
}

/// The gauge registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::default()))))
    {
        Metric::Gauge(g) => g,
        _ => panic!("metric '{name}' already registered with a different kind"),
    }
}

/// The histogram registered under `name` (created on first use).
///
/// # Panics
///
/// Panics if `name` is already registered as a different metric kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry();
    match reg
        .entry(name)
        .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
    {
        Metric::Histogram(h) => h,
        _ => panic!("metric '{name}' already registered with a different kind"),
    }
}

/// Maps a registry name (e.g. `serve/sojourn_us`) to a valid Prometheus
/// metric name: every character outside `[a-zA-Z0-9_:]` becomes `_`, and a
/// leading digit gets a `_` prefix so the result matches
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let valid =
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if valid {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Renders every registered metric in the Prometheus text exposition
/// format: each metric gets a `# TYPE` line and sanitized name
/// ([`sanitize_metric_name`]); counters and gauges are single samples,
/// histograms are exposed as summaries (`{quantile="..."}` samples plus
/// `_sum` and `_count`). The registry is a `BTreeMap`, so output order is
/// deterministic.
pub fn render_all() -> String {
    use std::fmt::Write as _;
    let reg = registry();
    let mut out = String::new();
    for (name, metric) in reg.iter() {
        let pname = sanitize_metric_name(name);
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "# TYPE {pname} counter");
                let _ = writeln!(out, "{pname} {}", c.value());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {pname} gauge");
                let _ = writeln!(out, "{pname} {}", g.value());
            }
            Metric::Histogram(h) => {
                let s = h.summary();
                let _ = writeln!(out, "# TYPE {pname} summary");
                for (q, v) in [("0.5", s.p50), ("0.9", s.p90), ("0.99", s.p99)] {
                    let _ = writeln!(out, "{pname}{{quantile=\"{q}\"}} {v}");
                }
                let _ = writeln!(out, "{pname}_sum {}", h.sum());
                let _ = writeln!(out, "{pname}_count {}", s.count);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = counter("test/metrics/counter");
        c.add(2);
        c.add(3);
        assert!(c.value() >= 5);
        let g = gauge("test/metrics/gauge");
        g.set(2.5);
        assert_eq!(g.value(), 2.5);
    }

    #[test]
    fn registry_returns_same_instance() {
        let a = counter("test/metrics/same") as *const Counter;
        let b = counter("test/metrics/same") as *const Counter;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let _ = counter("test/metrics/mismatch");
        let _ = gauge("test/metrics/mismatch");
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    /// Reference quantile: sort the raw samples, take the 1-based
    /// `ceil(q*n)`-th.
    fn reference_quantile(samples: &[u64], q: f64) -> u64 {
        let mut s = samples.to_vec();
        s.sort_unstable();
        let rank = ((q * s.len() as f64).ceil() as usize).clamp(1, s.len());
        s[rank - 1]
    }

    /// Property-style check against the reference computation over several
    /// deterministic pseudo-random distributions: the histogram quantile
    /// must bracket the true quantile from above within its 2x bucket
    /// resolution.
    #[test]
    fn quantiles_track_reference_within_bucket_resolution() {
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            state >> 33
        };
        for dist in 0..6 {
            let h = Histogram::new();
            let samples: Vec<u64> = (0..5000)
                .map(|i| match dist {
                    0 => next() % 100,             // near-uniform small
                    1 => next() % 1_000_000,       // uniform wide
                    2 => 1u64 << (next() % 20),    // exponential-ish
                    3 => 50,                       // constant
                    4 => i % 7,                    // tiny values incl. zero
                    _ => (next() % 10).pow(3) + 1, // skewed
                })
                .collect();
            for &s in &samples {
                h.record(s);
            }
            for q in [0.5, 0.9, 0.99] {
                let reference = reference_quantile(&samples, q);
                let estimate = h.quantile(q);
                assert!(
                    estimate >= reference,
                    "dist {dist} q {q}: estimate {estimate} < reference {reference}"
                );
                // Upper bucket bound overestimates by < 2x (plus the
                // zero-bucket edge case).
                assert!(
                    estimate <= reference.saturating_mul(2).max(1),
                    "dist {dist} q {q}: estimate {estimate} > 2x reference {reference}"
                );
            }
        }
    }

    #[test]
    fn summary_of_empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
    }

    #[test]
    fn quantile_of_empty_histogram_is_zero_for_all_q() {
        let h = Histogram::new();
        for q in [0.001, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0, "q={q}");
        }
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        for v in [0u64, 1, 2, 3, 1000, u64::MAX] {
            let h = Histogram::new();
            h.record(v);
            // Upper bound of v's bucket; bucket 64 saturates at u64::MAX.
            let expect = match bucket_of(v) {
                0 => 0,
                64 => u64::MAX,
                b => (1u64 << b) - 1,
            };
            for q in [0.01, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.quantile(q), expect, "v={v} q={q}");
            }
            let s = h.summary();
            assert_eq!(s.count, 1);
            if v < u64::MAX {
                assert_eq!(s.mean, v as f64);
            }
            assert_eq!((s.p50, s.p90, s.p99), (expect, expect, expect));
        }
    }

    #[test]
    fn quantile_at_bucket_boundaries() {
        // Samples 1, 2, 4 land in buckets 1, 2, 3 with upper bounds 1, 3, 7.
        let h = Histogram::new();
        h.record(1);
        h.record(2);
        h.record(4);
        // Ranks: q<=1/3 -> bucket 1, q<=2/3 -> bucket 2, else bucket 3.
        assert_eq!(h.quantile(0.33), 1);
        assert_eq!(h.quantile(0.34), 3); // ceil(0.34*3)=2nd sample
        assert_eq!(h.quantile(0.66), 3);
        assert_eq!(h.quantile(0.67), 7);
        assert_eq!(h.quantile(1.0), 7);
        // A power of two sits in the bucket *above* its predecessor: the
        // boundary value 4 must never be reported as 3.
        let hb = Histogram::new();
        hb.record(4);
        assert!(hb.quantile(0.5) >= 4);
    }

    #[test]
    fn zero_samples_stay_in_the_zero_bucket() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        h.record(5);
        // p50 over 11 samples is a zero; p99 is the 5.
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(0.99), 7);
        let s = h.summary();
        assert_eq!(s.count, 11);
        assert!((s.mean - 5.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_rank_clamps_out_of_range_q() {
        let h = Histogram::new();
        h.record(8);
        // q above 1.0 or far below 1/count still clamps into [1, total].
        assert_eq!(h.quantile(2.0), 15);
        assert_eq!(h.quantile(1e-9), 15);
    }

    #[test]
    fn render_all_lists_metrics() {
        counter("test/metrics/render").add(1);
        histogram("test/metrics/render_hist").record(10);
        let text = render_all();
        assert!(text.contains("# TYPE test_metrics_render counter"));
        assert!(text.contains("test_metrics_render "));
        assert!(text.contains("# TYPE test_metrics_render_hist summary"));
        assert!(text.contains("test_metrics_render_hist{quantile=\"0.99\"}"));
        assert!(text.contains("test_metrics_render_hist_count "));
        assert!(text.contains("test_metrics_render_hist_sum "));
    }

    #[test]
    fn sanitize_produces_valid_prometheus_names() {
        assert_eq!(sanitize_metric_name("serve/sojourn_us"), "serve_sojourn_us");
        assert_eq!(sanitize_metric_name("a-b.c d"), "a_b_c_d");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("ok_name:sub"), "ok_name:sub");
        assert_eq!(sanitize_metric_name(""), "_");
        for name in ["serve/x", "違法", "1/2", "__ok__"] {
            let s = sanitize_metric_name(name);
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "{s}"
            );
            assert!(
                chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "{s}"
            );
        }
    }

    /// Exposition-format conformance: every non-comment line must be
    /// `name[{labels}] value` with a valid metric name and a parseable
    /// float value, and every `# TYPE` line must name a known type.
    #[test]
    fn render_all_conforms_to_exposition_format() {
        counter("test/metrics/conform_c").add(7);
        gauge("test/metrics/conform_g").set(1.25);
        histogram("test/metrics/conform_h").record(1000);
        let text = render_all();
        assert!(!text.is_empty());
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split(' ');
                let name = parts.next().unwrap();
                let kind = parts.next().unwrap();
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary" | "histogram"),
                    "{line}"
                );
                assert!(!name.is_empty());
                continue;
            }
            assert!(!line.starts_with('#'), "unexpected comment: {line}");
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let name = &line[..name_end];
            let first = name.chars().next().unwrap();
            assert!(
                first.is_ascii_alphabetic() || first == '_' || first == ':',
                "{line}"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad name in: {line}"
            );
            if let Some(open) = line.find('{') {
                let close = line.find('}').expect("labels closed");
                assert!(close > open, "{line}");
                let labels = &line[open + 1..close];
                for pair in labels.split(',') {
                    let (k, v) = pair.split_once('=').expect("label k=v");
                    assert!(
                        !k.is_empty() && v.starts_with('"') && v.ends_with('"'),
                        "{line}"
                    );
                }
            }
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
        }
    }
}
