//! The global collector: runtime on/off switch plus the registry of
//! per-thread event rings.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::ring::{Event, EventRing};

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// One registered thread: its stable id, human name, and event ring.
type ThreadEntry = (u64, String, Arc<Mutex<EventRing>>);

fn registry() -> &'static Mutex<Vec<ThreadEntry>> {
    static REGISTRY: OnceLock<Mutex<Vec<ThreadEntry>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static LOCAL_RING: std::cell::OnceCell<(u64, Arc<Mutex<EventRing>>)> =
        const { std::cell::OnceCell::new() };
}

/// Everything drained from the collector: the merged event stream plus
/// per-thread metadata.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// All events, sorted by timestamp.
    pub events: Vec<Event>,
    /// `(tid, name)` for every thread that recorded at least one event
    /// since the process started.
    pub threads: Vec<(u64, String)>,
    /// Events lost to ring-capacity limits since the last drain.
    pub dropped: u64,
}

impl Trace {
    /// Events with the given name, in timestamp order.
    pub fn events_named(&self, name: &str) -> Vec<&Event> {
        self.events.iter().filter(|e| e.name == name).collect()
    }
}

/// The process-wide telemetry switchboard.
///
/// Disabled by default; [`Collector::enable`] turns recording on at runtime.
/// All methods are safe to call from any thread at any time.
#[derive(Debug)]
pub struct Collector;

impl Collector {
    /// Turns recording on.
    pub fn enable() {
        ENABLED.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Buffered events stay available to
    /// [`Collector::drain`].
    pub fn disable() {
        ENABLED.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on. This is the entire cost of a disabled span:
    /// one relaxed atomic load and a branch.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Drains every thread's ring into one timestamp-sorted [`Trace`].
    pub fn drain() -> Trace {
        let registry = registry().lock().expect("telemetry registry poisoned");
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut threads = Vec::new();
        for (tid, name, ring) in registry.iter() {
            let (mut taken, lost) = ring.lock().expect("telemetry ring poisoned").take();
            events.append(&mut taken);
            dropped += lost;
            threads.push((*tid, name.clone()));
        }
        events.sort_by_key(|e| e.ts_us);
        Trace {
            events,
            threads,
            dropped,
        }
    }
}

/// Records an event into the current thread's ring. The closure receives the
/// thread's stable id; it is only called when recording is enabled (callers
/// check [`Collector::is_enabled`] first, so this just does the push).
pub(crate) fn push_event(make: impl FnOnce(u64) -> Event) {
    LOCAL_RING.with(|cell| {
        let (tid, ring) = cell.get_or_init(|| {
            let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
            let name = std::thread::current()
                .name()
                .map_or_else(|| format!("thread-{tid}"), str::to_owned);
            let ring = Arc::new(Mutex::new(EventRing::default()));
            registry()
                .lock()
                .expect("telemetry registry poisoned")
                .push((tid, name, Arc::clone(&ring)));
            (tid, ring)
        });
        ring.lock()
            .expect("telemetry ring poisoned")
            .push(make(*tid));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::EventKind;

    #[test]
    fn drain_collects_across_threads() {
        let _guard = crate::test_lock();
        Collector::enable();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    push_event(|tid| Event {
                        name: "worker",
                        cat: "test",
                        kind: EventKind::Instant,
                        ts_us: i,
                        tid,
                        args: Vec::new(),
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let trace = Collector::drain();
        Collector::disable();
        let workers = trace.events_named("worker");
        assert!(workers.len() >= 4);
        // Sorted by timestamp.
        for pair in trace.events.windows(2) {
            assert!(pair[0].ts_us <= pair[1].ts_us);
        }
        // Every worker event's tid appears in the thread table.
        for e in workers {
            assert!(trace.threads.iter().any(|(tid, _)| *tid == e.tid));
        }
    }
}
