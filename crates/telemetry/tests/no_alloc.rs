//! Verifies the acceptance criterion that the disabled span path is
//! branch-only: constructing and dropping spans, instants and counter
//! samples while the collector is off must perform **zero heap
//! allocations**.
//!
//! Uses a counting global allocator, so this lives in its own integration-
//! test binary (a global allocator is process-wide and would skew other
//! tests' measurements).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during(f: impl FnOnce()) -> u64 {
    let before = ALLOCATIONS.load(Ordering::SeqCst);
    f();
    ALLOCATIONS.load(Ordering::SeqCst) - before
}

/// One sequential test (the enable/disable switch is process-wide, so the
/// phases must not run concurrently): first prove the counter detects
/// allocations on the enabled path, then prove the disabled path is clean.
#[test]
fn disabled_telemetry_path_does_not_allocate() {
    use vtx_telemetry::{counter_sample, instant, Collector, Span};

    // Phase 1: with the collector on, spans do allocate (ring growth) —
    // this proves the counting allocator actually observes this code.
    Collector::enable();
    let enabled_count = allocations_during(|| {
        let _span = Span::enter("alloc_ok");
    });
    Collector::disable();
    let trace = Collector::drain();
    assert!(!trace.events_named("alloc_ok").is_empty());
    assert!(
        enabled_count > 0,
        "counting allocator saw no allocations while enabled"
    );

    // Phase 2: with the collector off, the whole API surface must be
    // branch-only.
    let count = allocations_during(|| {
        for i in 0..1000 {
            let _span = Span::enter("noop");
            let _nested = Span::enter_with("noop_args", |a| {
                // Never runs while disabled; would allocate if it did.
                a.u64("i", i).str("s", "text");
            });
            instant("noop_instant", |a| {
                a.u64("i", i);
            });
            counter_sample("noop_counter", i as f64);
        }
    });
    assert_eq!(
        count, 0,
        "disabled span path allocated {count} times; it must be branch-only"
    );
}
