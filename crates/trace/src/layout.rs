//! Synthetic code address space layout.
//!
//! Binaries place functions wherever the linker put them; hot loops end up
//! scattered across the text section with cold code between them, which is
//! precisely why profile-guided layout (AutoFDO) wins. [`CodeLayout`] models
//! this: every kernel owns a half-open byte range, and the *gap factor*
//! controls how much cold code separates consecutive kernels.
//!
//! * [`CodeLayout::default_order`] — linker-like layout: registration order
//!   with a generous cold-code gap (the baseline binary).
//! * [`CodeLayout::packed`] — a given order, hot parts packed back to back
//!   (what Pettis–Hansen clustering in `vtx-opt` produces).

use serde::{Deserialize, Serialize};

use crate::kernel::{KernelDesc, KernelId};

/// Cold-code multiplier used by the default (unoptimized) layout: for every
/// byte of hot kernel code, this many bytes of cold code follow it before
/// the next hot kernel. Chosen so that the transcoder's hot working set
/// spans more instruction pages than the baseline 128-entry iTLB covers,
/// matching the front-end pressure the paper observes on the real binary.
pub const DEFAULT_GAP_FACTOR: u32 = 7;

/// Base address of the synthetic text section (arbitrary, page aligned).
pub const TEXT_BASE: u64 = 0x40_0000;

/// An assignment of code address ranges to kernels.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeLayout {
    /// `bases[k]` is the first byte address of kernel `k`'s hot region.
    bases: Vec<u64>,
    /// Hot region size in bytes per kernel (copied from descriptors).
    sizes: Vec<u32>,
    /// Total span of the layout in bytes (for reporting).
    span: u64,
}

impl CodeLayout {
    /// Linker-like layout: kernels in declaration order, each followed by
    /// `DEFAULT_GAP_FACTOR` times its size of cold code.
    pub fn default_order(kernels: &[KernelDesc]) -> Self {
        Self::with_order_and_gap(
            kernels,
            &(0..kernels.len()).collect::<Vec<_>>(),
            DEFAULT_GAP_FACTOR,
        )
    }

    /// Packed layout in the given order: hot regions placed back to back
    /// (64-byte aligned), no cold gaps — the result of profile-guided
    /// function reordering.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..kernels.len()`.
    pub fn packed(kernels: &[KernelDesc], order: &[KernelId]) -> Self {
        Self::with_order_and_gap(kernels, order, 0)
    }

    /// General constructor: place kernels in `order` with `gap_factor` bytes
    /// of cold code per hot byte between consecutive kernels.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..kernels.len()`.
    pub fn with_order_and_gap(kernels: &[KernelDesc], order: &[KernelId], gap_factor: u32) -> Self {
        assert_eq!(order.len(), kernels.len(), "order must cover all kernels");
        let mut seen = vec![false; kernels.len()];
        for &k in order {
            assert!(k < kernels.len() && !seen[k], "order must be a permutation");
            seen[k] = true;
        }

        let mut bases = vec![0u64; kernels.len()];
        let mut sizes = vec![0u32; kernels.len()];
        let mut cursor = TEXT_BASE;
        for &k in order {
            let hot = u64::from(kernels[k].code_lines()) * 64;
            bases[k] = cursor;
            sizes[k] = kernels[k].code_bytes;
            cursor += hot + hot * u64::from(gap_factor);
        }
        CodeLayout {
            bases,
            sizes,
            span: cursor - TEXT_BASE,
        }
    }

    /// First byte address of a kernel's hot region.
    pub fn base(&self, k: KernelId) -> u64 {
        self.bases[k]
    }

    /// Cache-line numbers (address / 64) spanned by a kernel's hot region.
    pub fn lines(&self, k: KernelId) -> std::ops::Range<u64> {
        let start = self.bases[k] / 64;
        start..start + u64::from(self.sizes[k].div_ceil(64))
    }

    /// Synthetic PC for a branch site within a kernel (sites are spaced 8
    /// bytes apart inside the hot region so different sites rarely alias).
    pub fn branch_pc(&self, k: KernelId, site: u32) -> u64 {
        self.bases[k] + 16 + u64::from(site) * 8
    }

    /// Total text-section span covered by this layout, in bytes.
    pub fn span_bytes(&self) -> u64 {
        self.span
    }

    /// Number of kernels laid out.
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the layout is empty.
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: &[KernelDesc] = &[
        KernelDesc::new("a", 1000),
        KernelDesc::new("b", 2000),
        KernelDesc::new("c", 500),
    ];

    #[test]
    fn default_layout_has_gaps() {
        let l = CodeLayout::default_order(K);
        let packed = CodeLayout::packed(K, &[0, 1, 2]);
        assert!(l.span_bytes() > packed.span_bytes() * 4);
    }

    #[test]
    fn regions_do_not_overlap() {
        let l = CodeLayout::default_order(K);
        let mut ranges: Vec<_> = (0..K.len()).map(|k| l.lines(k)).collect();
        ranges.sort_by_key(|r| r.start);
        for w in ranges.windows(2) {
            assert!(w[0].end <= w[1].start, "{:?} overlaps {:?}", w[0], w[1]);
        }
    }

    #[test]
    fn packed_respects_order() {
        let l = CodeLayout::packed(K, &[2, 0, 1]);
        assert!(l.base(2) < l.base(0));
        assert!(l.base(0) < l.base(1));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_order_panics() {
        let _ = CodeLayout::packed(K, &[0, 0, 1]);
    }

    #[test]
    fn branch_pcs_unique_within_kernel() {
        let l = CodeLayout::default_order(K);
        assert_ne!(l.branch_pc(0, 0), l.branch_pc(0, 1));
        assert_ne!(l.branch_pc(0, 0), l.branch_pc(1, 0));
    }

    #[test]
    fn lines_cover_code_bytes() {
        let l = CodeLayout::packed(K, &[0, 1, 2]);
        let r = l.lines(1);
        assert_eq!(r.end - r.start, 2000u64.div_ceil(64));
    }
}
