//! The online profiler: consumes instrumentation events, drives the
//! microarchitecture simulation, and produces a [`ProfileReport`].

use vtx_uarch::branch::BranchPredictor;
use vtx_uarch::config::UarchConfig;
use vtx_uarch::hierarchy::{LevelCounters, MemoryHierarchy};
use vtx_uarch::interval::{CoreModel, ExecutionCounts};
use vtx_uarch::ConfigError;

use crate::kernel::{KernelDesc, KernelId, KernelProfile};
use crate::layout::CodeLayout;
use crate::plan::DataPlan;
use crate::report::{MpkiReport, ProfileReport, StallPki};

/// Base of the synthetic data address space (distinct from the text base).
const DATA_BASE: u64 = 0x1000_0000;
/// Fixed per-invocation instruction overhead (call, prologue, epilogue).
const CALL_OVERHEAD_INSNS: u64 = 12;
/// Consecutive units traced per sampling burst (see [`Profiler::begin_unit`]).
pub const SAMPLE_BURST: u64 = 16;

/// An online profiler for one execution of an instrumented workload.
///
/// See the [crate documentation](crate) for the full event vocabulary and an
/// end-to-end example. Events arrive in program order; [`Profiler::finish`]
/// runs the interval core model over the accumulated counts.
///
/// # Sampling
///
/// Feeding every memory access and branch of a long transcode through the
/// cache and predictor simulations is accurate but slow. For large parameter
/// sweeps, [`Profiler::set_sample_shift`] keeps full instruction accounting
/// but simulates only one in `2^shift` *units* (the workload marks unit
/// boundaries — one per macroblock — with [`Profiler::begin_unit`]); the
/// sampled categories are scaled back up in [`Profiler::finish`].
#[derive(Debug)]
pub struct Profiler {
    kernels: Vec<KernelDesc>,
    layout: CodeLayout,
    cfg: UarchConfig,
    hierarchy: MemoryHierarchy,
    predictor: Box<dyn BranchPredictor>,

    // Exact (always-on) accounting.
    instructions: u64,
    heavy_ops: u64,
    profile: KernelProfile,
    last_kernel: Option<KernelId>,
    current_kernel: Option<KernelId>,

    // Sampled-domain accounting (scaled by 2^sample_shift at finish()).
    branches: u64,
    mispredicts: u64,
    redirects: u64,

    sample_shift: u32,
    active: bool,
    plan: DataPlan,

    data_cursor: u64,
    allocations: Vec<(String, u64, u64)>,
}

impl Profiler {
    /// Creates a profiler for the given configuration, kernel table, and
    /// code layout.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration fails validation.
    pub fn new(
        cfg: &UarchConfig,
        kernels: &[KernelDesc],
        layout: CodeLayout,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        assert_eq!(
            layout.len(),
            kernels.len(),
            "layout must cover the kernel table"
        );
        Ok(Profiler {
            kernels: kernels.to_vec(),
            layout,
            cfg: cfg.clone(),
            hierarchy: MemoryHierarchy::new(cfg)?,
            predictor: cfg.predictor.build(),
            instructions: 0,
            heavy_ops: 0,
            profile: KernelProfile::new(kernels.len()),
            last_kernel: None,
            current_kernel: None,
            branches: 0,
            mispredicts: 0,
            redirects: 0,
            sample_shift: 0,
            active: true,
            plan: DataPlan::default(),
            data_cursor: DATA_BASE,
            allocations: Vec::new(),
        })
    }

    /// Sets the sampling shift: only one in `2^shift` units is fed to the
    /// cache/branch simulation. Zero (the default) traces everything.
    pub fn set_sample_shift(&mut self, shift: u32) {
        self.sample_shift = shift.min(16);
    }

    /// Installs a loop-transformation plan (see [`DataPlan`]); instrumented
    /// workloads consult it when emitting memory events.
    pub fn set_data_plan(&mut self, plan: DataPlan) {
        self.plan = plan;
    }

    /// The active loop-transformation plan.
    pub fn data_plan(&self) -> DataPlan {
        self.plan
    }

    /// Registers a data buffer and returns its stable virtual base address.
    ///
    /// Addresses are page-aligned with a guard page between buffers so
    /// distinct buffers never share a cache line.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> u64 {
        let base = self.data_cursor;
        let span = bytes.div_ceil(4096) * 4096 + 4096;
        self.data_cursor += span;
        self.allocations.push((name.to_owned(), base, bytes));
        base
    }

    /// Marks the start of a sampling unit (the transcoder calls this once
    /// per macroblock with a monotonically increasing index).
    ///
    /// Sampling is *bursty*: runs of [`SAMPLE_BURST`] consecutive units are
    /// traced together, then `2^shift - 1` runs are skipped. Isolated
    /// sampled units would miss the cache warmth their skipped neighbours
    /// provide and systematically overestimate miss rates; bursts preserve
    /// intra-run locality.
    #[inline]
    pub fn begin_unit(&mut self, index: u64) {
        let mask = (1u64 << self.sample_shift) - 1;
        self.active = (index / SAMPLE_BURST) & mask == 0;
    }

    /// Whether the current unit is being fed to the detailed simulation.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Registered data buffers as `(name, base, bytes)` — the workload's
    /// declared data footprint.
    pub fn allocations(&self) -> &[(String, u64, u64)] {
        &self.allocations
    }

    /// Records an invocation of kernel `k` executing `iters` loop iterations
    /// of `insns_per_iter` instructions, `heavy_per_iter` of which are
    /// long-latency (multiply/divide class).
    ///
    /// Charges instruction fetch for the kernel's code lines, models the
    /// loop's branches, and updates the call-pair profile.
    pub fn kernel(&mut self, k: KernelId, iters: u32, insns_per_iter: u32, heavy_per_iter: u32) {
        debug_assert!(k < self.kernels.len());
        let insns = CALL_OVERHEAD_INSNS + u64::from(iters) * u64::from(insns_per_iter);
        self.instructions += insns;
        self.heavy_ops += u64::from(iters) * u64::from(heavy_per_iter);
        self.profile.invocations[k] += 1;
        self.profile.instructions[k] += insns;
        if let Some(prev) = self.last_kernel {
            if prev != k {
                self.profile.pairs[prev][k] += 1;
            }
        }
        let transition = self.last_kernel != Some(k);
        self.last_kernel = Some(k);
        self.current_kernel = Some(k);

        if !self.active {
            return;
        }

        if transition {
            self.redirects += 1;
            // A transition streams the kernel's hot lines through the front end.
            for line in self.layout.lines(k) {
                self.hierarchy.fetch_line(line);
            }
        } else if let Some(first) = self.layout.lines(k).next() {
            // Re-entry keeps the entry line warm (LRU recency).
            self.hierarchy.fetch_line(first);
        }

        // Loop control: `iters` taken back-edges plus one fall-through exit.
        if iters > 0 {
            let pc = self.layout.base(k) + 8;
            let body_ok = self.predictor.observe(pc, true);
            let exit_ok = self.predictor.observe(pc, false);
            self.branches += u64::from(iters) + 1;
            if !body_ok {
                self.mispredicts += 1;
            }
            if !exit_ok {
                self.mispredicts += 1;
            }
        }
    }

    /// Records a data-dependent conditional branch within the current kernel.
    ///
    /// `site` distinguishes static branch locations inside the kernel; the
    /// real outcome drives the simulated predictor.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) {
        if !self.active {
            return;
        }
        let k = self.current_kernel.unwrap_or(0);
        let pc = self.layout.branch_pc(k, site);
        let ok = self.predictor.observe(pc, taken);
        self.branches += 1;
        if !ok {
            self.mispredicts += 1;
        }
    }

    /// Records a data load at a virtual byte address.
    #[inline]
    pub fn load(&mut self, addr: u64) {
        if self.active {
            self.hierarchy.load_line(addr >> 6);
        }
    }

    /// Records a data store at a virtual byte address.
    #[inline]
    pub fn store(&mut self, addr: u64) {
        if self.active {
            self.hierarchy.store_line(addr >> 6);
        }
    }

    /// Records a contiguous read of `bytes` starting at `addr` (touches each
    /// spanned cache line once).
    pub fn load_range(&mut self, addr: u64, bytes: u64) {
        if !self.active || bytes == 0 {
            return;
        }
        let first = addr >> 6;
        let last = (addr + bytes - 1) >> 6;
        for line in first..=last {
            self.hierarchy.load_line(line);
        }
    }

    /// Records a contiguous write of `bytes` starting at `addr`.
    pub fn store_range(&mut self, addr: u64, bytes: u64) {
        if !self.active || bytes == 0 {
            return;
        }
        let first = addr >> 6;
        let last = (addr + bytes - 1) >> 6;
        for line in first..=last {
            self.hierarchy.store_line(line);
        }
    }

    /// Adds plain (non-loop) instructions to the current kernel's account
    /// without any fetch or branch modelling — for straight-line sections.
    pub fn straightline(&mut self, insns: u64) {
        self.instructions += insns;
        if let Some(k) = self.current_kernel {
            self.profile.instructions[k] += insns;
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &UarchConfig {
        &self.cfg
    }

    /// Finalizes the profile: scales sampled counters, runs the interval
    /// core model, and assembles the report.
    pub fn finish(self) -> ProfileReport {
        let scale = 1u64 << self.sample_shift;
        let scale_levels = |c: LevelCounters| LevelCounters {
            l1: c.l1 * scale,
            l2: c.l2 * scale,
            l3: c.l3 * scale,
            l4: c.l4 * scale,
            mem: c.mem * scale,
        };

        let counts = ExecutionCounts {
            instructions: self.instructions,
            uops: self.instructions + self.heavy_ops,
            branches: self.branches * scale,
            branch_mispredicts: self.mispredicts * scale,
            inst_fetch: scale_levels(self.hierarchy.inst_counters()),
            itlb_misses: self.hierarchy.itlb_stats().misses * scale,
            loads: scale_levels(self.hierarchy.load_counters()),
            stores: scale_levels(self.hierarchy.store_counters()),
            heavy_ops: self.heavy_ops,
            redirects: self.redirects * scale,
        };

        let breakdown = CoreModel::new(&self.cfg).run(&counts);
        let topdown = breakdown.topdown();

        let pki = |v: f64| {
            if counts.instructions == 0 {
                0.0
            } else {
                v * 1000.0 / counts.instructions as f64
            }
        };
        let mpki = MpkiReport {
            l1i: counts.mpki(counts.inst_fetch.l1_misses()),
            l1d: counts.mpki(counts.loads.l1_misses() + counts.stores.l1_misses()),
            l2: counts.mpki(counts.loads.l2_misses() + counts.stores.l2_misses()),
            l3: counts.mpki(counts.loads.l3_misses() + counts.stores.l3_misses()),
            branch: counts.mpki(counts.branch_mispredicts),
            itlb: counts.mpki(counts.itlb_misses),
        };
        let stalls = StallPki {
            any: pki(breakdown.any_stall_cycles()),
            rob: pki(breakdown.rob_stall_cycles),
            rs: pki(breakdown.rs_stall_cycles),
            sb: pki(breakdown.sb_stall_cycles),
        };

        let hotspots = self
            .profile
            .hotspots()
            .into_iter()
            .map(|(k, insns)| (self.kernels[k].name.to_owned(), insns))
            .collect();

        ProfileReport {
            config_name: self.cfg.name.clone(),
            seconds: breakdown.seconds(self.cfg.freq_ghz),
            ipc: if breakdown.total_cycles == 0 {
                0.0
            } else {
                counts.instructions as f64 / breakdown.total_cycles as f64
            },
            counts,
            breakdown,
            topdown,
            mpki,
            stalls,
            hotspots,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: &[KernelDesc] = &[
        KernelDesc::new("alpha", 4096),
        KernelDesc::new("beta", 8192),
        KernelDesc::new("gamma", 2048),
    ];

    fn profiler() -> Profiler {
        Profiler::new(
            &UarchConfig::baseline(),
            KERNELS,
            CodeLayout::default_order(KERNELS),
        )
        .unwrap()
    }

    #[test]
    fn kernel_accounting() {
        let mut p = profiler();
        p.kernel(0, 10, 8, 1);
        p.kernel(1, 5, 20, 0);
        p.kernel(0, 10, 8, 1);
        let r = p.finish();
        assert_eq!(r.counts.instructions, 2 * (12 + 80) + (12 + 100));
        assert_eq!(r.counts.heavy_ops, 20);
        assert_eq!(r.profile.invocations[0], 2);
        assert_eq!(r.profile.pairs[0][1], 1);
        assert_eq!(r.profile.pairs[1][0], 1);
    }

    #[test]
    fn hotspots_name_resolution() {
        let mut p = profiler();
        p.kernel(2, 100, 50, 0);
        p.kernel(0, 1, 1, 0);
        let r = p.finish();
        assert_eq!(r.hotspots[0].0, "gamma");
    }

    #[test]
    fn loads_feed_cache_sim() {
        let mut p = profiler();
        let buf = p.alloc("buf", 1 << 20);
        p.kernel(0, 1, 1, 0);
        for i in 0..10_000u64 {
            p.load(buf + (i * 64) % (1 << 20));
        }
        let r = p.finish();
        assert!(r.counts.loads.total() >= 10_000);
        assert!(r.counts.loads.l1_misses() > 0);
    }

    #[test]
    fn sampling_scales_counts() {
        let run = |shift: u32| {
            let mut p = profiler();
            p.set_sample_shift(shift);
            let buf = p.alloc("buf", 1 << 16);
            for unit in 0..1024u64 {
                p.begin_unit(unit);
                p.kernel(0, 4, 10, 0);
                p.load(buf + unit * 64);
                p.branch(0, unit % 3 == 0);
            }
            p.finish()
        };
        let full = run(0);
        let sampled = run(2);
        // Instructions are exact in both.
        assert_eq!(full.counts.instructions, sampled.counts.instructions);
        // Uniform units: scaled branch and load totals match exactly (1024
        // units = 64 bursts of 16, of which every 4th is traced).
        assert_eq!(full.counts.branches, sampled.counts.branches);
        assert_eq!(full.counts.loads.total(), sampled.counts.loads.total());
    }

    #[test]
    fn sample_shift_clamps_to_16() {
        let mut clamped = profiler();
        clamped.set_sample_shift(31);
        let mut max = profiler();
        max.set_sample_shift(16);
        // The active/skip pattern of an over-large shift matches shift 16
        // exactly; an unclamped shift of 31 would overflow the burst mask.
        for index in [
            0,
            15,
            16,
            17,
            SAMPLE_BURST * ((1 << 16) - 1),
            SAMPLE_BURST << 16,
        ] {
            clamped.begin_unit(index);
            max.begin_unit(index);
            assert_eq!(clamped.is_active(), max.is_active(), "unit {index}");
        }
    }

    #[test]
    fn sampled_counters_are_scale_multiples() {
        let shift = 3u32;
        let mut p = profiler();
        p.set_sample_shift(shift);
        let buf = p.alloc("buf", 1 << 16);
        for unit in 0..4096u64 {
            p.begin_unit(unit);
            p.kernel((unit % 3) as usize, 4, 10, 1);
            p.load(buf + (unit * 64) % (1 << 16));
            p.store(buf + (unit * 128) % (1 << 16));
            p.branch(0, unit % 7 < 3);
        }
        let r = p.finish();
        // Everything in the sampled domain is scaled by exactly 2^shift at
        // finish(), so the reported totals must be multiples of it.
        let scale = 1u64 << shift;
        for (name, v) in [
            ("branches", r.counts.branches),
            ("mispredicts", r.counts.branch_mispredicts),
            ("redirects", r.counts.redirects),
            ("loads", r.counts.loads.total()),
            ("stores", r.counts.stores.total()),
            ("itlb", r.counts.itlb_misses),
        ] {
            assert_eq!(v % scale, 0, "{name} = {v} not a multiple of {scale}");
        }
        assert!(r.counts.branches > 0 && r.counts.loads.total() > 0);
    }

    #[test]
    fn sampling_preserves_rates_within_tolerance() {
        // A macroblock-like walk: mostly sequential loads with a data-
        // dependent branch. Sampled rates can't match exactly, but
        // per-instruction rates must stay close to the full trace — that is
        // the contract that makes sampled sweeps trustworthy. (Burst
        // sampling assumes this kind of locality; a fully random access
        // stream would give each burst different cache warmth.)
        let run = |shift: u32| {
            let mut p = profiler();
            p.set_sample_shift(shift);
            let buf = p.alloc("buf", 1 << 20);
            let mut x = 9_871u64;
            for unit in 0..8192u64 {
                p.begin_unit(unit);
                p.kernel((unit % 3) as usize, 6, 12, 1);
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                // Sequential per-unit line, plus a jittered touch within
                // it (spatial locality a burst always captures; jitter that
                // crossed burst boundaries would be invisible to sampling).
                p.load(buf + (unit * 64) % (1 << 20));
                p.load(buf + (unit * 64 + (x >> 32) % 64) % (1 << 20));
                p.branch(0, x & 8 != 0);
            }
            p.finish()
        };
        let full = run(0);
        let sampled = run(2);
        assert_eq!(full.counts.instructions, sampled.counts.instructions);
        let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-12);
        assert!(
            rel(full.counts.branches as f64, sampled.counts.branches as f64) < 0.05,
            "branch totals diverge: {} vs {}",
            full.counts.branches,
            sampled.counts.branches
        );
        assert!(
            rel(
                full.counts.loads.total() as f64,
                sampled.counts.loads.total() as f64
            ) < 0.05,
            "load totals diverge: {} vs {}",
            full.counts.loads.total(),
            sampled.counts.loads.total()
        );
        assert!(
            rel(full.mpki.l1d, sampled.mpki.l1d) < 0.25,
            "L1d MPKI drifts: {} vs {}",
            full.mpki.l1d,
            sampled.mpki.l1d
        );
        assert!(
            rel(full.ipc, sampled.ipc) < 0.15,
            "IPC drifts: l1d {} vs {}, ipc {} vs {}",
            full.mpki.l1d,
            sampled.mpki.l1d,
            full.ipc,
            sampled.ipc
        );
    }

    #[test]
    fn alloc_addresses_are_disjoint_and_stable() {
        let mut p1 = profiler();
        let a1 = p1.alloc("x", 1000);
        let b1 = p1.alloc("y", 1000);
        assert!(b1 >= a1 + 4096 + 4096);
        let mut p2 = profiler();
        assert_eq!(p2.alloc("x", 1000), a1);
    }

    #[test]
    fn branch_outcomes_drive_mispredicts() {
        let mut easy = profiler();
        easy.kernel(0, 1, 1, 0);
        for _ in 0..10_000 {
            easy.branch(0, true);
        }
        let easy_r = easy.finish();

        let mut hard = profiler();
        hard.kernel(0, 1, 1, 0);
        let mut x = 12345u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            hard.branch(0, x & 4 != 0);
        }
        let hard_r = hard.finish();
        assert!(hard_r.counts.branch_mispredicts > easy_r.counts.branch_mispredicts * 5);
    }

    #[test]
    fn report_topdown_sums_to_one() {
        let mut p = profiler();
        let buf = p.alloc("b", 1 << 18);
        for u in 0..2000u64 {
            p.begin_unit(u);
            p.kernel((u % 3) as usize, 8, 10, 1);
            p.load(buf + u * 128);
            p.store(buf + u * 256 % (1 << 18));
        }
        let r = p.finish();
        assert!((r.topdown.sum() - 1.0).abs() < 1e-9);
        assert!(r.seconds > 0.0);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn load_range_touches_every_line() {
        let mut p = profiler();
        p.kernel(0, 1, 1, 0);
        p.load_range(0x1000_0000, 256); // 4 lines
        let r = p.finish();
        assert_eq!(r.counts.loads.total(), 4);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let mut p = profiler();
            let b = p.alloc("b", 1 << 16);
            for u in 0..500u64 {
                p.begin_unit(u);
                p.kernel((u % 2) as usize, 6, 9, 1);
                p.load(b + (u * 192) % (1 << 16));
                p.branch(1, u % 5 < 2);
            }
            p.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.breakdown.total_cycles, b.breakdown.total_cycles);
    }
}
