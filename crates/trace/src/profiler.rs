//! The online profiler: consumes instrumentation events, drives the
//! microarchitecture simulation, and produces a [`ProfileReport`].

use vtx_uarch::branch::BranchPredictor;
use vtx_uarch::config::UarchConfig;
use vtx_uarch::hierarchy::{LevelCounters, MemoryHierarchy};
use vtx_uarch::interval::{CoreModel, ExecutionCounts};
use vtx_uarch::ConfigError;

use crate::kernel::{KernelDesc, KernelId, KernelProfile};
use crate::layout::CodeLayout;
use crate::plan::DataPlan;
use crate::report::{MpkiReport, ProfileReport, StallPki};

/// Base of the synthetic data address space (distinct from the text base).
const DATA_BASE: u64 = 0x1000_0000;
/// Fixed per-invocation instruction overhead (call, prologue, epilogue).
const CALL_OVERHEAD_INSNS: u64 = 12;
/// Consecutive units traced per sampling burst (see [`Profiler::begin_unit`]).
pub const SAMPLE_BURST: u64 = 16;

/// One instrumentation event captured by a recording shard (see
/// [`Profiler::recording_shard`]).
///
/// Replaying a recorded stream through [`Profiler::replay`] drives the cache,
/// TLB and branch-predictor simulations exactly as if the events had been
/// issued directly, so a parallel workload can record per-task shards and
/// merge them in a deterministic order for bit-identical reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfEvent {
    /// A [`Profiler::begin_unit`] boundary.
    BeginUnit(u64),
    /// A [`Profiler::kernel`] invocation: `(kernel, iters, insns_per_iter,
    /// heavy_per_iter)`.
    Kernel(KernelId, u32, u32, u32),
    /// A [`Profiler::branch`] outcome: `(site, taken)`.
    Branch(u32, bool),
    /// A [`Profiler::load`] at a byte address.
    Load(u64),
    /// A [`Profiler::store`] at a byte address.
    Store(u64),
    /// A [`Profiler::load_range`]: `(addr, bytes)`.
    LoadRange(u64, u64),
    /// A [`Profiler::store_range`]: `(addr, bytes)`.
    StoreRange(u64, u64),
    /// A [`Profiler::straightline`] instruction count.
    Straightline(u64),
}

/// An online profiler for one execution of an instrumented workload.
///
/// See the [crate documentation](crate) for the full event vocabulary and an
/// end-to-end example. Events arrive in program order; [`Profiler::finish`]
/// runs the interval core model over the accumulated counts.
///
/// # Sampling
///
/// Feeding every memory access and branch of a long transcode through the
/// cache and predictor simulations is accurate but slow. For large parameter
/// sweeps, [`Profiler::set_sample_shift`] keeps full instruction accounting
/// but simulates only one in `2^shift` *units* (the workload marks unit
/// boundaries — one per macroblock — with [`Profiler::begin_unit`]); the
/// sampled categories are scaled back up in [`Profiler::finish`].
#[derive(Debug)]
pub struct Profiler {
    kernels: Vec<KernelDesc>,
    layout: CodeLayout,
    cfg: UarchConfig,
    hierarchy: MemoryHierarchy,
    predictor: Box<dyn BranchPredictor>,

    // Exact (always-on) accounting.
    instructions: u64,
    heavy_ops: u64,
    profile: KernelProfile,
    last_kernel: Option<KernelId>,
    current_kernel: Option<KernelId>,

    // Sampled-domain accounting (scaled by 2^sample_shift at finish()).
    branches: u64,
    mispredicts: u64,
    redirects: u64,

    sample_shift: u32,
    active: bool,
    plan: DataPlan,

    data_cursor: u64,
    allocations: Vec<(String, u64, u64)>,

    /// When `Some`, this profiler is a recording shard: events are appended
    /// here instead of driving the simulations (see
    /// [`Profiler::recording_shard`]).
    recording: Option<Vec<ProfEvent>>,
}

impl Profiler {
    /// Creates a profiler for the given configuration, kernel table, and
    /// code layout.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration fails validation.
    pub fn new(
        cfg: &UarchConfig,
        kernels: &[KernelDesc],
        layout: CodeLayout,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        assert_eq!(
            layout.len(),
            kernels.len(),
            "layout must cover the kernel table"
        );
        Ok(Profiler {
            kernels: kernels.to_vec(),
            layout,
            cfg: cfg.clone(),
            hierarchy: MemoryHierarchy::new(cfg)?,
            predictor: cfg.predictor.build(),
            instructions: 0,
            heavy_ops: 0,
            profile: KernelProfile::new(kernels.len()),
            last_kernel: None,
            current_kernel: None,
            branches: 0,
            mispredicts: 0,
            redirects: 0,
            sample_shift: 0,
            active: true,
            plan: DataPlan::default(),
            data_cursor: DATA_BASE,
            allocations: Vec::new(),
            recording: None,
        })
    }

    /// Creates a *recording shard* of this profiler: a lightweight clone that
    /// captures the event stream instead of simulating it.
    ///
    /// A shard inherits the parent's sampling shift and [`DataPlan`] so the
    /// instrumented workload behaves identically against it (the same units
    /// are active, the same plan gates are read). Events issued against the
    /// shard are buffered — drain them with [`Profiler::take_events`] and
    /// feed them to the parent via [`Profiler::replay`] in a deterministic
    /// order; the parent's report is then bit-identical to having issued the
    /// events directly. This is how the wavefront-parallel encoder keeps
    /// per-thread counters mergeable without perturbing the simulation.
    #[must_use]
    pub fn recording_shard(&self) -> Profiler {
        Profiler {
            kernels: self.kernels.clone(),
            layout: self.layout.clone(),
            cfg: self.cfg.clone(),
            hierarchy: MemoryHierarchy::new(&self.cfg).expect("config already validated"),
            predictor: self.cfg.predictor.build(),
            instructions: 0,
            heavy_ops: 0,
            profile: KernelProfile::new(self.kernels.len()),
            last_kernel: None,
            current_kernel: None,
            branches: 0,
            mispredicts: 0,
            redirects: 0,
            sample_shift: self.sample_shift,
            active: true,
            plan: self.plan,
            data_cursor: self.data_cursor,
            allocations: Vec::new(),
            recording: Some(Vec::new()),
        }
    }

    /// Whether this profiler is a recording shard.
    pub fn is_recording(&self) -> bool {
        self.recording.is_some()
    }

    /// Drains the events buffered by a recording shard (empty for a normal
    /// profiler). The shard stays usable and keeps recording.
    pub fn take_events(&mut self) -> Vec<ProfEvent> {
        match &mut self.recording {
            Some(events) => std::mem::take(events),
            None => Vec::new(),
        }
    }

    /// Applies a recorded event stream as if the events were issued directly
    /// against this profiler, in order.
    pub fn replay(&mut self, events: &[ProfEvent]) {
        for e in events {
            match *e {
                ProfEvent::BeginUnit(index) => self.begin_unit(index),
                ProfEvent::Kernel(k, iters, insns, heavy) => self.kernel(k, iters, insns, heavy),
                ProfEvent::Branch(site, taken) => self.branch(site, taken),
                ProfEvent::Load(addr) => self.load(addr),
                ProfEvent::Store(addr) => self.store(addr),
                ProfEvent::LoadRange(addr, bytes) => self.load_range(addr, bytes),
                ProfEvent::StoreRange(addr, bytes) => self.store_range(addr, bytes),
                ProfEvent::Straightline(insns) => self.straightline(insns),
            }
        }
    }

    /// Sets the sampling shift: only one in `2^shift` units is fed to the
    /// cache/branch simulation. Zero (the default) traces everything.
    pub fn set_sample_shift(&mut self, shift: u32) {
        self.sample_shift = shift.min(16);
    }

    /// Installs a loop-transformation plan (see [`DataPlan`]); instrumented
    /// workloads consult it when emitting memory events.
    pub fn set_data_plan(&mut self, plan: DataPlan) {
        self.plan = plan;
    }

    /// The active loop-transformation plan.
    pub fn data_plan(&self) -> DataPlan {
        self.plan
    }

    /// Registers a data buffer and returns its stable virtual base address.
    ///
    /// Addresses are page-aligned with a guard page between buffers so
    /// distinct buffers never share a cache line.
    pub fn alloc(&mut self, name: &str, bytes: u64) -> u64 {
        let base = self.data_cursor;
        let span = bytes.div_ceil(4096) * 4096 + 4096;
        self.data_cursor += span;
        self.allocations.push((name.to_owned(), base, bytes));
        base
    }

    /// Marks the start of a sampling unit (the transcoder calls this once
    /// per macroblock with a monotonically increasing index).
    ///
    /// Sampling is *bursty*: runs of [`SAMPLE_BURST`] consecutive units are
    /// traced together, then `2^shift - 1` runs are skipped. Isolated
    /// sampled units would miss the cache warmth their skipped neighbours
    /// provide and systematically overestimate miss rates; bursts preserve
    /// intra-run locality.
    #[inline]
    pub fn begin_unit(&mut self, index: u64) {
        let mask = (1u64 << self.sample_shift) - 1;
        self.active = (index / SAMPLE_BURST) & mask == 0;
        // A shard records the boundary so replay reproduces the same
        // active/skip pattern on the parent (`active` is a pure function of
        // the unit index and the shared sampling shift).
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::BeginUnit(index));
        }
    }

    /// Whether the current unit is being fed to the detailed simulation.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Registered data buffers as `(name, base, bytes)` — the workload's
    /// declared data footprint.
    pub fn allocations(&self) -> &[(String, u64, u64)] {
        &self.allocations
    }

    /// Records an invocation of kernel `k` executing `iters` loop iterations
    /// of `insns_per_iter` instructions, `heavy_per_iter` of which are
    /// long-latency (multiply/divide class).
    ///
    /// Charges instruction fetch for the kernel's code lines, models the
    /// loop's branches, and updates the call-pair profile.
    pub fn kernel(&mut self, k: KernelId, iters: u32, insns_per_iter: u32, heavy_per_iter: u32) {
        debug_assert!(k < self.kernels.len());
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::Kernel(k, iters, insns_per_iter, heavy_per_iter));
            return;
        }
        let insns = CALL_OVERHEAD_INSNS + u64::from(iters) * u64::from(insns_per_iter);
        self.instructions += insns;
        self.heavy_ops += u64::from(iters) * u64::from(heavy_per_iter);
        self.profile.invocations[k] += 1;
        self.profile.instructions[k] += insns;
        if let Some(prev) = self.last_kernel {
            if prev != k {
                self.profile.pairs[prev][k] += 1;
            }
        }
        let transition = self.last_kernel != Some(k);
        self.last_kernel = Some(k);
        self.current_kernel = Some(k);

        if !self.active {
            return;
        }

        if transition {
            self.redirects += 1;
            // A transition streams the kernel's hot lines through the front end.
            for line in self.layout.lines(k) {
                self.hierarchy.fetch_line(line);
            }
        } else if let Some(first) = self.layout.lines(k).next() {
            // Re-entry keeps the entry line warm (LRU recency).
            self.hierarchy.fetch_line(first);
        }

        // Loop control: `iters` taken back-edges plus one fall-through exit.
        if iters > 0 {
            let pc = self.layout.base(k) + 8;
            let body_ok = self.predictor.observe(pc, true);
            let exit_ok = self.predictor.observe(pc, false);
            self.branches += u64::from(iters) + 1;
            if !body_ok {
                self.mispredicts += 1;
            }
            if !exit_ok {
                self.mispredicts += 1;
            }
        }
    }

    /// Records a data-dependent conditional branch within the current kernel.
    ///
    /// `site` distinguishes static branch locations inside the kernel; the
    /// real outcome drives the simulated predictor.
    #[inline]
    pub fn branch(&mut self, site: u32, taken: bool) {
        // Inactive units are filtered at record time: the shard computes the
        // same `active` flag the parent will recompute at replay, so dropped
        // events would be no-ops there anyway.
        if !self.active {
            return;
        }
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::Branch(site, taken));
            return;
        }
        let k = self.current_kernel.unwrap_or(0);
        let pc = self.layout.branch_pc(k, site);
        let ok = self.predictor.observe(pc, taken);
        self.branches += 1;
        if !ok {
            self.mispredicts += 1;
        }
    }

    /// Records a data load at a virtual byte address.
    #[inline]
    pub fn load(&mut self, addr: u64) {
        if !self.active {
            return;
        }
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::Load(addr));
            return;
        }
        self.hierarchy.load_line(addr >> 6);
    }

    /// Records a data store at a virtual byte address.
    #[inline]
    pub fn store(&mut self, addr: u64) {
        if !self.active {
            return;
        }
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::Store(addr));
            return;
        }
        self.hierarchy.store_line(addr >> 6);
    }

    /// Records a contiguous read of `bytes` starting at `addr` (touches each
    /// spanned cache line once).
    pub fn load_range(&mut self, addr: u64, bytes: u64) {
        if !self.active || bytes == 0 {
            return;
        }
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::LoadRange(addr, bytes));
            return;
        }
        let first = addr >> 6;
        let last = (addr + bytes - 1) >> 6;
        for line in first..=last {
            self.hierarchy.load_line(line);
        }
    }

    /// Records a contiguous write of `bytes` starting at `addr`.
    pub fn store_range(&mut self, addr: u64, bytes: u64) {
        if !self.active || bytes == 0 {
            return;
        }
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::StoreRange(addr, bytes));
            return;
        }
        let first = addr >> 6;
        let last = (addr + bytes - 1) >> 6;
        for line in first..=last {
            self.hierarchy.store_line(line);
        }
    }

    /// Adds plain (non-loop) instructions to the current kernel's account
    /// without any fetch or branch modelling — for straight-line sections.
    pub fn straightline(&mut self, insns: u64) {
        if let Some(rec) = &mut self.recording {
            rec.push(ProfEvent::Straightline(insns));
            return;
        }
        self.instructions += insns;
        if let Some(k) = self.current_kernel {
            self.profile.instructions[k] += insns;
        }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &UarchConfig {
        &self.cfg
    }

    /// Finalizes the profile: scales sampled counters, runs the interval
    /// core model, and assembles the report.
    pub fn finish(self) -> ProfileReport {
        let scale = 1u64 << self.sample_shift;
        let scale_levels = |c: LevelCounters| LevelCounters {
            l1: c.l1 * scale,
            l2: c.l2 * scale,
            l3: c.l3 * scale,
            l4: c.l4 * scale,
            mem: c.mem * scale,
        };

        let counts = ExecutionCounts {
            instructions: self.instructions,
            uops: self.instructions + self.heavy_ops,
            branches: self.branches * scale,
            branch_mispredicts: self.mispredicts * scale,
            inst_fetch: scale_levels(self.hierarchy.inst_counters()),
            itlb_misses: self.hierarchy.itlb_stats().misses * scale,
            loads: scale_levels(self.hierarchy.load_counters()),
            stores: scale_levels(self.hierarchy.store_counters()),
            heavy_ops: self.heavy_ops,
            redirects: self.redirects * scale,
        };

        let breakdown = CoreModel::new(&self.cfg).run(&counts);
        let topdown = breakdown.topdown();

        let pki = |v: f64| {
            if counts.instructions == 0 {
                0.0
            } else {
                v * 1000.0 / counts.instructions as f64
            }
        };
        let mpki = MpkiReport {
            l1i: counts.mpki(counts.inst_fetch.l1_misses()),
            l1d: counts.mpki(counts.loads.l1_misses() + counts.stores.l1_misses()),
            l2: counts.mpki(counts.loads.l2_misses() + counts.stores.l2_misses()),
            l3: counts.mpki(counts.loads.l3_misses() + counts.stores.l3_misses()),
            branch: counts.mpki(counts.branch_mispredicts),
            itlb: counts.mpki(counts.itlb_misses),
        };
        let stalls = StallPki {
            any: pki(breakdown.any_stall_cycles()),
            rob: pki(breakdown.rob_stall_cycles),
            rs: pki(breakdown.rs_stall_cycles),
            sb: pki(breakdown.sb_stall_cycles),
        };

        let hotspots = self
            .profile
            .hotspots()
            .into_iter()
            .map(|(k, insns)| (self.kernels[k].name.to_owned(), insns))
            .collect();

        ProfileReport {
            config_name: self.cfg.name.clone(),
            seconds: breakdown.seconds(self.cfg.freq_ghz),
            ipc: if breakdown.total_cycles == 0 {
                0.0
            } else {
                counts.instructions as f64 / breakdown.total_cycles as f64
            },
            counts,
            breakdown,
            topdown,
            mpki,
            stalls,
            hotspots,
            profile: self.profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNELS: &[KernelDesc] = &[
        KernelDesc::new("alpha", 4096),
        KernelDesc::new("beta", 8192),
        KernelDesc::new("gamma", 2048),
    ];

    fn profiler() -> Profiler {
        Profiler::new(
            &UarchConfig::baseline(),
            KERNELS,
            CodeLayout::default_order(KERNELS),
        )
        .unwrap()
    }

    #[test]
    fn kernel_accounting() {
        let mut p = profiler();
        p.kernel(0, 10, 8, 1);
        p.kernel(1, 5, 20, 0);
        p.kernel(0, 10, 8, 1);
        let r = p.finish();
        assert_eq!(r.counts.instructions, 2 * (12 + 80) + (12 + 100));
        assert_eq!(r.counts.heavy_ops, 20);
        assert_eq!(r.profile.invocations[0], 2);
        assert_eq!(r.profile.pairs[0][1], 1);
        assert_eq!(r.profile.pairs[1][0], 1);
    }

    #[test]
    fn hotspots_name_resolution() {
        let mut p = profiler();
        p.kernel(2, 100, 50, 0);
        p.kernel(0, 1, 1, 0);
        let r = p.finish();
        assert_eq!(r.hotspots[0].0, "gamma");
    }

    #[test]
    fn loads_feed_cache_sim() {
        let mut p = profiler();
        let buf = p.alloc("buf", 1 << 20);
        p.kernel(0, 1, 1, 0);
        for i in 0..10_000u64 {
            p.load(buf + (i * 64) % (1 << 20));
        }
        let r = p.finish();
        assert!(r.counts.loads.total() >= 10_000);
        assert!(r.counts.loads.l1_misses() > 0);
    }

    #[test]
    fn sampling_scales_counts() {
        let run = |shift: u32| {
            let mut p = profiler();
            p.set_sample_shift(shift);
            let buf = p.alloc("buf", 1 << 16);
            for unit in 0..1024u64 {
                p.begin_unit(unit);
                p.kernel(0, 4, 10, 0);
                p.load(buf + unit * 64);
                p.branch(0, unit % 3 == 0);
            }
            p.finish()
        };
        let full = run(0);
        let sampled = run(2);
        // Instructions are exact in both.
        assert_eq!(full.counts.instructions, sampled.counts.instructions);
        // Uniform units: scaled branch and load totals match exactly (1024
        // units = 64 bursts of 16, of which every 4th is traced).
        assert_eq!(full.counts.branches, sampled.counts.branches);
        assert_eq!(full.counts.loads.total(), sampled.counts.loads.total());
    }

    #[test]
    fn sample_shift_clamps_to_16() {
        let mut clamped = profiler();
        clamped.set_sample_shift(31);
        let mut max = profiler();
        max.set_sample_shift(16);
        // The active/skip pattern of an over-large shift matches shift 16
        // exactly; an unclamped shift of 31 would overflow the burst mask.
        for index in [
            0,
            15,
            16,
            17,
            SAMPLE_BURST * ((1 << 16) - 1),
            SAMPLE_BURST << 16,
        ] {
            clamped.begin_unit(index);
            max.begin_unit(index);
            assert_eq!(clamped.is_active(), max.is_active(), "unit {index}");
        }
    }

    #[test]
    fn sampled_counters_are_scale_multiples() {
        let shift = 3u32;
        let mut p = profiler();
        p.set_sample_shift(shift);
        let buf = p.alloc("buf", 1 << 16);
        for unit in 0..4096u64 {
            p.begin_unit(unit);
            p.kernel((unit % 3) as usize, 4, 10, 1);
            p.load(buf + (unit * 64) % (1 << 16));
            p.store(buf + (unit * 128) % (1 << 16));
            p.branch(0, unit % 7 < 3);
        }
        let r = p.finish();
        // Everything in the sampled domain is scaled by exactly 2^shift at
        // finish(), so the reported totals must be multiples of it.
        let scale = 1u64 << shift;
        for (name, v) in [
            ("branches", r.counts.branches),
            ("mispredicts", r.counts.branch_mispredicts),
            ("redirects", r.counts.redirects),
            ("loads", r.counts.loads.total()),
            ("stores", r.counts.stores.total()),
            ("itlb", r.counts.itlb_misses),
        ] {
            assert_eq!(v % scale, 0, "{name} = {v} not a multiple of {scale}");
        }
        assert!(r.counts.branches > 0 && r.counts.loads.total() > 0);
    }

    #[test]
    fn sampling_preserves_rates_within_tolerance() {
        // A macroblock-like walk: mostly sequential loads with a data-
        // dependent branch. Sampled rates can't match exactly, but
        // per-instruction rates must stay close to the full trace — that is
        // the contract that makes sampled sweeps trustworthy. (Burst
        // sampling assumes this kind of locality; a fully random access
        // stream would give each burst different cache warmth.)
        let run = |shift: u32| {
            let mut p = profiler();
            p.set_sample_shift(shift);
            let buf = p.alloc("buf", 1 << 20);
            let mut x = 9_871u64;
            for unit in 0..8192u64 {
                p.begin_unit(unit);
                p.kernel((unit % 3) as usize, 6, 12, 1);
                x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                // Sequential per-unit line, plus a jittered touch within
                // it (spatial locality a burst always captures; jitter that
                // crossed burst boundaries would be invisible to sampling).
                p.load(buf + (unit * 64) % (1 << 20));
                p.load(buf + (unit * 64 + (x >> 32) % 64) % (1 << 20));
                p.branch(0, x & 8 != 0);
            }
            p.finish()
        };
        let full = run(0);
        let sampled = run(2);
        assert_eq!(full.counts.instructions, sampled.counts.instructions);
        let rel = |a: f64, b: f64| (a - b).abs() / a.max(1e-12);
        assert!(
            rel(full.counts.branches as f64, sampled.counts.branches as f64) < 0.05,
            "branch totals diverge: {} vs {}",
            full.counts.branches,
            sampled.counts.branches
        );
        assert!(
            rel(
                full.counts.loads.total() as f64,
                sampled.counts.loads.total() as f64
            ) < 0.05,
            "load totals diverge: {} vs {}",
            full.counts.loads.total(),
            sampled.counts.loads.total()
        );
        assert!(
            rel(full.mpki.l1d, sampled.mpki.l1d) < 0.25,
            "L1d MPKI drifts: {} vs {}",
            full.mpki.l1d,
            sampled.mpki.l1d
        );
        assert!(
            rel(full.ipc, sampled.ipc) < 0.15,
            "IPC drifts: l1d {} vs {}, ipc {} vs {}",
            full.mpki.l1d,
            sampled.mpki.l1d,
            full.ipc,
            sampled.ipc
        );
    }

    #[test]
    fn alloc_addresses_are_disjoint_and_stable() {
        let mut p1 = profiler();
        let a1 = p1.alloc("x", 1000);
        let b1 = p1.alloc("y", 1000);
        assert!(b1 >= a1 + 4096 + 4096);
        let mut p2 = profiler();
        assert_eq!(p2.alloc("x", 1000), a1);
    }

    #[test]
    fn branch_outcomes_drive_mispredicts() {
        let mut easy = profiler();
        easy.kernel(0, 1, 1, 0);
        for _ in 0..10_000 {
            easy.branch(0, true);
        }
        let easy_r = easy.finish();

        let mut hard = profiler();
        hard.kernel(0, 1, 1, 0);
        let mut x = 12345u32;
        for _ in 0..10_000 {
            x = x.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            hard.branch(0, x & 4 != 0);
        }
        let hard_r = hard.finish();
        assert!(hard_r.counts.branch_mispredicts > easy_r.counts.branch_mispredicts * 5);
    }

    #[test]
    fn report_topdown_sums_to_one() {
        let mut p = profiler();
        let buf = p.alloc("b", 1 << 18);
        for u in 0..2000u64 {
            p.begin_unit(u);
            p.kernel((u % 3) as usize, 8, 10, 1);
            p.load(buf + u * 128);
            p.store(buf + u * 256 % (1 << 18));
        }
        let r = p.finish();
        assert!((r.topdown.sum() - 1.0).abs() < 1e-9);
        assert!(r.seconds > 0.0);
        assert!(r.ipc > 0.0);
    }

    #[test]
    fn load_range_touches_every_line() {
        let mut p = profiler();
        p.kernel(0, 1, 1, 0);
        p.load_range(0x1000_0000, 256); // 4 lines
        let r = p.finish();
        assert_eq!(r.counts.loads.total(), 4);
    }

    /// A macroblock-like event stream touching every event kind.
    fn mixed_stream(p: &mut Profiler, buf: u64) {
        for unit in 0..600u64 {
            p.begin_unit(unit);
            p.kernel((unit % 3) as usize, 5, 11, 1);
            p.load(buf + (unit * 96) % (1 << 16));
            p.store(buf + (unit * 160) % (1 << 16));
            p.load_range(buf + (unit * 64) % (1 << 16), 192);
            p.store_range(buf + (unit * 32) % (1 << 16), 64);
            p.branch(1, unit % 5 < 2);
            p.straightline(7);
        }
    }

    #[test]
    fn record_replay_matches_direct_execution() {
        let mut direct = profiler();
        let buf = direct.alloc("b", 1 << 16);
        mixed_stream(&mut direct, buf);
        let want = direct.finish();

        let mut main = profiler();
        let buf2 = main.alloc("b", 1 << 16);
        assert_eq!(buf, buf2);
        let mut shard = main.recording_shard();
        assert!(shard.is_recording() && !main.is_recording());
        mixed_stream(&mut shard, buf2);
        let events = shard.take_events();
        assert!(shard.take_events().is_empty(), "take drains the buffer");
        main.replay(&events);
        let got = main.finish();

        assert_eq!(want.counts, got.counts);
        assert_eq!(want.profile, got.profile);
        assert_eq!(want.hotspots, got.hotspots);
        assert_eq!(want.breakdown.total_cycles, got.breakdown.total_cycles);
    }

    #[test]
    fn record_replay_matches_under_sampling() {
        let run_direct = |shift: u32| {
            let mut p = profiler();
            p.set_sample_shift(shift);
            let buf = p.alloc("b", 1 << 16);
            mixed_stream(&mut p, buf);
            p.finish()
        };
        let shift = 2;
        let want = run_direct(shift);

        let mut main = profiler();
        main.set_sample_shift(shift);
        let buf = main.alloc("b", 1 << 16);
        let mut shard = main.recording_shard();
        mixed_stream(&mut shard, buf);
        let events = shard.take_events();
        // The shard filters inactive units' sampled-domain events (they
        // would be no-ops at replay), so the stream is strictly smaller than
        // the unsampled one.
        let mut unsampled = profiler().recording_shard();
        mixed_stream(&mut unsampled, buf);
        assert!(events.len() < unsampled.take_events().len());
        main.replay(&events);
        let got = main.finish();
        assert_eq!(want.counts, got.counts);
        assert_eq!(want.profile, got.profile);
    }

    #[test]
    fn shard_inherits_shift_and_plan() {
        let mut p = profiler();
        p.set_sample_shift(3);
        let plan = DataPlan {
            tile_me_window: true,
            ..DataPlan::default()
        };
        p.set_data_plan(plan);
        let mut shard = p.recording_shard();
        assert_eq!(shard.data_plan(), plan);
        // Same active/skip pattern as the parent.
        for index in [0u64, 16, 128, 129, 1024] {
            shard.begin_unit(index);
            p.begin_unit(index);
            assert_eq!(shard.is_active(), p.is_active(), "unit {index}");
        }
    }

    #[test]
    fn interleaved_shards_merge_in_replay_order() {
        // Two shards recording disjoint halves, replayed in unit order,
        // match one serial pass — the wavefront merge contract.
        let mut direct = profiler();
        let buf = direct.alloc("b", 1 << 16);
        for unit in 0..200u64 {
            direct.begin_unit(unit);
            direct.kernel((unit % 2) as usize, 4, 9, 0);
            direct.load(buf + unit * 64);
            direct.branch(0, unit % 3 == 0);
        }
        let want = direct.finish();

        let mut main = profiler();
        let buf = main.alloc("b", 1 << 16);
        let mut shards = [main.recording_shard(), main.recording_shard()];
        let mut per_unit: Vec<Vec<ProfEvent>> = Vec::new();
        for unit in 0..200u64 {
            let s = &mut shards[(unit % 2) as usize];
            s.begin_unit(unit);
            s.kernel((unit % 2) as usize, 4, 9, 0);
            s.load(buf + unit * 64);
            s.branch(0, unit % 3 == 0);
            per_unit.push(s.take_events());
        }
        for events in &per_unit {
            main.replay(events);
        }
        let got = main.finish();
        assert_eq!(want.counts, got.counts);
        assert_eq!(want.profile, got.profile);
    }

    #[test]
    fn deterministic_reports() {
        let run = || {
            let mut p = profiler();
            let b = p.alloc("b", 1 << 16);
            for u in 0..500u64 {
                p.begin_unit(u);
                p.kernel((u % 2) as usize, 6, 9, 1);
                p.load(b + (u * 192) % (1 << 16));
                p.branch(1, u % 5 < 2);
            }
            p.finish()
        };
        let a = run();
        let b = run();
        assert_eq!(a.counts, b.counts);
        assert_eq!(a.breakdown.total_cycles, b.breakdown.total_cycles);
    }
}
