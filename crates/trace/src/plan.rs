//! Data-access plans: the loop-transformation decisions a polyhedral
//! optimizer (the workspace's Graphite analog in `vtx-opt`) makes about the
//! workload's data traversal loops.
//!
//! The instrumented workload consults the active [`DataPlan`] when emitting
//! memory events, so enabling a transformation changes the *actual address
//! stream* fed to the cache simulation — the optimization's effect on cache
//! misses emerges from simulation rather than being asserted.

use serde::{Deserialize, Serialize};

/// Loop transformations applied to the workload's data-traversal loops.
///
/// The default plan is fully canonical (no transformation) — what an
/// unoptimized compile produces. `vtx-opt`'s Graphite analog derives an
/// optimized plan by running legality-checked loop transformations over
/// models of these loops.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DataPlan {
    /// Fuse the in-loop deblocking filter into the macroblock loop instead
    /// of a separate whole-frame sweep (loop fusion): the filtered lines are
    /// still resident when touched, so the extra cold sweep disappears.
    pub fuse_deblock: bool,
    /// Tile the motion-search window loads so that only the columns newly
    /// exposed by the sliding window are fetched per macroblock (loop
    /// tiling / invariant hoisting over the x dimension).
    pub tile_me_window: bool,
    /// Fuse the transform/quantize/reconstruct passes over the residual
    /// scratch buffer into one sweep (loop fusion over the 4x4 block loops).
    pub fuse_residual: bool,
}

impl DataPlan {
    /// The canonical (untransformed) plan.
    pub fn canonical() -> Self {
        DataPlan::default()
    }

    /// Every supported transformation enabled — what the Graphite analog
    /// converges to for this workload when all legality checks pass.
    pub fn fully_blocked() -> Self {
        DataPlan {
            fuse_deblock: true,
            tile_me_window: true,
            fuse_residual: true,
        }
    }

    /// Number of transformations enabled.
    pub fn enabled_count(&self) -> u32 {
        u32::from(self.fuse_deblock)
            + u32::from(self.tile_me_window)
            + u32::from(self.fuse_residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_canonical() {
        let p = DataPlan::default();
        assert!(!p.fuse_deblock && !p.tile_me_window && !p.fuse_residual);
        assert_eq!(p.enabled_count(), 0);
        assert_eq!(p, DataPlan::canonical());
    }

    #[test]
    fn fully_blocked_enables_all() {
        assert_eq!(DataPlan::fully_blocked().enabled_count(), 3);
    }
}
