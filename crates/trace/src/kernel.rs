//! Kernel descriptors — the instrumented "functions" of a workload.
//!
//! A workload (the transcoder) declares its hot kernels once as a static
//! table of [`KernelDesc`]s; the [`crate::layout::CodeLayout`] assigns each a
//! region of the synthetic code address space, and every
//! [`crate::Profiler::kernel`] call charges instructions and instruction
//! fetches to that region.

use serde::{Deserialize, Serialize};

/// Index of a kernel within its workload's descriptor table.
pub type KernelId = usize;

/// Static description of one instrumented kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelDesc {
    /// Function name (shown in hotspot reports).
    pub name: &'static str,
    /// Hot code footprint in bytes (loop body + prologue); determines how
    /// many instruction-cache lines an invocation touches.
    pub code_bytes: u32,
}

impl KernelDesc {
    /// Creates a descriptor.
    ///
    /// `code_bytes` is rounded up to a whole cache line at layout time; zero
    /// is allowed and means the kernel contributes no fetch traffic (useful
    /// for pure accounting markers).
    pub const fn new(name: &'static str, code_bytes: u32) -> Self {
        KernelDesc { name, code_bytes }
    }

    /// Number of 64-byte instruction lines this kernel spans.
    pub fn code_lines(&self) -> u32 {
        self.code_bytes.div_ceil(64)
    }
}

/// Per-kernel execution profile collected by the profiler — the input that
/// the AutoFDO-style optimizer consumes.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Invocation count per kernel.
    pub invocations: Vec<u64>,
    /// Retired instructions attributed to each kernel.
    pub instructions: Vec<u64>,
    /// Directed call-pair transition counts: `pairs[from][to]` increments
    /// whenever kernel `to` runs immediately after kernel `from`.
    pub pairs: Vec<Vec<u64>>,
}

impl KernelProfile {
    /// Creates an empty profile for `n` kernels.
    pub fn new(n: usize) -> Self {
        KernelProfile {
            invocations: vec![0; n],
            instructions: vec![0; n],
            pairs: vec![vec![0; n]; n],
        }
    }

    /// Number of kernels covered.
    pub fn len(&self) -> usize {
        self.invocations.len()
    }

    /// Whether the profile covers zero kernels.
    pub fn is_empty(&self) -> bool {
        self.invocations.is_empty()
    }

    /// Undirected affinity between two kernels (sum of both transition
    /// directions) — the edge weight for layout clustering.
    pub fn affinity(&self, a: KernelId, b: KernelId) -> u64 {
        self.pairs[a][b] + self.pairs[b][a]
    }

    /// Accumulates another profile (e.g. from a second training run) into
    /// this one.
    ///
    /// # Panics
    ///
    /// Panics if the profiles cover different kernel counts.
    pub fn merge(&mut self, other: &KernelProfile) {
        assert_eq!(self.len(), other.len(), "kernel count mismatch");
        for (a, b) in self.invocations.iter_mut().zip(&other.invocations) {
            *a += b;
        }
        for (a, b) in self.instructions.iter_mut().zip(&other.instructions) {
            *a += b;
        }
        for (row_a, row_b) in self.pairs.iter_mut().zip(&other.pairs) {
            for (a, b) in row_a.iter_mut().zip(row_b) {
                *a += b;
            }
        }
    }

    /// Kernels sorted by attributed instruction count, descending — the
    /// hotspot list.
    pub fn hotspots(&self) -> Vec<(KernelId, u64)> {
        let mut v: Vec<(KernelId, u64)> = self.instructions.iter().copied().enumerate().collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_lines_round_up() {
        assert_eq!(KernelDesc::new("a", 0).code_lines(), 0);
        assert_eq!(KernelDesc::new("a", 1).code_lines(), 1);
        assert_eq!(KernelDesc::new("a", 64).code_lines(), 1);
        assert_eq!(KernelDesc::new("a", 65).code_lines(), 2);
        assert_eq!(KernelDesc::new("a", 4096).code_lines(), 64);
    }

    #[test]
    fn profile_affinity_is_symmetric() {
        let mut p = KernelProfile::new(3);
        p.pairs[0][1] = 5;
        p.pairs[1][0] = 2;
        assert_eq!(p.affinity(0, 1), 7);
        assert_eq!(p.affinity(1, 0), 7);
    }

    #[test]
    fn hotspots_sorted_descending() {
        let mut p = KernelProfile::new(3);
        p.instructions = vec![10, 300, 20];
        let h = p.hotspots();
        assert_eq!(h[0], (1, 300));
        assert_eq!(h[1], (2, 20));
        assert_eq!(h[2], (0, 10));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelProfile::new(2);
        a.invocations[0] = 1;
        a.pairs[0][1] = 3;
        let mut b = KernelProfile::new(2);
        b.invocations[0] = 2;
        b.instructions[1] = 7;
        b.pairs[0][1] = 4;
        a.merge(&b);
        assert_eq!(a.invocations[0], 3);
        assert_eq!(a.instructions[1], 7);
        assert_eq!(a.pairs[0][1], 7);
    }

    #[test]
    fn empty_profile() {
        let p = KernelProfile::new(0);
        assert!(p.is_empty());
        assert_eq!(p.hotspots(), vec![]);
    }
}
