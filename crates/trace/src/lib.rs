//! Instrumentation and profiling layer — the workspace's `perf` + VTune.
//!
//! The paper measures FFmpeg with hardware performance counters. This crate
//! provides the equivalent observation channel for the from-scratch
//! transcoder in `vtx-codec`: the codec's kernels are *instrumented* — they
//! announce themselves ([`Profiler::kernel`]), report the data cache lines
//! they touch ([`Profiler::load`], [`Profiler::store`]) and the
//! data-dependent branches they resolve ([`Profiler::branch`]) — and the
//! profiler drives the `vtx-uarch` cache/TLB/branch-predictor simulation
//! online, finally emitting a [`report::ProfileReport`] with Top-down
//! categories, MPKI counters and resource-stall figures.
//!
//! Two design points matter for reproducibility:
//!
//! * **Synthetic code addresses.** Each kernel occupies a region of a
//!   synthetic code address space managed by [`layout::CodeLayout`]. The
//!   default layout spreads hot kernels apart (cold code between them, as a
//!   normal linker would); the AutoFDO-style optimizer in `vtx-opt` produces
//!   a packed, affinity-clustered layout. Instruction-cache, iTLB and
//!   branch-aliasing effects of layout therefore *emerge* from simulation.
//! * **Synthetic data addresses.** Buffers are registered with
//!   [`Profiler::alloc`], which assigns stable virtual addresses, so cache
//!   behaviour is bit-identical across runs and platforms (real heap
//!   addresses would vary with ASLR).
//!
//! # Example
//!
//! ```
//! use vtx_trace::{kernel::KernelDesc, layout::CodeLayout, Profiler};
//! use vtx_uarch::config::UarchConfig;
//!
//! const KERNELS: &[KernelDesc] = &[
//!     KernelDesc::new("hot_loop", 2048),
//!     KernelDesc::new("helper", 1024),
//! ];
//!
//! let layout = CodeLayout::default_order(KERNELS);
//! let mut prof = Profiler::new(&UarchConfig::baseline(), KERNELS, layout)?;
//! let buf = prof.alloc("workbuf", 4096);
//! prof.kernel(0, 16, 12, 0);        // kernel 0: 16 iterations, 12 insns each
//! prof.load(buf + 64);              // touch a data line
//! prof.branch(0, true);             // a data-dependent branch
//! let report = prof.finish();
//! assert!(report.counts.instructions > 0);
//! # Ok::<(), vtx_uarch::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kernel;
pub mod layout;
pub mod plan;
pub mod profiler;
pub mod report;

pub use kernel::{KernelDesc, KernelId};
pub use plan::DataPlan;
pub use profiler::{ProfEvent, Profiler};
pub use report::ProfileReport;
