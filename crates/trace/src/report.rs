//! Profiling reports: the counters the paper's figures are built from.

use serde::{Deserialize, Serialize};

use vtx_uarch::interval::{CycleBreakdown, ExecutionCounts};
use vtx_uarch::topdown::TopDown;

use crate::kernel::KernelProfile;

/// Misses per kilo-instruction, as reported by `perf` in the paper (§III-B.2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MpkiReport {
    /// L1 instruction-cache MPKI.
    pub l1i: f64,
    /// L1 data-cache MPKI (loads + stores).
    pub l1d: f64,
    /// L2 MPKI (data side).
    pub l2: f64,
    /// L3 MPKI (data side).
    pub l3: f64,
    /// Branch mispredictions per kilo-instruction.
    pub branch: f64,
    /// iTLB misses per kilo-instruction.
    pub itlb: f64,
}

/// Resource-stall cycles per kilo-instruction (Figure 5e–h).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StallPki {
    /// Stalls due to any resource (Figure 5e).
    pub any: f64,
    /// Reorder-buffer-full stalls (Figure 5f).
    pub rob: f64,
    /// Reservation-station-full stalls (Figure 5g).
    pub rs: f64,
    /// Store-buffer-full stalls (Figure 5h).
    pub sb: f64,
}

/// Everything one profiled execution produces — the VTune + perf view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Name of the simulated microarchitecture configuration.
    pub config_name: String,
    /// Raw accumulated event counts.
    pub counts: ExecutionCounts,
    /// Interval-model cycle ledger.
    pub breakdown: CycleBreakdown,
    /// Top-down slot categorization.
    pub topdown: TopDown,
    /// Cache/branch/TLB miss rates.
    pub mpki: MpkiReport,
    /// Resource stall rates.
    pub stalls: StallPki,
    /// Simulated execution time in seconds.
    pub seconds: f64,
    /// Instructions per cycle.
    pub ipc: f64,
    /// Kernels sorted by attributed instructions, descending.
    pub hotspots: Vec<(String, u64)>,
    /// The raw per-kernel profile (consumed by the AutoFDO-style optimizer).
    pub profile: KernelProfile,
}

impl ProfileReport {
    /// Speedup of this report relative to a baseline run of the same work
    /// (`> 1.0` means this run is faster).
    pub fn speedup_vs(&self, baseline: &ProfileReport) -> f64 {
        if self.seconds <= 0.0 {
            return 1.0;
        }
        baseline.seconds / self.seconds
    }

    /// Accumulates this run's kernel hotspots into `out` as flamegraph
    /// collapsed stacks (`config;kernel weight`, weight = simulated
    /// instructions). Render with `flamegraph.pl` / `inferno-flamegraph`.
    pub fn collapse_hotspots_into(&self, out: &mut vtx_telemetry::flame::CollapsedStacks) {
        for (name, insns) in &self.hotspots {
            out.add(&[self.config_name.as_str(), name.as_str()], *insns);
        }
    }

    /// This run's kernel hotspots as a standalone collapsed-stack set.
    pub fn collapsed_stacks(&self) -> vtx_telemetry::flame::CollapsedStacks {
        let mut out = vtx_telemetry::flame::CollapsedStacks::new();
        self.collapse_hotspots_into(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(seconds: f64) -> ProfileReport {
        ProfileReport {
            config_name: "baseline".into(),
            counts: ExecutionCounts::default(),
            breakdown: CycleBreakdown {
                base_cycles: 0.0,
                frontend_cycles: 0.0,
                badspec_cycles: 0.0,
                memory_cycles: 0.0,
                sb_cycles: 0.0,
                core_cycles: 0.0,
                total_cycles: 1,
                uops: 0,
                dispatch_width: 4,
                rob_stall_cycles: 0.0,
                rs_stall_cycles: 0.0,
                sb_stall_cycles: 0.0,
            },
            topdown: TopDown {
                retiring: 1.0,
                frontend: 0.0,
                bad_speculation: 0.0,
                backend_memory: 0.0,
                backend_core: 0.0,
            },
            mpki: MpkiReport::default(),
            stalls: StallPki::default(),
            seconds,
            ipc: 0.0,
            hotspots: vec![],
            profile: KernelProfile::new(0),
        }
    }

    #[test]
    fn speedup_ratio() {
        let base = dummy(2.0);
        let fast = dummy(1.0);
        assert!((fast.speedup_vs(&base) - 2.0).abs() < 1e-12);
        assert!((base.speedup_vs(&fast) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn collapsed_stacks_from_hotspots() {
        let mut r = dummy(1.0);
        r.hotspots = vec![("me_sad".into(), 900), ("idct".into(), 100)];
        let text = r.collapsed_stacks().render();
        assert_eq!(text, "baseline;idct 100\nbaseline;me_sad 900\n");
    }

    #[test]
    fn serializable() {
        let r = dummy(1.0);
        let json = serde_json::to_string(&r).unwrap();
        let back: ProfileReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
