//! Shared scaffolding for the per-figure benchmark harnesses.
//!
//! Every `[[bench]]` target in this crate regenerates one table or figure of
//! the paper (see DESIGN.md's experiment index). Each harness prints the
//! rows/series the paper reports and saves a JSON artifact under
//! `target/vtx-results/` so runs are diffable.
//!
//! Grids default to strided subsets so `cargo bench` finishes quickly; set
//! `VTX_FULL=1` to run the paper's full parameter grids (e.g. all 816
//! crf × refs combinations of Figure 3).

use std::path::PathBuf;

use vtx_core::{CoreError, TranscodeOptions, Transcoder};

/// Whether the full (paper-sized) grids were requested via `VTX_FULL=1`.
pub fn full_run() -> bool {
    std::env::var("VTX_FULL").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Seed used by every harness: results are fully reproducible.
pub const SEED: u64 = 42;

/// The single video the crf × refs sweep studies (the paper sweeps one
/// video; we use `bike`, a mid-entropy 720p clip).
pub fn sweep_transcoder() -> Result<Transcoder, CoreError> {
    Transcoder::from_catalog("bike", SEED)
}

/// Profiler sampling for sweep-sized workloads: detailed enough for stable
/// Top-down shares, fast enough for hundreds of points.
///
/// Burst sampling at shift 1 carries a consistent ~15% absolute-time bias
/// versus full tracing (quantified by the `ablation_sampling` bench); since
/// every point of a figure runs at the same shift, the *shapes* the paper
/// reports are unaffected.
pub fn sweep_options() -> TranscodeOptions {
    TranscodeOptions::default().with_sample_shift(1)
}

/// Directory for JSON artifacts (`target/vtx-results`).
pub fn results_dir() -> PathBuf {
    let dir =
        PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned()))
            .join("vtx-results");
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Saves a serializable artifact as pretty JSON and reports the path.
pub fn save_json<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize artifact");
    std::fs::write(&path, json).expect("write artifact");
    println!("\n[artifact] {}", path.display());
}

/// Prints a figure/table banner.
pub fn banner(title: &str) {
    println!("\n{}", "=".repeat(72));
    println!("{title}");
    println!("{}", "=".repeat(72));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.ends_with("vtx-results"));
        assert!(d.exists());
    }

    #[test]
    fn full_run_reads_env() {
        // Not set in the test environment by default.
        if std::env::var("VTX_FULL").is_err() {
            assert!(!full_run());
        }
    }
}
