//! Ablation: branch predictor families on the transcoding workload.
//!
//! The paper's `bs_op` swaps the Pentium-M-style hybrid for TAGE; this
//! ablation sweeps all four implemented predictors on the same transcode so
//! the bad-speculation sensitivity of the workload is visible directly.

use vtx_codec::EncoderConfig;
use vtx_core::TranscodeOptions;
use vtx_uarch::branch::PredictorKind;
use vtx_uarch::config::UarchConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Ablation: branch predictors on the bike transcode (crf 23, refs 3)");
    let t = vtx_bench::sweep_transcoder()?;
    let cfg = EncoderConfig::default();

    println!(
        "{:<12} {:>12} {:>9} {:>10}",
        "predictor", "branch MPKI", "BS slots", "time(ms)"
    );
    let mut rows = Vec::new();
    for kind in [
        PredictorKind::Bimodal,
        PredictorKind::Gshare,
        PredictorKind::PentiumM,
        PredictorKind::Tage,
    ] {
        let mut uarch = UarchConfig::baseline();
        uarch.predictor = kind;
        uarch.name = format!("baseline+{}", kind.table_name());
        let r = t.transcode(&cfg, &TranscodeOptions::on(uarch).with_sample_shift(1))?;
        println!(
            "{:<12} {:>12.3} {:>8.2}% {:>10.3}",
            kind.table_name(),
            r.summary.mpki.branch,
            r.summary.topdown.bad_speculation * 100.0,
            r.seconds * 1e3
        );
        rows.push((kind.table_name().to_owned(), r.summary));
    }
    vtx_bench::save_json("ablation_predictors", &rows);
    Ok(())
}
