//! Figure 3 — heat maps of front-end, back-end and bad-speculation bound
//! pipeline slots over the crf × refs plane.
//!
//! Default: a strided 11 x 5 grid. `VTX_FULL=1` runs the paper's full 816
//! combinations (crf 1–51 × refs 1–16).

use vtx_codec::EncoderConfig;
use vtx_core::experiments::sweep::{
    crf_refs_sweep, default_crf_grid, default_refs_grid, full_crf_grid, full_refs_grid, SweepPoint,
};

fn heatmap(points: &[SweepPoint], crfs: &[u8], refs: &[u8], f: impl Fn(&SweepPoint) -> f64) {
    print!("{:>4} |", "crf");
    for r in refs {
        print!(" r{r:<5}");
    }
    println!();
    for &crf in crfs {
        print!("{crf:>4} |");
        for &r in refs {
            let p = points
                .iter()
                .find(|p| p.crf == crf && p.refs == r)
                .expect("grid point");
            print!(" {:>5.1} ", f(p) * 100.0);
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (crfs, refs) = if vtx_bench::full_run() {
        (full_crf_grid(), full_refs_grid())
    } else {
        (default_crf_grid(), default_refs_grid())
    };
    vtx_bench::banner(&format!(
        "Figure 3: FE / BE / bad-speculation bound slots (%) over {} crf x {} refs",
        crfs.len(),
        refs.len()
    ));

    let t = vtx_bench::sweep_transcoder()?;
    let points = crf_refs_sweep(
        &t,
        &crfs,
        &refs,
        &EncoderConfig::default(),
        &vtx_bench::sweep_options(),
    )?;

    println!("\n(a) front-end bound (%):");
    heatmap(&points, &crfs, &refs, |p| p.summary.topdown.frontend);
    println!("\n(b) back-end bound (%):");
    heatmap(&points, &crfs, &refs, |p| p.summary.topdown.backend());
    println!("\n(c) bad speculation bound (%):");
    heatmap(&points, &crfs, &refs, |p| p.summary.topdown.bad_speculation);

    // The paper's takeaway: increasing crf or refs reduces FE and BS slots
    // and increases BE slots. Check the corners.
    let corner = |crf: u8, r: u8| points.iter().find(|p| p.crf == crf && p.refs == r).unwrap();
    let lo = corner(crfs[0], refs[0]);
    let hi = corner(*crfs.last().unwrap(), *refs.last().unwrap());
    println!("\ntrend check (low corner -> high corner):");
    println!(
        "  FE  {:.1}% -> {:.1}%  (paper: decreases)   BE  {:.1}% -> {:.1}%  (paper: increases)",
        lo.summary.topdown.frontend * 100.0,
        hi.summary.topdown.frontend * 100.0,
        lo.summary.topdown.backend() * 100.0,
        hi.summary.topdown.backend() * 100.0
    );
    println!(
        "  BS  {:.1}% -> {:.1}%  (paper: decreases)",
        lo.summary.topdown.bad_speculation * 100.0,
        hi.summary.topdown.bad_speculation * 100.0
    );

    vtx_bench::save_json("fig3_heatmaps", &points);
    Ok(())
}
