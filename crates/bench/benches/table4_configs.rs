//! Table IV — the microarchitecture configurations for the scheduler study.

use vtx_uarch::config::UarchConfig;

fn kib(bytes: u64) -> String {
    format!("{}K", bytes / 1024)
}

fn main() {
    vtx_bench::banner("Table IV: microarchitectural configurations for simulation");
    println!(
        "{:<9} {:>5} {:>5} {:>6} {:>7} {:>7} {:>5} {:>4} {:>4} {:>15} {:>11}",
        "Config",
        "L1d",
        "L1i",
        "L2",
        "L3",
        "L4",
        "itlb",
        "ROB",
        "RS",
        "issue@dispatch",
        "predictor"
    );
    let configs = UarchConfig::table_iv();
    for c in &configs {
        println!(
            "{:<9} {:>5} {:>5} {:>6} {:>7} {:>7} {:>5} {:>4} {:>4} {:>15} {:>11}",
            c.name,
            kib(c.l1d.size_bytes),
            kib(c.l1i.size_bytes),
            kib(c.l2.size_bytes),
            kib(c.l3.size_bytes),
            c.l4.map_or("none".to_owned(), |l| kib(l.size_bytes)),
            c.itlb_entries,
            c.rob_size,
            c.rs_size,
            if c.issue_at_dispatch { "Yes" } else { "No" },
            c.predictor.table_name()
        );
    }
    vtx_bench::save_json("table4_configs", &configs);
}
