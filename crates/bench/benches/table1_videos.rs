//! Table I — the vbench video catalog with simulation geometry.

use vtx_frame::vbench;

fn main() {
    vtx_bench::banner("Table I: vbench videos info (+ simulation geometry)");
    println!(
        "{:<14} {:<28} {:>10} {:>4} {:>8} {:>10} {:>7}",
        "short", "full name", "resolution", "fps", "entropy", "sim", "frames"
    );
    let catalog = vbench::catalog();
    for v in &catalog {
        println!(
            "{:<14} {:<28} {:>5}x{:<4} {:>4} {:>8.1} {:>5}x{:<4} {:>6}",
            v.short_name,
            v.full_name,
            v.nominal_width,
            v.nominal_height,
            v.fps,
            v.entropy,
            v.sim_width,
            v.sim_height,
            v.sim_frames
        );
    }
    vtx_bench::save_json("table1_videos", &catalog);
}
