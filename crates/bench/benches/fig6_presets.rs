//! Figure 6 — profiling results for the ten x264 presets (crf 23, refs 3):
//! (a) time / bitrate / PSNR, (b) Top-down categories, (c) branch and cache
//! MPKI, (d) resource stalls.

use vtx_core::experiments::presets::preset_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 6: profiling results for different transcoding presets");
    let t = vtx_bench::sweep_transcoder()?;
    let runs = preset_study(&t, &vtx_bench::sweep_options())?;

    println!("\n(a) time, bitrate, PSNR:");
    println!(
        "{:<10} {:>10} {:>10} {:>9}",
        "preset", "time(ms)", "kbps", "PSNR(dB)"
    );
    for r in &runs {
        println!(
            "{:<10} {:>10.3} {:>10.1} {:>9.2}",
            r.preset.name(),
            r.summary.seconds * 1e3,
            r.bitrate_kbps,
            r.psnr_db
        );
    }

    println!("\n(b) Top-down slots (%):");
    println!(
        "{:<10} {:>9} {:>7} {:>7} {:>7}",
        "preset", "retiring", "FE", "BS", "BE"
    );
    for r in &runs {
        let td = &r.summary.topdown;
        println!(
            "{:<10} {:>8.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            r.preset.name(),
            td.retiring * 100.0,
            td.frontend * 100.0,
            td.bad_speculation * 100.0,
            td.backend() * 100.0
        );
    }

    println!("\n(c) branch & cache MPKI:");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "preset", "branch", "L1d", "L2", "L3"
    );
    for r in &runs {
        let m = &r.summary.mpki;
        println!(
            "{:<10} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            r.preset.name(),
            m.branch,
            m.l1d,
            m.l2,
            m.l3
        );
    }

    println!("\n(d) resource stalls (cycles PKI):");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8}",
        "preset", "any", "ROB", "RS", "SB"
    );
    for r in &runs {
        let s = &r.summary.stalls;
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            r.preset.name(),
            s.any,
            s.rob,
            s.rs,
            s.sb
        );
    }

    println!("\npaper's takeaways to check:");
    println!("  - time rises monotonically from ultrafast to placebo");
    println!("  - bitrate improves sharply up to veryfast, then diminishing returns");
    println!("  - back-end share falls with slower presets (higher operational intensity)");

    vtx_bench::save_json("fig6_presets", &runs);
    Ok(())
}
