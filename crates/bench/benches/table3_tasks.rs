//! Table III — the transcoding tasks used for the scheduler simulation.

use vtx_sched::table_iii_tasks;

fn main() {
    vtx_bench::banner("Table III: transcoding parameters used for Sniper simulation");
    println!(
        "{:<6} {:<14} {:>4} {:>5} {:>10}",
        "Task#", "Video", "crf", "refs", "Preset"
    );
    let tasks = table_iii_tasks();
    for (i, t) in tasks.iter().enumerate() {
        println!(
            "{:<6} {:<14} {:>4} {:>5} {:>10}",
            i + 1,
            t.video,
            t.crf,
            t.refs,
            t.preset.name()
        );
    }
    vtx_bench::save_json("table3_tasks", &tasks);
}
