//! Figure 9 at fleet scale — the XL restatement of the dispatch-policy
//! comparison. The small-fleet benches prove the placement claim on the
//! Table IV fleet; this one proves it survives the two-level
//! (consistent-hash cells + auction) dispatch path that engages at
//! [`vtx_serve::cells::XL_FLEET_THRESHOLD`] servers and above.
//!
//! Two tiers:
//!
//! * **xl_smoke** (always): 500 servers / 20k jobs per policy. Rows are
//!   appended to the `BENCH_serving.json` trajectory produced by the
//!   `fig9_serving` bench, so the committed artifact carries the XL
//!   evidence and CI byte-compares it like every other row. The `smart`
//!   scenario runs twice and the two reports must serialize identically —
//!   a cheap in-process determinism check ahead of CI's two-run `cmp`.
//! * **xl_full** (`VTX_XL_FULL=1`): 10 000 servers / 1 000 000 jobs,
//!   `random` vs `smart`, written to a separate `BENCH_serving_xl.json`
//!   (not committed — it exists to demonstrate wall-clock feasibility and
//!   the tail-latency win at the paper-motivated fleet size).

use vtx_obs::{milli, BenchTrajectory, ObsConfig, TrajectoryRow};
use vtx_serve::cells::CellPlan;
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::report::ServingReport;
use vtx_serve::service::ServeConfig;
use vtx_serve::sim::{simulate, SimOutcome};
use vtx_serve::workload::WorkloadSpec;

/// XL runs drop the event log and the observability plane: at 10k
/// servers / 1M jobs both are pure overhead and neither feeds the
/// trajectory columns this bench reports.
fn xl_config(cells: usize) -> ServeConfig {
    ServeConfig {
        collect_event_log: false,
        obs: ObsConfig::disabled(),
        cells,
        ..ServeConfig::default()
    }
}

fn xl_row(
    scenario: &str,
    r: &ServingReport,
    servers: u64,
    cells: u64,
    wall_ms: u64,
) -> TrajectoryRow {
    TrajectoryRow {
        scenario: scenario.to_owned(),
        policy: r.policy.clone(),
        seed: r.seed,
        servers,
        cells,
        segments: 0,
        offered: r.offered,
        completed: r.completed,
        slo_violations: r.slo_violations,
        shed: r.shed_total(),
        shed_rung: 0,
        p50_sojourn_us: r.sojourn.p50_us,
        p99_sojourn_us: r.sojourn.p99_us,
        throughput_milli_jps: milli(r.throughput_jps),
        goodput_milli_jps: milli(r.goodput_jps),
        availability_milli: milli(r.availability),
        cache_hit_milli: 0,
        alerts: 0,
        makespan_us: r.makespan_us,
        wall_ms,
    }
}

fn run(
    workload: &WorkloadSpec,
    n_servers: usize,
    policy: &str,
) -> Result<(SimOutcome, u64), Box<dyn std::error::Error>> {
    let start = std::time::Instant::now();
    let out = simulate(
        workload,
        Fleet::sized(n_servers)?,
        policy_by_name(policy, workload.seed).expect("known policy"),
        xl_config(0),
    )?;
    let wall = start.elapsed().as_millis() as u64;
    Ok((out, wall))
}

fn print_table(reports: &[(ServingReport, u64)]) {
    println!(
        "{:<12} {:>10} {:>10} {:>8} {:>8} {:>8} {:>10}",
        "policy", "p50_ms", "p99_ms", "tput", "shed%", "viol%", "wall_ms"
    );
    for (r, wall) in reports {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>8.2} {:>10}",
            r.policy,
            r.sojourn.p50_us as f64 / 1e3,
            r.sojourn.p99_us as f64 / 1e3,
            r.throughput_jps,
            r.shed_rate() * 100.0,
            r.violation_rate() * 100.0,
            wall
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 9 (serving, XL): two-level auction dispatch at fleet scale");

    // ---- xl_smoke: 500 servers, 20k jobs, all four policies -------------
    let smoke_servers = 500usize;
    let workload = WorkloadSpec::xl_smoke(vtx_bench::SEED);
    let smoke_cells = CellPlan::build(smoke_servers, 0, workload.seed).n_cells() as u64;
    println!(
        "xl_smoke: {} jobs, {} Hz arrivals, {} servers, {} cells\n",
        workload.jobs, workload.arrival_rate_hz, smoke_servers, smoke_cells
    );

    let mut smoke: Vec<(ServingReport, u64)> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let (out, wall) = run(&workload, smoke_servers, name)?;
        smoke.push((out.report, wall));
    }
    print_table(&smoke);

    let random = &smoke[0].0;
    let smart = &smoke[2].0;
    assert!(
        smart.sojourn.p99_us < random.sojourn.p99_us,
        "two-level auction dispatch must beat random on p99 at XL scale \
         ({} vs {})",
        smart.sojourn.p99_us,
        random.sojourn.p99_us
    );
    for (r, _) in &smoke {
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "{}: XL conservation — every job reaches one terminal state",
            r.policy
        );
    }

    // Same-seed rerun of the smart scenario: the serving engine is meant
    // to be byte-deterministic, so the two reports must match exactly.
    let (rerun, _) = run(&workload, smoke_servers, "smart")?;
    assert_eq!(
        serde_json::to_string(smart)?,
        serde_json::to_string(&rerun.report)?,
        "same-seed xl_smoke reruns must serialize identically"
    );
    println!("\n[determinism] smart xl_smoke rerun is byte-identical");

    // ---- merge XL rows into the fig9_serving trajectory -----------------
    let path = vtx_bench::results_dir().join("BENCH_serving.json");
    let mut traj = if path.exists() {
        let text = std::fs::read_to_string(&path)?;
        BenchTrajectory::validate_str(&text).map_err(|e| {
            format!(
                "existing {} is not schema-valid ({e}); re-run the fig9_serving bench first",
                path.display()
            )
        })?
    } else {
        BenchTrajectory::new("fig9_serving")
    };
    traj.rows.retain(|r| !r.scenario.starts_with("xl"));
    for (r, wall) in &smoke {
        traj.push(xl_row(
            "xl_smoke",
            r,
            smoke_servers as u64,
            smoke_cells,
            if vtx_obs::wall_clock_enabled() {
                *wall
            } else {
                0
            },
        ));
    }
    let json = traj.to_json();
    BenchTrajectory::validate_str(&json).expect("trajectory validates against its own schema");
    std::fs::write(&path, &json)?;
    println!(
        "[artifact] {} (+{} xl_smoke rows)",
        path.display(),
        smoke.len()
    );

    // ---- xl_full: 10k servers / 1M jobs, opt-in ------------------------
    if std::env::var("VTX_XL_FULL")
        .map(|v| v == "1")
        .unwrap_or(false)
    {
        vtx_bench::banner("Figure 9 (serving, XL full): 10k servers / 1M jobs");
        let xl_servers = 10_000usize;
        let xl_workload = WorkloadSpec::xl(vtx_bench::SEED);
        let xl_cells = CellPlan::build(xl_servers, 0, xl_workload.seed).n_cells() as u64;
        println!(
            "xl_full: {} jobs, {} Hz arrivals, {} servers, {} cells\n",
            xl_workload.jobs, xl_workload.arrival_rate_hz, xl_servers, xl_cells
        );
        let mut full: Vec<(ServingReport, u64)> = Vec::new();
        for name in ["random", "smart"] {
            let (out, wall) = run(&xl_workload, xl_servers, name)?;
            full.push((out.report, wall));
        }
        print_table(&full);
        assert!(
            full[1].0.sojourn.p99_us < full[0].0.sojourn.p99_us,
            "smart must beat random on p99 at 10k servers ({} vs {})",
            full[1].0.sojourn.p99_us,
            full[0].0.sojourn.p99_us
        );
        let mut xl_traj = BenchTrajectory::new("fig9_xl_full");
        for (r, wall) in &full {
            xl_traj.push(xl_row(
                "xl_full",
                r,
                xl_servers as u64,
                xl_cells,
                if vtx_obs::wall_clock_enabled() {
                    *wall
                } else {
                    0
                },
            ));
        }
        let xl_json = xl_traj.to_json();
        BenchTrajectory::validate_str(&xl_json).expect("xl trajectory validates");
        let xl_path = vtx_bench::results_dir().join("BENCH_serving_xl.json");
        std::fs::write(&xl_path, &xl_json)?;
        println!("[artifact] {}", xl_path.display());
    } else {
        println!("\n(set VTX_XL_FULL=1 for the 10k-server / 1M-job tier)");
    }
    Ok(())
}
