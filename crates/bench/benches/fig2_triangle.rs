//! Figure 2 — the transcoding speed / video quality / file size triangle:
//! measure the directional effect of crf and refs on all three metrics.

use vtx_core::experiments::triangle::triangle_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 2: speed / quality / size triangle (measured arrows)");
    let t = vtx_bench::sweep_transcoder()?;
    let report = triangle_study(&t, &vtx_bench::sweep_options())?;

    println!(
        "{:>4} {:>5} {:>10} {:>10} {:>10}",
        "crf", "refs", "time(ms)", "kbps", "PSNR(dB)"
    );
    for p in &report.points {
        println!(
            "{:>4} {:>5} {:>10.3} {:>10.1} {:>10.2}",
            p.crf,
            p.refs,
            p.summary.seconds * 1e3,
            p.bitrate_kbps,
            p.psnr_db
        );
    }

    let d = report.directions();
    println!("\narrows of the diagram (paper: all should hold):");
    println!("  crf ^  => quality v   : {}", d.crf_degrades_quality);
    println!("  crf ^  => size v      : {}", d.crf_shrinks_size);
    println!("  crf ^  => speed ^     : {}", d.crf_speeds_up);
    println!("  refs ^ => size v      : {}", d.refs_shrink_size);
    println!("  refs ^ => speed v     : {}", d.refs_slow_down);
    println!("  all hold              : {}", d.all_hold());

    vtx_bench::save_json("fig2_triangle", &report);
    Ok(())
}
