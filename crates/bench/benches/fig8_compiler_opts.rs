//! Figure 8 — speedup of AutoFDO- and Graphite-optimized binaries over the
//! stock build, per video, averaged over parameter combinations.
//!
//! Default: 6 videos x 4 combinations. `VTX_FULL=1` runs the whole catalog
//! with the paper's 32 combinations per video.

use vtx_core::experiments::compiler_opts::{
    compiler_opt_study, default_combos, mean_speedups, quick_combos,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (videos, combos): (Vec<&str>, _) = if vtx_bench::full_run() {
        (
            vec![
                "desktop",
                "presentation",
                "bike",
                "funny",
                "cricket",
                "house",
                "game1",
                "game2",
                "girl",
                "chicken",
                "game3",
                "cat",
                "holi",
                "landscape",
                "hall",
                "bbb",
            ],
            default_combos(),
        )
    } else {
        (
            vec!["desktop", "bike", "cricket", "game2", "holi", "hall"],
            quick_combos(),
        )
    };
    vtx_bench::banner(&format!(
        "Figure 8: AutoFDO / Graphite speedup ({} videos x {} parameter combos)",
        videos.len(),
        combos.len()
    ));

    let runs = compiler_opt_study(
        &videos,
        vtx_bench::SEED,
        &combos,
        &vtx_bench::sweep_options(),
    )?;

    println!(
        "\n{:<13} {:>14} {:>12} {:>12}",
        "video", "baseline(ms)", "autofdo", "graphite"
    );
    for r in &runs {
        println!(
            "{:<13} {:>14.3} {:>+11.2}% {:>+11.2}%",
            r.video,
            r.baseline_seconds * 1e3,
            (r.autofdo_speedup - 1.0) * 100.0,
            (r.graphite_speedup - 1.0) * 100.0
        );
    }
    let (fdo, gra) = mean_speedups(&runs);
    println!(
        "\naverage speedup: autofdo {:+.2}%  graphite {:+.2}%",
        (fdo - 1.0) * 100.0,
        (gra - 1.0) * 100.0
    );
    println!("(paper reports +4.66% and +4.42% on the real FFmpeg/Xeon setup)");

    vtx_bench::save_json("fig8_compiler_opts", &runs);
    Ok(())
}
