//! Figure 7 — profiling results across the vbench videos (crf 23, refs 3,
//! medium preset), grouped by resolution and sorted by entropy.

use vtx_core::experiments::videos::video_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 7: profiling results for different videos");
    // Full catalog by default; VTX_FULL adds nothing here (it's already full).
    let runs = video_study(None, vtx_bench::SEED, &vtx_bench::sweep_options())?;

    println!("\n(a) Top-down slots (%):");
    println!(
        "{:<13} {:>6} {:>8} {:>9} {:>7} {:>7} {:>7}",
        "video", "res", "entropy", "retiring", "FE", "BS", "BE"
    );
    let mut last_res = 0;
    for r in &runs {
        if r.spec.nominal_height != last_res {
            if last_res != 0 {
                println!("{}", "-".repeat(66));
            }
            last_res = r.spec.nominal_height;
        }
        let td = &r.summary.topdown;
        println!(
            "{:<13} {:>6} {:>8.1} {:>8.1}% {:>6.1}% {:>6.1}% {:>6.1}%",
            r.spec.short_name,
            r.spec.resolution_label(),
            r.spec.entropy,
            td.retiring * 100.0,
            td.frontend * 100.0,
            td.bad_speculation * 100.0,
            td.backend() * 100.0
        );
    }

    println!("\n(b) branch & cache MPKI:");
    println!(
        "{:<13} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "video", "branch", "L1i", "L1d", "L2", "L3"
    );
    for r in &runs {
        let m = &r.summary.mpki;
        println!(
            "{:<13} {:>8.2} {:>8.2} {:>8.2} {:>8.2} {:>8.2}",
            r.spec.short_name, m.branch, m.l1i, m.l1d, m.l2, m.l3
        );
    }

    println!("\n(c) resource stalls (cycles PKI):");
    println!(
        "{:<13} {:>8} {:>8} {:>8} {:>8}",
        "video", "any", "ROB", "RS", "SB"
    );
    for r in &runs {
        let s = &r.summary.stalls;
        println!(
            "{:<13} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
            r.spec.short_name, s.any, s.rob, s.rs, s.sb
        );
    }

    // Paper: entropy up => FE and BS up, BE down (within the corpus).
    let vbench_runs: Vec<_> = runs.iter().filter(|r| r.spec.short_name != "bbb").collect();
    let lo = vbench_runs
        .iter()
        .min_by(|a, b| a.spec.entropy.total_cmp(&b.spec.entropy))
        .unwrap();
    let hi = vbench_runs
        .iter()
        .max_by(|a, b| a.spec.entropy.total_cmp(&b.spec.entropy))
        .unwrap();
    println!(
        "\ntrend check ({} e={:.1} -> {} e={:.1}):",
        lo.spec.short_name, lo.spec.entropy, hi.spec.short_name, hi.spec.entropy
    );
    println!(
        "  BS {:.1}% -> {:.1}% (paper: increases) | BE {:.1}% -> {:.1}% (paper: decreases)",
        lo.summary.topdown.bad_speculation * 100.0,
        hi.summary.topdown.bad_speculation * 100.0,
        lo.summary.topdown.backend() * 100.0,
        hi.summary.topdown.backend() * 100.0
    );

    vtx_bench::save_json("fig7_videos", &runs);
    Ok(())
}
