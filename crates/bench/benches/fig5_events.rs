//! Figure 5 — eight microarchitectural event rates over the crf × refs
//! plane: branch MPKI, L1/L2/L3 data-cache MPKI, and resource stalls
//! (any / ROB / RS / SB) per kilo-instruction.

use vtx_codec::EncoderConfig;
use vtx_core::experiments::sweep::{
    crf_refs_sweep, default_crf_grid, default_refs_grid, full_crf_grid, full_refs_grid, SweepPoint,
};

fn grid(points: &[SweepPoint], crfs: &[u8], refs: &[u8], f: impl Fn(&SweepPoint) -> f64) {
    print!("{:>4} |", "crf");
    for r in refs {
        print!(" r{r:<6}");
    }
    println!();
    for &crf in crfs {
        print!("{crf:>4} |");
        for &r in refs {
            let p = points
                .iter()
                .find(|p| p.crf == crf && p.refs == r)
                .expect("grid point");
            print!(" {:>6.2} ", f(p));
        }
        println!();
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (crfs, refs) = if vtx_bench::full_run() {
        (full_crf_grid(), full_refs_grid())
    } else {
        (default_crf_grid(), default_refs_grid())
    };
    vtx_bench::banner("Figure 5: microarchitectural inefficiencies over crf x refs");

    let t = vtx_bench::sweep_transcoder()?;
    let points = crf_refs_sweep(
        &t,
        &crfs,
        &refs,
        &EncoderConfig::default(),
        &vtx_bench::sweep_options(),
    )?;

    let panels: [(&str, Box<dyn Fn(&SweepPoint) -> f64>); 8] = [
        ("(a) branch MPKI", Box::new(|p| p.summary.mpki.branch)),
        ("(b) L1d MPKI", Box::new(|p| p.summary.mpki.l1d)),
        ("(c) L2 MPKI", Box::new(|p| p.summary.mpki.l2)),
        ("(d) L3 MPKI", Box::new(|p| p.summary.mpki.l3)),
        (
            "(e) resource stalls - any (cycles PKI)",
            Box::new(|p| p.summary.stalls.any),
        ),
        (
            "(f) resource stalls - ROB (cycles PKI)",
            Box::new(|p| p.summary.stalls.rob),
        ),
        (
            "(g) resource stalls - RS (cycles PKI)",
            Box::new(|p| p.summary.stalls.rs),
        ),
        (
            "(h) resource stalls - SB (cycles PKI)",
            Box::new(|p| p.summary.stalls.sb),
        ),
    ];
    for (title, f) in &panels {
        println!("\n{title}:");
        grid(&points, &crfs, &refs, f);
    }

    // Paper: branch MPKI decreases with crf and refs; cache MPKI and
    // ROB/RS stalls increase; SB stalls decrease with refs.
    let corner = |crf: u8, r: u8| points.iter().find(|p| p.crf == crf && p.refs == r).unwrap();
    let lo = corner(crfs[0], refs[0]);
    let hi = corner(*crfs.last().unwrap(), *refs.last().unwrap());
    let hi_crf_lo_refs = corner(*crfs.last().unwrap(), refs[0]);
    println!("\ntrend check (low corner -> high corner):");
    println!(
        "  branch MPKI {:.2} -> {:.2} (paper: decreases; ours floors at high crf — see EXPERIMENTS.md)",
        lo.summary.mpki.branch, hi.summary.mpki.branch
    );
    println!(
        "  L2 MPKI {:.2} -> {:.2} (paper: increases)",
        lo.summary.mpki.l2, hi.summary.mpki.l2
    );
    println!(
        "  SB stalls at high crf: refs {} -> {}: {:.2} -> {:.2} PKI (paper: decreases with refs)",
        refs[0],
        refs.last().unwrap(),
        hi_crf_lo_refs.summary.stalls.sb,
        hi.summary.stalls.sb
    );

    vtx_bench::save_json("fig5_events", &points);
    Ok(())
}
