//! Criterion microbenchmarks of the hot primitives: codec kernels
//! (transform, SATD, quantization, entropy coding) and simulator kernels
//! (cache lookups, branch predictors, Hungarian assignment).
//!
//! These measure the *reproduction's own* wall-clock performance (not the
//! simulated target), guarding against regressions that would make the
//! figure harnesses unbearably slow.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use vtx_codec::entropy::cabac::CabacWriter;
use vtx_codec::entropy::EntropyWriter;
use vtx_codec::quant::{dequant4x4, quant4x4};
use vtx_codec::transform::{dct4x4, idct4x4, sad, satd4x4, Block4x4};
use vtx_codec::trellis::trellis_quant;
use vtx_codec::types::Qp;
use vtx_sched::hungarian;
use vtx_uarch::branch::{BranchPredictor, PentiumM, Tage};
use vtx_uarch::cache::{Cache, CacheParams};

fn bench_transform(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);
    let src: Block4x4 = std::array::from_fn(|_| rng.gen_range(-64..64));
    c.bench_function("dct4x4+idct4x4", |b| {
        b.iter(|| {
            let mut blk = black_box(src);
            dct4x4(&mut blk);
            idct4x4(&mut blk);
            black_box(blk)
        })
    });
}

fn bench_metrics(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(2);
    let a: [u8; 256] = std::array::from_fn(|_| rng.gen());
    let b: [u8; 256] = std::array::from_fn(|_| rng.gen());
    c.bench_function("sad_16x16", |bch| {
        bch.iter(|| sad(black_box(&a), black_box(&b)))
    });
    let a4: [u8; 16] = std::array::from_fn(|_| rng.gen());
    let b4: [u8; 16] = std::array::from_fn(|_| rng.gen());
    c.bench_function("satd4x4", |bch| {
        bch.iter(|| satd4x4(black_box(&a4), black_box(&b4)))
    });
}

fn bench_quant(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(3);
    let mut src: Block4x4 = std::array::from_fn(|_| rng.gen_range(-40..40));
    dct4x4(&mut src);
    let qp = Qp::new(26);
    c.bench_function("quant+dequant", |b| {
        b.iter(|| {
            let mut blk = black_box(src);
            quant4x4(&mut blk, qp, false);
            dequant4x4(&mut blk, qp);
            black_box(blk)
        })
    });
    c.bench_function("trellis_quant_l2", |b| {
        b.iter(|| {
            let mut blk = black_box(src);
            trellis_quant(&mut blk, qp, false, qp.lambda(), 2)
        })
    });
}

fn bench_entropy(c: &mut Criterion) {
    c.bench_function("cabac_1k_bins", |b| {
        b.iter(|| {
            let mut w = CabacWriter::new();
            for i in 0..1000u32 {
                w.put_bit(i % 8, (i * 2_654_435_761_u32).wrapping_mul(7) & 16 != 0);
            }
            black_box(w.finish())
        })
    });
}

fn bench_uarch(c: &mut Criterion) {
    c.bench_function("cache_access_32k", |b| {
        let mut cache = Cache::new(CacheParams::new(32, 8, 4)).unwrap();
        let mut line = 0u64;
        b.iter(|| {
            line = (line + 97) % 4096;
            cache.access_line(black_box(line))
        })
    });
    c.bench_function("pentium_m_observe", |b| {
        let mut p = PentiumM::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.observe(black_box(i % 64), i.is_multiple_of(3))
        })
    });
    c.bench_function("tage_observe", |b| {
        let mut p = Tage::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            p.observe(black_box(i % 64), i.is_multiple_of(3))
        })
    });
}

fn bench_hungarian(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(4);
    let cost: Vec<Vec<f64>> = (0..16)
        .map(|_| (0..16).map(|_| rng.gen_range(0.0..100.0)).collect())
        .collect();
    c.bench_function("hungarian_16x16", |b| {
        b.iter(|| hungarian::solve(black_box(&cost)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_transform, bench_metrics, bench_quant, bench_entropy, bench_uarch, bench_hungarian
}
criterion_main!(benches);
