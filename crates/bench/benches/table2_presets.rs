//! Table II — the preset option matrix, reproduced from the configuration
//! code (so any drift from the paper's table fails loudly here).

use vtx_codec::Preset;

fn main() {
    vtx_bench::banner("Table II: selection of the important options for different presets");
    println!(
        "{:<10} {:>3} {:>8} {:>8} {:>8} {:>5} {:>8} {:>5} {:>9} {:>6} {:>8} {:>6}",
        "preset",
        "aq",
        "b-adapt",
        "bframes",
        "deblock",
        "me",
        "merange",
        "refs",
        "scenecut",
        "subme",
        "trellis",
        "cabac"
    );
    let mut rows = Vec::new();
    for p in Preset::ALL {
        let c = p.config();
        let deblock = match c.deblock {
            Some((a, b)) => format!("[{a}:{b}]"),
            None => "off".to_owned(),
        };
        println!(
            "{:<10} {:>3} {:>8} {:>8} {:>8} {:>5} {:>8} {:>5} {:>9} {:>6} {:>8} {:>6}",
            p.name(),
            c.aq_mode,
            c.b_adapt,
            c.bframes,
            deblock,
            c.me.as_option(),
            c.merange,
            c.refs,
            c.scenecut,
            c.subme,
            c.trellis,
            c.cabac
        );
        rows.push((p.name().to_owned(), c));
    }
    vtx_bench::save_json("table2_presets", &rows);
}
