//! Port-model fidelity: predicted vs ground-truth issue throughput across
//! the ten presets' dominant-kernel mixes, on every Table IV configuration.
//!
//! For each config the harness hides the true port layout behind the
//! blocked-port measurement bench, recovers it with the uops.info-style
//! inference pass, and then scores the recovered PALMED-style conjunctive
//! model against the exact saturating-flow solution on the true layout.
//! Reported per config: per-preset relative error, the mean relative error,
//! and solver wall time (inference + all twenty solves).

use serde::Serialize;

use vtx_codec::preset::Preset;
use vtx_port::infer::{infer, BlockedPortBench};
use vtx_port::{solve, PortLayout, UopMix};
use vtx_uarch::config::UarchConfig;

#[derive(Serialize)]
struct PresetRow {
    preset: &'static str,
    rank: usize,
    ground_truth_upc: f64,
    predicted_upc: f64,
    rel_error: f64,
}

#[derive(Serialize)]
struct ConfigReport {
    config: String,
    ports: usize,
    experiments: u64,
    mean_rel_error: f64,
    max_rel_error: f64,
    infer_us: u128,
    solve_us: u128,
    rows: Vec<PresetRow>,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Port throughput: inferred model vs ground-truth solver");
    let mut reports: Vec<ConfigReport> = Vec::new();

    for (i, cfg) in UarchConfig::table_iv().iter().enumerate() {
        let truth = PortLayout::for_config(cfg);
        let bench = BlockedPortBench::new(truth.clone(), vtx_bench::SEED + i as u64);

        let t0 = std::time::Instant::now();
        let model = infer(&bench)?;
        let infer_us = t0.elapsed().as_micros();

        let width = f64::from(cfg.dispatch_width);
        let mut rows = Vec::new();
        let t1 = std::time::Instant::now();
        for (rank, preset) in Preset::ALL.iter().enumerate() {
            let mix = UopMix::for_preset_rank(rank);
            let exact = solve(&truth, &mix, width)?.uops_per_cycle;
            let predicted = model.predicted_throughput(&mix, width)?;
            rows.push(PresetRow {
                preset: preset.name(),
                rank,
                ground_truth_upc: exact,
                predicted_upc: predicted,
                rel_error: (predicted - exact).abs() / exact.max(1e-9),
            });
        }
        let solve_us = t1.elapsed().as_micros();

        let mean = rows.iter().map(|r| r.rel_error).sum::<f64>() / rows.len() as f64;
        let max = rows.iter().map(|r| r.rel_error).fold(0.0f64, f64::max);

        println!(
            "\nconfig {:<10} ({} ports, {} experiments, infer {} us, {} solves {} us)",
            cfg.name,
            truth.num_ports(),
            bench.experiments(),
            infer_us,
            2 * rows.len(),
            solve_us
        );
        println!(
            "{:<12} {:>6} {:>12} {:>12} {:>10}",
            "preset", "rank", "truth_upc", "pred_upc", "rel_err"
        );
        for r in &rows {
            println!(
                "{:<12} {:>6} {:>12.4} {:>12.4} {:>10.6}",
                r.preset, r.rank, r.ground_truth_upc, r.predicted_upc, r.rel_error
            );
        }
        println!("mean rel error {mean:.6}, max rel error {max:.6}");
        assert!(
            max < 0.05,
            "{}: inferred model drifted {max} from ground truth",
            cfg.name
        );

        reports.push(ConfigReport {
            config: cfg.name.clone(),
            ports: truth.num_ports(),
            experiments: model.experiments,
            mean_rel_error: mean,
            max_rel_error: max,
            infer_us,
            solve_us,
            rows,
        });
    }

    vtx_bench::save_json("port_throughput", &reports);
    Ok(())
}
