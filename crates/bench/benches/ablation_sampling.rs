//! Ablation: profiler sampling shift.
//!
//! The sweep harnesses trade simulation detail for speed via
//! `Profiler::set_sample_shift`. This ablation quantifies the trade:
//! estimated-time error vs the fully-traced run, and host wall-clock cost.

use std::time::Instant;

use vtx_codec::EncoderConfig;
use vtx_core::TranscodeOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Ablation: simulation sampling shift (detail vs host cost)");
    let t = vtx_bench::sweep_transcoder()?;
    let cfg = EncoderConfig::default();

    let start = Instant::now();
    let full = t.transcode(&cfg, &TranscodeOptions::default())?;
    let full_wall = start.elapsed();

    println!(
        "{:<6} {:>14} {:>12} {:>12} {:>12}",
        "shift", "sim time(ms)", "err vs s0", "host(ms)", "speedup"
    );
    println!(
        "{:<6} {:>14.4} {:>12} {:>12.0} {:>12}",
        0,
        full.seconds * 1e3,
        "-",
        full_wall.as_secs_f64() * 1e3,
        "1.0x"
    );
    let mut rows = vec![(0u32, full.seconds, full_wall.as_secs_f64())];
    for shift in [1u32, 2, 3, 4] {
        let start = Instant::now();
        let r = t.transcode(&cfg, &TranscodeOptions::default().with_sample_shift(shift))?;
        let wall = start.elapsed();
        let err = (r.seconds / full.seconds - 1.0) * 100.0;
        println!(
            "{:<6} {:>14.4} {:>11.2}% {:>12.0} {:>11.1}x",
            shift,
            r.seconds * 1e3,
            err,
            wall.as_secs_f64() * 1e3,
            full_wall.as_secs_f64() / wall.as_secs_f64()
        );
        rows.push((shift, r.seconds, wall.as_secs_f64()));
        // Instruction counts stay exact regardless of sampling.
        assert_eq!(
            r.profile.counts.instructions,
            full.profile.counts.instructions
        );
    }
    vtx_bench::save_json("ablation_sampling", &rows);
    Ok(())
}
