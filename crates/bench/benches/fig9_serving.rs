//! Figure 9, extended from makespan to tail latency — the online serving
//! restatement of the scheduler comparison: random / round-robin / smart /
//! port-informed dispatch over the bundled open-loop workload on the
//! Table IV fleet, judged on p50/p90/p99 sojourn time, shed rate and SLO
//! violations. The engine bills the port-refined cost, so the `port`
//! policy optimizes the true objective while `smart` optimizes a
//! port-blind approximation of it.

use vtx_obs::{milli, BenchTrajectory, TrajectoryRow};
use vtx_serve::chaos::ChaosConfig;
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::report::ServingReport;
use vtx_serve::segment::{SegmentOptions, SegmentPlan};
use vtx_serve::service::ServeConfig;
use vtx_serve::sim::{simulate, simulate_trace};
use vtx_serve::workload::WorkloadSpec;

/// Flatten one run (exact report + observability plane) into a trajectory
/// row — every field integral so the artifact byte-compares across runs.
fn trajectory_row(
    scenario: &str,
    r: &ServingReport,
    servers: u64,
    cells: u64,
    segments: u64,
    alerts: u64,
    wall_ms: u64,
) -> TrajectoryRow {
    TrajectoryRow {
        scenario: scenario.to_owned(),
        policy: r.policy.clone(),
        seed: r.seed,
        servers,
        cells,
        segments,
        offered: r.offered,
        completed: r.completed,
        slo_violations: r.slo_violations,
        shed: r.shed_total(),
        p50_sojourn_us: r.sojourn.p50_us,
        p99_sojourn_us: r.sojourn.p99_us,
        throughput_milli_jps: milli(r.throughput_jps),
        goodput_milli_jps: milli(r.goodput_jps),
        availability_milli: milli(r.availability),
        alerts,
        makespan_us: r.makespan_us,
        wall_ms,
    }
}

/// Wall-clock per scenario, but only when `VTX_TRAJ_WALL=1` asked for it —
/// the default artifact stays byte-identical across machines and runs.
fn elapsed_wall_ms(start: std::time::Instant) -> u64 {
    if vtx_obs::wall_clock_enabled() {
        start.elapsed().as_millis() as u64
    } else {
        0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 9 (serving): dispatch policies on tail latency");
    let mut workload = WorkloadSpec::bundled(vtx_bench::SEED);
    if vtx_bench::full_run() {
        workload.jobs *= 4;
    }
    println!(
        "workload: {} jobs, {} Hz open-loop arrivals, {} videos, Table IV fleet\n",
        workload.jobs,
        workload.arrival_rate_hz,
        workload.videos.len()
    );

    let mut reports: Vec<ServingReport> = Vec::new();
    let mut alert_counts: Vec<u64> = Vec::new();
    let mut walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let start = std::time::Instant::now();
        let out = simulate(&workload, Fleet::table_iv(), policy, ServeConfig::default())?;
        walls.push(elapsed_wall_ms(start));
        alert_counts.push(out.obs.alerts().len() as u64);
        reports.push(out.report);
    }

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "policy", "p50_ms", "p90_ms", "p99_ms", "tput", "shed%", "viol%"
    );
    for r in &reports {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>8.2}",
            r.policy,
            r.sojourn.p50_us as f64 / 1e3,
            r.sojourn.p90_us as f64 / 1e3,
            r.sojourn.p99_us as f64 / 1e3,
            r.throughput_jps,
            r.shed_rate() * 100.0,
            r.violation_rate() * 100.0
        );
    }

    let random = &reports[0];
    let smart = &reports[2];
    let port = &reports[3];
    println!(
        "\nsmart over random: p99 {:+.1} %, mean {:+.1} %",
        (smart.sojourn.p99_us as f64 / random.sojourn.p99_us as f64 - 1.0) * 100.0,
        (smart.sojourn.mean_us as f64 / random.sojourn.mean_us as f64 - 1.0) * 100.0
    );
    println!(
        "port over smart:  p99 {:+.1} %, mean {:+.1} %",
        (port.sojourn.p99_us as f64 / smart.sojourn.p99_us as f64 - 1.0) * 100.0,
        (port.sojourn.mean_us as f64 / smart.sojourn.mean_us as f64 - 1.0) * 100.0
    );
    assert!(
        smart.sojourn.p99_us < random.sojourn.p99_us,
        "characterization-driven dispatch must beat random on p99 sojourn"
    );
    assert!(
        port.sojourn.p99_us <= smart.sojourn.p99_us,
        "port-informed dispatch must be no worse than smart on p99 sojourn \
         ({} vs {})",
        port.sojourn.p99_us,
        smart.sojourn.p99_us
    );

    // Faulted restatement: same policies, 8-way fleet, two servers killed
    // at 30% of the run plus one 3x fail-slow straggler. The placement
    // claim must survive fault injection, and the chaos columns
    // (availability / goodput / MTTR) must be a pure function of the seed.
    vtx_bench::banner("Figure 9 (serving, faulted): kill 2 of 8 + straggler");
    let jobs = workload.generate()?;
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap_or(0);
    let mut faulted: Vec<ServingReport> = Vec::new();
    let mut f_alert_counts: Vec<u64> = Vec::new();
    let mut f_walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let cfg = ServeConfig {
            chaos: ChaosConfig::kill_two_straggle_one(workload.seed, 8, horizon),
            ..ServeConfig::default()
        };
        let start = std::time::Instant::now();
        let out = simulate_trace(&jobs, workload.seed, Fleet::sized(8)?, policy, cfg)?;
        f_walls.push(elapsed_wall_ms(start));
        f_alert_counts.push(out.obs.alerts().len() as u64);
        faulted.push(out.report);
    }

    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "policy", "p99_ms", "tput", "goodput", "avail%", "requeue", "mttr_ms"
    );
    for r in &faulted {
        println!(
            "{:<12} {:>10.1} {:>8.2} {:>8.2} {:>8.2} {:>8} {:>10.1}",
            r.policy,
            r.sojourn.p99_us as f64 / 1e3,
            r.throughput_jps,
            r.goodput_jps,
            r.availability * 100.0,
            r.faults.requeued,
            r.mttr_us as f64 / 1e3
        );
    }

    let f_random = &faulted[0];
    let f_smart = &faulted[2];
    println!(
        "\nsmart over random (faulted): p99 {:+.1} %",
        (f_smart.sojourn.p99_us as f64 / f_random.sojourn.p99_us as f64 - 1.0) * 100.0
    );
    assert!(
        f_smart.sojourn.p99_us < f_random.sojourn.p99_us,
        "health-aware smart dispatch must beat random on p99 even under \
         faults ({} vs {})",
        f_smart.sojourn.p99_us,
        f_random.sojourn.p99_us
    );
    for r in &faulted {
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "{}: every admitted job must reach exactly one terminal state",
            r.policy
        );
        assert_eq!(r.faults.crashes, 2, "{}: two crashes injected", r.policy);
    }

    // Segmented restatement: the same faulted fleet and fault plan, but the
    // first 60 catalog jobs decompose into per-(segment, rung) dispatch
    // units across the standard 3-rung ladder. The comparison the paper's
    // workload motivates: losing a server now requeues ~one segment's worth
    // of work instead of whole clips, so the faulted tail shrinks.
    vtx_bench::banner("Figure 9 (serving, segmented): per-(segment, rung) units under faults");
    let parents: Vec<_> = jobs.iter().take(60).cloned().collect();
    let seg_opts = SegmentOptions {
        target_ms: 100,
        ..SegmentOptions::default()
    };
    let plan = SegmentPlan::expand(&parents, &seg_opts)?;
    let seg_horizon = plan
        .units
        .iter()
        .map(|u| u.arrival_us)
        .max()
        .unwrap_or(0)
        .max(1);
    println!(
        "{} catalog jobs -> {} units ({} rungs, target {} ms)\n",
        plan.parents.len(),
        plan.units.len(),
        plan.ladder.rungs.len(),
        plan.target_ms
    );
    let mut segmented: Vec<ServingReport> = Vec::new();
    let mut s_alert_counts: Vec<u64> = Vec::new();
    let mut s_walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let cfg = ServeConfig {
            chaos: ChaosConfig::kill_two_straggle_one(workload.seed, 8, seg_horizon),
            unit_frames: plan.unit_frames(),
            ..ServeConfig::default()
        };
        let start = std::time::Instant::now();
        let out = simulate_trace(&plan.units, workload.seed, Fleet::sized(8)?, policy, cfg)?;
        s_walls.push(elapsed_wall_ms(start));
        s_alert_counts.push(out.obs.alerts().len() as u64);
        let mut report = out.report;
        report.segments = Some(plan.stats(&out.event_log));
        segmented.push(report);
    }

    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "policy", "p99_ms", "requeue", "units", "manifests", "avail%"
    );
    for r in &segmented {
        let s = r.segments.as_ref().expect("segment stats attached");
        println!(
            "{:<12} {:>10.1} {:>8} {:>7}/{:<3} {:>6}/{:<3} {:>8.2}",
            r.policy,
            r.sojourn.p99_us as f64 / 1e3,
            r.faults.requeued,
            s.units_complete,
            s.units,
            s.parents_complete,
            s.parents,
            r.availability * 100.0
        );
    }
    for r in &segmented {
        let s = r.segments.as_ref().expect("segment stats attached");
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "{}: segmented conservation — every unit reaches one terminal state",
            r.policy
        );
        assert_eq!(s.units, r.offered, "{}: every unit was offered", r.policy);
        assert!(
            s.parents_complete > 0,
            "{}: some manifests must assemble even under faults",
            r.policy
        );
    }

    vtx_bench::save_json("fig9_serving", &reports);
    vtx_bench::save_json("fig9_serving_faulted", &faulted);
    vtx_bench::save_json("fig9_serving_segmented", &segmented);

    // Machine-readable trajectory: one row per (scenario, policy), every
    // field integral, schema-validated before it is written. CI regenerates
    // this file and byte-compares it against the committed BENCH_serving.json.
    let mut traj = BenchTrajectory::new("fig9_serving");
    for (i, r) in reports.iter().enumerate() {
        traj.push(trajectory_row(
            "baseline",
            r,
            5,
            0,
            0,
            alert_counts[i],
            walls[i],
        ));
    }
    for (i, r) in faulted.iter().enumerate() {
        traj.push(trajectory_row(
            "faulted",
            r,
            8,
            0,
            0,
            f_alert_counts[i],
            f_walls[i],
        ));
    }
    for (i, r) in segmented.iter().enumerate() {
        traj.push(trajectory_row(
            "segmented",
            r,
            8,
            0,
            plan.units.len() as u64,
            s_alert_counts[i],
            s_walls[i],
        ));
    }
    let json = traj.to_json();
    BenchTrajectory::validate_str(&json).expect("trajectory validates against its own schema");
    let path = vtx_bench::results_dir().join("BENCH_serving.json");
    std::fs::write(&path, &json)?;
    println!("[artifact] {}", path.display());
    Ok(())
}
