//! Figure 9, extended from makespan to tail latency — the online serving
//! restatement of the scheduler comparison: random / round-robin / smart /
//! port-informed dispatch over the bundled open-loop workload on the
//! Table IV fleet, judged on p50/p90/p99 sojourn time, shed rate and SLO
//! violations. The engine bills the port-refined cost, so the `port`
//! policy optimizes the true objective while `smart` optimizes a
//! port-blind approximation of it.

use vtx_obs::{milli, BenchTrajectory, TrajectoryRow};
use vtx_serve::chaos::ChaosConfig;
use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::report::ServingReport;
use vtx_serve::segment::{SegmentOptions, SegmentPlan};
use vtx_serve::service::ServeConfig;
use vtx_serve::sim::{simulate, simulate_trace};
use vtx_serve::workload::WorkloadSpec;

/// Flatten one run (exact report + observability plane) into a trajectory
/// row — every field integral so the artifact byte-compares across runs.
fn trajectory_row(
    scenario: &str,
    r: &ServingReport,
    servers: u64,
    cells: u64,
    segments: u64,
    alerts: u64,
    wall_ms: u64,
) -> TrajectoryRow {
    TrajectoryRow {
        scenario: scenario.to_owned(),
        policy: r.policy.clone(),
        seed: r.seed,
        servers,
        cells,
        segments,
        offered: r.offered,
        completed: r.completed,
        slo_violations: r.slo_violations,
        shed: r.shed_total(),
        shed_rung: r.shed_by_rung.first().copied().unwrap_or(0),
        p50_sojourn_us: r.sojourn.p50_us,
        p99_sojourn_us: r.sojourn.p99_us,
        throughput_milli_jps: milli(r.throughput_jps),
        goodput_milli_jps: milli(r.goodput_jps),
        availability_milli: milli(r.availability),
        cache_hit_milli: r.cache.as_ref().map_or(0, vtx_cache::CacheStats::hit_milli),
        alerts,
        makespan_us: r.makespan_us,
        wall_ms,
    }
}

/// Bytes of the distinct artifacts a plan's trace requests — the "hot set"
/// a perfectly sized cache would hold exactly once. Distinctness matches
/// the cache key: (video, preset, crf, refs, rung, seg).
fn hot_set_bytes(plan: &SegmentPlan, unit_bytes: &[u64]) -> u64 {
    let mut uniq: std::collections::BTreeMap<(String, String, u8, u8, u64, u64), u64> =
        std::collections::BTreeMap::new();
    for (i, u) in plan.units.iter().enumerate() {
        uniq.insert(
            (
                u.task.video.clone(),
                u.task.preset.name().to_owned(),
                u.task.crf,
                u.task.refs,
                plan.meta[i].rung as u64,
                plan.meta[i].seg as u64,
            ),
            unit_bytes[i],
        );
    }
    uniq.values().sum()
}

/// Wall-clock per scenario, but only when `VTX_TRAJ_WALL=1` asked for it —
/// the default artifact stays byte-identical across machines and runs.
fn elapsed_wall_ms(start: std::time::Instant) -> u64 {
    if vtx_obs::wall_clock_enabled() {
        start.elapsed().as_millis() as u64
    } else {
        0
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 9 (serving): dispatch policies on tail latency");
    let mut workload = WorkloadSpec::bundled(vtx_bench::SEED);
    if vtx_bench::full_run() {
        workload.jobs *= 4;
    }
    println!(
        "workload: {} jobs, {} Hz open-loop arrivals, {} videos, Table IV fleet\n",
        workload.jobs,
        workload.arrival_rate_hz,
        workload.videos.len()
    );

    let mut reports: Vec<ServingReport> = Vec::new();
    let mut alert_counts: Vec<u64> = Vec::new();
    let mut walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let start = std::time::Instant::now();
        let out = simulate(&workload, Fleet::table_iv(), policy, ServeConfig::default())?;
        walls.push(elapsed_wall_ms(start));
        alert_counts.push(out.obs.alerts().len() as u64);
        reports.push(out.report);
    }

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "policy", "p50_ms", "p90_ms", "p99_ms", "tput", "shed%", "viol%"
    );
    for r in &reports {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>8.2}",
            r.policy,
            r.sojourn.p50_us as f64 / 1e3,
            r.sojourn.p90_us as f64 / 1e3,
            r.sojourn.p99_us as f64 / 1e3,
            r.throughput_jps,
            r.shed_rate() * 100.0,
            r.violation_rate() * 100.0
        );
    }

    let random = &reports[0];
    let smart = &reports[2];
    let port = &reports[3];
    println!(
        "\nsmart over random: p99 {:+.1} %, mean {:+.1} %",
        (smart.sojourn.p99_us as f64 / random.sojourn.p99_us as f64 - 1.0) * 100.0,
        (smart.sojourn.mean_us as f64 / random.sojourn.mean_us as f64 - 1.0) * 100.0
    );
    println!(
        "port over smart:  p99 {:+.1} %, mean {:+.1} %",
        (port.sojourn.p99_us as f64 / smart.sojourn.p99_us as f64 - 1.0) * 100.0,
        (port.sojourn.mean_us as f64 / smart.sojourn.mean_us as f64 - 1.0) * 100.0
    );
    assert!(
        smart.sojourn.p99_us < random.sojourn.p99_us,
        "characterization-driven dispatch must beat random on p99 sojourn"
    );
    assert!(
        port.sojourn.p99_us <= smart.sojourn.p99_us,
        "port-informed dispatch must be no worse than smart on p99 sojourn \
         ({} vs {})",
        port.sojourn.p99_us,
        smart.sojourn.p99_us
    );

    // Faulted restatement: same policies, 8-way fleet, two servers killed
    // at 30% of the run plus one 3x fail-slow straggler. The placement
    // claim must survive fault injection, and the chaos columns
    // (availability / goodput / MTTR) must be a pure function of the seed.
    vtx_bench::banner("Figure 9 (serving, faulted): kill 2 of 8 + straggler");
    let jobs = workload.generate()?;
    let horizon = jobs.iter().map(|j| j.arrival_us).max().unwrap_or(0);
    let mut faulted: Vec<ServingReport> = Vec::new();
    let mut f_alert_counts: Vec<u64> = Vec::new();
    let mut f_walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let cfg = ServeConfig {
            chaos: ChaosConfig::kill_two_straggle_one(workload.seed, 8, horizon),
            ..ServeConfig::default()
        };
        let start = std::time::Instant::now();
        let out = simulate_trace(&jobs, workload.seed, Fleet::sized(8)?, policy, cfg)?;
        f_walls.push(elapsed_wall_ms(start));
        f_alert_counts.push(out.obs.alerts().len() as u64);
        faulted.push(out.report);
    }

    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "policy", "p99_ms", "tput", "goodput", "avail%", "requeue", "mttr_ms"
    );
    for r in &faulted {
        println!(
            "{:<12} {:>10.1} {:>8.2} {:>8.2} {:>8.2} {:>8} {:>10.1}",
            r.policy,
            r.sojourn.p99_us as f64 / 1e3,
            r.throughput_jps,
            r.goodput_jps,
            r.availability * 100.0,
            r.faults.requeued,
            r.mttr_us as f64 / 1e3
        );
    }

    let f_random = &faulted[0];
    let f_smart = &faulted[2];
    println!(
        "\nsmart over random (faulted): p99 {:+.1} %",
        (f_smart.sojourn.p99_us as f64 / f_random.sojourn.p99_us as f64 - 1.0) * 100.0
    );
    assert!(
        f_smart.sojourn.p99_us < f_random.sojourn.p99_us,
        "health-aware smart dispatch must beat random on p99 even under \
         faults ({} vs {})",
        f_smart.sojourn.p99_us,
        f_random.sojourn.p99_us
    );
    for r in &faulted {
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "{}: every admitted job must reach exactly one terminal state",
            r.policy
        );
        assert_eq!(r.faults.crashes, 2, "{}: two crashes injected", r.policy);
    }

    // Segmented restatement: the same faulted fleet and fault plan, but the
    // first 60 catalog jobs decompose into per-(segment, rung) dispatch
    // units across the standard 3-rung ladder. The comparison the paper's
    // workload motivates: losing a server now requeues ~one segment's worth
    // of work instead of whole clips, so the faulted tail shrinks.
    vtx_bench::banner("Figure 9 (serving, segmented): per-(segment, rung) units under faults");
    let parents: Vec<_> = jobs.iter().take(60).cloned().collect();
    let seg_opts = SegmentOptions {
        target_ms: 100,
        ..SegmentOptions::default()
    };
    let plan = SegmentPlan::expand(&parents, &seg_opts)?;
    let seg_horizon = plan
        .units
        .iter()
        .map(|u| u.arrival_us)
        .max()
        .unwrap_or(0)
        .max(1);
    println!(
        "{} catalog jobs -> {} units ({} rungs, target {} ms)\n",
        plan.parents.len(),
        plan.units.len(),
        plan.ladder.rungs.len(),
        plan.target_ms
    );
    let mut segmented: Vec<ServingReport> = Vec::new();
    let mut s_alert_counts: Vec<u64> = Vec::new();
    let mut s_walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let cfg = ServeConfig {
            chaos: ChaosConfig::kill_two_straggle_one(workload.seed, 8, seg_horizon),
            unit_frames: plan.unit_frames(),
            ..ServeConfig::default()
        };
        let start = std::time::Instant::now();
        let out = simulate_trace(&plan.units, workload.seed, Fleet::sized(8)?, policy, cfg)?;
        s_walls.push(elapsed_wall_ms(start));
        s_alert_counts.push(out.obs.alerts().len() as u64);
        let mut report = out.report;
        report.segments = Some(plan.stats(&out.event_log));
        segmented.push(report);
    }

    println!(
        "{:<12} {:>10} {:>8} {:>10} {:>10} {:>8}",
        "policy", "p99_ms", "requeue", "units", "manifests", "avail%"
    );
    for r in &segmented {
        let s = r.segments.as_ref().expect("segment stats attached");
        println!(
            "{:<12} {:>10.1} {:>8} {:>7}/{:<3} {:>6}/{:<3} {:>8.2}",
            r.policy,
            r.sojourn.p99_us as f64 / 1e3,
            r.faults.requeued,
            s.units_complete,
            s.units,
            s.parents_complete,
            s.parents,
            r.availability * 100.0
        );
    }
    for r in &segmented {
        let s = r.segments.as_ref().expect("segment stats attached");
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "{}: segmented conservation — every unit reaches one terminal state",
            r.policy
        );
        assert_eq!(s.units, r.offered, "{}: every unit was offered", r.policy);
        assert!(
            s.parents_complete > 0,
            "{}: some manifests must assemble even under faults",
            r.policy
        );
    }

    // Cached restatement: the same faulted segmented fleet, but arrivals
    // follow a Zipf(1.0) popularity model over the catalog (hot videos
    // repeat, live requests pin the fast knob vector) and a byte-bounded
    // segment cache fronts the transcode path. Capacity is ~10% of the
    // hot set (the bytes of the distinct artifacts the trace requests),
    // so eviction policy actually matters. The economics claim: at Zipf
    // skew, a small cache converts repeat transcodes into sub-millisecond
    // lookups, and smart dispatch with a cache strictly beats the same
    // uncached faulted run on both p99 sojourn and goodput.
    vtx_bench::banner("Figure 9 (serving, cached): popularity-aware segment cache");
    let pop_workload = WorkloadSpec::bundled(workload.seed).with_popularity(1.0, 0.3);
    let pop_jobs = pop_workload.generate()?;
    let pop_parents: Vec<_> = pop_jobs.iter().take(60).cloned().collect();
    let cplan = SegmentPlan::expand(&pop_parents, &seg_opts)?;
    let c_horizon = cplan
        .units
        .iter()
        .map(|u| u.arrival_us)
        .max()
        .unwrap_or(0)
        .max(1);
    let unit_bytes = cplan.unit_bytes()?;
    let hot_bytes = hot_set_bytes(&cplan, &unit_bytes);
    let offered_bytes: u64 = unit_bytes.iter().sum();
    let capacity = offered_bytes / 10;
    println!(
        "{} Zipf(1.0) jobs -> {} units, hot set {} KiB of {} KiB offered, \
         cache {} KiB (~10% of offered)\n",
        cplan.parents.len(),
        cplan.units.len(),
        hot_bytes >> 10,
        offered_bytes >> 10,
        capacity >> 10
    );

    let cached_cfg = |cache: Option<vtx_cache::CacheSpec>| ServeConfig {
        chaos: ChaosConfig::kill_two_straggle_one(workload.seed, 8, c_horizon),
        unit_frames: cplan.unit_frames(),
        unit_rungs: cplan.unit_rungs(),
        unit_segs: cplan.unit_segs(),
        unit_bytes: unit_bytes.clone(),
        cache,
        ..ServeConfig::default()
    };
    // The uncached control: identical trace, faults and unit tables.
    let uncached_smart = simulate_trace(
        &cplan.units,
        workload.seed,
        Fleet::sized(8)?,
        policy_by_name("smart", workload.seed).expect("known policy"),
        cached_cfg(None),
    )?;

    let mut cached: Vec<ServingReport> = Vec::new();
    let mut c_alert_counts: Vec<u64> = Vec::new();
    let mut c_walls: Vec<u64> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let cfg = cached_cfg(Some(vtx_cache::CacheSpec {
            capacity_bytes: capacity,
            policy: vtx_cache::EvictPolicy::Gdsf,
            lookup_us: 250,
        }));
        let start = std::time::Instant::now();
        let out = simulate_trace(&cplan.units, workload.seed, Fleet::sized(8)?, policy, cfg)?;
        c_walls.push(elapsed_wall_ms(start));
        c_alert_counts.push(out.obs.alerts().len() as u64);
        let mut report = out.report;
        report.segments = Some(cplan.stats(&out.event_log));
        cached.push(report);
    }

    println!(
        "{:<12} {:>8} {:>10} {:>8} {:>8} {:>10}",
        "policy", "hit%", "p99_ms", "goodput", "evict", "shed_rung0"
    );
    for r in &cached {
        let c = r.cache.as_ref().expect("cache stats attached");
        println!(
            "{:<12} {:>8.1} {:>10.1} {:>8.2} {:>8} {:>10}",
            r.policy,
            c.hit_milli() as f64 / 10.0,
            r.sojourn.p99_us as f64 / 1e3,
            r.goodput_jps,
            c.evictions,
            r.shed_by_rung.first().copied().unwrap_or(0)
        );
    }

    let c_smart = &cached[2];
    let c_stats = c_smart.cache.as_ref().expect("cache stats attached");
    println!(
        "\nsmart cached vs uncached: p99 {:+.1} %, goodput {:+.1} %, hit rate {:.1} %",
        (c_smart.sojourn.p99_us as f64 / uncached_smart.report.sojourn.p99_us as f64 - 1.0) * 100.0,
        (c_smart.goodput_jps / uncached_smart.report.goodput_jps - 1.0) * 100.0,
        c_stats.hit_milli() as f64 / 10.0
    );
    assert!(
        c_stats.hit_milli() >= 400,
        "Zipf(1.0) at ~10% hot-set capacity must land >= 40% hits, got {} milli",
        c_stats.hit_milli()
    );
    assert!(
        c_smart.sojourn.p99_us < uncached_smart.report.sojourn.p99_us,
        "cached smart must strictly beat the uncached faulted baseline on \
         p99 sojourn ({} vs {})",
        c_smart.sojourn.p99_us,
        uncached_smart.report.sojourn.p99_us
    );
    assert!(
        c_smart.goodput_jps > uncached_smart.report.goodput_jps,
        "cached smart must strictly beat the uncached faulted baseline on \
         goodput ({} vs {})",
        c_smart.goodput_jps,
        uncached_smart.report.goodput_jps
    );
    for r in &cached {
        assert_eq!(
            r.completed + r.shed_total(),
            r.offered,
            "{}: cached conservation — hits and transcodes both terminate",
            r.policy
        );
    }

    // Cache-economics sweep: Zipf skew × capacity × eviction policy under
    // smart dispatch. Hit rate rises with skew and capacity; GDSF protects
    // costly-to-recompute artifacts when capacity is scarce.
    vtx_bench::banner("Cache economics: Zipf skew x capacity x eviction policy");
    println!(
        "{:>6} {:>6} {:>8} {:>8} {:>8} {:>10} {:>8}",
        "zipf", "cap%", "policy", "hit%", "p99_ms", "goodput", "evict"
    );
    for &s in &[0.8, 1.0, 1.2] {
        let sw = WorkloadSpec::bundled(workload.seed).with_popularity(s, 0.3);
        let sj = sw.generate()?;
        let sp: Vec<_> = sj.iter().take(60).cloned().collect();
        let splan = SegmentPlan::expand(&sp, &seg_opts)?;
        let sh = splan
            .units
            .iter()
            .map(|u| u.arrival_us)
            .max()
            .unwrap_or(0)
            .max(1);
        let sb = splan.unit_bytes()?;
        let shot: u64 = sb.iter().sum();
        for &cap_pct in &[5u64, 10, 20] {
            for evict in vtx_cache::EvictPolicy::ALL {
                let cfg = ServeConfig {
                    chaos: ChaosConfig::kill_two_straggle_one(workload.seed, 8, sh),
                    unit_frames: splan.unit_frames(),
                    unit_rungs: splan.unit_rungs(),
                    unit_segs: splan.unit_segs(),
                    unit_bytes: sb.clone(),
                    cache: Some(vtx_cache::CacheSpec {
                        capacity_bytes: shot * cap_pct / 100,
                        policy: evict,
                        lookup_us: 250,
                    }),
                    ..ServeConfig::default()
                };
                let out = simulate_trace(
                    &splan.units,
                    workload.seed,
                    Fleet::sized(8)?,
                    policy_by_name("smart", workload.seed).expect("known policy"),
                    cfg,
                )?;
                let c = out.report.cache.as_ref().expect("cache stats");
                println!(
                    "{:>6.1} {:>6} {:>8} {:>8.1} {:>8.1} {:>10.2} {:>8}",
                    s,
                    cap_pct,
                    evict.name(),
                    c.hit_milli() as f64 / 10.0,
                    out.report.sojourn.p99_us as f64 / 1e3,
                    out.report.goodput_jps,
                    c.evictions
                );
            }
        }
    }

    vtx_bench::save_json("fig9_serving", &reports);
    vtx_bench::save_json("fig9_serving_faulted", &faulted);
    vtx_bench::save_json("fig9_serving_segmented", &segmented);
    vtx_bench::save_json("fig9_serving_cached", &cached);

    // Machine-readable trajectory: one row per (scenario, policy), every
    // field integral, schema-validated before it is written. CI regenerates
    // this file and byte-compares it against the committed BENCH_serving.json.
    let mut traj = BenchTrajectory::new("fig9_serving");
    for (i, r) in reports.iter().enumerate() {
        traj.push(trajectory_row(
            "baseline",
            r,
            5,
            0,
            0,
            alert_counts[i],
            walls[i],
        ));
    }
    for (i, r) in faulted.iter().enumerate() {
        traj.push(trajectory_row(
            "faulted",
            r,
            8,
            0,
            0,
            f_alert_counts[i],
            f_walls[i],
        ));
    }
    for (i, r) in segmented.iter().enumerate() {
        traj.push(trajectory_row(
            "segmented",
            r,
            8,
            0,
            plan.units.len() as u64,
            s_alert_counts[i],
            s_walls[i],
        ));
    }
    for (i, r) in cached.iter().enumerate() {
        traj.push(trajectory_row(
            "cached",
            r,
            8,
            0,
            cplan.units.len() as u64,
            c_alert_counts[i],
            c_walls[i],
        ));
    }
    let json = traj.to_json();
    BenchTrajectory::validate_str(&json).expect("trajectory validates against its own schema");
    let path = vtx_bench::results_dir().join("BENCH_serving.json");
    std::fs::write(&path, &json)?;
    println!("[artifact] {}", path.display());
    Ok(())
}
