//! Figure 9, extended from makespan to tail latency — the online serving
//! restatement of the scheduler comparison: random / round-robin / smart /
//! port-informed dispatch over the bundled open-loop workload on the
//! Table IV fleet, judged on p50/p90/p99 sojourn time, shed rate and SLO
//! violations. The engine bills the port-refined cost, so the `port`
//! policy optimizes the true objective while `smart` optimizes a
//! port-blind approximation of it.

use vtx_serve::fleet::Fleet;
use vtx_serve::policy::policy_by_name;
use vtx_serve::report::ServingReport;
use vtx_serve::service::ServeConfig;
use vtx_serve::sim::simulate;
use vtx_serve::workload::WorkloadSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 9 (serving): dispatch policies on tail latency");
    let mut workload = WorkloadSpec::bundled(vtx_bench::SEED);
    if vtx_bench::full_run() {
        workload.jobs *= 4;
    }
    println!(
        "workload: {} jobs, {} Hz open-loop arrivals, {} videos, Table IV fleet\n",
        workload.jobs,
        workload.arrival_rate_hz,
        workload.videos.len()
    );

    let mut reports: Vec<ServingReport> = Vec::new();
    for name in ["random", "round_robin", "smart", "port"] {
        let policy = policy_by_name(name, workload.seed).expect("known policy");
        let out = simulate(&workload, Fleet::table_iv(), policy, ServeConfig::default())?;
        reports.push(out.report);
    }

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "policy", "p50_ms", "p90_ms", "p99_ms", "tput", "shed%", "viol%"
    );
    for r in &reports {
        println!(
            "{:<12} {:>10.1} {:>10.1} {:>10.1} {:>8.2} {:>8.2} {:>8.2}",
            r.policy,
            r.sojourn.p50_us as f64 / 1e3,
            r.sojourn.p90_us as f64 / 1e3,
            r.sojourn.p99_us as f64 / 1e3,
            r.throughput_jps,
            r.shed_rate() * 100.0,
            r.violation_rate() * 100.0
        );
    }

    let random = &reports[0];
    let smart = &reports[2];
    let port = &reports[3];
    println!(
        "\nsmart over random: p99 {:+.1} %, mean {:+.1} %",
        (smart.sojourn.p99_us as f64 / random.sojourn.p99_us as f64 - 1.0) * 100.0,
        (smart.sojourn.mean_us as f64 / random.sojourn.mean_us as f64 - 1.0) * 100.0
    );
    println!(
        "port over smart:  p99 {:+.1} %, mean {:+.1} %",
        (port.sojourn.p99_us as f64 / smart.sojourn.p99_us as f64 - 1.0) * 100.0,
        (port.sojourn.mean_us as f64 / smart.sojourn.mean_us as f64 - 1.0) * 100.0
    );
    assert!(
        smart.sojourn.p99_us < random.sojourn.p99_us,
        "characterization-driven dispatch must beat random on p99 sojourn"
    );
    assert!(
        port.sojourn.p99_us <= smart.sojourn.p99_us,
        "port-informed dispatch must be no worse than smart on p99 sojourn \
         ({} vs {})",
        port.sojourn.p99_us,
        smart.sojourn.p99_us
    );

    vtx_bench::save_json("fig9_serving", &reports);
    Ok(())
}
