//! Figure 4 — the two projections of the crf × refs sweep:
//! (A) PSNR vs bitrate per-crf lines (the line length is the size range
//!     reachable by varying refs), and
//! (B) transcoding time vs refs per-crf series (the diminishing-returns
//!     elbow).

use vtx_codec::EncoderConfig;
use vtx_core::experiments::sweep::{
    crf_refs_sweep, full_refs_grid, projection_bitrate_range, projection_time_vs_refs,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let crfs: Vec<u8> = if vtx_bench::full_run() {
        (1..=51).step_by(2).collect()
    } else {
        vec![10, 18, 26, 34, 42]
    };
    let refs = full_refs_grid();
    vtx_bench::banner("Figure 4: projections A (PSNR vs bitrate) and B (time vs refs)");

    let t = vtx_bench::sweep_transcoder()?;
    let points = crf_refs_sweep(
        &t,
        &crfs,
        &refs,
        &EncoderConfig::default(),
        &vtx_bench::sweep_options(),
    )?;

    println!("\nprojection A: per-crf bitrate range across refs 1..16");
    println!(
        "{:>4} {:>9} {:>12} {:>12} {:>11}",
        "crf", "PSNR(dB)", "min kbps", "max kbps", "line length"
    );
    for (crf, min, max) in projection_bitrate_range(&points) {
        let psnr = points
            .iter()
            .filter(|p| p.crf == crf)
            .map(|p| p.psnr_db)
            .sum::<f64>()
            / refs.len() as f64;
        println!(
            "{crf:>4} {psnr:>9.2} {min:>12.1} {max:>12.1} {:>11.1}",
            max - min
        );
    }

    println!("\nprojection B: time (ms) vs refs, one series per crf");
    print!("{:>4} |", "crf");
    for r in &refs {
        print!(" r{r:<5}");
    }
    println!();
    for (crf, series) in projection_time_vs_refs(&points) {
        print!("{crf:>4} |");
        for (_, secs) in &series {
            print!(" {:>5.2} ", secs * 1e3);
        }
        println!();
    }

    println!("\npaper's takeaways to check:");
    println!("  - low crf lines are longer (benefit more from refs)");
    println!("  - every series flattens as refs grows (diminishing returns)");

    vtx_bench::save_json("fig4_projections", &points);
    Ok(())
}
