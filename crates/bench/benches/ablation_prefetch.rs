//! Ablation: L1d hardware prefetchers on the transcoding workload
//! (extension beyond Table IV — the paper's configurations imply none).
//!
//! Transcoding's reference windows are stride-friendly, so a stream
//! prefetcher should recover a slice of the back-end-memory bound.

use vtx_codec::EncoderConfig;
use vtx_core::TranscodeOptions;
use vtx_uarch::config::UarchConfig;
use vtx_uarch::prefetch::PrefetcherKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Ablation: L1d prefetchers on the bike transcode (crf 23, refs 3)");
    let t = vtx_bench::sweep_transcoder()?;
    let cfg = EncoderConfig::default();

    println!(
        "{:<10} {:>10} {:>9} {:>10} {:>10}",
        "prefetch", "L1d MPKI", "L2 MPKI", "BE-mem", "time(ms)"
    );
    let mut rows = Vec::new();
    for (name, kind) in [
        ("none", PrefetcherKind::None),
        ("next-line", PrefetcherKind::NextLine),
        ("stream", PrefetcherKind::Stream),
    ] {
        let mut uarch = UarchConfig::baseline();
        uarch.l1d_prefetcher = kind;
        uarch.name = format!("baseline+pf_{name}");
        let r = t.transcode(&cfg, &TranscodeOptions::on(uarch).with_sample_shift(1))?;
        println!(
            "{:<10} {:>10.3} {:>9.3} {:>9.2}% {:>10.3}",
            name,
            r.summary.mpki.l1d,
            r.summary.mpki.l2,
            r.summary.topdown.backend_memory * 100.0,
            r.seconds * 1e3
        );
        rows.push((name.to_owned(), r.summary));
    }
    vtx_bench::save_json("ablation_prefetch", &rows);
    Ok(())
}
