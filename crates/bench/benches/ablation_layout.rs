//! Ablation: code-layout cold-gap factor.
//!
//! The default (unoptimized) binary model spreads hot kernels apart with
//! cold code between them (`DEFAULT_GAP_FACTOR`). This ablation sweeps the
//! gap to show how much of the front-end bound comes from layout — the
//! headroom AutoFDO harvests.

use vtx_codec::{instr, EncoderConfig};
use vtx_core::TranscodeOptions;
use vtx_trace::layout::CodeLayout;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Ablation: cold-code gap factor in the binary layout model");
    let t = vtx_bench::sweep_transcoder()?;
    let cfg = EncoderConfig::default();
    let kernels = instr::kernel_table();
    let order: Vec<usize> = (0..kernels.len()).collect();

    println!(
        "{:<5} {:>12} {:>10} {:>11} {:>9} {:>10}",
        "gap", "span(KiB)", "L1i MPKI", "iTLB MPKI", "FE slots", "time(ms)"
    );
    let mut rows = Vec::new();
    for gap in [0u32, 2, 4, 7, 12] {
        let layout = CodeLayout::with_order_and_gap(kernels, &order, gap);
        let span = layout.span_bytes();
        let mut opts = TranscodeOptions::default().with_sample_shift(1);
        opts.layout = Some(layout);
        let r = t.transcode(&cfg, &opts)?;
        println!(
            "{:<5} {:>12} {:>10.3} {:>11.4} {:>8.2}% {:>10.3}",
            gap,
            span / 1024,
            r.summary.mpki.l1i,
            r.summary.mpki.itlb,
            r.summary.topdown.frontend * 100.0,
            r.seconds * 1e3
        );
        rows.push((gap, r.summary));
    }
    println!("\n(gap 7 is the default linker-like layout; gap 0 is ideal packing)");
    vtx_bench::save_json("ablation_layout", &rows);
    Ok(())
}
