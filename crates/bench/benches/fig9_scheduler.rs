//! Figure 9 — transcoding speedup of the random / smart / best schedulers
//! over the baseline microarchitecture, on the Table III tasks and
//! Table IV configurations.

use vtx_core::experiments::scheduler::scheduler_study;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    vtx_bench::banner("Figure 9: scheduler speedup over the baseline configuration");
    let shift = if vtx_bench::full_run() { 0 } else { 1 };
    let study = scheduler_study(vtx_bench::SEED, shift)?;

    println!("\nmeasured seconds (rows = Table III tasks):");
    print!("{:>10}", "baseline");
    for name in &study.config_names {
        print!("{name:>10}");
    }
    println!();
    for (i, row) in study.times.iter().enumerate() {
        print!("{:>10.5}", study.baseline_times[i]);
        for v in row {
            print!("{v:>10.5}");
        }
        println!("  <- {}", study.tasks[i].video);
    }

    println!("\nassignments (indices into {:?}):", study.config_names);
    println!("  smart: {:?}", study.smart.assignment);
    println!("  best : {:?}", study.best.assignment);

    println!("\nspeedup over baseline:");
    println!(
        "  random : {:>6.2} %",
        (study.random_speedup() - 1.0) * 100.0
    );
    println!(
        "  smart  : {:>6.2} %",
        (study.smart_speedup() - 1.0) * 100.0
    );
    println!("  best   : {:>6.2} %", (study.best_speedup() - 1.0) * 100.0);
    println!(
        "\nsmart over random: {:+.2} %  (paper: +3.72%)",
        (study.smart_over_random() - 1.0) * 100.0
    );
    println!(
        "smart matches best: {:.0} % of tasks  (paper: 75%)",
        study.smart_match_rate * 100.0
    );

    vtx_bench::save_json("fig9_scheduler", &study);
    Ok(())
}
