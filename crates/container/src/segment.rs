//! GOP-aligned segmenter over vtx bitstreams.
//!
//! A vtx bitstream is a 17-byte header followed by frame records in coding
//! order (`ftype u8` + `display u16 LE` + `qp u8` + `payload_len u32 LE` +
//! payload). When the clip was encoded with forced IDRs at the segment
//! boundaries (closed GOPs — see `EncoderConfig::with_force_kf`), every
//! record of segment *k* precedes every record of segment *k+1* in coding
//! order, so the stream splits into standalone sub-streams: copy the
//! header, patch the frame count, rebase each record's display index to
//! the segment start. Each sub-stream decodes through the real decoder
//! with no knowledge of its neighbours.

use crate::error::ContainerError;
use crate::mux::Sample;

/// Byte length of the vtx bitstream header.
pub const HEADER_LEN: usize = 17;
/// Byte length of each per-frame record header.
pub const RECORD_HEADER_LEN: usize = 8;
/// Byte offset of the `frame_count` field (u16 LE) within the header.
pub const FRAME_COUNT_OFFSET: usize = 10;
/// Byte offset of the `fps` field (u8) within the header.
pub const FPS_OFFSET: usize = 9;

/// Frame-type byte for plain intra records.
const FTYPE_I: u8 = 0;
/// Frame-type byte for forced-IDR records.
const FTYPE_IDR: u8 = 3;

/// A view of one frame record inside a vtx bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Record<'a> {
    /// Frame-type byte (0=I, 1=P, 2=B, 3=IDR).
    pub ftype: u8,
    /// Display index within the clip.
    pub display: u16,
    /// The complete record bytes (header + payload).
    pub bytes: &'a [u8],
}

impl Record<'_> {
    /// Whether this record starts a decodable segment (I or IDR).
    pub fn is_sync(&self) -> bool {
        self.ftype == FTYPE_I || self.ftype == FTYPE_IDR
    }
}

/// Walks the frame records of a vtx bitstream.
///
/// # Errors
///
/// Returns [`ContainerError::Truncated`] when the stream ends inside the
/// header or a record, [`ContainerError::Corrupt`] on a bad magic.
pub fn records(stream: &[u8]) -> Result<Vec<Record<'_>>, ContainerError> {
    if stream.len() < HEADER_LEN {
        return Err(ContainerError::Truncated {
            offset: stream.len(),
            context: "bitstream header",
        });
    }
    if &stream[0..4] != b"VTXB" {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "bitstream magic",
        });
    }
    let mut out = Vec::new();
    let mut pos = HEADER_LEN;
    while pos < stream.len() {
        if pos + RECORD_HEADER_LEN > stream.len() {
            return Err(ContainerError::Truncated {
                offset: pos,
                context: "frame record header",
            });
        }
        let ftype = stream[pos];
        let display = u16::from_le_bytes([stream[pos + 1], stream[pos + 2]]);
        let len = u32::from_le_bytes([
            stream[pos + 4],
            stream[pos + 5],
            stream[pos + 6],
            stream[pos + 7],
        ]) as usize;
        let end = pos + RECORD_HEADER_LEN + len;
        if end > stream.len() {
            return Err(ContainerError::Truncated {
                offset: pos,
                context: "frame record payload",
            });
        }
        out.push(Record {
            ftype,
            display,
            bytes: &stream[pos..end],
        });
        pos = end;
    }
    Ok(out)
}

/// GOP-aligned segment start points for a clip: `[0, g, 2g, …]` where `g`
/// is the closest whole-frame count to `target_ms` at `fps`. Always
/// includes 0; never includes `frames` itself.
pub fn segment_points(frames: u32, fps: u32, target_ms: u32) -> Vec<u32> {
    let g = (u64::from(fps) * u64::from(target_ms) / 1000).max(1) as u32;
    (0..frames.max(1)).step_by(g as usize).collect()
}

/// Splits a closed-GOP vtx bitstream into standalone sub-streams at the
/// given display-index `points` (must start with 0, strictly increasing).
///
/// # Errors
///
/// Returns [`ContainerError::Corrupt`] when a GOP straddles a cut (a record
/// of an earlier segment appears after a later segment began in coding
/// order, or a segment's first record is not a keyframe) — i.e. the stream
/// was not encoded with forced IDRs at `points`.
pub fn split_stream(stream: &[u8], points: &[u32]) -> Result<Vec<Vec<u8>>, ContainerError> {
    if points.first() != Some(&0) {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "segment points must start at frame 0",
        });
    }
    let recs = records(stream)?;
    let frames = u16::from_le_bytes([stream[FRAME_COUNT_OFFSET], stream[FRAME_COUNT_OFFSET + 1]]);
    let seg_of = |display: u16| -> usize {
        points
            .iter()
            .rposition(|&p| u32::from(display) >= p)
            .unwrap_or(0)
    };
    let mut segs: Vec<Vec<u8>> = Vec::with_capacity(points.len());
    for (i, &start) in points.iter().enumerate() {
        let end = points.get(i + 1).copied().unwrap_or(u32::from(frames));
        let count = end.saturating_sub(start) as u16;
        let mut out = stream[..HEADER_LEN].to_vec();
        out[FRAME_COUNT_OFFSET..FRAME_COUNT_OFFSET + 2].copy_from_slice(&count.to_le_bytes());
        segs.push(out);
    }
    let mut current = 0usize;
    let mut first_in_seg = true;
    for r in &recs {
        let seg = seg_of(r.display);
        if seg != current {
            if seg < current {
                return Err(ContainerError::Corrupt {
                    offset: 0,
                    context: "GOP straddles a segment cut",
                });
            }
            current = seg;
            first_in_seg = true;
        }
        if first_in_seg && !r.is_sync() {
            return Err(ContainerError::Corrupt {
                offset: 0,
                context: "segment does not start at a keyframe",
            });
        }
        first_in_seg = false;
        let mut rec = r.bytes.to_vec();
        let rebased = (u32::from(r.display) - points[seg]) as u16;
        rec[1..3].copy_from_slice(&rebased.to_le_bytes());
        segs[seg].extend_from_slice(&rec);
    }
    Ok(segs)
}

/// Converts a standalone segment stream into media-segment samples: one
/// sample per record (duration 1 tick), sync on I/IDR records.
///
/// # Errors
///
/// Propagates record-walk errors from [`records`].
pub fn segment_to_samples(segment_stream: &[u8]) -> Result<Vec<Sample>, ContainerError> {
    Ok(records(segment_stream)?
        .iter()
        .map(|r| Sample {
            duration: 1,
            sync: r.is_sync(),
            data: r.bytes.to_vec(),
        })
        .collect())
}

/// Rebuilds a standalone segment stream from a parsed media segment's
/// samples plus the init segment's codec header (frame count patched to
/// the sample count). Inverse of [`segment_to_samples`] + muxing.
pub fn samples_to_stream(codec_header: &[u8], samples: &[Sample]) -> Vec<u8> {
    let mut out = codec_header[..HEADER_LEN.min(codec_header.len())].to_vec();
    if out.len() == HEADER_LEN {
        let count = samples.len() as u16;
        out[FRAME_COUNT_OFFSET..FRAME_COUNT_OFFSET + 2].copy_from_slice(&count.to_le_bytes());
    }
    for s in samples {
        out.extend_from_slice(&s.data);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a synthetic closed-GOP stream: `frames` records in display
    /// order, keyframes at `points`.
    fn synth_stream(frames: u16, points: &[u32]) -> Vec<u8> {
        let mut s = Vec::new();
        s.extend_from_slice(b"VTXB");
        s.push(1);
        s.extend_from_slice(&64u16.to_le_bytes());
        s.extend_from_slice(&48u16.to_le_bytes());
        s.push(24);
        s.extend_from_slice(&frames.to_le_bytes());
        s.extend_from_slice(&[3, 3, 1, 0, 8]);
        for d in 0..frames {
            let ftype = if points.contains(&u32::from(d)) {
                if d == 0 {
                    0u8
                } else {
                    3u8
                }
            } else {
                1u8
            };
            s.push(ftype);
            s.extend_from_slice(&d.to_le_bytes());
            s.push(30);
            let payload = [d as u8; 3];
            s.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            s.extend_from_slice(&payload);
        }
        s
    }

    #[test]
    fn segment_points_are_gop_aligned() {
        assert_eq!(segment_points(120, 24, 2000), vec![0, 48, 96]);
        assert_eq!(segment_points(48, 24, 2000), vec![0]);
        assert_eq!(segment_points(6, 30, 2000), vec![0]);
        assert_eq!(segment_points(1, 24, 2000), vec![0]);
    }

    #[test]
    fn split_rebases_and_patches_counts() {
        let points = vec![0u32, 4];
        let stream = synth_stream(10, &points);
        let segs = split_stream(&stream, &points).unwrap();
        assert_eq!(segs.len(), 2);
        let r0 = records(&segs[0]).unwrap();
        let r1 = records(&segs[1]).unwrap();
        assert_eq!(r0.len(), 4);
        assert_eq!(r1.len(), 6);
        assert_eq!(r0[0].display, 0);
        assert_eq!(r1[0].display, 0); // rebased from 4
        assert_eq!(r1[0].ftype, 3);
        let count1 =
            u16::from_le_bytes([segs[1][FRAME_COUNT_OFFSET], segs[1][FRAME_COUNT_OFFSET + 1]]);
        assert_eq!(count1, 6);
    }

    #[test]
    fn split_rejects_open_gops() {
        // No keyframe at the cut: the second segment opens with a P record.
        let stream = synth_stream(8, &[0]);
        let err = split_stream(&stream, &[0, 4]).unwrap_err();
        assert!(matches!(err, ContainerError::Corrupt { .. }));
    }

    #[test]
    fn samples_roundtrip_to_stream() {
        let points = vec![0u32, 4];
        let stream = synth_stream(8, &points);
        let segs = split_stream(&stream, &points).unwrap();
        for seg in &segs {
            let samples = segment_to_samples(seg).unwrap();
            let rebuilt = samples_to_stream(&seg[..HEADER_LEN], &samples);
            assert_eq!(&rebuilt, seg);
        }
    }

    #[test]
    fn truncated_records_error() {
        let stream = synth_stream(4, &[0]);
        assert!(records(&stream[..10]).is_err());
        assert!(records(&stream[..HEADER_LEN + 3]).is_err());
        assert!(records(&stream[..stream.len() - 1]).is_err());
    }
}
