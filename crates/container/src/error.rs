//! Structured container errors.
//!
//! Mirrors the codec's decode-error discipline: a truncated or corrupted
//! box tree must produce an `Err` naming the byte offset and what was being
//! parsed there — never a panic. The serving layer's retry machinery
//! consumes these the same way it consumes `vtx_codec::CodecError`.

use std::fmt;

/// Why a container parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    /// The data ended before the structure at `offset` was complete.
    Truncated {
        /// Byte offset where more data was expected.
        offset: usize,
        /// What was being parsed.
        context: &'static str,
    },
    /// The bytes at `offset` are structurally invalid.
    Corrupt {
        /// Byte offset of the inconsistency.
        offset: usize,
        /// What was being parsed.
        context: &'static str,
    },
    /// A manifest line failed to parse.
    Manifest {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for ContainerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ContainerError::Truncated { offset, context } => {
                write!(f, "truncated container at byte {offset} ({context})")
            }
            ContainerError::Corrupt { offset, context } => {
                write!(f, "corrupt container at byte {offset} ({context})")
            }
            ContainerError::Manifest { line, message } => {
                write!(f, "manifest line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ContainerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_offset_and_context() {
        let e = ContainerError::Truncated {
            offset: 12,
            context: "box header",
        };
        assert_eq!(e.to_string(), "truncated container at byte 12 (box header)");
        let e = ContainerError::Corrupt {
            offset: 3,
            context: "fourcc",
        };
        assert!(e.to_string().contains("corrupt"));
        let e = ContainerError::Manifest {
            line: 4,
            message: "bad EXTINF".into(),
        };
        assert_eq!(e.to_string(), "manifest line 4: bad EXTINF");
    }
}
