//! CMAF-style segment muxing: an init segment carrying the codec
//! configuration and media segments carrying the samples.
//!
//! The layout follows fragmented MP4: the init segment is
//! `ftyp` + `moov` (movie header, one video track, a sample-description
//! table whose custom `vtxb` sample entry carries the 17-byte vtx codec
//! header in a `vtxC` box); each media segment is `styp` + `moof`
//! (fragment header, track fragment with decode-time and a `trun` run of
//! per-sample durations/sizes/sync flags) + `mdat` with the sample bytes.
//! The track timescale is the clip's fps, so every sample lasts exactly
//! one tick — integer time end to end. Output is a pure function of the
//! inputs: byte-deterministic by construction.

use crate::boxes::push_box;
use crate::error::ContainerError;

/// Track id used for the single video track.
pub const TRACK_ID: u32 = 1;

/// Length of the vtx codec header carried in the `vtxC` box.
pub const CODEC_HEADER_LEN: usize = 17;

/// One sample of a media segment (one coded frame record).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Duration in track timescale ticks (1 tick = 1 frame).
    pub duration: u32,
    /// Whether the sample is a sync sample (IDR / keyframe).
    pub sync: bool,
    /// The sample bytes (a complete vtx frame record).
    pub data: Vec<u8>,
}

/// Muxes the init segment for a track whose codec configuration is the
/// given 17-byte vtx bitstream header. Geometry, fps and frame count are
/// read from the header itself.
///
/// # Errors
///
/// Returns [`ContainerError::Corrupt`] when the header is not a vtx codec
/// header, [`ContainerError::Truncated`] when it is too short.
pub fn init_segment(codec_header: &[u8]) -> Result<Vec<u8>, ContainerError> {
    if codec_header.len() < CODEC_HEADER_LEN {
        return Err(ContainerError::Truncated {
            offset: codec_header.len(),
            context: "codec header",
        });
    }
    if &codec_header[0..4] != b"VTXB" {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "codec header magic",
        });
    }
    let width = u32::from(u16::from_le_bytes([codec_header[5], codec_header[6]]));
    let height = u32::from(u16::from_le_bytes([codec_header[7], codec_header[8]]));
    let timescale = u32::from(codec_header[9]).max(1);
    let duration = u32::from(u16::from_le_bytes([codec_header[10], codec_header[11]]));

    let mut out = Vec::new();
    let mut ftyp = Vec::new();
    ftyp.extend_from_slice(b"vtxc");
    ftyp.extend_from_slice(&1u32.to_be_bytes());
    ftyp.extend_from_slice(b"cmfc");
    ftyp.extend_from_slice(b"vtxb");
    push_box(&mut out, b"ftyp", &ftyp);

    // stsd: one custom sample entry whose payload is the codec header box.
    let mut vtxc = Vec::new();
    push_box(&mut vtxc, b"vtxC", &codec_header[..CODEC_HEADER_LEN]);
    let mut stsd = Vec::new();
    stsd.extend_from_slice(&0u32.to_be_bytes()); // version/flags
    stsd.extend_from_slice(&1u32.to_be_bytes()); // entry count
    push_box(&mut stsd, b"vtxb", &vtxc);
    let mut stbl = Vec::new();
    push_box(&mut stbl, b"stsd", &stsd);
    let mut minf = Vec::new();
    push_box(&mut minf, b"stbl", &stbl);

    let mut mdhd = Vec::new();
    mdhd.extend_from_slice(&0u32.to_be_bytes());
    mdhd.extend_from_slice(&timescale.to_be_bytes());
    mdhd.extend_from_slice(&duration.to_be_bytes());
    let mut hdlr = Vec::new();
    hdlr.extend_from_slice(&0u32.to_be_bytes());
    hdlr.extend_from_slice(b"vide");
    let mut mdia = Vec::new();
    push_box(&mut mdia, b"mdhd", &mdhd);
    push_box(&mut mdia, b"hdlr", &hdlr);
    push_box(&mut mdia, b"minf", &minf);

    let mut tkhd = Vec::new();
    tkhd.extend_from_slice(&0u32.to_be_bytes());
    tkhd.extend_from_slice(&TRACK_ID.to_be_bytes());
    tkhd.extend_from_slice(&width.to_be_bytes());
    tkhd.extend_from_slice(&height.to_be_bytes());
    let mut trak = Vec::new();
    push_box(&mut trak, b"tkhd", &tkhd);
    push_box(&mut trak, b"mdia", &mdia);

    let mut mvhd = Vec::new();
    mvhd.extend_from_slice(&0u32.to_be_bytes());
    mvhd.extend_from_slice(&timescale.to_be_bytes());
    mvhd.extend_from_slice(&duration.to_be_bytes());
    mvhd.extend_from_slice(&(TRACK_ID + 1).to_be_bytes()); // next track id
    let mut moov = Vec::new();
    push_box(&mut moov, b"mvhd", &mvhd);
    push_box(&mut moov, b"trak", &trak);
    push_box(&mut out, b"moov", &moov);
    Ok(out)
}

/// Muxes one media segment: fragment `seq` starting at decode time
/// `base_time` (track ticks = frames from clip start), carrying `samples`.
pub fn media_segment(seq: u32, base_time: u32, samples: &[Sample]) -> Vec<u8> {
    let mut out = Vec::new();
    let mut styp = Vec::new();
    styp.extend_from_slice(b"cmfs");
    styp.extend_from_slice(&1u32.to_be_bytes());
    styp.extend_from_slice(b"cmfs");
    push_box(&mut out, b"styp", &styp);

    let mut mfhd = Vec::new();
    mfhd.extend_from_slice(&0u32.to_be_bytes());
    mfhd.extend_from_slice(&seq.to_be_bytes());

    let mut tfhd = Vec::new();
    tfhd.extend_from_slice(&0u32.to_be_bytes());
    tfhd.extend_from_slice(&TRACK_ID.to_be_bytes());
    let mut tfdt = Vec::new();
    tfdt.extend_from_slice(&0u32.to_be_bytes());
    tfdt.extend_from_slice(&base_time.to_be_bytes());
    let mut trun = Vec::new();
    trun.extend_from_slice(&0u32.to_be_bytes());
    trun.extend_from_slice(&(samples.len() as u32).to_be_bytes());
    for s in samples {
        trun.extend_from_slice(&s.duration.to_be_bytes());
        trun.extend_from_slice(&(s.data.len() as u32).to_be_bytes());
        trun.extend_from_slice(&u32::from(s.sync).to_be_bytes());
    }
    let mut traf = Vec::new();
    push_box(&mut traf, b"tfhd", &tfhd);
    push_box(&mut traf, b"tfdt", &tfdt);
    push_box(&mut traf, b"trun", &trun);

    let mut moof = Vec::new();
    push_box(&mut moof, b"mfhd", &mfhd);
    push_box(&mut moof, b"traf", &traf);
    push_box(&mut out, b"moof", &moof);

    let mut mdat = Vec::new();
    for s in samples {
        mdat.extend_from_slice(&s.data);
    }
    push_box(&mut out, b"mdat", &mdat);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header17(frames: u16) -> Vec<u8> {
        let mut h = Vec::new();
        h.extend_from_slice(b"VTXB");
        h.push(1);
        h.extend_from_slice(&64u16.to_le_bytes());
        h.extend_from_slice(&48u16.to_le_bytes());
        h.push(24);
        h.extend_from_slice(&frames.to_le_bytes());
        h.extend_from_slice(&[3, 3, 1, 0, 8]);
        h
    }

    #[test]
    fn init_segment_is_deterministic_and_box_structured() {
        let h = header17(6);
        let a = init_segment(&h).unwrap();
        let b = init_segment(&h).unwrap();
        assert_eq!(a, b);
        // Top level: ftyp then moov.
        let boxes: Vec<_> = crate::boxes::BoxIter::new(&a).map(|b| b.unwrap()).collect();
        assert_eq!(&boxes[0].fourcc, b"ftyp");
        assert_eq!(&boxes[1].fourcc, b"moov");
        assert_eq!(boxes.len(), 2);
    }

    #[test]
    fn init_segment_rejects_garbage() {
        assert!(matches!(
            init_segment(b"VTX"),
            Err(ContainerError::Truncated { .. })
        ));
        assert!(matches!(
            init_segment(&[0u8; 17]),
            Err(ContainerError::Corrupt { .. })
        ));
    }

    #[test]
    fn media_segment_layout() {
        let samples = vec![
            Sample {
                duration: 1,
                sync: true,
                data: vec![3, 0, 0, 30, 2, 0, 0, 0, 0xAA, 0xBB],
            },
            Sample {
                duration: 1,
                sync: false,
                data: vec![1, 1, 0, 30, 1, 0, 0, 0, 0xCC],
            },
        ];
        let seg = media_segment(7, 12, &samples);
        let boxes: Vec<_> = crate::boxes::BoxIter::new(&seg)
            .map(|b| b.unwrap())
            .collect();
        assert_eq!(&boxes[0].fourcc, b"styp");
        assert_eq!(&boxes[1].fourcc, b"moof");
        assert_eq!(&boxes[2].fourcc, b"mdat");
        assert_eq!(boxes[2].payload.len(), 10 + 9);
    }
}
