//! Demuxing: parse init and media segments back into structured form.
//!
//! The contract with [`crate::mux`] is exact inversion: re-muxing a parsed
//! segment reproduces the original bytes. Any deviation from the expected
//! box tree — missing boxes, short payloads, size mismatches between the
//! `trun` sample table and the `mdat` — is a structured
//! [`ContainerError`], never a panic.

use crate::boxes::{find_box, read_u32, BoxIter};
use crate::error::ContainerError;
use crate::mux::{Sample, CODEC_HEADER_LEN, TRACK_ID};

/// Parsed init segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InitInfo {
    /// The 17-byte vtx codec header carried in the `vtxC` box.
    pub codec_header: Vec<u8>,
    /// Track width in pixels (from `tkhd`).
    pub width: u32,
    /// Track height in pixels (from `tkhd`).
    pub height: u32,
    /// Track timescale in ticks per second (= fps).
    pub timescale: u32,
    /// Track duration in ticks (= frame count).
    pub duration: u32,
}

/// Parsed media segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaSegment {
    /// Fragment sequence number (from `mfhd`).
    pub seq: u32,
    /// Base decode time in track ticks (from `tfdt`).
    pub base_time: u32,
    /// The samples, in decode order.
    pub samples: Vec<Sample>,
}

/// Parses an init segment produced by [`crate::mux::init_segment`].
///
/// # Errors
///
/// Returns [`ContainerError`] on any missing box, truncation, or a codec
/// header of the wrong length.
pub fn parse_init(data: &[u8]) -> Result<InitInfo, ContainerError> {
    find_box(data, b"ftyp", "ftyp box")?;
    let moov = find_box(data, b"moov", "moov box")?;
    let mvhd = find_box(moov, b"mvhd", "mvhd box")?;
    let timescale = read_u32(mvhd, 4, "mvhd timescale")?;
    let duration = read_u32(mvhd, 8, "mvhd duration")?;
    let trak = find_box(moov, b"trak", "trak box")?;
    let tkhd = find_box(trak, b"tkhd", "tkhd box")?;
    let track_id = read_u32(tkhd, 4, "tkhd track id")?;
    if track_id != TRACK_ID {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "unexpected track id",
        });
    }
    let width = read_u32(tkhd, 8, "tkhd width")?;
    let height = read_u32(tkhd, 12, "tkhd height")?;
    let mdia = find_box(trak, b"mdia", "mdia box")?;
    let minf = find_box(mdia, b"minf", "minf box")?;
    let stbl = find_box(minf, b"stbl", "stbl box")?;
    let stsd = find_box(stbl, b"stsd", "stsd box")?;
    if stsd.len() < 8 {
        return Err(ContainerError::Truncated {
            offset: 0,
            context: "stsd header",
        });
    }
    let entry = find_box(&stsd[8..], b"vtxb", "vtxb sample entry")?;
    let codec_header = find_box(entry, b"vtxC", "vtxC codec header box")?;
    if codec_header.len() != CODEC_HEADER_LEN {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "codec header length",
        });
    }
    Ok(InitInfo {
        codec_header: codec_header.to_vec(),
        width,
        height,
        timescale,
        duration,
    })
}

/// Parses a media segment produced by [`crate::mux::media_segment`].
///
/// # Errors
///
/// Returns [`ContainerError`] on any missing box, truncation, or a `trun`
/// sample table whose sizes do not cover the `mdat` payload exactly.
pub fn parse_media(data: &[u8]) -> Result<MediaSegment, ContainerError> {
    find_box(data, b"styp", "styp box")?;
    let moof = find_box(data, b"moof", "moof box")?;
    let mfhd = find_box(moof, b"mfhd", "mfhd box")?;
    let seq = read_u32(mfhd, 4, "mfhd sequence number")?;
    let traf = find_box(moof, b"traf", "traf box")?;
    let tfhd = find_box(traf, b"tfhd", "tfhd box")?;
    if read_u32(tfhd, 4, "tfhd track id")? != TRACK_ID {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "unexpected track id",
        });
    }
    let tfdt = find_box(traf, b"tfdt", "tfdt box")?;
    let base_time = read_u32(tfdt, 4, "tfdt base decode time")?;
    let trun = find_box(traf, b"trun", "trun box")?;
    let sample_count = read_u32(trun, 4, "trun sample count")? as usize;
    // Validate the advertised count against the box's actual size before
    // sizing any allocation by it — a corrupt count must be a structured
    // error, not an abort in the allocator.
    if trun.len().saturating_sub(8) / 12 < sample_count {
        return Err(ContainerError::Corrupt {
            offset: 0,
            context: "trun sample count exceeds box size",
        });
    }
    let mdat = find_box(data, b"mdat", "mdat box")?;

    let mut samples = Vec::with_capacity(sample_count);
    let mut mdat_pos = 0usize;
    for i in 0..sample_count {
        let base = 8 + i * 12;
        let duration = read_u32(trun, base, "trun sample duration")?;
        let size = read_u32(trun, base + 4, "trun sample size")? as usize;
        let flags = read_u32(trun, base + 8, "trun sample flags")?;
        if mdat_pos + size > mdat.len() {
            return Err(ContainerError::Truncated {
                offset: mdat_pos,
                context: "mdat sample data",
            });
        }
        samples.push(Sample {
            duration,
            sync: flags & 1 != 0,
            data: mdat[mdat_pos..mdat_pos + size].to_vec(),
        });
        mdat_pos += size;
    }
    if mdat_pos != mdat.len() {
        return Err(ContainerError::Corrupt {
            offset: mdat_pos,
            context: "mdat bytes beyond sample table",
        });
    }
    // The walk above only touched the boxes it needed; reject trailing
    // garbage after mdat by re-walking the top level.
    for b in BoxIter::new(data) {
        b?;
    }
    Ok(MediaSegment {
        seq,
        base_time,
        samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mux::{init_segment, media_segment};

    fn header17(frames: u16) -> Vec<u8> {
        let mut h = Vec::new();
        h.extend_from_slice(b"VTXB");
        h.push(1);
        h.extend_from_slice(&64u16.to_le_bytes());
        h.extend_from_slice(&48u16.to_le_bytes());
        h.push(24);
        h.extend_from_slice(&frames.to_le_bytes());
        h.extend_from_slice(&[3, 3, 1, 0, 8]);
        h
    }

    fn sample(sync: bool, bytes: &[u8]) -> Sample {
        Sample {
            duration: 1,
            sync,
            data: bytes.to_vec(),
        }
    }

    #[test]
    fn init_roundtrip_is_byte_identical() {
        let h = header17(12);
        let seg = init_segment(&h).unwrap();
        let info = parse_init(&seg).unwrap();
        assert_eq!(info.codec_header, h);
        assert_eq!(info.width, 64);
        assert_eq!(info.height, 48);
        assert_eq!(info.timescale, 24);
        assert_eq!(info.duration, 12);
        let remux = init_segment(&info.codec_header).unwrap();
        assert_eq!(remux, seg);
    }

    #[test]
    fn media_roundtrip_is_byte_identical() {
        let samples = vec![
            sample(true, &[3, 0, 0, 30, 2, 0, 0, 0, 0xAA, 0xBB]),
            sample(false, &[1, 1, 0, 30, 1, 0, 0, 0, 0xCC]),
            sample(false, &[2, 2, 0, 31, 0, 0, 0, 0]),
        ];
        let seg = media_segment(5, 48, &samples);
        let parsed = parse_media(&seg).unwrap();
        assert_eq!(parsed.seq, 5);
        assert_eq!(parsed.base_time, 48);
        assert_eq!(parsed.samples, samples);
        let remux = media_segment(parsed.seq, parsed.base_time, &parsed.samples);
        assert_eq!(remux, seg);
    }

    #[test]
    fn truncated_media_is_structured_error() {
        let seg = media_segment(1, 0, &[sample(true, &[9; 20])]);
        for cut in [3, 9, seg.len() - 5] {
            let err = parse_media(&seg[..cut]);
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn mdat_size_mismatch_is_corrupt() {
        let mut seg = media_segment(1, 0, &[sample(true, &[9; 8])]);
        // Grow mdat by one byte and patch its size field.
        seg.push(0xEE);
        let mdat_off = seg.len() - 1 - 8 - 8;
        let size = u32::from_be_bytes([
            seg[mdat_off],
            seg[mdat_off + 1],
            seg[mdat_off + 2],
            seg[mdat_off + 3],
        ]) + 1;
        seg[mdat_off..mdat_off + 4].copy_from_slice(&size.to_be_bytes());
        assert!(matches!(
            parse_media(&seg),
            Err(ContainerError::Corrupt { .. })
        ));
    }

    #[test]
    fn missing_boxes_are_reported() {
        let h = header17(6);
        let init = init_segment(&h).unwrap();
        // An init segment is not a media segment.
        assert!(parse_media(&init).is_err());
        // And vice versa.
        let media = media_segment(0, 0, &[sample(true, &[1, 2, 3])]);
        assert!(parse_init(&media).is_err());
    }
}
