//! ISO-BMFF box primitives: `u32` big-endian size + fourcc, nested by
//! containment.
//!
//! Every box is `[size: u32 BE][fourcc: 4 bytes][payload: size - 8 bytes]`,
//! the classic MP4 layout. Writers emit boxes bottom-up (payload first,
//! size patched on close); readers walk a byte range and hand out
//! `(fourcc, payload)` views with structured errors on truncation — the
//! same discipline as the codec's bitstream parser.

use crate::error::ContainerError;

/// A parsed box: fourcc plus a view of its payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpBox<'a> {
    /// The four-character code.
    pub fourcc: [u8; 4],
    /// Payload bytes (everything after the 8-byte box header).
    pub payload: &'a [u8],
    /// Byte offset of the box header within the walked range.
    pub offset: usize,
}

/// Appends a complete box (header + payload) to `out`.
pub fn push_box(out: &mut Vec<u8>, fourcc: &[u8; 4], payload: &[u8]) {
    let size = (payload.len() + 8) as u32;
    out.extend_from_slice(&size.to_be_bytes());
    out.extend_from_slice(fourcc);
    out.extend_from_slice(payload);
}

/// Iterator over the top-level boxes of a byte range.
#[derive(Debug, Clone)]
pub struct BoxIter<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> BoxIter<'a> {
    /// Walks `data` as a sequence of boxes.
    pub fn new(data: &'a [u8]) -> Self {
        BoxIter { data, pos: 0 }
    }
}

impl<'a> Iterator for BoxIter<'a> {
    type Item = Result<MpBox<'a>, ContainerError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.data.len() {
            return None;
        }
        let offset = self.pos;
        if self.pos + 8 > self.data.len() {
            self.pos = self.data.len();
            return Some(Err(ContainerError::Truncated {
                offset,
                context: "box header",
            }));
        }
        let size = u32::from_be_bytes([
            self.data[offset],
            self.data[offset + 1],
            self.data[offset + 2],
            self.data[offset + 3],
        ]) as usize;
        if size < 8 {
            self.pos = self.data.len();
            return Some(Err(ContainerError::Corrupt {
                offset,
                context: "box size below header size",
            }));
        }
        if offset + size > self.data.len() {
            self.pos = self.data.len();
            return Some(Err(ContainerError::Truncated {
                offset,
                context: "box payload",
            }));
        }
        let fourcc = [
            self.data[offset + 4],
            self.data[offset + 5],
            self.data[offset + 6],
            self.data[offset + 7],
        ];
        self.pos = offset + size;
        Some(Ok(MpBox {
            fourcc,
            payload: &self.data[offset + 8..offset + size],
            offset,
        }))
    }
}

/// Finds the first box with `fourcc` at the top level of `data`.
///
/// # Errors
///
/// Propagates walk errors; a missing box is `Corrupt` naming the fourcc's
/// static context supplied by the caller.
pub fn find_box<'a>(
    data: &'a [u8],
    fourcc: &[u8; 4],
    context: &'static str,
) -> Result<&'a [u8], ContainerError> {
    for b in BoxIter::new(data) {
        let b = b?;
        if &b.fourcc == fourcc {
            return Ok(b.payload);
        }
    }
    Err(ContainerError::Corrupt { offset: 0, context })
}

/// Reads a `u32` big-endian at `pos`, with a structured error.
pub fn read_u32(data: &[u8], pos: usize, context: &'static str) -> Result<u32, ContainerError> {
    if pos + 4 > data.len() {
        return Err(ContainerError::Truncated {
            offset: pos,
            context,
        });
    }
    Ok(u32::from_be_bytes([
        data[pos],
        data[pos + 1],
        data[pos + 2],
        data[pos + 3],
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_walk_roundtrip() {
        let mut out = Vec::new();
        push_box(&mut out, b"ftyp", b"vtxc");
        push_box(&mut out, b"mdat", &[1, 2, 3]);
        let boxes: Vec<MpBox<'_>> = BoxIter::new(&out).map(|b| b.unwrap()).collect();
        assert_eq!(boxes.len(), 2);
        assert_eq!(&boxes[0].fourcc, b"ftyp");
        assert_eq!(boxes[0].payload, b"vtxc");
        assert_eq!(&boxes[1].fourcc, b"mdat");
        assert_eq!(boxes[1].payload, &[1, 2, 3]);
        assert_eq!(boxes[1].offset, 12);
    }

    #[test]
    fn truncated_header_and_payload_error() {
        let mut out = Vec::new();
        push_box(&mut out, b"moov", &[0; 16]);
        // Cut inside the payload.
        let cut = &out[..10];
        let err = BoxIter::new(cut).next().unwrap().unwrap_err();
        assert!(matches!(err, ContainerError::Truncated { .. }));
        // Cut inside the header.
        let cut = &out[..5];
        let err = BoxIter::new(cut).next().unwrap().unwrap_err();
        assert_eq!(
            err,
            ContainerError::Truncated {
                offset: 0,
                context: "box header"
            }
        );
    }

    #[test]
    fn undersized_box_is_corrupt() {
        let mut data = Vec::new();
        data.extend_from_slice(&4u32.to_be_bytes()); // size 4 < 8
        data.extend_from_slice(b"free");
        let err = BoxIter::new(&data).next().unwrap().unwrap_err();
        assert!(matches!(err, ContainerError::Corrupt { .. }));
    }

    #[test]
    fn find_box_reports_missing() {
        let mut out = Vec::new();
        push_box(&mut out, b"ftyp", b"x");
        assert_eq!(find_box(&out, b"ftyp", "ftyp").unwrap(), b"x");
        assert!(find_box(&out, b"moov", "moov box").is_err());
    }
}
