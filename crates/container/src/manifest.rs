//! Deterministic HLS-style manifests: a master playlist pointing at one
//! media playlist per ladder rung, and media playlists listing the init
//! segment plus every media segment with its exact integer-millisecond
//! duration.
//!
//! Rendering is a pure function of the inputs and parsing is its exact
//! inverse: `render(parse(text)) == text` for anything this module emits,
//! so manifests can be byte-compared across runs the same way bitstreams
//! are. Durations are carried as integer milliseconds and printed with
//! exactly three decimals — no floating point anywhere.

use crate::error::ContainerError;

/// One variant entry of a master playlist (one ladder rung).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Variant {
    /// Rendition name (the ladder rung name).
    pub name: String,
    /// Nominal bandwidth in bits per second.
    pub bandwidth: u64,
    /// URI of the rung's media playlist.
    pub uri: String,
}

/// A master playlist: the rung directory of one serving job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MasterPlaylist {
    /// Variants in ladder order.
    pub variants: Vec<Variant>,
}

/// One media-segment entry of a media playlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// Segment duration in integer milliseconds.
    pub duration_ms: u32,
    /// Segment URI.
    pub uri: String,
}

/// A media playlist: init segment plus the ordered media segments of one
/// rung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MediaPlaylist {
    /// URI of the init segment (`EXT-X-MAP`).
    pub init_uri: String,
    /// Segments in presentation order.
    pub segments: Vec<SegmentEntry>,
}

/// Formats integer milliseconds as seconds with exactly three decimals.
fn ms_to_secs(ms: u32) -> String {
    format!("{}.{:03}", ms / 1000, ms % 1000)
}

/// Parses a three-decimal seconds string back to integer milliseconds.
fn secs_to_ms(s: &str, line: usize) -> Result<u32, ContainerError> {
    let bad = || ContainerError::Manifest {
        line,
        message: format!("bad duration {s:?}"),
    };
    let (whole, frac) = s.split_once('.').ok_or_else(bad)?;
    if frac.len() != 3 {
        return Err(bad());
    }
    let whole: u32 = whole.parse().map_err(|_| bad())?;
    let frac: u32 = frac.parse().map_err(|_| bad())?;
    Ok(whole * 1000 + frac)
}

/// Marker tag a degraded master playlist carries right after the version
/// line: the server shed some rungs and is serving the ones that finished.
pub const DEGRADED_TAG: &str = "#EXT-X-VTX-DEGRADED:1";

/// Renders a master playlist.
pub fn render_master(m: &MasterPlaylist) -> String {
    render_master_inner(m, false)
}

/// Renders a *degraded* master playlist: same format plus the
/// [`DEGRADED_TAG`] marker, used for partial-manifest delivery when only a
/// subset of the ladder's rungs completed.
pub fn render_master_degraded(m: &MasterPlaylist) -> String {
    render_master_inner(m, true)
}

fn render_master_inner(m: &MasterPlaylist, degraded: bool) -> String {
    let mut out = String::new();
    out.push_str("#EXTM3U\n#EXT-X-VERSION:7\n");
    if degraded {
        out.push_str(DEGRADED_TAG);
        out.push('\n');
    }
    for v in &m.variants {
        out.push_str(&format!(
            "#EXT-X-STREAM-INF:BANDWIDTH={},NAME=\"{}\"\n{}\n",
            v.bandwidth, v.name, v.uri
        ));
    }
    out
}

/// Parses a master playlist rendered by [`render_master`] or
/// [`render_master_degraded`], ignoring the degraded marker. Use
/// [`parse_master_flagged`] to recover the marker.
///
/// # Errors
///
/// Returns [`ContainerError::Manifest`] with the offending 1-based line on
/// any structural deviation.
pub fn parse_master(text: &str) -> Result<MasterPlaylist, ContainerError> {
    parse_master_flagged(text).map(|(m, _)| m)
}

/// Parses a master playlist and reports whether it carried the
/// [`DEGRADED_TAG`] marker.
///
/// # Errors
///
/// Returns [`ContainerError::Manifest`] with the offending 1-based line on
/// any structural deviation.
pub fn parse_master_flagged(text: &str) -> Result<(MasterPlaylist, bool), ContainerError> {
    let mut lines = text.lines().enumerate().peekable();
    expect_line(&mut lines, "#EXTM3U")?;
    expect_line(&mut lines, "#EXT-X-VERSION:7")?;
    let degraded = matches!(lines.peek(), Some((_, line)) if *line == DEGRADED_TAG);
    if degraded {
        lines.next();
    }
    let mut variants = Vec::new();
    while let Some((i, line)) = lines.next() {
        let lineno = i + 1;
        let rest =
            line.strip_prefix("#EXT-X-STREAM-INF:BANDWIDTH=")
                .ok_or(ContainerError::Manifest {
                    line: lineno,
                    message: format!("expected stream-inf, got {line:?}"),
                })?;
        let (bw, name_part) =
            rest.split_once(",NAME=\"")
                .ok_or_else(|| ContainerError::Manifest {
                    line: lineno,
                    message: "missing NAME attribute".to_string(),
                })?;
        let bandwidth: u64 = bw.parse().map_err(|_| ContainerError::Manifest {
            line: lineno,
            message: format!("bad bandwidth {bw:?}"),
        })?;
        let name = name_part
            .strip_suffix('"')
            .ok_or_else(|| ContainerError::Manifest {
                line: lineno,
                message: "unterminated NAME".to_string(),
            })?;
        let (j, uri) = lines.next().ok_or(ContainerError::Manifest {
            line: lineno,
            message: "stream-inf without URI line".to_string(),
        })?;
        if uri.starts_with('#') || uri.is_empty() {
            return Err(ContainerError::Manifest {
                line: j + 1,
                message: "expected variant URI".to_string(),
            });
        }
        variants.push(Variant {
            name: name.to_string(),
            bandwidth,
            uri: uri.to_string(),
        });
    }
    Ok((MasterPlaylist { variants }, degraded))
}

/// Renders a media playlist. Target duration is the ceiling of the longest
/// segment in whole seconds.
pub fn render_media(m: &MediaPlaylist) -> String {
    let max_ms = m.segments.iter().map(|s| s.duration_ms).max().unwrap_or(0);
    let target = max_ms.div_ceil(1000);
    let mut out = String::new();
    out.push_str("#EXTM3U\n#EXT-X-VERSION:7\n");
    out.push_str(&format!("#EXT-X-TARGETDURATION:{target}\n"));
    out.push_str("#EXT-X-MEDIA-SEQUENCE:0\n");
    out.push_str(&format!("#EXT-X-MAP:URI=\"{}\"\n", m.init_uri));
    for s in &m.segments {
        out.push_str(&format!(
            "#EXTINF:{},\n{}\n",
            ms_to_secs(s.duration_ms),
            s.uri
        ));
    }
    out.push_str("#EXT-X-ENDLIST\n");
    out
}

/// Parses a media playlist rendered by [`render_media`].
///
/// # Errors
///
/// Returns [`ContainerError::Manifest`] with the offending 1-based line on
/// any structural deviation.
pub fn parse_media(text: &str) -> Result<MediaPlaylist, ContainerError> {
    let mut lines = text.lines().enumerate();
    expect_line(&mut lines, "#EXTM3U")?;
    expect_line(&mut lines, "#EXT-X-VERSION:7")?;
    let (i, td_line) = lines.next().ok_or(ContainerError::Manifest {
        line: 3,
        message: "missing target duration".to_string(),
    })?;
    td_line
        .strip_prefix("#EXT-X-TARGETDURATION:")
        .and_then(|v| v.parse::<u32>().ok())
        .ok_or(ContainerError::Manifest {
            line: i + 1,
            message: format!("bad target duration {td_line:?}"),
        })?;
    expect_line(&mut lines, "#EXT-X-MEDIA-SEQUENCE:0")?;
    let (i, map_line) = lines.next().ok_or(ContainerError::Manifest {
        line: 5,
        message: "missing EXT-X-MAP".to_string(),
    })?;
    let init_uri = map_line
        .strip_prefix("#EXT-X-MAP:URI=\"")
        .and_then(|v| v.strip_suffix('"'))
        .ok_or(ContainerError::Manifest {
            line: i + 1,
            message: format!("bad EXT-X-MAP {map_line:?}"),
        })?
        .to_string();
    let mut segments = Vec::new();
    let mut ended = false;
    while let Some((i, line)) = lines.next() {
        let lineno = i + 1;
        if line == "#EXT-X-ENDLIST" {
            ended = true;
            if lines.next().is_some() {
                return Err(ContainerError::Manifest {
                    line: lineno + 1,
                    message: "content after ENDLIST".to_string(),
                });
            }
            break;
        }
        let dur = line
            .strip_prefix("#EXTINF:")
            .and_then(|v| v.strip_suffix(','))
            .ok_or_else(|| ContainerError::Manifest {
                line: lineno,
                message: format!("expected EXTINF, got {line:?}"),
            })?;
        let duration_ms = secs_to_ms(dur, lineno)?;
        let (j, uri) = lines.next().ok_or(ContainerError::Manifest {
            line: lineno,
            message: "EXTINF without URI line".to_string(),
        })?;
        if uri.starts_with('#') || uri.is_empty() {
            return Err(ContainerError::Manifest {
                line: j + 1,
                message: "expected segment URI".to_string(),
            });
        }
        segments.push(SegmentEntry {
            duration_ms,
            uri: uri.to_string(),
        });
    }
    if !ended {
        return Err(ContainerError::Manifest {
            line: text.lines().count(),
            message: "missing ENDLIST".to_string(),
        });
    }
    Ok(MediaPlaylist { init_uri, segments })
}

/// Consumes one line and requires it to equal `want`.
fn expect_line<'a, I: Iterator<Item = (usize, &'a str)>>(
    lines: &mut I,
    want: &str,
) -> Result<(), ContainerError> {
    match lines.next() {
        Some((_, line)) if line == want => Ok(()),
        Some((i, line)) => Err(ContainerError::Manifest {
            line: i + 1,
            message: format!("expected {want:?}, got {line:?}"),
        }),
        None => Err(ContainerError::Manifest {
            line: 0,
            message: format!("expected {want:?}, got end of input"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn master() -> MasterPlaylist {
        MasterPlaylist {
            variants: vec![
                Variant {
                    name: "hi".to_string(),
                    bandwidth: 4_000_000,
                    uri: "hi/media.m3u8".to_string(),
                },
                Variant {
                    name: "lo".to_string(),
                    bandwidth: 800_000,
                    uri: "lo/media.m3u8".to_string(),
                },
            ],
        }
    }

    fn media() -> MediaPlaylist {
        MediaPlaylist {
            init_uri: "init.mp4".to_string(),
            segments: vec![
                SegmentEntry {
                    duration_ms: 2000,
                    uri: "seg0.m4s".to_string(),
                },
                SegmentEntry {
                    duration_ms: 1250,
                    uri: "seg1.m4s".to_string(),
                },
            ],
        }
    }

    #[test]
    fn master_roundtrip_is_exact() {
        let m = master();
        let text = render_master(&m);
        assert_eq!(parse_master(&text).unwrap(), m);
        assert_eq!(render_master(&parse_master(&text).unwrap()), text);
        assert_eq!(parse_master_flagged(&text).unwrap(), (m, false));
    }

    #[test]
    fn degraded_master_roundtrip_is_exact() {
        let m = master();
        let text = render_master_degraded(&m);
        assert!(text.contains(DEGRADED_TAG));
        // The tag survives a flagged parse and is ignored by the plain one.
        assert_eq!(parse_master_flagged(&text).unwrap(), (m.clone(), true));
        assert_eq!(parse_master(&text).unwrap(), m);
        assert_eq!(
            render_master_degraded(&parse_master_flagged(&text).unwrap().0),
            text
        );
    }

    #[test]
    fn media_roundtrip_is_exact() {
        let m = media();
        let text = render_media(&m);
        assert!(text.contains("#EXTINF:2.000,\nseg0.m4s"));
        assert!(text.contains("#EXTINF:1.250,\nseg1.m4s"));
        assert!(text.contains("#EXT-X-TARGETDURATION:2\n"));
        assert_eq!(parse_media(&text).unwrap(), m);
        assert_eq!(render_media(&parse_media(&text).unwrap()), text);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = parse_master("#EXTM3U\nnope").unwrap_err();
        assert!(matches!(err, ContainerError::Manifest { line: 2, .. }));
        let text = render_media(&media()).replace("#EXT-X-ENDLIST\n", "");
        assert!(parse_media(&text).is_err());
        let text = render_media(&media()).replace("1.250", "1.25");
        assert!(parse_media(&text).is_err());
    }
}
