//! ABR ladder: the set of rungs each segment is transcoded to.
//!
//! A rung names one output rendition — a codec preset plus a CRF target.
//! The ladder expander in the serving layer fans every segment out across
//! all rungs, so a catalog job for an `R`-rung ladder over `S` segments
//! becomes `S × R` dispatch units. Ladders have a canonical text form
//! (`name=preset:crf,…`) used by the `serve_fleet --ladder` flag; parse
//! and render are exact inverses so ladder specs survive a config
//! round-trip byte-identically.

use crate::error::ContainerError;
use vtx_codec::Preset;

/// One rendition of the ABR ladder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rung {
    /// Rendition name, used in manifests and output paths.
    pub name: String,
    /// Encoder preset for this rung.
    pub preset: Preset,
    /// CRF quality target for this rung.
    pub crf: u8,
}

/// An ordered set of rungs (highest quality first, by convention).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ladder {
    /// The rungs, in manifest order.
    pub rungs: Vec<Rung>,
}

impl Ladder {
    /// The default three-rung ladder used by segmented serving.
    pub fn standard() -> Self {
        Ladder {
            rungs: vec![
                Rung {
                    name: "hi".to_string(),
                    preset: Preset::Medium,
                    crf: 20,
                },
                Rung {
                    name: "mid".to_string(),
                    preset: Preset::Veryfast,
                    crf: 26,
                },
                Rung {
                    name: "lo".to_string(),
                    preset: Preset::Ultrafast,
                    crf: 32,
                },
            ],
        }
    }

    /// Parses the canonical text form `name=preset:crf,name=preset:crf,…`.
    ///
    /// # Errors
    ///
    /// Returns [`ContainerError::Manifest`] naming the 1-based rung index
    /// on any malformed entry, unknown preset, or duplicate rung name.
    pub fn parse(spec: &str) -> Result<Self, ContainerError> {
        let mut rungs = Vec::new();
        for (i, entry) in spec.split(',').enumerate() {
            let line = i + 1;
            let bad = |message: &str| ContainerError::Manifest {
                line,
                message: message.to_string(),
            };
            let (name, rest) = entry
                .split_once('=')
                .ok_or_else(|| bad("expected name=preset:crf"))?;
            let (preset, crf) = rest
                .split_once(':')
                .ok_or_else(|| bad("expected preset:crf"))?;
            if name.is_empty() {
                return Err(bad("empty rung name"));
            }
            if rungs.iter().any(|r: &Rung| r.name == name) {
                return Err(bad("duplicate rung name"));
            }
            let preset = Preset::from_name(preset).ok_or_else(|| bad("unknown preset"))?;
            let crf: u8 = crf.parse().map_err(|_| bad("bad crf"))?;
            rungs.push(Rung {
                name: name.to_string(),
                preset,
                crf,
            });
        }
        if rungs.is_empty() {
            return Err(ContainerError::Manifest {
                line: 1,
                message: "empty ladder".to_string(),
            });
        }
        Ok(Ladder { rungs })
    }

    /// Renders the canonical text form; exact inverse of [`Ladder::parse`].
    pub fn render(&self) -> String {
        self.rungs
            .iter()
            .map(|r| format!("{}={}:{}", r.name, r.preset.name(), r.crf))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_ladder_roundtrips() {
        let l = Ladder::standard();
        assert_eq!(l.render(), "hi=medium:20,mid=veryfast:26,lo=ultrafast:32");
        assert_eq!(Ladder::parse(&l.render()).unwrap(), l);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "hi",
            "hi=medium",
            "hi=warp9:20",
            "hi=medium:fast",
            "=medium:20",
            "hi=medium:20,hi=slow:18",
        ] {
            let err = Ladder::parse(bad).unwrap_err();
            assert!(matches!(err, ContainerError::Manifest { .. }), "{bad}");
        }
    }
}
