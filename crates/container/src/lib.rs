//! Box-structured fMP4/CMAF container layer for vtx bitstreams.
//!
//! The paper's workload is not just encoding: cloud transcoding delivers
//! **segmented ABR renditions** — each source clip is split at GOP
//! boundaries into ~2-second segments, every segment is transcoded to
//! each rung of a bitrate ladder, and the results are packaged as CMAF
//! init + media segments behind HLS playlists. This crate is that
//! packaging plane, hand-rolled with zero external dependencies and
//! byte-deterministic end to end:
//!
//! * [`boxes`] — ISO-BMFF box primitives (u32 BE size + fourcc).
//! * [`mux`] / [`demux`] — init segments (`ftyp`+`moov`, the 17-byte vtx
//!   codec header carried in a `vtxC` box inside the sample description)
//!   and media segments (`styp`+`moof`+`mdat`), with an exact-inversion
//!   contract: re-muxing a parsed segment reproduces the original bytes.
//! * [`segment`] — the GOP-aligned segmenter: splits a closed-GOP vtx
//!   bitstream (forced IDRs at the cut points) into standalone
//!   sub-streams that decode independently.
//! * [`ladder`] — ABR rung definitions with a canonical text form.
//! * [`manifest`] — HLS-style master/media playlists, integer-millisecond
//!   durations, render/parse exact inverses.
//! * [`package`] — the glue: bitstream → segments, plan → playlists.
//!
//! Like the codec's decoder, every parser here returns structured
//! [`ContainerError`]s on truncated or corrupt input — never a panic.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod boxes;
pub mod demux;
pub mod error;
pub mod ladder;
pub mod manifest;
pub mod mux;
pub mod package;
pub mod segment;

pub use demux::{InitInfo, MediaSegment};
pub use error::ContainerError;
pub use ladder::{Ladder, Rung};
pub use manifest::{MasterPlaylist, MediaPlaylist, SegmentEntry, Variant};
pub use mux::Sample;
pub use package::Packaged;
