//! End-to-end packaging: closed-GOP bitstream → CMAF init + media
//! segments → playlists.
//!
//! This is the glue the serving layer calls: given one rung's encoded
//! bitstream (forced IDRs at the segment points) it produces the init
//! segment and one media segment per cut, and given the *segment plan*
//! alone (points, frame count, fps, ladder) it produces the playlists.
//! Playlists deliberately depend only on the plan — never on encoded
//! bytes — so the simulator and the real executor emit byte-identical
//! manifests for the same seed.

use crate::error::ContainerError;
use crate::ladder::Ladder;
use crate::manifest::{MasterPlaylist, MediaPlaylist, SegmentEntry, Variant};
use crate::mux::{init_segment, media_segment};
use crate::segment::{segment_to_samples, split_stream, FRAME_COUNT_OFFSET, HEADER_LEN};

/// One rung's packaged output: init segment plus media segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packaged {
    /// The CMAF init segment.
    pub init: Vec<u8>,
    /// One media segment per cut point, in presentation order.
    pub media: Vec<Vec<u8>>,
}

/// Packages a closed-GOP vtx bitstream into CMAF segments at `points`.
///
/// # Errors
///
/// Propagates segmenter errors (open GOPs, truncation) and mux errors.
pub fn package_stream(stream: &[u8], points: &[u32]) -> Result<Packaged, ContainerError> {
    if stream.len() < HEADER_LEN {
        return Err(ContainerError::Truncated {
            offset: stream.len(),
            context: "bitstream header",
        });
    }
    let init = init_segment(&stream[..HEADER_LEN])?;
    let segs = split_stream(stream, points)?;
    let mut media = Vec::with_capacity(segs.len());
    for (i, seg) in segs.iter().enumerate() {
        let samples = segment_to_samples(seg)?;
        media.push(media_segment(i as u32, points[i], &samples));
    }
    Ok(Packaged { init, media })
}

/// Per-segment durations in integer milliseconds for a segment plan.
pub fn segment_durations_ms(points: &[u32], frames: u32, fps: u32) -> Vec<u32> {
    let fps = fps.max(1);
    points
        .iter()
        .enumerate()
        .map(|(i, &start)| {
            let end = points.get(i + 1).copied().unwrap_or(frames);
            end.saturating_sub(start) * 1000 / fps
        })
        .collect()
}

/// The media playlist for one rung of a segment plan. URIs follow the
/// fixed convention `{rung}/init.mp4` and `{rung}/seg{i}.m4s`.
pub fn media_playlist(rung: &str, points: &[u32], frames: u32, fps: u32) -> MediaPlaylist {
    let durations = segment_durations_ms(points, frames, fps);
    MediaPlaylist {
        init_uri: format!("{rung}/init.mp4"),
        segments: durations
            .iter()
            .enumerate()
            .map(|(i, &d)| SegmentEntry {
                duration_ms: d,
                uri: format!("{rung}/seg{i}.m4s"),
            })
            .collect(),
    }
}

/// The master playlist for a ladder. Bandwidth is a deterministic function
/// of the rung's CRF alone (lower CRF → higher rate), so the manifest
/// depends only on the plan.
pub fn master_playlist(ladder: &Ladder) -> MasterPlaylist {
    MasterPlaylist {
        variants: ladder
            .rungs
            .iter()
            .map(|r| Variant {
                name: r.name.clone(),
                bandwidth: u64::from(52u8.saturating_sub(r.crf)) * 200_000,
                uri: format!("{}/media.m3u8", r.name),
            })
            .collect(),
    }
}

/// Reads the frame count a bitstream header advertises.
///
/// # Errors
///
/// Returns [`ContainerError::Truncated`] when the header is short.
pub fn stream_frame_count(stream: &[u8]) -> Result<u32, ContainerError> {
    if stream.len() < HEADER_LEN {
        return Err(ContainerError::Truncated {
            offset: stream.len(),
            context: "bitstream header",
        });
    }
    Ok(u32::from(u16::from_le_bytes([
        stream[FRAME_COUNT_OFFSET],
        stream[FRAME_COUNT_OFFSET + 1],
    ])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demux;
    use crate::manifest::{render_master, render_media};

    fn synth_stream(frames: u16, points: &[u32]) -> Vec<u8> {
        let mut s = Vec::new();
        s.extend_from_slice(b"VTXB");
        s.push(1);
        s.extend_from_slice(&64u16.to_le_bytes());
        s.extend_from_slice(&48u16.to_le_bytes());
        s.push(24);
        s.extend_from_slice(&frames.to_le_bytes());
        s.extend_from_slice(&[3, 3, 1, 0, 8]);
        for d in 0..frames {
            let ftype = if points.contains(&u32::from(d)) {
                u8::from(d != 0) * 3
            } else {
                1u8
            };
            s.push(ftype);
            s.extend_from_slice(&d.to_le_bytes());
            s.push(30);
            s.extend_from_slice(&3u32.to_le_bytes());
            s.extend_from_slice(&[d as u8; 3]);
        }
        s
    }

    #[test]
    fn package_produces_parseable_segments() {
        let points = vec![0u32, 4];
        let stream = synth_stream(10, &points);
        let p = package_stream(&stream, &points).unwrap();
        assert_eq!(p.media.len(), 2);
        let info = demux::parse_init(&p.init).unwrap();
        assert_eq!(info.duration, 10);
        let m0 = demux::parse_media(&p.media[0]).unwrap();
        let m1 = demux::parse_media(&p.media[1]).unwrap();
        assert_eq!((m0.seq, m0.base_time, m0.samples.len()), (0, 0, 4));
        assert_eq!((m1.seq, m1.base_time, m1.samples.len()), (1, 4, 6));
        assert!(m1.samples[0].sync);
        // Same input, same bytes.
        assert_eq!(package_stream(&stream, &points).unwrap(), p);
    }

    #[test]
    fn playlists_depend_only_on_the_plan() {
        let points = vec![0u32, 48, 96];
        let media = media_playlist("hi", &points, 120, 24);
        let text = render_media(&media);
        assert!(text.contains("#EXT-X-MAP:URI=\"hi/init.mp4\""));
        assert!(text.contains("#EXTINF:2.000,\nhi/seg0.m4s"));
        assert!(text.contains("#EXTINF:1.000,\nhi/seg2.m4s"));
        let master = master_playlist(&Ladder::standard());
        let text = render_master(&master);
        assert!(text.contains("NAME=\"hi\"\nhi/media.m3u8"));
        assert_eq!(render_master(&master_playlist(&Ladder::standard())), text);
    }

    #[test]
    fn durations_cover_the_clip() {
        let points = vec![0u32, 48, 96];
        let d = segment_durations_ms(&points, 120, 24);
        assert_eq!(d, vec![2000, 2000, 1000]);
        assert_eq!(d.iter().sum::<u32>(), 120 * 1000 / 24);
    }
}
