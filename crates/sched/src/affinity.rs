//! Task-to-configuration affinity prediction.
//!
//! The smart scheduler must decide *without measuring every (task, config)
//! pair*. Its inputs are the characterization results the paper builds in
//! §IV-A: each Table IV configuration attacks exactly one Top-down category,
//! so a task's predicted benefit on a configuration is the share of pipeline
//! slots it loses to that category. The share estimates come either from a
//! cheap baseline profiling run ([`benefit_from_topdown`]) or, when no
//! profile is available, from the parameter-trend model the paper's heatmaps
//! establish ([`predict_topdown`]). [`port_informed_benefit`] layers the
//! issue-port execution model (`vtx-port`) on top: a kernel mix that
//! saturates the SIMD ports gains extra from the core-widened `be_op2`
//! column, which category shares alone cannot see.
//!
//! # Degenerate inputs
//!
//! Every predictor here is total — the scheduler calls them on whatever it
//! has — so the edge cases are contracts, not accidents:
//!
//! * **Empty kernel profile**: [`port_informed_benefit`] with no hotspots
//!   falls back to the default (scalar-control) uop mix and still returns a
//!   finite, non-negative benefit vector — it degrades to
//!   [`benefit_from_characterization`] plus the default mix's port relief.
//! * **Single-server fleet**: a fleet with one server means one column in
//!   the assignment matrices. The one-to-one Hungarian path accepts the
//!   1×1 case (the only possible assignment) and rejects over-subscription
//!   (more tasks than servers) with a typed error, never a panic — batching
//!   the surplus is the caller's job (`batch` / the serving queue).
//! * **All-zero Top-down shares**: benefit vectors come out all-zero, never
//!   NaN; an argmax over them picks the first configuration
//!   deterministically.
//!
//! Both degenerate paths are pinned by tests in this module.

use vtx_codec::Preset;
use vtx_port::{dispatch_bound, UopMix};
use vtx_uarch::config::UarchConfig;
use vtx_uarch::topdown::TopDown;

use crate::task::TranscodeTask;

/// Order of the modified configurations in all benefit vectors:
/// `[fe_op, be_op1, be_op2, bs_op]` (Table IV order, baseline excluded).
pub const CONFIG_NAMES: [&str; 4] = ["fe_op", "be_op1", "be_op2", "bs_op"];

/// Maps a measured Top-down breakdown to per-configuration benefit scores:
/// each configuration's score is the slot share of the category it attacks.
pub fn benefit_from_topdown(td: &TopDown) -> [f64; 4] {
    [
        td.frontend,
        td.backend_memory,
        td.backend_core,
        td.bad_speculation,
    ]
}

/// Refined benefit model using the full characterization (Top-down shares
/// plus the L2 miss rate), reflecting *how* each Table IV configuration
/// attacks its category:
///
/// * `fe_op` roughly halves instruction-fetch stalls (bigger L1i + iTLB);
/// * `be_op1` moves data misses one level up the hierarchy — a fraction of
///   the memory-bound share;
/// * `be_op2` doubles the out-of-order window, which overlaps long-latency
///   misses — but only when misses are *dense* enough to be window-limited,
///   hence the saturating L2-MPKI factor — plus all core-bound stalls;
/// * `bs_op` (TAGE) removes roughly half the mispredictions.
pub fn benefit_from_characterization(td: &TopDown, l2_mpki: f64, l3_mpki: f64) -> [f64; 4] {
    // Doubling the ROB (be_op2) only overlaps more misses when they arrive
    // faster than one per ~256 retired instructions — i.e. when the L2 miss
    // rate exceeds ~4 per kilo-instruction; below that the 128-entry window
    // already covers the gap.
    let density = ((l2_mpki - 4.0) / 4.0).clamp(0.0, 1.0);
    // be_op1 trades L3 capacity (8 MiB -> 4 MiB + slow L4) for bigger
    // L1d/L2: tasks whose working set lives in the L3 (high L3 miss
    // pressure once halved) gain little or even lose.
    let l3_pressure = (l3_mpki / 2.0).min(1.0);
    [
        0.9 * td.frontend,
        0.35 * td.backend_memory * (1.0 - 0.8 * l3_pressure),
        td.backend_core + 0.6 * td.backend_memory * density,
        0.1 * td.bad_speculation,
    ]
}

/// Parameter-trend model of the Top-down shares, encoding the paper's
/// Figure 3/6/7 findings:
///
/// * raising `crf` or `refs` lowers front-end and bad-speculation shares and
///   raises the back-end (memory) share (operational-intensity argument);
/// * slower presets are less memory-bound;
/// * the entropy of the input (motion/scene complexity) raises front-end and
///   bad-speculation shares.
pub fn predict_topdown(task: &TranscodeTask, entropy: f64) -> TopDown {
    let crf = f64::from(task.crf);
    let refs = f64::from(task.refs);
    let speed_rank = Preset::ALL
        .iter()
        .position(|&p| p == task.preset)
        .unwrap_or(5) as f64; // 0 = ultrafast .. 9 = placebo

    let frontend = (0.055 - 0.0006 * crf - 0.0012 * refs + 0.004 * entropy).max(0.01);
    let bad_spec = (0.065 - 0.0007 * crf - 0.0015 * refs + 0.006 * entropy).max(0.01);
    let backend_memory =
        (0.18 + 0.0030 * crf + 0.0080 * refs - 0.012 * speed_rank - 0.008 * entropy).max(0.02);
    let backend_core = (0.12 + 0.0010 * crf + 0.0020 * refs).max(0.02);
    let retiring = (1.0 - frontend - bad_spec - backend_memory - backend_core).max(0.05);
    TopDown {
        retiring,
        frontend,
        bad_speculation: bad_spec,
        backend_memory,
        backend_core,
    }
}

/// Predicted per-configuration benefit for a task (no measurement needed).
pub fn predict_benefit(task: &TranscodeTask, entropy: f64) -> [f64; 4] {
    benefit_from_topdown(&predict_topdown(task, entropy))
}

/// Port-informed benefit: [`benefit_from_characterization`] plus, per
/// configuration, the issue-port relief the config's port layout offers the
/// task's own uop mix.
///
/// The mix comes from the task's profiled hotspots (empty profile → default
/// mix, see the module docs). For each Table IV column the port model
/// computes the sustainable issue rate of that mix; the relative gain over
/// the baseline layout — nonzero only for the core-widened `be_op2`, whose
/// seventh port relieves SIMD pressure — is scaled by the task's core-bound
/// share, since port relief only helps code that actually waits on ports.
pub fn port_informed_benefit(
    td: &TopDown,
    l2_mpki: f64,
    l3_mpki: f64,
    hotspots: &[(String, u64)],
) -> [f64; 4] {
    let mut benefit = benefit_from_characterization(td, l2_mpki, l3_mpki);
    let mix = UopMix::from_hotspots(hotspots);
    let Ok(base_bound) = dispatch_bound(&UarchConfig::baseline(), &mix) else {
        return benefit;
    };
    for (b, cfg) in benefit.iter_mut().zip(UarchConfig::modified_configs()) {
        if let Ok(bound) = dispatch_bound(&cfg, &mix) {
            let relief = ((bound - base_bound) / base_bound.max(f64::MIN_POSITIVE)).max(0.0);
            *b += relief * td.backend_core;
        }
    }
    benefit
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TranscodeTask;

    fn task(crf: u8, refs: u8, preset: Preset) -> TranscodeTask {
        TranscodeTask::new("bike", crf, refs, preset)
    }

    #[test]
    fn higher_crf_more_memory_bound() {
        let lo = predict_topdown(&task(10, 3, Preset::Medium), 1.0);
        let hi = predict_topdown(&task(45, 3, Preset::Medium), 1.0);
        assert!(hi.backend_memory > lo.backend_memory);
        assert!(hi.frontend < lo.frontend);
        assert!(hi.bad_speculation < lo.bad_speculation);
    }

    #[test]
    fn higher_refs_more_memory_bound() {
        let lo = predict_topdown(&task(23, 1, Preset::Medium), 1.0);
        let hi = predict_topdown(&task(23, 16, Preset::Medium), 1.0);
        assert!(hi.backend_memory > lo.backend_memory);
        assert!(hi.bad_speculation < lo.bad_speculation);
    }

    #[test]
    fn slower_presets_less_memory_bound() {
        let fast = predict_topdown(&task(23, 3, Preset::Ultrafast), 1.0);
        let slow = predict_topdown(&task(23, 3, Preset::Veryslow), 1.0);
        assert!(slow.backend_memory < fast.backend_memory);
    }

    #[test]
    fn complex_video_more_frontend_and_badspec() {
        let calm = predict_topdown(&task(23, 3, Preset::Medium), 0.2);
        let busy = predict_topdown(&task(23, 3, Preset::Medium), 7.7);
        assert!(busy.frontend > calm.frontend);
        assert!(busy.bad_speculation > calm.bad_speculation);
        assert!(busy.backend_memory < calm.backend_memory);
    }

    #[test]
    fn shares_are_sane() {
        for crf in [1u8, 23, 51] {
            for refs in [1u8, 8, 16] {
                let td = predict_topdown(&task(crf, refs, Preset::Medium), 3.0);
                assert!((td.sum() - 1.0).abs() < 0.3, "{td:?}");
                assert!(td.retiring > 0.0);
            }
        }
    }

    #[test]
    fn characterization_model_is_density_aware() {
        let memory_bound = TopDown {
            retiring: 0.3,
            frontend: 0.05,
            bad_speculation: 0.05,
            backend_memory: 0.5,
            backend_core: 0.1,
        };
        // Dense misses: the bigger window (be_op2) is the best fit.
        let dense = benefit_from_characterization(&memory_bound, 12.0, 0.2);
        let best_dense = (0..4)
            .max_by(|&a, &b| dense[a].total_cmp(&dense[b]))
            .unwrap();
        assert_eq!(CONFIG_NAMES[best_dense], "be_op2");
        // Sparse misses: the window already covers them; bigger caches win.
        let sparse = benefit_from_characterization(&memory_bound, 1.0, 0.2);
        let best_sparse = (0..4)
            .max_by(|&a, &b| sparse[a].total_cmp(&sparse[b]))
            .unwrap();
        assert_eq!(CONFIG_NAMES[best_sparse], "be_op1");
    }

    #[test]
    fn port_informed_boosts_be_op2_for_simd_mixes() {
        let core_bound = TopDown {
            retiring: 0.35,
            frontend: 0.05,
            bad_speculation: 0.05,
            backend_memory: 0.15,
            backend_core: 0.4,
        };
        let simd_hot = vec![("satd".to_owned(), 800_000u64), ("sad".to_owned(), 200_000)];
        let plain = benefit_from_characterization(&core_bound, 1.0, 0.2);
        let ported = port_informed_benefit(&core_bound, 1.0, 0.2, &simd_hot);
        // The seventh port of be_op2 relieves SIMD pressure: only its entry
        // grows; the other columns share the baseline layout.
        let be_op2 = CONFIG_NAMES.iter().position(|n| *n == "be_op2").unwrap();
        for i in 0..4 {
            if i == be_op2 {
                assert!(ported[i] > plain[i], "{ported:?} vs {plain:?}");
            } else {
                assert!((ported[i] - plain[i]).abs() < 1e-12, "{}", CONFIG_NAMES[i]);
            }
        }
    }

    #[test]
    fn empty_kernel_profile_degrades_gracefully() {
        let td = TopDown {
            retiring: 0.5,
            frontend: 0.1,
            bad_speculation: 0.05,
            backend_memory: 0.25,
            backend_core: 0.1,
        };
        let b = port_informed_benefit(&td, 2.0, 0.5, &[]);
        let plain = benefit_from_characterization(&td, 2.0, 0.5);
        for (i, v) in b.iter().enumerate() {
            assert!(v.is_finite() && *v >= 0.0, "{b:?}");
            // The default mix's relief can only add benefit, never remove.
            assert!(*v >= plain[i] - 1e-12);
        }
    }

    #[test]
    fn all_zero_topdown_yields_all_zero_benefit() {
        let td = TopDown {
            retiring: 0.0,
            frontend: 0.0,
            bad_speculation: 0.0,
            backend_memory: 0.0,
            backend_core: 0.0,
        };
        for v in port_informed_benefit(&td, 0.0, 0.0, &[]) {
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn single_server_fleet_degenerate_paths() {
        // 1×1: the only possible assignment, accepted.
        let out = crate::scheduler::try_smart_assignment(&[vec![0.4]], &[vec![2.0]])
            .expect("1x1 matrices are valid");
        assert_eq!(out.assignment, vec![0]);
        assert!((out.total_time - 2.0).abs() < 1e-12);
        // 3 tasks × 1 server: one-to-one is unsatisfiable — a typed error,
        // not a panic; batching the surplus is the caller's job.
        let times = vec![vec![2.0], vec![3.0], vec![5.0]];
        let benefit = vec![vec![0.1], vec![0.2], vec![0.3]];
        assert!(crate::scheduler::try_smart_assignment(&benefit, &times).is_err());
    }

    #[test]
    fn benefit_vector_maps_categories() {
        let td = TopDown {
            retiring: 0.5,
            frontend: 0.1,
            bad_speculation: 0.05,
            backend_memory: 0.25,
            backend_core: 0.1,
        };
        let b = benefit_from_topdown(&td);
        assert_eq!(b, [0.1, 0.25, 0.1, 0.05]);
        // be_op1 is the best fit for this memory-bound profile.
        let best = (0..4).max_by(|&a, &c| b[a].total_cmp(&b[c])).unwrap();
        assert_eq!(CONFIG_NAMES[best], "be_op1");
    }
}
