//! Task-to-configuration affinity prediction.
//!
//! The smart scheduler must decide *without measuring every (task, config)
//! pair*. Its inputs are the characterization results the paper builds in
//! §IV-A: each Table IV configuration attacks exactly one Top-down category,
//! so a task's predicted benefit on a configuration is the share of pipeline
//! slots it loses to that category. The share estimates come either from a
//! cheap baseline profiling run ([`benefit_from_topdown`]) or, when no
//! profile is available, from the parameter-trend model the paper's heatmaps
//! establish ([`predict_topdown`]).

use vtx_codec::Preset;
use vtx_uarch::topdown::TopDown;

use crate::task::TranscodeTask;

/// Order of the modified configurations in all benefit vectors:
/// `[fe_op, be_op1, be_op2, bs_op]` (Table IV order, baseline excluded).
pub const CONFIG_NAMES: [&str; 4] = ["fe_op", "be_op1", "be_op2", "bs_op"];

/// Maps a measured Top-down breakdown to per-configuration benefit scores:
/// each configuration's score is the slot share of the category it attacks.
pub fn benefit_from_topdown(td: &TopDown) -> [f64; 4] {
    [
        td.frontend,
        td.backend_memory,
        td.backend_core,
        td.bad_speculation,
    ]
}

/// Refined benefit model using the full characterization (Top-down shares
/// plus the L2 miss rate), reflecting *how* each Table IV configuration
/// attacks its category:
///
/// * `fe_op` roughly halves instruction-fetch stalls (bigger L1i + iTLB);
/// * `be_op1` moves data misses one level up the hierarchy — a fraction of
///   the memory-bound share;
/// * `be_op2` doubles the out-of-order window, which overlaps long-latency
///   misses — but only when misses are *dense* enough to be window-limited,
///   hence the saturating L2-MPKI factor — plus all core-bound stalls;
/// * `bs_op` (TAGE) removes roughly half the mispredictions.
pub fn benefit_from_characterization(td: &TopDown, l2_mpki: f64, l3_mpki: f64) -> [f64; 4] {
    // Doubling the ROB (be_op2) only overlaps more misses when they arrive
    // faster than one per ~256 retired instructions — i.e. when the L2 miss
    // rate exceeds ~4 per kilo-instruction; below that the 128-entry window
    // already covers the gap.
    let density = ((l2_mpki - 4.0) / 4.0).clamp(0.0, 1.0);
    // be_op1 trades L3 capacity (8 MiB -> 4 MiB + slow L4) for bigger
    // L1d/L2: tasks whose working set lives in the L3 (high L3 miss
    // pressure once halved) gain little or even lose.
    let l3_pressure = (l3_mpki / 2.0).min(1.0);
    [
        0.9 * td.frontend,
        0.35 * td.backend_memory * (1.0 - 0.8 * l3_pressure),
        td.backend_core + 0.6 * td.backend_memory * density,
        0.1 * td.bad_speculation,
    ]
}

/// Parameter-trend model of the Top-down shares, encoding the paper's
/// Figure 3/6/7 findings:
///
/// * raising `crf` or `refs` lowers front-end and bad-speculation shares and
///   raises the back-end (memory) share (operational-intensity argument);
/// * slower presets are less memory-bound;
/// * the entropy of the input (motion/scene complexity) raises front-end and
///   bad-speculation shares.
pub fn predict_topdown(task: &TranscodeTask, entropy: f64) -> TopDown {
    let crf = f64::from(task.crf);
    let refs = f64::from(task.refs);
    let speed_rank = Preset::ALL
        .iter()
        .position(|&p| p == task.preset)
        .unwrap_or(5) as f64; // 0 = ultrafast .. 9 = placebo

    let frontend = (0.055 - 0.0006 * crf - 0.0012 * refs + 0.004 * entropy).max(0.01);
    let bad_spec = (0.065 - 0.0007 * crf - 0.0015 * refs + 0.006 * entropy).max(0.01);
    let backend_memory =
        (0.18 + 0.0030 * crf + 0.0080 * refs - 0.012 * speed_rank - 0.008 * entropy).max(0.02);
    let backend_core = (0.12 + 0.0010 * crf + 0.0020 * refs).max(0.02);
    let retiring = (1.0 - frontend - bad_spec - backend_memory - backend_core).max(0.05);
    TopDown {
        retiring,
        frontend,
        bad_speculation: bad_spec,
        backend_memory,
        backend_core,
    }
}

/// Predicted per-configuration benefit for a task (no measurement needed).
pub fn predict_benefit(task: &TranscodeTask, entropy: f64) -> [f64; 4] {
    benefit_from_topdown(&predict_topdown(task, entropy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TranscodeTask;

    fn task(crf: u8, refs: u8, preset: Preset) -> TranscodeTask {
        TranscodeTask::new("bike", crf, refs, preset)
    }

    #[test]
    fn higher_crf_more_memory_bound() {
        let lo = predict_topdown(&task(10, 3, Preset::Medium), 1.0);
        let hi = predict_topdown(&task(45, 3, Preset::Medium), 1.0);
        assert!(hi.backend_memory > lo.backend_memory);
        assert!(hi.frontend < lo.frontend);
        assert!(hi.bad_speculation < lo.bad_speculation);
    }

    #[test]
    fn higher_refs_more_memory_bound() {
        let lo = predict_topdown(&task(23, 1, Preset::Medium), 1.0);
        let hi = predict_topdown(&task(23, 16, Preset::Medium), 1.0);
        assert!(hi.backend_memory > lo.backend_memory);
        assert!(hi.bad_speculation < lo.bad_speculation);
    }

    #[test]
    fn slower_presets_less_memory_bound() {
        let fast = predict_topdown(&task(23, 3, Preset::Ultrafast), 1.0);
        let slow = predict_topdown(&task(23, 3, Preset::Veryslow), 1.0);
        assert!(slow.backend_memory < fast.backend_memory);
    }

    #[test]
    fn complex_video_more_frontend_and_badspec() {
        let calm = predict_topdown(&task(23, 3, Preset::Medium), 0.2);
        let busy = predict_topdown(&task(23, 3, Preset::Medium), 7.7);
        assert!(busy.frontend > calm.frontend);
        assert!(busy.bad_speculation > calm.bad_speculation);
        assert!(busy.backend_memory < calm.backend_memory);
    }

    #[test]
    fn shares_are_sane() {
        for crf in [1u8, 23, 51] {
            for refs in [1u8, 8, 16] {
                let td = predict_topdown(&task(crf, refs, Preset::Medium), 3.0);
                assert!((td.sum() - 1.0).abs() < 0.3, "{td:?}");
                assert!(td.retiring > 0.0);
            }
        }
    }

    #[test]
    fn characterization_model_is_density_aware() {
        let memory_bound = TopDown {
            retiring: 0.3,
            frontend: 0.05,
            bad_speculation: 0.05,
            backend_memory: 0.5,
            backend_core: 0.1,
        };
        // Dense misses: the bigger window (be_op2) is the best fit.
        let dense = benefit_from_characterization(&memory_bound, 12.0, 0.2);
        let best_dense = (0..4)
            .max_by(|&a, &b| dense[a].total_cmp(&dense[b]))
            .unwrap();
        assert_eq!(CONFIG_NAMES[best_dense], "be_op2");
        // Sparse misses: the window already covers them; bigger caches win.
        let sparse = benefit_from_characterization(&memory_bound, 1.0, 0.2);
        let best_sparse = (0..4)
            .max_by(|&a, &b| sparse[a].total_cmp(&sparse[b]))
            .unwrap();
        assert_eq!(CONFIG_NAMES[best_sparse], "be_op1");
    }

    #[test]
    fn benefit_vector_maps_categories() {
        let td = TopDown {
            retiring: 0.5,
            frontend: 0.1,
            bad_speculation: 0.05,
            backend_memory: 0.25,
            backend_core: 0.1,
        };
        let b = benefit_from_topdown(&td);
        assert_eq!(b, [0.1, 0.25, 0.1, 0.05]);
        // be_op1 is the best fit for this memory-bound profile.
        let best = (0..4).max_by(|&a, &c| b[a].total_cmp(&b[c])).unwrap();
        assert_eq!(CONFIG_NAMES[best], "be_op1");
    }
}
