//! Bertsekas ε-scaling auction for minimum-cost one-to-one assignment over
//! integer costs.
//!
//! The Hungarian solver in [`crate::hungarian`] is exact but O(n³) per call
//! and works on `f64` matrices. An online dispatcher at fleet scale solves
//! many *small, related* assignment problems per second (the same servers
//! show up round after round), which is exactly the regime the auction
//! algorithm was designed for:
//!
//! * costs are **integers** (milli-units chosen by the caller), so every
//!   bid, price and benefit is exact — determinism survives reordering;
//! * prices persist across rounds (**warm start**): when the next round's
//!   matrix resembles the last one, most persons bid straight into their
//!   final objects;
//! * ε-scaling with a final phase at ε = 1 over benefits pre-scaled by
//!   `rows + 1` yields an *exactly* optimal assignment (Bertsekas 1988):
//!   any two distinct assignment totals differ by at least `rows + 1`
//!   scaled units, while ε-complementary slackness bounds the gap by
//!   `rows · ε = rows`.
//!
//! Orientation follows [`crate::hungarian::solve_padded`]: rows are tasks,
//! columns are servers. With `rows <= cols` every row is assigned; with
//! `rows > cols` the matrix is transposed and exactly `cols` rows win a
//! column, the rest return `None` and stay queued.
//!
//! Costs are clamped to [`COST_CAP`] before scaling so all arithmetic fits
//! comfortably in `i128`; entries at or above the cap compete as equals.

use crate::error::SchedError;

/// Upper clamp on input costs (milli-units). Chosen so that scaled benefits
/// and price escalations stay far inside `i128` for any feasible matrix; in
/// the serving layer the largest suspect-penalized prediction is ~2^43.
pub const COST_CAP: u64 = 1 << 50;

/// Sentinel for "no second-best object" (single-column matrices).
const NO_SECOND: i128 = i128::MIN / 4;

fn validate_milli(m: &[Vec<u64>]) -> Result<(usize, usize), SchedError> {
    if m.is_empty() {
        return Err(SchedError::NoTasks);
    }
    let cols = m[0].len();
    if cols == 0 {
        return Err(SchedError::NoConfigs);
    }
    for (row, r) in m.iter().enumerate() {
        if r.len() != cols {
            return Err(SchedError::RaggedMatrix {
                row,
                expected: cols,
                got: r.len(),
            });
        }
    }
    Ok((m.len(), cols))
}

/// One auction phase at a fixed ε: all persons start unassigned, prices are
/// inherited. Returns `assigned[i] = j` with every person assigned
/// (requires `rows <= cols`). Deterministic: the bid queue is FIFO seeded
/// in row order and value ties break toward the lowest column.
fn phase(benefit: &[Vec<i128>], prices: &mut [i128], eps: i128) -> Vec<usize> {
    let n = benefit.len();
    let m = prices.len();
    let mut owner: Vec<Option<usize>> = vec![None; m];
    let mut assigned: Vec<Option<usize>> = vec![None; n];
    let mut queue: std::collections::VecDeque<usize> = (0..n).collect();
    while let Some(i) = queue.pop_front() {
        let mut best_j = 0usize;
        let mut best_v = i128::MIN;
        let mut second_v = NO_SECOND;
        for (j, p) in prices.iter().enumerate() {
            let v = benefit[i][j] - p;
            if v > best_v {
                second_v = if best_v == i128::MIN {
                    NO_SECOND
                } else {
                    best_v
                };
                best_v = v;
                best_j = j;
            } else if v > second_v {
                second_v = v;
            }
        }
        let incr = if second_v == NO_SECOND {
            eps
        } else {
            best_v - second_v + eps
        };
        prices[best_j] += incr;
        if let Some(prev) = owner[best_j] {
            assigned[prev] = None;
            queue.push_back(prev);
        }
        owner[best_j] = Some(i);
        assigned[i] = Some(best_j);
    }
    assigned
        .into_iter()
        .map(|a| a.expect("rows <= cols"))
        .collect()
}

/// Auction for `rows <= cols`: minimizes total cost exactly. `prices` are
/// read as the warm start and left holding the final prices.
///
/// The problem is padded to a square one with `cols - rows` zero-benefit
/// dummy bidders. That keeps every column assigned at termination, which is
/// what makes the ε-complementary-slackness optimality bound hold from
/// *arbitrary* starting prices — the asymmetric forward auction is only
/// optimal when unassigned columns sit at their minimal price, a property
/// warm starts and ε-scaling phases both destroy.
fn auction_min(cost: &[Vec<u64>], prices: &mut [i128]) -> Vec<usize> {
    let n = cost.len();
    let m = cost[0].len();
    let scale = (m + 1) as i128;
    let max_c = cost
        .iter()
        .flat_map(|r| r.iter())
        .map(|&c| c.min(COST_CAP))
        .max()
        .unwrap_or(0) as i128;
    // Benefits: scale * (max_c - cost); higher is better. Dummy rows are
    // indifferent (benefit 0 everywhere), so real totals alone decide the
    // optimum and any two distinct ones differ by at least `scale` — which
    // the final ε = 1 phase's m·ε gap cannot bridge.
    let mut benefit: Vec<Vec<i128>> = cost
        .iter()
        .map(|r| {
            r.iter()
                .map(|&c| scale * (max_c - c.min(COST_CAP) as i128))
                .collect()
        })
        .collect();
    benefit.extend((n..m).map(|_| vec![0i128; m]));
    // ε-scaling: start near the benefit range, divide by 8 down to 1. Each
    // phase keeps prices and re-auctions everyone; only the final ε = 1
    // assignment is returned (it is exactly optimal).
    let range = scale * max_c;
    let mut epsilons = Vec::new();
    let mut eps = (range / 8).max(1);
    while eps > 1 {
        epsilons.push(eps);
        eps /= 8;
    }
    epsilons.push(1);
    let mut assignment = Vec::new();
    for e in epsilons {
        assignment = phase(&benefit, prices, e);
    }
    assignment.truncate(n);
    assignment
}

/// Rectangular minimum-cost assignment over integer (milli-unit) costs, in
/// both orientations — the auction twin of
/// [`crate::hungarian::solve_padded`].
///
/// # Errors
///
/// Returns [`SchedError`] when the matrix is empty or ragged.
pub fn solve_padded(cost: &[Vec<u64>]) -> Result<Vec<Option<usize>>, SchedError> {
    let (_, m) = validate_milli(cost)?;
    let mut prices = vec![0i64; m];
    solve_padded_warm(cost, &mut prices)
}

/// [`solve_padded`] with persistent prices: `prices` (one per column) carry
/// the auction state across rounds, warm-starting the next solve when the
/// cost structure is similar. The result is exactly optimal regardless of
/// the starting prices. In the transposed orientation (`rows > cols`) the
/// bidding roles flip, so the warm start is skipped and `prices` are left
/// untouched.
///
/// # Errors
///
/// Returns [`SchedError`] when the matrix is empty or ragged, or
/// [`SchedError::ShapeMismatch`] when `prices.len() != cols`.
pub fn solve_padded_warm(
    cost: &[Vec<u64>],
    prices: &mut [i64],
) -> Result<Vec<Option<usize>>, SchedError> {
    let (n, m) = validate_milli(cost)?;
    if prices.len() != m {
        return Err(SchedError::ShapeMismatch {
            left: (n, m),
            right: (1, prices.len()),
        });
    }
    if n <= m {
        let mut p: Vec<i128> = prices.iter().map(|&x| i128::from(x)).collect();
        let a = auction_min(cost, &mut p);
        for (dst, src) in prices.iter_mut().zip(&p) {
            *dst = (*src).clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64;
        }
        return Ok(a.into_iter().map(Some).collect());
    }
    // Transpose: the m servers bid for the n tasks; exactly m tasks win.
    let t: Vec<Vec<u64>> = (0..m)
        .map(|j| (0..n).map(|i| cost[i][j]).collect())
        .collect();
    let mut p = vec![0i128; n];
    let per_col = auction_min(&t, &mut p);
    let mut out = vec![None; n];
    for (col, &row) in per_col.iter().enumerate() {
        out[row] = Some(col);
    }
    Ok(out)
}

/// Total cost of a padded assignment (skipping unassigned rows), saturating.
pub fn assignment_cost(cost: &[Vec<u64>], assignment: &[Option<usize>]) -> u64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, j)| j.map(|j| cost[i][j]))
        .fold(0u64, u64::saturating_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hungarian;

    fn to_f64(cost: &[Vec<u64>]) -> Vec<Vec<f64>> {
        cost.iter()
            .map(|r| r.iter().map(|&c| c as f64).collect())
            .collect()
    }

    fn hungarian_total(cost: &[Vec<u64>]) -> u64 {
        let a = hungarian::solve_padded(&to_f64(cost)).unwrap();
        assignment_cost(cost, &a)
    }

    fn rand_matrix(state: &mut u64, n: usize, m: usize, span: u64) -> Vec<Vec<u64>> {
        (0..n)
            .map(|_| {
                (0..m)
                    .map(|_| {
                        *state = state
                            .wrapping_mul(6_364_136_223_846_793_005)
                            .wrapping_add(1);
                        (*state >> 33) % span
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn known_small_case() {
        let cost = vec![vec![4, 1, 3], vec![2, 0, 5], vec![3, 2, 2]];
        let a = solve_padded(&cost).unwrap();
        assert_eq!(assignment_cost(&cost, &a), 5);
    }

    #[test]
    fn matches_hungarian_on_random_matrices_all_shapes() {
        let mut state = 0x5eed_cafe_u64;
        for trial in 0..60 {
            let n = 1 + (trial % 6);
            let m = 1 + (trial % 8);
            let cost = rand_matrix(&mut state, n, m, 10_000);
            let a = solve_padded(&cost).unwrap();
            assert_eq!(a.iter().flatten().count(), n.min(m), "trial {trial}");
            let mut seen = vec![false; m];
            for j in a.iter().flatten() {
                assert!(!seen[*j], "column {j} assigned twice (trial {trial})");
                seen[*j] = true;
            }
            assert_eq!(
                assignment_cost(&cost, &a),
                hungarian_total(&cost),
                "trial {trial}: auction total != hungarian total on {cost:?}"
            );
        }
    }

    #[test]
    fn ties_break_deterministically() {
        let cost = vec![vec![7, 7], vec![7, 7], vec![7, 7]];
        let a = solve_padded(&cost).unwrap();
        let b = solve_padded(&cost).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.iter().flatten().count(), 2);
    }

    #[test]
    fn warm_start_stays_optimal_across_rounds() {
        let mut state = 0xbead_5eed_u64;
        let mut prices = vec![0i64; 6];
        for round in 0..20 {
            let n = 1 + (round % 5);
            let cost = rand_matrix(&mut state, n, 6, 1_000_000);
            let a = solve_padded_warm(&cost, &mut prices).unwrap();
            assert_eq!(
                assignment_cost(&cost, &a),
                hungarian_total(&cost),
                "round {round}: warm-started auction lost optimality"
            );
        }
        // Prices should actually be carrying state by now.
        assert!(prices.iter().any(|&p| p != 0));
    }

    #[test]
    fn single_cell_shapes() {
        assert_eq!(solve_padded(&[vec![9]]), Ok(vec![Some(0)]));
        assert_eq!(solve_padded(&[vec![5, 1, 5]]), Ok(vec![Some(1)]));
        // Tall single column: exactly one row wins.
        let a = solve_padded(&[vec![3], vec![1], vec![2]]).unwrap();
        assert_eq!(a, vec![None, Some(0), None]);
    }

    #[test]
    fn huge_costs_are_clamped_not_overflowed() {
        let cost = vec![vec![u64::MAX, 1], vec![u64::MAX, u64::MAX]];
        let a = solve_padded(&cost).unwrap();
        // Row 0 must take the cheap column; row 1 takes the capped one.
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rejects_malformed_input() {
        assert_eq!(solve_padded(&[]), Err(SchedError::NoTasks));
        assert_eq!(solve_padded(&[vec![]]), Err(SchedError::NoConfigs));
        assert_eq!(
            solve_padded(&[vec![1, 2], vec![3]]),
            Err(SchedError::RaggedMatrix {
                row: 1,
                expected: 2,
                got: 1
            })
        );
        let mut short = vec![0i64; 1];
        assert!(matches!(
            solve_padded_warm(&[vec![1, 2]], &mut short),
            Err(SchedError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_path_matches_hungarian_and_leaves_prices_alone() {
        let mut state = 0x0a0b_0c0d_u64;
        for trial in 0..20 {
            let n = 3 + (trial % 4);
            let m = 2;
            let cost = rand_matrix(&mut state, n, m, 5_000);
            let mut prices = vec![17i64; m];
            let a = solve_padded_warm(&cost, &mut prices).unwrap();
            assert_eq!(prices, vec![17i64; m], "transpose must not touch prices");
            assert_eq!(a.iter().flatten().count(), m);
            assert_eq!(
                assignment_cost(&cost, &a),
                hungarian_total(&cost),
                "trial {trial}"
            );
        }
    }
}
