//! Error type for fallible scheduling entry points.
//!
//! The original Figure 9 drivers run over matrices they construct
//! themselves, so the panicking API is fine there; an online serving layer
//! (`vtx-serve`) receives fleets and task batches from the outside world and
//! must be able to reject malformed input without taking down the server
//! loop. The `try_*` variants in [`crate::scheduler`] and
//! [`crate::hungarian`] return this type; the panicking wrappers remain for
//! the existing examples and keep their historical messages.

use std::error::Error;
use std::fmt;

/// A malformed scheduling problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedError {
    /// The time/benefit/cost matrix has no rows.
    NoTasks,
    /// The matrix has rows but no columns.
    NoConfigs,
    /// A row's length disagrees with the first row's.
    RaggedMatrix {
        /// Index of the offending row.
        row: usize,
        /// Expected row length (from row 0).
        expected: usize,
        /// Actual length of the offending row.
        got: usize,
    },
    /// Two matrices that must share a shape do not.
    ShapeMismatch {
        /// Shape of the first matrix as (rows, cols).
        left: (usize, usize),
        /// Shape of the second matrix as (rows, cols).
        right: (usize, usize),
    },
    /// A one-to-one assignment was requested with more tasks than
    /// configurations.
    TooManyTasks {
        /// Number of tasks (rows).
        tasks: usize,
        /// Number of configurations (columns).
        configs: usize,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::NoTasks => write!(f, "need at least one task"),
            SchedError::NoConfigs => write!(f, "need at least one configuration"),
            SchedError::RaggedMatrix { row, expected, got } => write!(
                f,
                "time matrix must be rectangular (row {row} has {got} columns, expected {expected})"
            ),
            SchedError::ShapeMismatch { left, right } => write!(
                f,
                "matrix shapes must match ({}x{} vs {}x{})",
                left.0, left.1, right.0, right.1
            ),
            SchedError::TooManyTasks { tasks, configs } => write!(
                f,
                "need at least as many columns as rows for a one-to-one \
                 assignment ({tasks} tasks, {configs} configurations)"
            ),
        }
    }
}

impl Error for SchedError {}

/// Validates that `m` is a nonempty rectangular matrix; returns its shape.
pub(crate) fn validate_matrix(m: &[Vec<f64>]) -> Result<(usize, usize), SchedError> {
    if m.is_empty() {
        return Err(SchedError::NoTasks);
    }
    let cols = m[0].len();
    if cols == 0 {
        return Err(SchedError::NoConfigs);
    }
    for (row, r) in m.iter().enumerate() {
        if r.len() != cols {
            return Err(SchedError::RaggedMatrix {
                row,
                expected: cols,
                got: r.len(),
            });
        }
    }
    Ok((m.len(), cols))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_reports_shape() {
        assert_eq!(validate_matrix(&[vec![1.0, 2.0]]), Ok((1, 2)));
    }

    #[test]
    fn validate_rejects_empty_and_ragged() {
        assert_eq!(validate_matrix(&[]), Err(SchedError::NoTasks));
        assert_eq!(validate_matrix(&[vec![]]), Err(SchedError::NoConfigs));
        assert_eq!(
            validate_matrix(&[vec![1.0, 2.0], vec![3.0]]),
            Err(SchedError::RaggedMatrix {
                row: 1,
                expected: 2,
                got: 1
            })
        );
    }

    #[test]
    fn display_keeps_historic_messages() {
        // The panicking wrappers format these errors; existing callers match
        // on the original assert! substrings.
        assert!(SchedError::NoTasks
            .to_string()
            .contains("at least one task"));
        assert!(SchedError::NoConfigs
            .to_string()
            .contains("at least one configuration"));
        assert!(SchedError::RaggedMatrix {
            row: 1,
            expected: 2,
            got: 1
        }
        .to_string()
        .contains("rectangular"));
        assert!(SchedError::TooManyTasks {
            tasks: 3,
            configs: 2
        }
        .to_string()
        .contains("columns"));
    }
}
