//! The Hungarian (Kuhn–Munkres) algorithm for minimum-cost one-to-one
//! assignment, implemented with the O(n³) potentials formulation.

use crate::error::{validate_matrix, SchedError};

/// Solves the rectangular assignment problem: `cost[i][j]` is the cost of
/// giving row (task) `i` to column (server) `j`, with `rows <= cols`.
/// Returns the column assigned to each row, minimizing total cost.
///
/// # Panics
///
/// Panics if `cost` is empty, ragged, or has more rows than columns.
pub fn solve(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be nonempty");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "cost matrix must be rectangular"
    );
    assert!(n <= m, "need at least as many columns as rows");

    // Standard potentials algorithm (1-indexed internally).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Fallible variant of [`solve`]: validates the matrix instead of
/// panicking, for callers fed from untrusted input (the online serving
/// layer).
///
/// # Errors
///
/// Returns [`SchedError`] when the matrix is empty, ragged, or has more
/// rows than columns.
pub fn try_solve(cost: &[Vec<f64>]) -> Result<Vec<usize>, SchedError> {
    let (n, m) = validate_matrix(cost)?;
    if n > m {
        return Err(SchedError::TooManyTasks {
            tasks: n,
            configs: m,
        });
    }
    Ok(solve(cost))
}

/// Rectangular assignment in *both* orientations.
///
/// With `rows <= cols` this is [`solve`] with every row assigned. With
/// `rows > cols` (more queued tasks than idle servers — the common case in
/// an online dispatcher) the matrix is transposed, solved for the columns,
/// and mapped back: exactly `cols` rows receive a column, the rest get
/// `None` and stay queued. The chosen subset minimizes total cost among all
/// ways of giving each column one row.
///
/// # Errors
///
/// Returns [`SchedError`] when the matrix is empty or ragged.
pub fn solve_padded(cost: &[Vec<f64>]) -> Result<Vec<Option<usize>>, SchedError> {
    let (n, m) = validate_matrix(cost)?;
    if n <= m {
        return Ok(solve(cost).into_iter().map(Some).collect());
    }
    // Transpose: rows become the m servers, columns the n tasks (m < n, so
    // the transposed problem satisfies rows <= cols).
    let t: Vec<Vec<f64>> = (0..m)
        .map(|j| (0..n).map(|i| cost[i][j]).collect())
        .collect();
    let per_col = solve(&t); // per_col[j] = row (task) given to column j
    let mut out = vec![None; n];
    for (col, &row) in per_col.iter().enumerate() {
        out[row] = Some(col);
    }
    Ok(out)
}

/// Total cost of an assignment.
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, 0, n, &mut |perm| {
            let total: f64 = (0..n).map(|i| cost[i][perm[i]]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(cols);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }

    #[test]
    fn known_small_case() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0); // 1 + 2 + 2
    }

    #[test]
    fn assignment_is_injective() {
        let cost = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
            vec![4.0, 8.0, 12.0, 16.0],
        ];
        let a = solve(&cost);
        let mut seen = [false; 4];
        for &j in &a {
            assert!(!seen[j], "column {j} assigned twice");
            seen[j] = true;
        }
    }

    #[test]
    fn matches_brute_force_on_many_random_matrices() {
        // Deterministic pseudo-random matrices.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        for trial in 0..50 {
            let n = 2 + (trial % 4);
            let m = n + (trial % 3);
            let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
            let a = solve(&cost);
            let got = assignment_cost(&cost, &a);
            let want = brute_force(&cost);
            assert!(
                (got - want).abs() < 1e-9,
                "trial {trial}: hungarian {got} vs brute {want} on {cost:?}"
            );
        }
    }

    #[test]
    fn rectangular_uses_extra_columns() {
        let cost = vec![vec![10.0, 1.0, 10.0], vec![10.0, 2.0, 0.5]];
        let a = solve(&cost);
        assert_eq!(a, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn more_rows_than_cols_panics() {
        let cost = vec![vec![1.0], vec![2.0]];
        let _ = solve(&cost);
    }

    #[test]
    fn try_solve_rejects_malformed_input() {
        use crate::error::SchedError;
        assert_eq!(try_solve(&[]), Err(SchedError::NoTasks));
        assert_eq!(try_solve(&[vec![]]), Err(SchedError::NoConfigs));
        assert_eq!(
            try_solve(&[vec![1.0, 2.0], vec![3.0]]),
            Err(SchedError::RaggedMatrix {
                row: 1,
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            try_solve(&[vec![1.0], vec![2.0]]),
            Err(SchedError::TooManyTasks {
                tasks: 2,
                configs: 1
            })
        );
        assert_eq!(try_solve(&[vec![2.0, 1.0]]), Ok(vec![1]));
    }

    #[test]
    fn padded_1x1() {
        assert_eq!(solve_padded(&[vec![7.0]]), Ok(vec![Some(0)]));
    }

    #[test]
    fn padded_wide_assigns_every_row() {
        // rows < cols: same as solve().
        let cost = vec![vec![10.0, 1.0, 10.0], vec![10.0, 2.0, 0.5]];
        assert_eq!(solve_padded(&cost), Ok(vec![Some(1), Some(2)]));
    }

    #[test]
    fn padded_tall_assigns_exactly_cols_rows() {
        // 4 tasks, 2 servers: tasks 1 and 3 are the cheap fits.
        let cost = vec![
            vec![9.0, 9.0],
            vec![1.0, 8.0],
            vec![9.0, 9.0],
            vec![8.0, 1.0],
        ];
        let a = solve_padded(&cost).unwrap();
        assert_eq!(a, vec![None, Some(0), None, Some(1)]);
        let assigned = a.iter().flatten().count();
        assert_eq!(assigned, 2);
    }

    #[test]
    fn padded_tall_is_injective_and_optimal() {
        // Compare against brute force over which 3 of the 5 rows get the 3
        // columns (transposed brute force: columns pick distinct rows).
        let mut state = 0xdead_beefu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        for trial in 0..20 {
            let n = 3 + (trial % 3); // 3..5 rows
            let m = 2; // fewer columns
            let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
            let a = solve_padded(&cost).unwrap();
            // Injective over columns, exactly m assigned.
            let mut seen = vec![false; m];
            let mut total = 0.0;
            for (i, slot) in a.iter().enumerate() {
                if let Some(j) = slot {
                    assert!(!seen[*j], "column {j} assigned twice (trial {trial})");
                    seen[*j] = true;
                    total += cost[i][*j];
                }
            }
            assert_eq!(a.iter().flatten().count(), m);
            // Brute force the transposed problem for the optimum.
            let t: Vec<Vec<f64>> = (0..m)
                .map(|j| (0..n).map(|i| cost[i][j]).collect())
                .collect();
            let want = brute_force(&t);
            assert!(
                (total - want).abs() < 1e-9,
                "trial {trial}: padded {total} vs brute {want}"
            );
        }
    }

    #[test]
    fn padded_breaks_ties_deterministically() {
        // All-equal costs: any assignment is optimal, but repeated runs must
        // agree (the serving layer's determinism contract).
        let cost = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]];
        let a = solve_padded(&cost).unwrap();
        let b = solve_padded(&cost).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.iter().flatten().count(), 2);
    }
}
