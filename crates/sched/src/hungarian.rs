//! The Hungarian (Kuhn–Munkres) algorithm for minimum-cost one-to-one
//! assignment, implemented with the O(n³) potentials formulation.

/// Solves the rectangular assignment problem: `cost[i][j]` is the cost of
/// giving row (task) `i` to column (server) `j`, with `rows <= cols`.
/// Returns the column assigned to each row, minimizing total cost.
///
/// # Panics
///
/// Panics if `cost` is empty, ragged, or has more rows than columns.
pub fn solve(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    assert!(n > 0, "cost matrix must be nonempty");
    let m = cost[0].len();
    assert!(
        cost.iter().all(|r| r.len() == m),
        "cost matrix must be rectangular"
    );
    assert!(n <= m, "need at least as many columns as rows");

    // Standard potentials algorithm (1-indexed internally).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assignment = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Total cost of an assignment.
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[usize]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| cost[i][j])
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        let mut cols: Vec<usize> = (0..m).collect();
        let mut best = f64::INFINITY;
        permute(&mut cols, 0, n, &mut |perm| {
            let total: f64 = (0..n).map(|i| cost[i][perm[i]]).sum();
            if total < best {
                best = total;
            }
        });
        best
    }

    fn permute(cols: &mut Vec<usize>, k: usize, n: usize, f: &mut impl FnMut(&[usize])) {
        if k == n {
            f(cols);
            return;
        }
        for i in k..cols.len() {
            cols.swap(k, i);
            permute(cols, k + 1, n, f);
            cols.swap(k, i);
        }
    }

    #[test]
    fn known_small_case() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0); // 1 + 2 + 2
    }

    #[test]
    fn assignment_is_injective() {
        let cost = vec![
            vec![1.0, 2.0, 3.0, 4.0],
            vec![2.0, 4.0, 6.0, 8.0],
            vec![3.0, 6.0, 9.0, 12.0],
            vec![4.0, 8.0, 12.0, 16.0],
        ];
        let a = solve(&cost);
        let mut seen = [false; 4];
        for &j in &a {
            assert!(!seen[j], "column {j} assigned twice");
            seen[j] = true;
        }
    }

    #[test]
    fn matches_brute_force_on_many_random_matrices() {
        // Deterministic pseudo-random matrices.
        let mut state = 0x1234_5678u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1);
            ((state >> 33) % 1000) as f64 / 10.0
        };
        for trial in 0..50 {
            let n = 2 + (trial % 4);
            let m = n + (trial % 3);
            let cost: Vec<Vec<f64>> = (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
            let a = solve(&cost);
            let got = assignment_cost(&cost, &a);
            let want = brute_force(&cost);
            assert!(
                (got - want).abs() < 1e-9,
                "trial {trial}: hungarian {got} vs brute {want} on {cost:?}"
            );
        }
    }

    #[test]
    fn rectangular_uses_extra_columns() {
        let cost = vec![vec![10.0, 1.0, 10.0], vec![10.0, 2.0, 0.5]];
        let a = solve(&cost);
        assert_eq!(a, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "columns")]
    fn more_rows_than_cols_panics() {
        let cost = vec![vec![1.0], vec![2.0]];
        let _ = solve(&cost);
    }
}
