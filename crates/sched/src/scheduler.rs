//! The three scheduling policies of Figure 9 and their evaluation.
//!
//! All three are evaluated against a *measured* time matrix
//! `times[task][config]` (simulated transcoding seconds); only the best
//! scheduler may peek at it — the smart scheduler decides from predicted
//! benefit scores alone.

use serde::{Deserialize, Serialize};

use crate::error::{validate_matrix, SchedError};
use crate::hungarian;

/// Result of running one scheduling policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Configuration index chosen for each task.
    pub assignment: Vec<usize>,
    /// Total time across tasks under that assignment.
    pub total_time: f64,
}

impl ScheduleOutcome {
    /// Speedup of this schedule over a reference total time (>1 is faster).
    pub fn speedup_over(&self, reference_total: f64) -> f64 {
        if self.total_time <= 0.0 {
            return 1.0;
        }
        reference_total / self.total_time
    }
}

/// Expected total time of the random scheduler: each task's expected time is
/// its average over all configurations (the paper's definition).
///
/// # Panics
///
/// Panics on an empty or ragged matrix; see [`try_random_expected_time`]
/// for the fallible variant.
pub fn random_expected_time(times: &[Vec<f64>]) -> f64 {
    try_random_expected_time(times).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`random_expected_time`].
///
/// # Errors
///
/// Returns [`SchedError`] on an empty or ragged matrix.
pub fn try_random_expected_time(times: &[Vec<f64>]) -> Result<f64, SchedError> {
    validate_matrix(times)?;
    Ok(times
        .iter()
        .map(|row| row.iter().sum::<f64>() / row.len() as f64)
        .sum())
}

/// The best (oracle) scheduler: per-task minimum with no one-to-one
/// constraint.
///
/// # Panics
///
/// Panics on an empty or ragged matrix; see [`try_best_assignment`] for the
/// fallible variant.
pub fn best_assignment(times: &[Vec<f64>]) -> ScheduleOutcome {
    try_best_assignment(times).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`best_assignment`].
///
/// # Errors
///
/// Returns [`SchedError`] on an empty or ragged matrix.
pub fn try_best_assignment(times: &[Vec<f64>]) -> Result<ScheduleOutcome, SchedError> {
    validate_matrix(times)?;
    let assignment: Vec<usize> = times
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .map(|(j, _)| j)
                .expect("nonempty row")
        })
        .collect();
    let total_time = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| times[i][j])
        .sum();
    emit_placements("best", &assignment, None, times);
    Ok(ScheduleOutcome {
        assignment,
        total_time,
    })
}

/// Records one telemetry event per task placement: the chosen configuration
/// index, its predicted benefit (when the policy has one) and the realized
/// measured time. No-ops while telemetry is disabled.
fn emit_placements(
    policy: &'static str,
    assignment: &[usize],
    benefit: Option<&[Vec<f64>]>,
    times: &[Vec<f64>],
) {
    for (task, &config) in assignment.iter().enumerate() {
        vtx_telemetry::instant("sched/assign", |a| {
            a.str("policy", policy)
                .u64("task", task as u64)
                .u64("config", config as u64)
                .f64("realized_time", times[task][config]);
            if let Some(b) = benefit {
                a.f64("predicted_benefit", b[task][config]);
            }
        });
    }
}

/// The smart scheduler: one-to-one assignment maximizing *predicted* benefit
/// (`benefit[task][config]`, higher = better fit), evaluated afterwards on
/// the measured `times`.
///
/// # Panics
///
/// Panics if the matrices are ragged, have mismatched shapes, or there are
/// more tasks than configurations (the one-to-one constraint would be
/// unsatisfiable).
pub fn smart_assignment(benefit: &[Vec<f64>], times: &[Vec<f64>]) -> ScheduleOutcome {
    try_smart_assignment(benefit, times).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`smart_assignment`].
///
/// # Errors
///
/// Returns [`SchedError`] when either matrix is empty or ragged, their
/// shapes disagree, or tasks outnumber configurations.
pub fn try_smart_assignment(
    benefit: &[Vec<f64>],
    times: &[Vec<f64>],
) -> Result<ScheduleOutcome, SchedError> {
    let t_shape = validate_matrix(times)?;
    let b_shape = validate_matrix(benefit)?;
    if t_shape != b_shape {
        return Err(SchedError::ShapeMismatch {
            left: b_shape,
            right: t_shape,
        });
    }

    // Hungarian minimizes; negate benefits to maximize.
    let cost: Vec<Vec<f64>> = benefit
        .iter()
        .map(|row| row.iter().map(|&b| -b).collect())
        .collect();
    let assignment = hungarian::try_solve(&cost)?;
    let total_time = assignment
        .iter()
        .enumerate()
        .map(|(i, &j)| times[i][j])
        .sum();
    emit_placements("smart", &assignment, Some(benefit), times);
    Ok(ScheduleOutcome {
        assignment,
        total_time,
    })
}

/// Fraction of tasks where two assignments agree (the paper reports the
/// smart scheduler matching the best scheduler 75% of the time).
pub fn match_rate(a: &[usize], b: &[usize]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 1.0;
    }
    a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// times[task][config]: task i is fastest on config i.
    fn diagonal_times() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 2.0, 2.0, 2.0],
            vec![2.0, 1.0, 2.0, 2.0],
            vec![2.0, 2.0, 1.0, 2.0],
            vec![2.0, 2.0, 2.0, 1.0],
        ]
    }

    /// Benefit scores aligned with the diagonal.
    fn diagonal_benefit() -> Vec<Vec<f64>> {
        vec![
            vec![0.9, 0.1, 0.1, 0.1],
            vec![0.1, 0.9, 0.1, 0.1],
            vec![0.1, 0.1, 0.9, 0.1],
            vec![0.1, 0.1, 0.1, 0.9],
        ]
    }

    #[test]
    fn random_is_the_average() {
        let t = diagonal_times();
        // Each row averages (1 + 2*3)/4 = 1.75 -> total 7.
        assert!((random_expected_time(&t) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn best_picks_row_minima() {
        let t = diagonal_times();
        let b = best_assignment(&t);
        assert_eq!(b.assignment, vec![0, 1, 2, 3]);
        assert!((b.total_time - 4.0).abs() < 1e-12);
    }

    #[test]
    fn smart_matches_best_with_aligned_predictions() {
        let t = diagonal_times();
        let s = smart_assignment(&diagonal_benefit(), &t);
        let b = best_assignment(&t);
        assert_eq!(s.assignment, b.assignment);
        assert!((match_rate(&s.assignment, &b.assignment) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smart_respects_one_to_one() {
        // All tasks would love config 0; smart must spread them out.
        let benefit = vec![vec![0.9, 0.5, 0.2, 0.1]; 4];
        let times = diagonal_times();
        let s = smart_assignment(&benefit, &times);
        let mut seen = [false; 4];
        for &j in &s.assignment {
            assert!(!seen[j], "config {j} assigned twice");
            seen[j] = true;
        }
    }

    #[test]
    fn best_may_reuse_configs() {
        let times = vec![vec![1.0, 9.0], vec![1.0, 9.0]];
        let b = best_assignment(&times);
        assert_eq!(b.assignment, vec![0, 0]);
    }

    #[test]
    fn smart_beats_random_with_informative_predictions() {
        let t = diagonal_times();
        let s = smart_assignment(&diagonal_benefit(), &t);
        let r = random_expected_time(&t);
        assert!(s.total_time < r);
        assert!(s.speedup_over(r) > 1.0);
    }

    #[test]
    fn match_rate_counts_agreements() {
        assert!((match_rate(&[0, 1, 2, 3], &[0, 1, 3, 2]) - 0.5).abs() < 1e-12);
        assert!((match_rate(&[], &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn try_variants_reject_malformed_matrices() {
        use crate::error::SchedError;
        assert_eq!(try_random_expected_time(&[]), Err(SchedError::NoTasks));
        assert_eq!(
            try_best_assignment(&[vec![]]).unwrap_err(),
            SchedError::NoConfigs
        );
        assert_eq!(
            try_smart_assignment(&[vec![1.0]], &[vec![1.0, 2.0]]).unwrap_err(),
            SchedError::ShapeMismatch {
                left: (1, 1),
                right: (1, 2)
            }
        );
        // More tasks than configs: one-to-one unsatisfiable.
        assert_eq!(
            try_smart_assignment(&[vec![1.0], vec![1.0]], &[vec![1.0], vec![1.0]]).unwrap_err(),
            SchedError::TooManyTasks {
                tasks: 2,
                configs: 1
            }
        );
    }

    #[test]
    fn try_variants_agree_with_panicking_api() {
        let t = diagonal_times();
        let b = diagonal_benefit();
        assert_eq!(
            try_best_assignment(&t).unwrap().assignment,
            best_assignment(&t).assignment
        );
        assert_eq!(
            try_smart_assignment(&b, &t).unwrap().assignment,
            smart_assignment(&b, &t).assignment
        );
        assert!((try_random_expected_time(&t).unwrap() - random_expected_time(&t)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn panicking_wrapper_keeps_message() {
        let _ = random_expected_time(&[]);
    }
}
