//! Characterization-driven task scheduling — §III-D.2 / Figure 9.
//!
//! Streaming providers run transcoding fleets with heterogeneous servers.
//! The paper simulates four modified microarchitecture configurations
//! (Table IV) and three assignment policies for the four transcoding tasks
//! of Table III:
//!
//! * the **random** scheduler's expected performance is the average over all
//!   configurations;
//! * the **smart** scheduler uses the characterization (which Top-down
//!   category dominates a task) to assign each task to the best-fit
//!   configuration under a one-to-one constraint — solved here with a real
//!   Hungarian (Kuhn–Munkres) algorithm;
//! * the **best** scheduler assigns each task to its measured best
//!   configuration with no constraint (an oracle upper bound).
//!
//! [`batch`] extends the idea beyond the paper's 4-task case study to
//! many-jobs-per-server makespan scheduling (the production scenario the
//! paper's introduction motivates).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod affinity;
pub mod auction;
pub mod batch;
mod error;
pub mod hungarian;
pub mod scheduler;
pub mod task;

pub use error::SchedError;
pub use scheduler::{
    best_assignment, random_expected_time, smart_assignment, try_best_assignment,
    try_random_expected_time, try_smart_assignment, ScheduleOutcome,
};
pub use task::{table_iii_tasks, TranscodeTask};
