//! Transcoding tasks — Table III of the paper.

use serde::{Deserialize, Serialize};

use vtx_codec::{EncoderConfig, Preset};

/// One transcoding job: a video plus its parameter combination.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranscodeTask {
    /// Short video name from the vbench catalog.
    pub video: String,
    /// CRF value.
    pub crf: u8,
    /// Reference frame count.
    pub refs: u8,
    /// x264 preset.
    pub preset: Preset,
}

impl TranscodeTask {
    /// Creates a task.
    pub fn new(video: &str, crf: u8, refs: u8, preset: Preset) -> Self {
        TranscodeTask {
            video: video.to_owned(),
            crf,
            refs,
            preset,
        }
    }

    /// The same task at a different preset. Used by the serving layer's
    /// graceful-degradation ladder, which steps jobs toward `ultrafast`
    /// under capacity loss; `crf`/`refs` overrides survive the swap.
    pub fn with_preset(mut self, preset: Preset) -> Self {
        self.preset = preset;
        self
    }

    /// The encoder configuration this task runs with: the preset's options
    /// with the task's `crf` and `refs` overriding the preset values.
    pub fn encoder_config(&self) -> EncoderConfig {
        self.preset
            .config()
            .with_crf(f64::from(self.crf))
            .with_refs(self.refs)
    }
}

/// The four tasks of Table III.
///
/// # Example
///
/// ```
/// let tasks = vtx_sched::table_iii_tasks();
/// assert_eq!(tasks.len(), 4);
/// assert_eq!(tasks[0].video, "desktop");
/// assert_eq!(tasks[1].crf, 10);
/// ```
pub fn table_iii_tasks() -> Vec<TranscodeTask> {
    vec![
        TranscodeTask::new("desktop", 30, 8, Preset::Veryfast),
        TranscodeTask::new("holi", 10, 1, Preset::Slow),
        TranscodeTask::new("presentation", 35, 6, Preset::Veryfast),
        TranscodeTask::new("game2", 15, 2, Preset::Medium),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iii_matches_paper() {
        let t = table_iii_tasks();
        assert_eq!(t[0], TranscodeTask::new("desktop", 30, 8, Preset::Veryfast));
        assert_eq!(t[1], TranscodeTask::new("holi", 10, 1, Preset::Slow));
        assert_eq!(
            t[2],
            TranscodeTask::new("presentation", 35, 6, Preset::Veryfast)
        );
        assert_eq!(t[3], TranscodeTask::new("game2", 15, 2, Preset::Medium));
    }

    #[test]
    fn with_preset_swaps_only_the_preset() {
        let t = TranscodeTask::new("holi", 10, 1, Preset::Slow).with_preset(Preset::Ultrafast);
        assert_eq!(t.preset, Preset::Ultrafast);
        assert_eq!((t.video.as_str(), t.crf, t.refs), ("holi", 10, 1));
        // The crf/refs overrides still apply at the new preset.
        let cfg = t.encoder_config();
        assert_eq!(cfg.refs, 1);
    }

    #[test]
    fn encoder_config_overrides_preset_crf_refs() {
        let t = TranscodeTask::new("desktop", 30, 8, Preset::Veryfast);
        let cfg = t.encoder_config();
        assert_eq!(cfg.refs, 8); // veryfast's own refs is 1 — task overrides
        match cfg.rc {
            vtx_codec::RateControlMode::Crf(c) => assert!((c - 30.0).abs() < 1e-9),
            other => panic!("expected CRF, got {other:?}"),
        }
        // Non-overridden preset options survive.
        assert_eq!(cfg.subme, Preset::Veryfast.config().subme);
        cfg.validate().unwrap();
    }
}
