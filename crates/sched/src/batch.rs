//! Batch scheduling: placing a whole queue of transcoding jobs on a
//! heterogeneous fleet.
//!
//! The paper's case study assigns four tasks one-to-one; a production
//! transcoding farm (the paper's motivating scenario) continuously places
//! *many* jobs per server. This module extends the characterization-driven
//! idea to that setting: given predicted per-(task, server) times, build a
//! schedule minimizing the makespan with the classic LPT (longest processing
//! time first) greedy for unrelated machines.

use serde::{Deserialize, Serialize};

/// A many-to-one schedule: which tasks each server runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSchedule {
    /// `per_server[s]` lists the task indices placed on server `s`.
    pub per_server: Vec<Vec<usize>>,
    /// Predicted makespan (max per-server load) under the times used to
    /// build the schedule.
    pub predicted_makespan: f64,
}

impl BatchSchedule {
    /// Evaluates the schedule's true makespan under measured times.
    ///
    /// # Panics
    ///
    /// Panics if `times` does not cover every (task, server) pair in the
    /// schedule.
    pub fn makespan(&self, times: &[Vec<f64>]) -> f64 {
        self.per_server
            .iter()
            .enumerate()
            .map(|(s, tasks)| tasks.iter().map(|&t| times[t][s]).sum::<f64>())
            .fold(0.0, f64::max)
    }

    /// The server each task was placed on.
    pub fn assignment(&self, n_tasks: usize) -> Vec<usize> {
        let mut a = vec![usize::MAX; n_tasks];
        for (s, tasks) in self.per_server.iter().enumerate() {
            for &t in tasks {
                a[t] = s;
            }
        }
        a
    }
}

fn validate(times: &[Vec<f64>]) -> usize {
    assert!(!times.is_empty(), "need at least one task");
    let m = times[0].len();
    assert!(m > 0, "need at least one server");
    assert!(
        times.iter().all(|r| r.len() == m),
        "time matrix must be rectangular"
    );
    m
}

/// LPT greedy for unrelated machines: tasks are placed in decreasing order
/// of their best-case time; each goes to the server where it *finishes*
/// earliest given current loads.
///
/// # Panics
///
/// Panics on an empty or ragged time matrix.
pub fn lpt_schedule(pred_times: &[Vec<f64>]) -> BatchSchedule {
    let m = validate(pred_times);
    let n = pred_times.len();

    let mut order: Vec<usize> = (0..n).collect();
    let best_time =
        |t: usize| -> f64 { pred_times[t].iter().copied().fold(f64::INFINITY, f64::min) };
    order.sort_by(|&a, &b| best_time(b).total_cmp(&best_time(a)));

    let mut loads = vec![0.0f64; m];
    let mut per_server: Vec<Vec<usize>> = vec![Vec::new(); m];
    for &t in &order {
        let (s, _) = loads
            .iter()
            .enumerate()
            .map(|(s, &l)| (s, l + pred_times[t][s]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("at least one server");
        loads[s] += pred_times[t][s];
        per_server[s].push(t);
    }
    let predicted_makespan = loads.iter().copied().fold(0.0, f64::max);
    BatchSchedule {
        per_server,
        predicted_makespan,
    }
}

/// Round-robin placement (the characterization-blind baseline).
///
/// # Panics
///
/// Panics on an empty or ragged time matrix.
pub fn round_robin_schedule(times: &[Vec<f64>]) -> BatchSchedule {
    let m = validate(times);
    let mut per_server: Vec<Vec<usize>> = vec![Vec::new(); m];
    for t in 0..times.len() {
        per_server[t % m].push(t);
    }
    let sched = BatchSchedule {
        per_server,
        predicted_makespan: 0.0,
    };
    let makespan = sched.makespan(times);
    BatchSchedule {
        predicted_makespan: makespan,
        ..sched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tasks alternate between being fast on server 0 and server 1.
    fn affinity_matrix(n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|t| {
                if t % 2 == 0 {
                    vec![1.0, 4.0]
                } else {
                    vec![4.0, 1.0]
                }
            })
            .collect()
    }

    #[test]
    fn lpt_exploits_affinity() {
        let times = affinity_matrix(8);
        let lpt = lpt_schedule(&times);
        let rr = round_robin_schedule(&times);
        assert!(
            lpt.makespan(&times) <= rr.makespan(&times),
            "lpt {} vs rr {}",
            lpt.makespan(&times),
            rr.makespan(&times)
        );
        // Perfect affinity: 4 tasks x 1.0 per server.
        assert!((lpt.makespan(&times) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn every_task_placed_exactly_once() {
        let times = affinity_matrix(9);
        let s = lpt_schedule(&times);
        let a = s.assignment(9);
        assert!(a.iter().all(|&x| x < 2));
        let placed: usize = s.per_server.iter().map(Vec::len).sum();
        assert_eq!(placed, 9);
    }

    #[test]
    fn single_server_serializes() {
        let times = vec![vec![2.0], vec![3.0], vec![5.0]];
        let s = lpt_schedule(&times);
        assert!((s.makespan(&times) - 10.0).abs() < 1e-9);
        assert_eq!(s.per_server.len(), 1);
    }

    #[test]
    fn lpt_stays_within_its_approximation_bound() {
        // Classic adversarial LPT case: tasks {5,4,3,3,3} on 2 identical
        // servers. OPT = 9 (5+4 vs 3+3+3); LPT yields 10, within its 4/3
        // bound, and must never exceed it.
        let times: Vec<Vec<f64>> = [5.0, 4.0, 3.0, 3.0, 3.0]
            .iter()
            .map(|&t| vec![t, t])
            .collect();
        let s = lpt_schedule(&times);
        let ms = s.makespan(&times);
        assert!(ms >= 9.0 - 1e-9, "{s:?}");
        assert!(ms <= 9.0 * 4.0 / 3.0 + 1e-9, "{s:?}");
    }

    #[test]
    fn predicted_vs_true_makespan_diverge_gracefully() {
        let pred = affinity_matrix(4);
        // Truth is inverted: predictions are maximally wrong.
        let truth: Vec<Vec<f64>> = pred.iter().map(|r| vec![r[1], r[0]]).collect();
        let s = lpt_schedule(&pred);
        let true_ms = s.makespan(&truth);
        assert!(true_ms >= s.predicted_makespan);
    }

    #[test]
    #[should_panic(expected = "at least one task")]
    fn empty_matrix_panics() {
        let _ = lpt_schedule(&[]);
    }
}
