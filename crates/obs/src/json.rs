//! Minimal JSON reader used for self-validation.
//!
//! The trajectory writer ([`crate::trajectory`]) emits JSON by hand (this
//! crate takes no serialization dependency); this module is the matching
//! hand-rolled reader, so schema validation of `BENCH_serving.json` — in
//! tests and in CI — does not depend on an external parser either. It is a
//! strict recursive-descent parser over the JSON subset the writer emits
//! (no exponent floats are *produced*, but the reader accepts full JSON
//! numbers so externally edited files still validate or fail loudly).

use std::collections::BTreeMap;

/// A parsed JSON value. Objects use a `BTreeMap`, so re-rendering or
/// iterating a parsed document is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key-sorted).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, b"true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(b, pos, b"false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(b, pos, b"null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(format!("unexpected '{}' at byte {}", *c as char, *pos)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &[u8], v: JsonValue) -> Result<JsonValue, String> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len()
        && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "bad utf8".to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("bad number '{text}' at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        if *pos + 4 >= b.len() {
                            return Err("truncated \\u escape".to_string());
                        }
                        let hex = std::str::from_utf8(&b[*pos + 1..*pos + 5])
                            .map_err(|_| "bad utf8 in escape".to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                        // Surrogates are not emitted by the writer; map them
                        // to the replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf8".to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes `s` into `out` as JSON string contents (no surrounding quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v = parse(r#"{"a": [1, -2.5, "x\ny", true, null], "b": {"c": 0}}"#).unwrap();
        assert_eq!(
            v.get("b")
                .and_then(|b| b.get("c"))
                .and_then(JsonValue::as_u64),
            Some(0)
        );
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(-2.5));
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], JsonValue::Null);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn unicode_escapes_roundtrip() {
        let v = parse(r#""café""#).unwrap();
        assert_eq!(v.as_str(), Some("café"));
    }

    #[test]
    fn escape_into_matches_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f";
        let mut doc = String::from("\"");
        escape_into(&mut doc, nasty);
        doc.push('"');
        assert_eq!(parse(&doc).unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn non_integral_numbers_are_not_u64() {
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
