//! Per-job lifecycle tracing.
//!
//! A [`JobTracker`] shadows the serving event stream — admit → enqueue →
//! dispatch → (fault / requeue / hedge)* → terminal — and keeps one
//! structured record per job. From that record alone the conservation and
//! exactly-once invariants are checkable ([`JobTracker::check_conservation`]):
//! every admitted job reaches exactly one terminal state, every dispatch
//! span is closed, and nothing completes twice.
//!
//! Two export formats, both byte-deterministic per seed:
//! * [`JobTracker::render_text`] — a plain-text job log, one block per job
//!   in job-id order.
//! * [`JobTracker::add_chrome_tracks`] — Chrome trace-event tracks (one
//!   `tid` per job under a dedicated `pid`), with queued/attempt spans and
//!   requeue/hedge/shed instants, loadable in Perfetto alongside the
//!   wall-clock trace.

use std::collections::BTreeMap;

use vtx_telemetry::chrome::ChromeTrace;
use vtx_telemetry::ArgValue;

/// The `pid` used for per-job lifecycle tracks in Chrome trace output
/// (the wall-clock trace uses `vtx_telemetry::chrome::WALL_PID` = 1).
pub const JOB_PID: u64 = 2;

/// Why a dispatch span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEnd {
    /// The attempt finished the job.
    Completed,
    /// The server faulted mid-flight; the job was requeued or shed.
    Faulted,
    /// The attempt timed out.
    TimedOut,
    /// A hedge twin was discarded after the other copy won.
    Discarded,
    /// The run ended with the attempt still in flight.
    Stranded,
}

impl SpanEnd {
    fn name(self) -> &'static str {
        match self {
            SpanEnd::Completed => "completed",
            SpanEnd::Faulted => "faulted",
            SpanEnd::TimedOut => "timed_out",
            SpanEnd::Discarded => "discarded",
            SpanEnd::Stranded => "stranded",
        }
    }
}

/// One dispatch attempt (primary or hedge) of one job on one server.
#[derive(Debug, Clone)]
pub struct AttemptSpan {
    /// Server index the attempt ran on.
    pub server: usize,
    /// Attempt ordinal as reported by the dispatcher (0-based; hedges share
    /// the ordinal of the primary they shadow).
    pub attempt: u32,
    /// Dispatch time, microseconds.
    pub start_us: u64,
    /// End time; `None` while in flight.
    pub end_us: Option<u64>,
    /// How the span ended; `None` while in flight.
    pub end: Option<SpanEnd>,
    /// Whether this span is a hedge twin.
    pub hedge: bool,
}

/// Terminal state of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminal {
    /// Completed on some server.
    Completed {
        /// Completion time, microseconds.
        t_us: u64,
        /// End-to-end sojourn, microseconds.
        sojourn_us: u64,
        /// Whether the deadline was missed.
        violation: bool,
    },
    /// Shed (at admission, on queue overflow, on expiry, or stranded).
    Shed {
        /// Shed time, microseconds.
        t_us: u64,
        /// Deterministic reason label.
        reason: String,
    },
}

/// Full lifecycle record of one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id.
    pub id: u64,
    /// Service class index (set at admission).
    pub class: usize,
    /// Arrival time, microseconds.
    pub arrive_us: u64,
    /// Admission time; `None` if the job was shed at the door.
    pub admit_us: Option<u64>,
    /// Dispatch attempts in dispatch order.
    pub spans: Vec<AttemptSpan>,
    /// Terminal state; `None` only for a malformed stream.
    pub terminal: Option<Terminal>,
    /// Requeue count.
    pub requeues: u32,
}

impl JobRecord {
    fn new(id: u64, arrive_us: u64) -> Self {
        JobRecord {
            id,
            class: 0,
            arrive_us,
            admit_us: None,
            spans: Vec::new(),
            terminal: None,
            requeues: 0,
        }
    }

    fn close_span(&mut self, server: usize, t_us: u64, end: SpanEnd) -> bool {
        if let Some(span) = self
            .spans
            .iter_mut()
            .find(|s| s.server == server && s.end.is_none())
        {
            span.end_us = Some(t_us);
            span.end = Some(end);
            true
        } else {
            false
        }
    }
}

/// Aggregate invariants over the whole trace (see
/// [`JobTracker::check_conservation`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConservationStats {
    /// Jobs that arrived.
    pub arrived: u64,
    /// Jobs admitted past the door.
    pub admitted: u64,
    /// Jobs with a `Completed` terminal.
    pub completed: u64,
    /// Jobs with a `Shed` terminal.
    pub shed: u64,
    /// Total dispatch attempts (including hedges).
    pub attempts: u64,
}

/// Tracks per-job lifecycles from the deterministic serving event stream.
#[derive(Debug, Clone, Default)]
pub struct JobTracker {
    jobs: BTreeMap<u64, JobRecord>,
    /// Invariant violations observed while ingesting (duplicate terminals,
    /// events for unknown jobs, ...). Deterministic order.
    anomalies: Vec<String>,
}

impl JobTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        JobTracker::default()
    }

    /// Number of jobs seen.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs have been seen.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// The record for `id`, if the job has been seen.
    pub fn job(&self, id: u64) -> Option<&JobRecord> {
        self.jobs.get(&id)
    }

    /// All records, in job-id order.
    pub fn jobs(&self) -> impl Iterator<Item = &JobRecord> {
        self.jobs.values()
    }

    fn anomaly(&mut self, msg: String) {
        // Bounded so a malformed stream cannot balloon memory.
        if self.anomalies.len() < 64 {
            self.anomalies.push(msg);
        }
    }

    fn job_mut(&mut self, id: u64, t_us: u64) -> &mut JobRecord {
        self.jobs.entry(id).or_insert_with(|| {
            // Normally on_arrive creates the record; tolerate streams that
            // start mid-run by synthesizing an arrival at first sight.
            JobRecord::new(id, t_us)
        })
    }

    /// Job `id` arrived at `t_us`.
    pub fn on_arrive(&mut self, t_us: u64, id: u64) {
        if self.jobs.contains_key(&id) {
            self.anomaly(format!("job {id}: duplicate arrival at {t_us}"));
            return;
        }
        self.jobs.insert(id, JobRecord::new(id, t_us));
    }

    /// Job `id` was admitted into service class `class`.
    pub fn on_admit(&mut self, t_us: u64, id: u64, class: usize) {
        let job = self.job_mut(id, t_us);
        if job.admit_us.is_some() {
            self.anomaly(format!("job {id}: duplicate admit at {t_us}"));
            return;
        }
        job.admit_us = Some(t_us);
        job.class = class;
    }

    /// Job `id` was shed with a deterministic `reason` label.
    pub fn on_shed(&mut self, t_us: u64, id: u64, reason: &str) {
        let job = self.job_mut(id, t_us);
        if job.terminal.is_some() {
            self.anomaly(format!("job {id}: shed after terminal at {t_us}"));
            return;
        }
        // A shed mid-flight (stranded) may leave an open span; close it.
        job.close_span(usize::MAX, t_us, SpanEnd::Faulted);
        job.terminal = Some(Terminal::Shed {
            t_us,
            reason: reason.to_string(),
        });
    }

    /// Job `id` was dispatched to `server` (attempt `attempt`).
    pub fn on_dispatch(&mut self, t_us: u64, id: u64, server: usize, attempt: u32) {
        self.job_mut(id, t_us).spans.push(AttemptSpan {
            server,
            attempt,
            start_us: t_us,
            end_us: None,
            end: None,
            hedge: false,
        });
    }

    /// A hedge twin of job `id` was launched on `server`.
    pub fn on_hedge(&mut self, t_us: u64, id: u64, server: usize) {
        let job = self.job_mut(id, t_us);
        let attempt = job.spans.last().map_or(0, |s| s.attempt);
        job.spans.push(AttemptSpan {
            server,
            attempt,
            start_us: t_us,
            end_us: None,
            end: None,
            hedge: true,
        });
    }

    /// Job `id` completed on `server`.
    pub fn on_complete(
        &mut self,
        t_us: u64,
        id: u64,
        server: usize,
        sojourn_us: u64,
        violation: bool,
    ) {
        let job = self.job_mut(id, t_us);
        if job.terminal.is_some() {
            self.anomaly(format!("job {id}: completed twice (second at {t_us})"));
            return;
        }
        let closed = job.close_span(server, t_us, SpanEnd::Completed);
        job.terminal = Some(Terminal::Completed {
            t_us,
            sojourn_us,
            violation,
        });
        if !closed {
            self.anomaly(format!(
                "job {id}: completion on server {server} without open span"
            ));
        }
    }

    /// Job `id` timed out on `server` (it will be requeued or shed next).
    pub fn on_timeout(&mut self, t_us: u64, id: u64, server: usize) {
        let closed = self
            .job_mut(id, t_us)
            .close_span(server, t_us, SpanEnd::TimedOut);
        if !closed {
            self.anomaly(format!(
                "job {id}: timeout on server {server} without open span"
            ));
        }
    }

    /// Job `id` was requeued off faulted `server`.
    pub fn on_requeue(&mut self, t_us: u64, id: u64, server: usize) {
        let job = self.job_mut(id, t_us);
        job.requeues += 1;
        // The span may already be closed if a timeout preceded the requeue.
        job.close_span(server, t_us, SpanEnd::Faulted);
    }

    /// The losing hedge twin of job `id` on `server` was discarded.
    pub fn on_hedge_discard(&mut self, t_us: u64, id: u64, server: usize) {
        let job = self.job_mut(id, t_us);
        job.close_span(server, t_us, SpanEnd::Discarded);
    }

    /// The run ended at `makespan_us`: close any still-open spans as
    /// stranded so exported traces never contain dangling intervals.
    pub fn on_finish(&mut self, makespan_us: u64) {
        for job in self.jobs.values_mut() {
            for span in &mut job.spans {
                if span.end.is_none() {
                    span.end_us = Some(makespan_us.max(span.start_us));
                    span.end = Some(SpanEnd::Stranded);
                }
            }
        }
    }

    /// Checks conservation and exactly-once invariants from the trace alone.
    ///
    /// Returns aggregate counts on success; on failure, a deterministic
    /// description of the first problems found. Invariants:
    /// * every arrived job is either admitted or shed (no lost jobs);
    /// * every admitted job has exactly one terminal state;
    /// * no duplicate completions/sheds were ingested (anomaly log empty);
    /// * every dispatch span is closed (call [`JobTracker::on_finish`] first).
    pub fn check_conservation(&self) -> Result<ConservationStats, String> {
        if !self.anomalies.is_empty() {
            return Err(format!(
                "{} stream anomalies; first: {}",
                self.anomalies.len(),
                self.anomalies[0]
            ));
        }
        let mut stats = ConservationStats {
            arrived: 0,
            admitted: 0,
            completed: 0,
            shed: 0,
            attempts: 0,
        };
        for job in self.jobs.values() {
            stats.arrived += 1;
            if job.admit_us.is_some() {
                stats.admitted += 1;
            }
            stats.attempts += job.spans.len() as u64;
            match &job.terminal {
                Some(Terminal::Completed { .. }) => stats.completed += 1,
                Some(Terminal::Shed { .. }) => stats.shed += 1,
                None => {
                    return Err(format!("job {}: no terminal state", job.id));
                }
            }
            if let Some(span) = job.spans.iter().find(|s| s.end.is_none()) {
                return Err(format!(
                    "job {}: open span on server {} (call on_finish first)",
                    job.id, span.server
                ));
            }
        }
        if stats.completed + stats.shed != stats.arrived {
            return Err(format!(
                "conservation broken: {} arrived != {} completed + {} shed",
                stats.arrived, stats.completed, stats.shed
            ));
        }
        Ok(stats)
    }

    /// Plain-text job log: one block per job in id order, deterministic.
    pub fn render_text(&self, class_names: &[&str]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for job in self.jobs.values() {
            let class = class_names.get(job.class).copied().unwrap_or("?");
            let _ = write!(
                out,
                "job {:>6} class={class} arrive={}",
                job.id, job.arrive_us
            );
            match job.admit_us {
                Some(t) => {
                    let _ = write!(out, " admit={t}");
                }
                None => out.push_str(" admit=-"),
            }
            let _ = writeln!(out);
            for span in &job.spans {
                let kind = if span.hedge { "hedge   " } else { "dispatch" };
                let end_us = span.end_us.unwrap_or(0);
                let end = span.end.map_or("open", SpanEnd::name);
                let _ = writeln!(
                    out,
                    "  {kind} attempt={} server={} start={} end={end_us} outcome={end}",
                    span.attempt, span.server, span.start_us
                );
            }
            match &job.terminal {
                Some(Terminal::Completed {
                    t_us,
                    sojourn_us,
                    violation,
                }) => {
                    let _ = writeln!(
                        out,
                        "  complete t={t_us} sojourn={sojourn_us} violation={violation}"
                    );
                }
                Some(Terminal::Shed { t_us, reason }) => {
                    let _ = writeln!(out, "  shed t={t_us} reason={reason}");
                }
                None => {
                    let _ = writeln!(out, "  (no terminal)");
                }
            }
        }
        out
    }

    /// Appends per-job tracks to a Chrome trace: one thread per job under
    /// [`JOB_PID`], a `queued` span from admission to first dispatch, an
    /// `attempt` span per dispatch, and instants for requeues and sheds.
    pub fn add_chrome_tracks(&self, trace: &mut ChromeTrace, class_names: &[&str]) {
        trace.add_process_name(JOB_PID, "vtx jobs");
        for job in self.jobs.values() {
            let class = class_names.get(job.class).copied().unwrap_or("?");
            let tid = job.id;
            let name = format!("job {} ({class})", job.id);
            trace.add_thread_name(JOB_PID, tid, &name);
            if let Some(admit) = job.admit_us {
                let first_dispatch = job
                    .spans
                    .first()
                    .map(|s| s.start_us)
                    .or(match &job.terminal {
                        Some(Terminal::Shed { t_us, .. }) => Some(*t_us),
                        _ => None,
                    })
                    .unwrap_or(admit);
                trace.add_complete(
                    "queued",
                    "job",
                    admit,
                    first_dispatch.saturating_sub(admit),
                    (JOB_PID, tid),
                    &[("class", ArgValue::Str(class.to_string()))],
                );
            }
            for span in &job.spans {
                let name = if span.hedge { "hedge" } else { "attempt" };
                let end_us = span.end_us.unwrap_or(span.start_us);
                trace.add_complete(
                    name,
                    "job",
                    span.start_us,
                    end_us.saturating_sub(span.start_us),
                    (JOB_PID, tid),
                    &[
                        ("server", ArgValue::U64(span.server as u64)),
                        ("attempt", ArgValue::U64(u64::from(span.attempt))),
                        (
                            "outcome",
                            ArgValue::Str(span.end.map_or("open", SpanEnd::name).to_string()),
                        ),
                    ],
                );
            }
            if job.requeues > 0 {
                for span in job.spans.iter().filter(|s| s.end == Some(SpanEnd::Faulted)) {
                    trace.add_instant(
                        "requeue",
                        "job",
                        span.end_us.unwrap_or(span.start_us),
                        JOB_PID,
                        tid,
                        &[("server", ArgValue::U64(span.server as u64))],
                    );
                }
            }
            match &job.terminal {
                Some(Terminal::Shed { t_us, reason }) => {
                    trace.add_instant(
                        "shed",
                        "job",
                        *t_us,
                        JOB_PID,
                        tid,
                        &[("reason", ArgValue::Str(reason.clone()))],
                    );
                }
                Some(Terminal::Completed {
                    t_us, violation, ..
                }) if *violation => {
                    trace.add_instant("slo_violation", "job", *t_us, JOB_PID, tid, &[]);
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn happy_job(tr: &mut JobTracker, id: u64, t0: u64) {
        tr.on_arrive(t0, id);
        tr.on_admit(t0, id, 1);
        tr.on_dispatch(t0 + 10, id, 3, 0);
        tr.on_complete(t0 + 500, id, 3, 500, false);
    }

    #[test]
    fn happy_path_conserves() {
        let mut tr = JobTracker::new();
        happy_job(&mut tr, 1, 0);
        happy_job(&mut tr, 2, 100);
        tr.on_finish(1000);
        let stats = tr.check_conservation().expect("conserves");
        assert_eq!(stats.arrived, 2);
        assert_eq!(stats.admitted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.shed, 0);
        assert_eq!(stats.attempts, 2);
    }

    #[test]
    fn fault_requeue_then_complete_is_one_terminal() {
        let mut tr = JobTracker::new();
        tr.on_arrive(0, 9);
        tr.on_admit(0, 9, 0);
        tr.on_dispatch(5, 9, 1, 0);
        tr.on_requeue(200, 9, 1);
        tr.on_dispatch(220, 9, 2, 1);
        tr.on_complete(700, 9, 2, 700, true);
        tr.on_finish(1000);
        let stats = tr.check_conservation().unwrap();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.attempts, 2);
        let job = tr.job(9).unwrap();
        assert_eq!(job.requeues, 1);
        assert_eq!(job.spans[0].end, Some(SpanEnd::Faulted));
        assert_eq!(job.spans[1].end, Some(SpanEnd::Completed));
    }

    #[test]
    fn hedge_twin_discard_is_tracked() {
        let mut tr = JobTracker::new();
        tr.on_arrive(0, 4);
        tr.on_admit(0, 4, 2);
        tr.on_dispatch(10, 4, 0, 0);
        tr.on_hedge(300, 4, 5);
        tr.on_complete(400, 4, 5, 400, false);
        tr.on_hedge_discard(400, 4, 0);
        tr.on_finish(500);
        let stats = tr.check_conservation().unwrap();
        assert_eq!(stats.attempts, 2);
        let job = tr.job(4).unwrap();
        assert!(job.spans[1].hedge);
        assert_eq!(job.spans[0].end, Some(SpanEnd::Discarded));
        assert_eq!(job.spans[1].end, Some(SpanEnd::Completed));
    }

    #[test]
    fn double_completion_is_an_anomaly() {
        let mut tr = JobTracker::new();
        happy_job(&mut tr, 1, 0);
        tr.on_complete(900, 1, 3, 900, false);
        tr.on_finish(1000);
        let err = tr.check_conservation().unwrap_err();
        assert!(err.contains("completed twice"), "{err}");
    }

    #[test]
    fn missing_terminal_is_caught() {
        let mut tr = JobTracker::new();
        tr.on_arrive(0, 1);
        tr.on_admit(0, 1, 0);
        tr.on_dispatch(5, 1, 0, 0);
        tr.on_finish(100);
        let err = tr.check_conservation().unwrap_err();
        assert!(err.contains("no terminal"), "{err}");
    }

    #[test]
    fn shed_at_door_conserves() {
        let mut tr = JobTracker::new();
        tr.on_arrive(0, 1);
        tr.on_shed(0, 1, "queue_full");
        tr.on_finish(10);
        let stats = tr.check_conservation().unwrap();
        assert_eq!(stats.arrived, 1);
        assert_eq!(stats.admitted, 0);
        assert_eq!(stats.shed, 1);
    }

    #[test]
    fn render_text_is_deterministic_and_ordered() {
        let build = || {
            let mut tr = JobTracker::new();
            happy_job(&mut tr, 7, 50);
            happy_job(&mut tr, 2, 0);
            tr.on_finish(1000);
            tr.render_text(&["interactive", "standard", "batch"])
        };
        let a = build();
        assert_eq!(a, build());
        // Job-id order regardless of insertion order.
        let p2 = a.find("job      2").unwrap();
        let p7 = a.find("job      7").unwrap();
        assert!(p2 < p7, "{a}");
        assert!(a.contains("class=standard"));
        assert!(a.contains("outcome=completed"));
    }

    #[test]
    fn chrome_tracks_cover_all_jobs() {
        let mut tr = JobTracker::new();
        happy_job(&mut tr, 1, 0);
        tr.on_arrive(10, 2);
        tr.on_shed(10, 2, "deadline_expired");
        tr.on_finish(1000);
        let mut chrome = ChromeTrace::new();
        tr.add_chrome_tracks(&mut chrome, &["interactive", "standard", "batch"]);
        let json = chrome.to_json();
        assert!(json.contains("\"vtx jobs\""));
        assert!(json.contains("\"queued\""));
        assert!(json.contains("\"attempt\""));
        assert!(json.contains("\"shed\""));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("deadline_expired"));
    }
}
