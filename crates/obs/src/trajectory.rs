//! Machine-readable bench trajectory.
//!
//! A [`BenchTrajectory`] collects one [`TrajectoryRow`] per benchmark
//! scenario × policy and serializes them into `BENCH_serving.json` — a
//! small, schema-versioned document meant to be committed next to the code
//! so performance trajectories are diffable across PRs.
//!
//! Determinism rules:
//! * all metrics are integers (micro­seconds, milli-units, counts) — no
//!   floats in the document;
//! * fields are written in a fixed order by a hand-rolled writer;
//! * the only wall-clock field, `wall_ms`, is 0 unless the run opts in via
//!   `VTX_TRAJ_WALL=1`, so committed documents are byte-identical per seed.
//!
//! [`BenchTrajectory::validate_str`] re-parses a document with the crate's
//! own [`crate::json`] reader and checks the schema, which is what the CI
//! `bench-trajectory` job runs against the committed file.

use crate::json::{self, JsonValue};

/// Schema version written to and required from `BENCH_serving.json`.
/// Version 2 added the fleet-shape columns `servers` and `cells`;
/// version 3 added `segments` (per-(segment, rung) dispatch units offered,
/// 0 for whole-clip scenarios); version 4 added the segment-cache columns
/// `shed_rung` (units shed from the highest ladder rung) and
/// `cache_hit_milli` (cache hit rate in milli-units, 0 when uncached).
pub const SCHEMA_VERSION: u64 = 4;

/// Fields every row must carry, in serialization order.
const ROW_FIELDS: [&str; 20] = [
    "scenario",
    "policy",
    "seed",
    "servers",
    "cells",
    "segments",
    "offered",
    "completed",
    "slo_violations",
    "shed",
    "shed_rung",
    "p50_sojourn_us",
    "p99_sojourn_us",
    "throughput_milli_jps",
    "goodput_milli_jps",
    "availability_milli",
    "cache_hit_milli",
    "alerts",
    "makespan_us",
    "wall_ms",
];

/// One benchmark scenario × policy result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrajectoryRow {
    /// Scenario label (e.g. `baseline`, `faulted`).
    pub scenario: String,
    /// Dispatch policy name.
    pub policy: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Fleet size the scenario ran against.
    pub servers: u64,
    /// Dispatch cells (0 = single-level exact dispatch, no cells).
    pub cells: u64,
    /// Per-(segment, rung) dispatch units offered when the scenario ran
    /// segmented ABR serving; 0 = whole-clip jobs.
    pub segments: u64,
    /// Jobs offered.
    pub offered: u64,
    /// Jobs completed.
    pub completed: u64,
    /// Completed jobs that missed their deadline.
    pub slo_violations: u64,
    /// Jobs shed (all causes).
    pub shed: u64,
    /// Shed units belonging to the highest ladder rung (rung 0). Under
    /// rung-ordered displacement pressure sheds the `hi` rung before
    /// whole jobs; 0 for whole-clip scenarios.
    pub shed_rung: u64,
    /// Median end-to-end sojourn, microseconds.
    pub p50_sojourn_us: u64,
    /// p99 end-to-end sojourn, microseconds.
    pub p99_sojourn_us: u64,
    /// Completed jobs per second, milli-units (1234 = 1.234 jobs/s).
    pub throughput_milli_jps: u64,
    /// In-deadline completions per second, milli-units.
    pub goodput_milli_jps: u64,
    /// Fraction of offered jobs completed, milli-units (997 = 99.7%).
    pub availability_milli: u64,
    /// Segment-cache hit rate, milli-units (400 = 40% of lookups hit);
    /// 0 when the scenario ran without a cache.
    pub cache_hit_milli: u64,
    /// SLO burn-rate alert transitions during the run.
    pub alerts: u64,
    /// Simulated makespan, microseconds.
    pub makespan_us: u64,
    /// Wall-clock duration of the run, ms — 0 unless `VTX_TRAJ_WALL=1`.
    pub wall_ms: u64,
}

/// Converts a fraction (e.g. availability 0.997) to integer milli-units.
pub fn milli(fraction: f64) -> u64 {
    if !fraction.is_finite() || fraction <= 0.0 {
        return 0;
    }
    (fraction * 1000.0).round() as u64
}

/// Whether rows should carry real wall-clock timings (`VTX_TRAJ_WALL=1`).
/// Off by default so committed trajectories stay byte-deterministic.
pub fn wall_clock_enabled() -> bool {
    std::env::var("VTX_TRAJ_WALL")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// An ordered collection of rows, serializable to `BENCH_serving.json`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BenchTrajectory {
    /// Benchmark name (e.g. `fig9_serving`).
    pub bench: String,
    /// Rows in insertion order.
    pub rows: Vec<TrajectoryRow>,
}

impl BenchTrajectory {
    /// An empty trajectory for `bench`.
    pub fn new(bench: &str) -> Self {
        BenchTrajectory {
            bench: bench.to_string(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, row: TrajectoryRow) {
        self.rows.push(row);
    }

    /// Serializes the document: 2-space pretty JSON, fixed field order.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.rows.len() * 512);
        out.push_str("{\n  \"schema\": ");
        let _ = write!(out, "{SCHEMA_VERSION}");
        out.push_str(",\n  \"bench\": \"");
        json::escape_into(&mut out, &self.bench);
        out.push_str("\",\n  \"rows\": [");
        for (i, row) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let field = |out: &mut String, name: &str, val: &str, last: bool| {
                let _ = write!(out, "      \"{name}\": {val}");
                out.push_str(if last { "\n" } else { ",\n" });
            };
            let mut s = String::new();
            s.push('"');
            json::escape_into(&mut s, &row.scenario);
            s.push('"');
            field(&mut out, "scenario", &s, false);
            s.clear();
            s.push('"');
            json::escape_into(&mut s, &row.policy);
            s.push('"');
            field(&mut out, "policy", &s, false);
            field(&mut out, "seed", &row.seed.to_string(), false);
            field(&mut out, "servers", &row.servers.to_string(), false);
            field(&mut out, "cells", &row.cells.to_string(), false);
            field(&mut out, "segments", &row.segments.to_string(), false);
            field(&mut out, "offered", &row.offered.to_string(), false);
            field(&mut out, "completed", &row.completed.to_string(), false);
            field(
                &mut out,
                "slo_violations",
                &row.slo_violations.to_string(),
                false,
            );
            field(&mut out, "shed", &row.shed.to_string(), false);
            field(&mut out, "shed_rung", &row.shed_rung.to_string(), false);
            field(
                &mut out,
                "p50_sojourn_us",
                &row.p50_sojourn_us.to_string(),
                false,
            );
            field(
                &mut out,
                "p99_sojourn_us",
                &row.p99_sojourn_us.to_string(),
                false,
            );
            field(
                &mut out,
                "throughput_milli_jps",
                &row.throughput_milli_jps.to_string(),
                false,
            );
            field(
                &mut out,
                "goodput_milli_jps",
                &row.goodput_milli_jps.to_string(),
                false,
            );
            field(
                &mut out,
                "availability_milli",
                &row.availability_milli.to_string(),
                false,
            );
            field(
                &mut out,
                "cache_hit_milli",
                &row.cache_hit_milli.to_string(),
                false,
            );
            field(&mut out, "alerts", &row.alerts.to_string(), false);
            field(&mut out, "makespan_us", &row.makespan_us.to_string(), false);
            field(&mut out, "wall_ms", &row.wall_ms.to_string(), true);
            out.push_str("    }");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses and schema-checks a serialized trajectory document.
    ///
    /// Checks: top-level `schema == 3`, `bench` is a string, `rows` is a
    /// non-empty array, every row carries every field in [`ROW_FIELDS`]
    /// with the right type, and basic metric sanity (`completed + shed ≤
    /// offered` would be wrong — hedges never over-complete, so
    /// `completed ≤ offered` and `availability_milli ≤ 1000`).
    pub fn validate_str(text: &str) -> Result<BenchTrajectory, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("missing integer field 'schema'")?;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "schema version {schema}, expected {SCHEMA_VERSION}"
            ));
        }
        let bench = doc
            .get("bench")
            .and_then(JsonValue::as_str)
            .ok_or("missing string field 'bench'")?
            .to_string();
        let rows_json = doc
            .get("rows")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field 'rows'")?;
        if rows_json.is_empty() {
            return Err("'rows' is empty".to_string());
        }
        let mut rows = Vec::with_capacity(rows_json.len());
        for (i, row) in rows_json.iter().enumerate() {
            let str_field = |name: &str| -> Result<String, String> {
                row.get(name)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or(format!("row {i}: missing string field '{name}'"))
            };
            let u64_field = |name: &str| -> Result<u64, String> {
                row.get(name)
                    .and_then(JsonValue::as_u64)
                    .ok_or(format!("row {i}: missing integer field '{name}'"))
            };
            for name in ROW_FIELDS {
                if row.get(name).is_none() {
                    return Err(format!("row {i}: missing field '{name}'"));
                }
            }
            let parsed = TrajectoryRow {
                scenario: str_field("scenario")?,
                policy: str_field("policy")?,
                seed: u64_field("seed")?,
                servers: u64_field("servers")?,
                cells: u64_field("cells")?,
                segments: u64_field("segments")?,
                offered: u64_field("offered")?,
                completed: u64_field("completed")?,
                slo_violations: u64_field("slo_violations")?,
                shed: u64_field("shed")?,
                shed_rung: u64_field("shed_rung")?,
                p50_sojourn_us: u64_field("p50_sojourn_us")?,
                p99_sojourn_us: u64_field("p99_sojourn_us")?,
                throughput_milli_jps: u64_field("throughput_milli_jps")?,
                goodput_milli_jps: u64_field("goodput_milli_jps")?,
                availability_milli: u64_field("availability_milli")?,
                cache_hit_milli: u64_field("cache_hit_milli")?,
                alerts: u64_field("alerts")?,
                makespan_us: u64_field("makespan_us")?,
                wall_ms: u64_field("wall_ms")?,
            };
            if parsed.completed > parsed.offered {
                return Err(format!(
                    "row {i}: completed {} > offered {}",
                    parsed.completed, parsed.offered
                ));
            }
            if parsed.availability_milli > 1000 {
                return Err(format!(
                    "row {i}: availability_milli {} > 1000",
                    parsed.availability_milli
                ));
            }
            if parsed.cache_hit_milli > 1000 {
                return Err(format!(
                    "row {i}: cache_hit_milli {} > 1000",
                    parsed.cache_hit_milli
                ));
            }
            if parsed.shed_rung > parsed.shed {
                return Err(format!(
                    "row {i}: shed_rung {} > shed {}",
                    parsed.shed_rung, parsed.shed
                ));
            }
            if parsed.p50_sojourn_us > parsed.p99_sojourn_us {
                return Err(format!(
                    "row {i}: p50 {} > p99 {}",
                    parsed.p50_sojourn_us, parsed.p99_sojourn_us
                ));
            }
            rows.push(parsed);
        }
        Ok(BenchTrajectory { bench, rows })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(scenario: &str, policy: &str) -> TrajectoryRow {
        TrajectoryRow {
            scenario: scenario.to_string(),
            policy: policy.to_string(),
            seed: 42,
            servers: 5,
            cells: 0,
            segments: 0,
            offered: 240,
            completed: 238,
            slo_violations: 3,
            shed: 2,
            shed_rung: 1,
            p50_sojourn_us: 41_000,
            p99_sojourn_us: 180_000,
            throughput_milli_jps: 12_345,
            goodput_milli_jps: 12_100,
            availability_milli: 991,
            cache_hit_milli: 425,
            alerts: 2,
            makespan_us: 19_000_000,
            wall_ms: 0,
        }
    }

    #[test]
    fn roundtrip_through_own_parser() {
        let mut t = BenchTrajectory::new("fig9_serving");
        t.push(row("baseline", "smart"));
        t.push(row("faulted", "port"));
        let json = t.to_json();
        let parsed = BenchTrajectory::validate_str(&json).expect("validates");
        assert_eq!(parsed, t);
    }

    #[test]
    fn serialization_is_byte_deterministic() {
        let build = || {
            let mut t = BenchTrajectory::new("fig9_serving");
            t.push(row("baseline", "random"));
            t.to_json()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn fields_appear_in_fixed_order() {
        let mut t = BenchTrajectory::new("b");
        t.push(row("baseline", "smart"));
        let json = t.to_json();
        let mut last = 0;
        for name in super::ROW_FIELDS {
            let pos = json
                .find(&format!("\"{name}\""))
                .unwrap_or_else(|| panic!("{name} missing"));
            assert!(pos > last, "field {name} out of order");
            last = pos;
        }
    }

    #[test]
    fn validation_rejects_missing_fields_and_bad_metrics() {
        let mut t = BenchTrajectory::new("b");
        t.push(row("baseline", "smart"));
        let json = t.to_json();
        let err =
            BenchTrajectory::validate_str(&json.replace("\"alerts\"", "\"alurts\"")).unwrap_err();
        assert!(err.contains("alerts"), "{err}");
        let err = BenchTrajectory::validate_str(
            &json.replace("\"completed\": 238", "\"completed\": 500"),
        )
        .unwrap_err();
        assert!(err.contains("completed"), "{err}");
        let err = BenchTrajectory::validate_str(&json.replace(
            "\"availability_milli\": 991",
            "\"availability_milli\": 1500",
        ))
        .unwrap_err();
        assert!(err.contains("availability"), "{err}");
        let err = BenchTrajectory::validate_str(
            &json.replace("\"cache_hit_milli\": 425", "\"cache_hit_milli\": 1500"),
        )
        .unwrap_err();
        assert!(err.contains("cache_hit_milli"), "{err}");
        let err =
            BenchTrajectory::validate_str(&json.replace("\"shed_rung\": 1", "\"shed_rung\": 99"))
                .unwrap_err();
        assert!(err.contains("shed_rung"), "{err}");
        assert!(BenchTrajectory::validate_str("{}").is_err());
        assert!(BenchTrajectory::validate_str("not json").is_err());
    }

    #[test]
    fn empty_rows_are_rejected() {
        let t = BenchTrajectory::new("b");
        assert!(BenchTrajectory::validate_str(&t.to_json()).is_err());
    }

    #[test]
    fn milli_conversion_clamps_and_rounds() {
        assert_eq!(milli(0.997), 997);
        assert_eq!(milli(1.0), 1000);
        assert_eq!(milli(0.0), 0);
        assert_eq!(milli(-1.0), 0);
        assert_eq!(milli(f64::NAN), 0);
    }
}
