//! Deterministic mergeable quantile sketches.
//!
//! A [`QuantileSketch`] is a log₂-linear (HDR-histogram-style) bucketing of
//! `u64` samples: values below `2^K` land in exact unit buckets; above that,
//! each power-of-two decade is split into `2^K` linear sub-buckets, so every
//! bucket spans at most a `1 + 2^-K` ratio and the reported bucket midpoint
//! is within a relative error of `2^-(K+1)` of any sample in it
//! ([`QuantileSketch::RELATIVE_ERROR_BOUND`]).
//!
//! Everything is integer arithmetic over a sparse `BTreeMap`, so recording,
//! merging (bucketwise add in ascending key order) and quantile queries are
//! byte-deterministic across platforms — no floating-point logarithms, no
//! hash-map iteration order. Merge is associative and commutative, which is
//! what lets windowed sub-sketches be combined into live quantiles in any
//! grouping without changing the answer.

use std::collections::BTreeMap;

/// Sub-bucket resolution: each power-of-two decade is split into `2^K`
/// linear buckets.
const K: u32 = 5;

/// Number of exact unit buckets (values `< LINEAR_MAX` are stored exactly).
const LINEAR_MAX: u64 = 1 << (K + 1);

/// A mergeable quantile sketch over `u64` samples (typically microseconds).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuantileSketch {
    buckets: BTreeMap<u32, u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index of a value: exact below `2^(K+1)`, log₂-linear above.
fn index_of(v: u64) -> u32 {
    if v < LINEAR_MAX {
        return v as u32;
    }
    let e = 63 - v.leading_zeros(); // floor(log2 v), >= K+1 here
    let shift = e - K;
    // Decade `e` contributes 2^K buckets; v >> shift is in [2^K, 2^(K+1)).
    ((e - K) << K) + (v >> shift) as u32
}

/// The smallest value mapping to bucket `idx` (inverse of [`index_of`]).
fn bucket_lo(idx: u32) -> u64 {
    if (idx as u64) < LINEAR_MAX {
        return idx as u64;
    }
    let g = (idx >> K) - 1; // decades above the linear range
    let off = (idx & ((1 << K) - 1)) as u128;
    // u128 shift then saturate: indices past the top u64 bucket (idx ≥
    // 1920 for K=5) are never produced by index_of but bucket_mid probes
    // idx+1 of the top bucket.
    let lo = (((1u128 << K) + off) << g).min(u128::from(u64::MAX));
    lo as u64
}

/// The representative (midpoint) value reported for bucket `idx`.
fn bucket_mid(idx: u32) -> u64 {
    let lo = bucket_lo(idx);
    if (idx as u64) < LINEAR_MAX {
        return lo; // exact buckets
    }
    let width = bucket_lo(idx + 1).saturating_sub(lo);
    lo + width / 2
}

impl QuantileSketch {
    /// Worst-case relative error of a reported quantile versus the exact
    /// nearest-rank quantile over the same samples: `2^-(K+1)`.
    pub const RELATIVE_ERROR_BOUND: f64 = 1.0 / (1u64 << (K + 1)) as f64;

    /// An empty sketch.
    pub fn new() -> Self {
        QuantileSketch {
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        *self.buckets.entry(index_of(v)).or_insert(0) += 1;
        self.count += 1;
        self.sum += u128::from(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another sketch in (bucketwise add, ascending bucket order —
    /// the result is independent of merge grouping).
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact minimum (0 when empty — the zero-stats contract).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Integer mean, truncated (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / u128::from(self.count)) as u64
        }
    }

    /// The `q`-permille quantile (nearest-rank: the bucket holding the
    /// 1-based rank `ceil(q·n/1000)` sample, reported as that bucket's
    /// midpoint). `quantile_permille(500)` is the median, `990` the p99.
    /// Returns 0 when empty.
    pub fn quantile_permille(&self, q: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (u128::from(self.count) * u128::from(q)).div_ceil(1000);
        let rank = rank.clamp(1, u128::from(self.count)) as u64;
        let mut seen = 0u64;
        for (&idx, &c) in &self.buckets {
            seen += c;
            if seen >= rank {
                // Never report outside the observed range: exact min/max
                // tighten the bucket estimate at the distribution edges.
                return bucket_mid(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// `(p50, p95, p99)` in one call.
    pub fn summary(&self) -> (u64, u64, u64) {
        (
            self.quantile_permille(500),
            self.quantile_permille(950),
            self.quantile_permille(990),
        )
    }

    /// One deterministic text line encoding the full sketch state —
    /// byte-comparable across runs and platforms.
    pub fn encode(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(32 + self.buckets.len() * 8);
        let _ = write!(
            out,
            "k={K} n={} sum={} min={} max={} buckets=",
            self.count,
            self.sum,
            self.min(),
            self.max
        );
        for (i, (&idx, &c)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{idx}:{c}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_quantile(samples: &[u64], q_permille: u32) -> u64 {
        let mut s = samples.to_vec();
        s.sort_unstable();
        let rank = (s.len() as u128 * u128::from(q_permille))
            .div_ceil(1000)
            .clamp(1, s.len() as u128) as usize;
        s[rank - 1]
    }

    /// Deterministic pseudo-random stream (SplitMix64).
    fn stream(seed: u64) -> impl FnMut() -> u64 {
        let mut state = seed;
        move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn index_is_monotone_and_invertible_at_bucket_lo() {
        // Top representable bucket for K=5: e=63 ⇒ idx < (63-5+1)·32 = 1888+32.
        let top = index_of(u64::MAX);
        assert_eq!(top, 1919);
        let mut prev = 0;
        for idx in 0..=top {
            let lo = bucket_lo(idx);
            assert_eq!(index_of(lo), idx, "bucket_lo inverts index_of at {idx}");
            assert!(idx == 0 || lo > prev, "bucket lows strictly increase");
            prev = lo;
        }
        // Spot-check boundary values map into the right bucket.
        for v in [0u64, 1, 63, 64, 65, 127, 128, 1 << 20, u64::MAX] {
            let idx = index_of(v);
            assert!(bucket_lo(idx) <= v, "v={v}");
            assert!(
                idx == top || v < bucket_lo(idx + 1),
                "v={v} spills past bucket {idx}"
            );
        }
    }

    #[test]
    fn empty_sketch_is_all_zeros() {
        let s = QuantileSketch::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_permille(500), 0);
        assert_eq!(s.quantile_permille(990), 0);
        assert_eq!((s.min(), s.max(), s.mean()), (0, 0, 0));
        assert_eq!(s.summary(), (0, 0, 0));
    }

    #[test]
    fn small_values_are_exact() {
        let mut s = QuantileSketch::new();
        for v in [0u64, 1, 2, 3, 5, 8, 13, 21, 34, 55] {
            s.record(v);
        }
        assert_eq!(s.quantile_permille(500), 5);
        assert_eq!(s.quantile_permille(1000), 55);
        assert_eq!(s.min(), 0);
        assert_eq!(s.max(), 55);
    }

    #[test]
    fn quantiles_stay_within_relative_error_bound() {
        let mut next = stream(7);
        for dist in 0..5 {
            let samples: Vec<u64> = (0..4000)
                .map(|i| match dist {
                    0 => next() % 1_000_000,
                    1 => 1u64 << (next() % 30),
                    2 => (next() % 1000).pow(2),
                    3 => 10_000 + next() % 64,
                    _ => i,
                })
                .collect();
            let mut s = QuantileSketch::new();
            for &v in &samples {
                s.record(v);
            }
            for q in [500u32, 900, 950, 990, 999] {
                let exact = exact_quantile(&samples, q);
                let est = s.quantile_permille(q);
                let err = est.abs_diff(exact) as f64;
                let bound = exact as f64 * QuantileSketch::RELATIVE_ERROR_BOUND + 1.0;
                assert!(
                    err <= bound,
                    "dist {dist} q {q}: est {est} vs exact {exact} (err {err} > {bound})"
                );
            }
        }
    }

    #[test]
    fn merge_equals_recording_everything_in_one_sketch() {
        let mut next = stream(42);
        let samples: Vec<u64> = (0..3000).map(|_| next() % 500_000).collect();
        let mut whole = QuantileSketch::new();
        for &v in &samples {
            whole.record(v);
        }
        // Split into uneven chunks, merge in two different groupings.
        let mut parts: Vec<QuantileSketch> = Vec::new();
        for chunk in samples.chunks(700) {
            let mut p = QuantileSketch::new();
            for &v in chunk {
                p.record(v);
            }
            parts.push(p);
        }
        let mut left_to_right = QuantileSketch::new();
        for p in &parts {
            left_to_right.merge(p);
        }
        let mut pairwise = QuantileSketch::new();
        for pair in parts.chunks(2) {
            let mut m = QuantileSketch::new();
            for p in pair {
                m.merge(p);
            }
            pairwise.merge(&m);
        }
        assert_eq!(whole, left_to_right);
        assert_eq!(whole, pairwise);
        assert_eq!(whole.encode(), pairwise.encode());
    }

    #[test]
    fn encode_is_deterministic_and_complete() {
        let mut a = QuantileSketch::new();
        let mut b = QuantileSketch::new();
        for v in [3u64, 70_000, 3, 999_999_999] {
            a.record(v);
            b.record(v);
        }
        assert_eq!(a.encode(), b.encode());
        assert!(a.encode().starts_with("k=5 n=4 "));
        assert!(a.encode().contains("3:2"), "{}", a.encode());
    }

    #[test]
    fn single_sample_reports_itself_within_bound() {
        for v in [0u64, 1, 63, 64, 1000, 123_456_789] {
            let mut s = QuantileSketch::new();
            s.record(v);
            let est = s.quantile_permille(990);
            let bound = (v as f64 * QuantileSketch::RELATIVE_ERROR_BOUND) as u64 + 1;
            assert!(est.abs_diff(v) <= bound, "v={v} est={est}");
        }
    }
}
