//! # vtx-obs — fleet observability plane
//!
//! Makes the serving fleet *observable*: the same [`ObsPlane`] is fed by
//! the discrete-event simulator and the real executor through their shared
//! service core, so a simulated run and a real run produce the same four
//! observability artifacts:
//!
//! 1. **Per-job lifecycle traces** ([`trace::JobTracker`]) — admit →
//!    enqueue → dispatch → fault/requeue/hedge → terminal, exportable as
//!    Chrome trace-event tracks (one per job) and as a plain-text log.
//!    Conservation and exactly-once are checkable from the trace alone.
//! 2. **Windowed quantiles** ([`window::WindowedQuantiles`] over
//!    [`sketch::QuantileSketch`]) — deterministic mergeable log₂-bucketed
//!    sketches powering live p50/p95/p99 per service class with a fixed
//!    relative-error bound.
//! 3. **SLO burn-rate monitoring** ([`slo::BurnRateMonitor`]) — a
//!    multi-window burn-rate alert per class whose transitions are emitted
//!    into the deterministic event stream and feed the chaos layer's
//!    degrade causes.
//! 4. **Machine-readable bench trajectory**
//!    ([`trajectory::BenchTrajectory`]) — per-scenario serving results
//!    serialized to `BENCH_serving.json`, schema-validated and
//!    byte-deterministic per seed, plus Prometheus-format metric
//!    exposition ([`ObsPlane::render_prometheus`]).
//!
//! Everything here is integer arithmetic over ordered containers: two runs
//! with the same seed produce byte-identical traces, alert streams, and
//! trajectory documents on any platform.

pub mod json;
pub mod sketch;
pub mod slo;
pub mod trace;
pub mod trajectory;
pub mod window;

pub use sketch::QuantileSketch;
pub use slo::{AlertTransition, BurnRateMonitor, SloConfig};
pub use trace::{ConservationStats, JobTracker, Terminal, JOB_PID};
pub use trajectory::{milli, wall_clock_enabled, BenchTrajectory, TrajectoryRow};
pub use window::WindowedQuantiles;

use serde::{Deserialize, Serialize};

/// Configuration of the observability plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObsConfig {
    /// Master switch; when false every hook is a cheap no-op.
    pub enabled: bool,
    /// Tumbling-window width for live quantiles, microseconds.
    pub window_us: u64,
    /// Recent windows merged into a live quantile reading.
    pub windows_kept: usize,
    /// SLO burn-rate alerting parameters.
    pub slo: SloParams,
}

/// Serializable mirror of [`slo::SloConfig`] (kept separate so the monitor
/// itself stays free of serialization concerns).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloParams {
    /// Allowed bad-outcome fraction, milli-units (50 ⇒ 5%).
    pub budget_milli: u64,
    /// Burn-rate multiple that fires, milli-units (2000 ⇒ 2×).
    pub fire_burn_milli: u64,
    /// Fast alert window, microseconds.
    pub fast_window_us: u64,
    /// Slow alert window, microseconds.
    pub slow_window_us: u64,
    /// Minimum fast-window outcomes before the alert can fire.
    pub min_events: u64,
}

impl Default for ObsConfig {
    fn default() -> Self {
        let slo = SloConfig::default();
        ObsConfig {
            enabled: true,
            window_us: 2_000_000,
            windows_kept: 5,
            slo: SloParams {
                budget_milli: slo.budget_milli,
                fire_burn_milli: slo.fire_burn_milli,
                fast_window_us: slo.fast_window_us,
                slow_window_us: slo.slow_window_us,
                min_events: slo.min_events,
            },
        }
    }
}

impl ObsConfig {
    /// A disabled plane (hooks become no-ops).
    pub fn disabled() -> Self {
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        }
    }

    fn slo_config(&self) -> SloConfig {
        SloConfig {
            budget_milli: self.slo.budget_milli,
            fire_burn_milli: self.slo.fire_burn_milli,
            fast_window_us: self.slo.fast_window_us,
            slow_window_us: self.slo.slow_window_us,
            min_events: self.slo.min_events,
        }
    }
}

/// The observability plane one serving run feeds: job tracker + windowed
/// quantiles + burn-rate monitor, with deterministic exports.
///
/// Callers identify service classes by index plus a parallel name slice
/// (e.g. `["interactive", "standard", "batch"]`), so this crate stays
/// independent of the serving crate's priority type.
#[derive(Debug, Clone)]
pub struct ObsPlane {
    cfg: ObsConfig,
    tracker: JobTracker,
    windows: WindowedQuantiles,
    monitor: BurnRateMonitor,
    alerts: Vec<AlertTransition>,
}

impl ObsPlane {
    /// A plane over `classes` service classes.
    pub fn new(cfg: ObsConfig, classes: usize) -> Self {
        let windows = WindowedQuantiles::new(classes, cfg.window_us, cfg.windows_kept);
        let monitor = BurnRateMonitor::new(classes, cfg.slo_config());
        ObsPlane {
            cfg,
            tracker: JobTracker::new(),
            windows,
            monitor,
            alerts: Vec::new(),
        }
    }

    /// Whether hooks are live.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Job `id` arrived.
    pub fn on_arrive(&mut self, t_us: u64, id: u64) {
        if self.cfg.enabled {
            self.tracker.on_arrive(t_us, id);
        }
    }

    /// Job `id` admitted into `class`.
    pub fn on_admit(&mut self, t_us: u64, id: u64, class: usize) {
        if self.cfg.enabled {
            self.tracker.on_admit(t_us, id, class);
        }
    }

    /// Job `id` (class `class`) shed with `reason`. A shed is a bad SLO
    /// outcome; returns an alert transition if the burn monitor flipped.
    pub fn on_shed(
        &mut self,
        t_us: u64,
        id: u64,
        class: usize,
        reason: &str,
    ) -> Option<AlertTransition> {
        if !self.cfg.enabled {
            return None;
        }
        self.tracker.on_shed(t_us, id, reason);
        let tr = self.monitor.observe(class, t_us, true);
        if let Some(tr) = &tr {
            self.alerts.push(tr.clone());
        }
        tr
    }

    /// Job `id` dispatched to `server`.
    pub fn on_dispatch(&mut self, t_us: u64, id: u64, server: usize, attempt: u32) {
        if self.cfg.enabled {
            self.tracker.on_dispatch(t_us, id, server, attempt);
        }
    }

    /// Job `id` (class `class`) completed on `server` with the given
    /// sojourn. Feeds the windowed quantiles and the burn monitor; returns
    /// an alert transition if the monitor flipped.
    pub fn on_complete(
        &mut self,
        t_us: u64,
        id: u64,
        server: usize,
        class: usize,
        sojourn_us: u64,
        violation: bool,
    ) -> Option<AlertTransition> {
        if !self.cfg.enabled {
            return None;
        }
        self.tracker
            .on_complete(t_us, id, server, sojourn_us, violation);
        self.windows.record(class, t_us, sojourn_us);
        let tr = self.monitor.observe(class, t_us, violation);
        if let Some(tr) = &tr {
            self.alerts.push(tr.clone());
        }
        tr
    }

    /// Job `id` timed out on `server`.
    pub fn on_timeout(&mut self, t_us: u64, id: u64, server: usize) {
        if self.cfg.enabled {
            self.tracker.on_timeout(t_us, id, server);
        }
    }

    /// Job `id` requeued off faulted `server`.
    pub fn on_requeue(&mut self, t_us: u64, id: u64, server: usize) {
        if self.cfg.enabled {
            self.tracker.on_requeue(t_us, id, server);
        }
    }

    /// Hedge twin of `id` launched on `server`.
    pub fn on_hedge(&mut self, t_us: u64, id: u64, server: usize) {
        if self.cfg.enabled {
            self.tracker.on_hedge(t_us, id, server);
        }
    }

    /// Losing hedge twin of `id` on `server` discarded.
    pub fn on_hedge_discard(&mut self, t_us: u64, id: u64, server: usize) {
        if self.cfg.enabled {
            self.tracker.on_hedge_discard(t_us, id, server);
        }
    }

    /// Run ended; closes stranded spans.
    pub fn on_finish(&mut self, makespan_us: u64) {
        if self.cfg.enabled {
            self.tracker.on_finish(makespan_us);
        }
    }

    /// Whether any class's burn-rate alert is currently firing.
    pub fn alert_firing(&self) -> bool {
        self.monitor.firing_count() > 0
    }

    /// The per-job lifecycle tracker.
    pub fn tracker(&self) -> &JobTracker {
        &self.tracker
    }

    /// The windowed per-class quantiles.
    pub fn windows(&self) -> &WindowedQuantiles {
        &self.windows
    }

    /// The burn-rate monitor.
    pub fn monitor(&self) -> &BurnRateMonitor {
        &self.monitor
    }

    /// All alert transitions in emission order.
    pub fn alerts(&self) -> &[AlertTransition] {
        &self.alerts
    }

    /// Deterministic plain-text alert stream, one line per transition.
    pub fn render_alerts(&self, class_names: &[&str]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for a in &self.alerts {
            let class = class_names.get(a.class).copied().unwrap_or("?");
            let state = if a.firing { "FIRING" } else { "ok" };
            let _ = writeln!(
                out,
                "{:>12} alert class={class} state={state} fast_burn_milli={} slow_burn_milli={}",
                a.t_us, a.fast_burn_milli, a.slow_burn_milli
            );
        }
        out
    }

    /// Prometheus text-format exposition of the run's serving metrics:
    /// per-class completion counters and sojourn summaries (from the
    /// cumulative sketches), plus alert-transition counters. Valid
    /// Prometheus exposition format, deterministic line order.
    pub fn render_prometheus(&self, class_names: &[&str]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# TYPE vtx_serve_completed_total counter\n");
        for class in 0..self.windows.classes() {
            let name = class_names.get(class).copied().unwrap_or("unknown");
            let _ = writeln!(
                out,
                "vtx_serve_completed_total{{class=\"{name}\"}} {}",
                self.windows.cumulative(class).count()
            );
        }
        out.push_str("# TYPE vtx_serve_sojourn_us summary\n");
        for class in 0..self.windows.classes() {
            let name = class_names.get(class).copied().unwrap_or("unknown");
            let s = self.windows.cumulative(class);
            for (q, label) in [(500u32, "0.5"), (950, "0.95"), (990, "0.99")] {
                let _ = writeln!(
                    out,
                    "vtx_serve_sojourn_us{{class=\"{name}\",quantile=\"{label}\"}} {}",
                    s.quantile_permille(q)
                );
            }
            let _ = writeln!(
                out,
                "vtx_serve_sojourn_us_sum{{class=\"{name}\"}} {}",
                s.sum()
            );
            let _ = writeln!(
                out,
                "vtx_serve_sojourn_us_count{{class=\"{name}\"}} {}",
                s.count()
            );
        }
        out.push_str("# TYPE vtx_serve_alert_transitions_total counter\n");
        let _ = writeln!(
            out,
            "vtx_serve_alert_transitions_total {}",
            self.monitor.transitions()
        );
        out.push_str("# TYPE vtx_serve_alerts_firing gauge\n");
        let _ = writeln!(
            out,
            "vtx_serve_alerts_firing {}",
            self.monitor.firing_count()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(plane: &mut ObsPlane) {
        for i in 0..40u64 {
            let t = i * 10_000;
            plane.on_arrive(t, i);
            plane.on_admit(t, i, (i % 2) as usize);
            plane.on_dispatch(t + 10, i, (i % 4) as usize, 0);
            // Class 1 violates half its deadlines.
            let violation = i % 2 == 1 && i % 4 == 1;
            plane.on_complete(
                t + 5_000,
                i,
                (i % 4) as usize,
                (i % 2) as usize,
                5_000,
                violation,
            );
        }
        plane.on_finish(500_000);
    }

    #[test]
    fn plane_feeds_all_pillars() {
        let mut plane = ObsPlane::new(ObsConfig::default(), 2);
        drive(&mut plane);
        let stats = plane.tracker().check_conservation().unwrap();
        assert_eq!(stats.arrived, 40);
        assert_eq!(stats.completed, 40);
        assert_eq!(plane.windows().cumulative(0).count(), 20);
        assert_eq!(plane.windows().cumulative(1).count(), 20);
        assert_eq!(plane.windows().overall().count(), 40);
    }

    #[test]
    fn disabled_plane_is_inert() {
        let mut plane = ObsPlane::new(ObsConfig::disabled(), 2);
        drive(&mut plane);
        assert!(plane.tracker().is_empty());
        assert_eq!(plane.windows().overall().count(), 0);
        assert!(plane.alerts().is_empty());
    }

    #[test]
    fn prometheus_exposition_is_valid_and_deterministic() {
        let build = || {
            let mut plane = ObsPlane::new(ObsConfig::default(), 2);
            drive(&mut plane);
            plane.render_prometheus(&["interactive", "batch"])
        };
        let text = build();
        assert_eq!(text, build());
        assert!(text.contains("# TYPE vtx_serve_sojourn_us summary"));
        assert!(text.contains("vtx_serve_completed_total{class=\"interactive\"} 20"));
        assert!(text.contains("quantile=\"0.99\""));
        // Every non-comment line is `name{labels} value` or `name value`
        // with a metric name matching [a-zA-Z_:][a-zA-Z0-9_:]*.
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let name_end = line.find(['{', ' ']).unwrap_or(line.len());
            let name = &line[..name_end];
            assert!(
                name.chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':'),
                "bad metric name start: {line}"
            );
            assert!(
                name.chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
                "bad metric name: {line}"
            );
            let value = line.rsplit(' ').next().unwrap();
            assert!(value.parse::<f64>().is_ok(), "bad sample value: {line}");
        }
    }

    #[test]
    fn shed_storm_fires_alert_and_renders_deterministically() {
        let mut cfg = ObsConfig::default();
        cfg.slo.fast_window_us = 50_000;
        cfg.slo.slow_window_us = 200_000;
        cfg.slo.min_events = 5;
        let run = || {
            let mut plane = ObsPlane::new(cfg.clone(), 1);
            for i in 0..200u64 {
                let t = i * 1_000;
                plane.on_arrive(t, i);
                plane.on_shed(t, i, 0, "queue_full");
            }
            plane.on_finish(300_000);
            (plane.alerts().len(), plane.render_alerts(&["interactive"]))
        };
        let (n, text) = run();
        assert!(n >= 1, "shed storm must fire");
        assert!(text.contains("state=FIRING"));
        assert_eq!(run().1, text);
    }
}
