//! Windowed live quantiles per service class.
//!
//! [`WindowedQuantiles`] maintains, for each service class, a ring of
//! tumbling-window [`QuantileSketch`]es plus a cumulative sketch. Samples
//! land in the window covering their timestamp; a live quantile query
//! merges the most recent `N` windows, so the answer reflects only recent
//! traffic while the cumulative sketch answers whole-run questions.
//!
//! Window assignment is pure integer division of the event timestamp, so
//! the same event stream always produces the same windows and the same
//! live readings — the windowed view is as deterministic as the run.

use crate::sketch::QuantileSketch;

/// One closed (or in-progress) tumbling window for one class.
#[derive(Debug, Clone)]
struct Window {
    /// Window ordinal: `t_us / width_us`.
    ordinal: u64,
    sketch: QuantileSketch,
}

/// Per-class tumbling windows with a bounded ring and a cumulative sketch.
#[derive(Debug, Clone)]
pub struct WindowedQuantiles {
    width_us: u64,
    keep: usize,
    /// Ring of recent windows, oldest first, per class.
    windows: Vec<Vec<Window>>,
    /// Whole-run sketch per class.
    cumulative: Vec<QuantileSketch>,
    /// Whole-run sketch across all classes.
    overall: QuantileSketch,
}

impl WindowedQuantiles {
    /// Creates a windowed view over `classes` service classes with tumbling
    /// windows of `width_us` microseconds, keeping the most recent `keep`
    /// windows per class for live queries.
    pub fn new(classes: usize, width_us: u64, keep: usize) -> Self {
        WindowedQuantiles {
            width_us: width_us.max(1),
            keep: keep.max(1),
            windows: vec![Vec::new(); classes],
            cumulative: vec![QuantileSketch::new(); classes],
            overall: QuantileSketch::new(),
        }
    }

    /// Number of service classes tracked.
    pub fn classes(&self) -> usize {
        self.cumulative.len()
    }

    /// Window width in microseconds.
    pub fn width_us(&self) -> u64 {
        self.width_us
    }

    /// Records a sample for `class` at simulated/wall time `t_us`.
    /// Out-of-range classes are ignored (callers pass validated indices).
    pub fn record(&mut self, class: usize, t_us: u64, value: u64) {
        if class >= self.cumulative.len() {
            return;
        }
        self.cumulative[class].record(value);
        self.overall.record(value);
        let ordinal = t_us / self.width_us;
        let ring = &mut self.windows[class];
        match ring.last_mut() {
            Some(w) if w.ordinal == ordinal => w.sketch.record(value),
            Some(w) if w.ordinal > ordinal => {
                // Late sample (events can be recorded slightly out of order
                // across classes); fold into the matching window if it is
                // still in the ring, else into the oldest retained one.
                if let Some(w) = ring.iter_mut().find(|w| w.ordinal == ordinal) {
                    w.sketch.record(value);
                } else if let Some(first) = ring.first_mut() {
                    first.sketch.record(value);
                }
            }
            _ => {
                let mut sketch = QuantileSketch::new();
                sketch.record(value);
                ring.push(Window { ordinal, sketch });
                if ring.len() > self.keep {
                    let drop = ring.len() - self.keep;
                    ring.drain(..drop);
                }
            }
        }
    }

    /// Live quantile for `class`: merges the retained recent windows.
    /// Returns 0 when the class has seen no recent samples.
    pub fn live_quantile_permille(&self, class: usize, q: u32) -> u64 {
        self.live_sketch(class).quantile_permille(q)
    }

    /// Merged sketch over the retained windows for `class`.
    pub fn live_sketch(&self, class: usize) -> QuantileSketch {
        let mut merged = QuantileSketch::new();
        if let Some(ring) = self.windows.get(class) {
            for w in ring {
                merged.merge(&w.sketch);
            }
        }
        merged
    }

    /// Whole-run sketch for `class`.
    ///
    /// # Panics
    /// Panics if `class >= self.classes()` — live/record paths tolerate bad
    /// indices, but a cumulative query for an unknown class is a caller bug.
    pub fn cumulative(&self, class: usize) -> &QuantileSketch {
        &self.cumulative[class]
    }

    /// Whole-run sketch across all classes.
    pub fn overall(&self) -> &QuantileSketch {
        &self.overall
    }

    /// Deterministic multi-line rendering of the live and cumulative state,
    /// one line per class: `class=<i> live_n=.. live_p50=.. live_p95=..
    /// live_p99=.. total_n=.. total_p99=..`.
    pub fn render(&self, class_names: &[&str]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for class in 0..self.cumulative.len() {
            let name = class_names.get(class).copied().unwrap_or("?");
            let live = self.live_sketch(class);
            let (lp50, lp95, lp99) = live.summary();
            let total = &self.cumulative[class];
            let _ = writeln!(
                out,
                "class={name} live_n={} live_p50={lp50} live_p95={lp95} live_p99={lp99} total_n={} total_p99={}",
                live.count(),
                total.count(),
                total.quantile_permille(990),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_tumble_and_old_ones_age_out() {
        let mut w = WindowedQuantiles::new(1, 1000, 2);
        // Window 0: slow samples; windows 5 and 6: fast samples.
        for _ in 0..100 {
            w.record(0, 10, 1_000_000);
        }
        for t in [5_100, 6_100] {
            for _ in 0..100 {
                w.record(0, t, 100);
            }
        }
        // Live view keeps only the last 2 windows — the slow window is gone.
        let live = w.live_sketch(0);
        assert_eq!(live.count(), 200);
        assert!(live.quantile_permille(990) < 1000, "old window leaked in");
        // Cumulative still remembers everything.
        assert_eq!(w.cumulative(0).count(), 300);
        assert!(w.cumulative(0).quantile_permille(990) > 500_000);
    }

    #[test]
    fn classes_are_independent() {
        let mut w = WindowedQuantiles::new(3, 1000, 4);
        w.record(0, 5, 10);
        w.record(2, 5, 9_999_999);
        assert_eq!(w.live_sketch(0).count(), 1);
        assert_eq!(w.live_sketch(1).count(), 0);
        assert_eq!(w.live_quantile_permille(1, 990), 0);
        assert!(w.live_quantile_permille(2, 990) > 1_000_000);
        assert_eq!(w.overall().count(), 2);
    }

    #[test]
    fn late_samples_do_not_panic_and_are_retained() {
        let mut w = WindowedQuantiles::new(1, 1000, 3);
        w.record(0, 5_000, 50);
        w.record(0, 100, 70); // late: window 0 never existed — folds into oldest
        assert_eq!(w.live_sketch(0).count(), 2);
        w.record(0, 9_000, 10);
        w.record(0, 8_500, 20); // late but window 8 exists? no — folds forward
        assert_eq!(w.cumulative(0).count(), 4);
    }

    #[test]
    fn out_of_range_class_is_ignored() {
        let mut w = WindowedQuantiles::new(2, 1000, 2);
        w.record(7, 0, 123);
        assert_eq!(w.overall().count(), 0);
    }

    #[test]
    fn render_is_deterministic() {
        let build = || {
            let mut w = WindowedQuantiles::new(2, 500, 2);
            for i in 0..50u64 {
                w.record((i % 2) as usize, i * 37, i * 100 + 1);
            }
            w.render(&["interactive", "batch"])
        };
        let a = build();
        assert_eq!(a, build());
        assert!(a.starts_with("class=interactive "), "{a}");
    }
}
