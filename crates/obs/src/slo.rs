//! Multi-window SLO burn-rate monitoring.
//!
//! A [`BurnRateMonitor`] tracks, per service class, the fraction of "bad"
//! outcomes (deadline violations and sheds) against an error budget, over a
//! fast and a slow tumbling window — the classic SRE multi-window
//! burn-rate alert. An alert fires only when **both** windows exceed the
//! burn threshold: the fast window makes the alert responsive, the slow
//! window keeps one unlucky burst from paging.
//!
//! All rates are integer milli-units (`bad * 1000 / total`) over integer
//! window boundaries, so transitions are byte-deterministic per seed. Each
//! transition is returned as an [`AlertTransition`] for the caller to fold
//! into its deterministic event stream.

/// Configuration for the burn-rate monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloConfig {
    /// Error budget: allowed bad-outcome fraction, in milli-units
    /// (e.g. 50 ⇒ 5% of outcomes may be bad).
    pub budget_milli: u64,
    /// Burn-rate multiple that fires the alert, in milli-units
    /// (e.g. 2000 ⇒ burning budget at 2× the sustainable rate).
    pub fire_burn_milli: u64,
    /// Fast window width, microseconds.
    pub fast_window_us: u64,
    /// Slow window width, microseconds (≥ fast).
    pub slow_window_us: u64,
    /// Minimum outcomes in the fast window before it can vote — keeps a
    /// single early failure from firing on a 1/1 = 100% bad rate.
    pub min_events: u64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig {
            budget_milli: 50,      // 5% error budget
            fire_burn_milli: 2000, // fire at 2× burn
            fast_window_us: 2_000_000,
            slow_window_us: 10_000_000,
            min_events: 10,
        }
    }
}

/// One alert state change, emitted into the deterministic event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertTransition {
    /// Event time, microseconds.
    pub t_us: u64,
    /// Service class index the alert concerns.
    pub class: usize,
    /// `true` when the alert starts firing, `false` when it clears.
    pub firing: bool,
    /// Fast-window burn rate at the transition, milli-multiples of budget.
    pub fast_burn_milli: u64,
    /// Slow-window burn rate at the transition, milli-multiples of budget.
    pub slow_burn_milli: u64,
}

/// Tumbling counting window: current bucket + previous closed bucket.
/// The reported rate blends both so a window boundary doesn't reset the
/// signal to 0/0 (previous counts stand in until the current bucket fills).
#[derive(Debug, Clone, Default)]
struct CountWindow {
    ordinal: u64,
    bad: u64,
    total: u64,
    prev_bad: u64,
    prev_total: u64,
}

impl CountWindow {
    fn observe(&mut self, ordinal: u64, bad: bool) {
        if ordinal != self.ordinal {
            // Tumble; skipped ordinals mean an idle gap — the old counts
            // are stale, keep at most one window of history.
            if ordinal == self.ordinal + 1 {
                self.prev_bad = self.bad;
                self.prev_total = self.total;
            } else {
                self.prev_bad = 0;
                self.prev_total = 0;
            }
            self.bad = 0;
            self.total = 0;
            self.ordinal = ordinal;
        }
        self.total += 1;
        if bad {
            self.bad += 1;
        }
    }

    fn bad(&self) -> u64 {
        self.bad + self.prev_bad
    }

    fn total(&self) -> u64 {
        self.total + self.prev_total
    }
}

#[derive(Debug, Clone, Default)]
struct ClassState {
    fast: CountWindow,
    slow: CountWindow,
    firing: bool,
}

/// Per-class multi-window burn-rate monitor.
#[derive(Debug, Clone)]
pub struct BurnRateMonitor {
    cfg: SloConfig,
    classes: Vec<ClassState>,
    transitions: u64,
}

impl BurnRateMonitor {
    /// A monitor over `classes` service classes.
    pub fn new(classes: usize, cfg: SloConfig) -> Self {
        let cfg = SloConfig {
            budget_milli: cfg.budget_milli.max(1),
            fast_window_us: cfg.fast_window_us.max(1),
            slow_window_us: cfg.slow_window_us.max(cfg.fast_window_us.max(1)),
            ..cfg
        };
        BurnRateMonitor {
            cfg,
            classes: vec![ClassState::default(); classes],
            transitions: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SloConfig {
        &self.cfg
    }

    /// Total state transitions observed so far (firing + clearing).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Whether the alert for `class` is currently firing.
    pub fn is_firing(&self, class: usize) -> bool {
        self.classes.get(class).is_some_and(|c| c.firing)
    }

    /// Number of classes currently firing.
    pub fn firing_count(&self) -> usize {
        self.classes.iter().filter(|c| c.firing).count()
    }

    /// Records one outcome (`bad` = deadline violation or shed) for `class`
    /// at time `t_us`. Returns a transition if the alert state flipped.
    pub fn observe(&mut self, class: usize, t_us: u64, bad: bool) -> Option<AlertTransition> {
        let state = self.classes.get_mut(class)?;
        state.fast.observe(t_us / self.cfg.fast_window_us, bad);
        state.slow.observe(t_us / self.cfg.slow_window_us, bad);

        let fast_burn = burn_milli(state.fast.bad(), state.fast.total(), self.cfg.budget_milli);
        let slow_burn = burn_milli(state.slow.bad(), state.slow.total(), self.cfg.budget_milli);

        let enough = state.fast.total() >= self.cfg.min_events;
        let should_fire = enough
            && fast_burn >= self.cfg.fire_burn_milli
            && slow_burn >= self.cfg.fire_burn_milli;
        // Hysteresis: clear only once both windows fall below half the
        // firing threshold, so the alert doesn't flap at the boundary.
        let clear_at = self.cfg.fire_burn_milli / 2;
        let should_clear = fast_burn < clear_at && slow_burn < clear_at;

        let flip = if !state.firing && should_fire {
            state.firing = true;
            true
        } else if state.firing && should_clear {
            state.firing = false;
            true
        } else {
            false
        };
        if !flip {
            return None;
        }
        self.transitions += 1;
        Some(AlertTransition {
            t_us,
            class,
            firing: state.firing,
            fast_burn_milli: fast_burn,
            slow_burn_milli: slow_burn,
        })
    }
}

/// Burn rate in milli-multiples of the budget: `(bad/total) / budget`.
fn burn_milli(bad: u64, total: u64, budget_milli: u64) -> u64 {
    if total == 0 {
        return 0;
    }
    // (bad * 1000 / total) milli-rate, divided by budget milli-rate,
    // expressed in milli-multiples: bad * 1000 * 1000 / (total * budget).
    let num = u128::from(bad) * 1_000_000;
    let den = u128::from(total) * u128::from(budget_milli);
    (num / den) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SloConfig {
        SloConfig {
            budget_milli: 50,
            fire_burn_milli: 2000,
            fast_window_us: 1_000,
            slow_window_us: 10_000,
            min_events: 4,
        }
    }

    #[test]
    fn healthy_traffic_never_fires() {
        let mut m = BurnRateMonitor::new(1, cfg());
        for t in 0..500u64 {
            // 2% bad, under the 5% budget (bad at the end of each stretch
            // so the cold-start windows are not dominated by one failure).
            let bad = t % 50 == 49;
            assert!(m.observe(0, t * 20, bad).is_none(), "fired at t={t}");
        }
        assert!(!m.is_firing(0));
        assert_eq!(m.transitions(), 0);
    }

    #[test]
    fn sustained_burn_fires_then_recovery_clears() {
        let mut m = BurnRateMonitor::new(1, cfg());
        let mut fired_at = None;
        // 50% bad — 10× burn vs 5% budget — across both windows.
        for t in 0..2000u64 {
            if let Some(tr) = m.observe(0, t * 20, t % 2 == 0) {
                assert!(tr.firing);
                assert!(tr.fast_burn_milli >= 2000);
                assert!(tr.slow_burn_milli >= 2000);
                fired_at = Some(tr.t_us);
                break;
            }
        }
        let fired_at = fired_at.expect("sustained burn must fire");
        assert!(m.is_firing(0));
        assert_eq!(m.firing_count(), 1);
        // Recovery: all-good traffic clears once both windows cool off.
        let mut cleared = false;
        for t in 0..5000u64 {
            if let Some(tr) = m.observe(0, fired_at + 1 + t * 20, false) {
                assert!(!tr.firing);
                cleared = true;
                break;
            }
        }
        assert!(cleared, "recovery must clear the alert");
        assert!(!m.is_firing(0));
        assert_eq!(m.transitions(), 2);
    }

    #[test]
    fn single_early_failure_is_held_back_by_min_events() {
        let mut m = BurnRateMonitor::new(1, cfg());
        assert!(m.observe(0, 0, true).is_none(), "1/1 bad must not fire");
        assert!(!m.is_firing(0));
    }

    #[test]
    fn fast_burst_alone_does_not_fire_without_slow_window() {
        let mut slow_cfg = cfg();
        slow_cfg.slow_window_us = 1_000_000;
        let mut m = BurnRateMonitor::new(1, slow_cfg);
        // Long healthy history fills the slow window with good outcomes...
        for t in 0..900u64 {
            m.observe(0, t * 1000, false);
        }
        // ...then a short 100%-bad burst: fast window is hot, slow is not.
        for t in 0..8u64 {
            assert!(m.observe(0, 900_000 + t * 10, true).is_none());
        }
        assert!(!m.is_firing(0));
    }

    #[test]
    fn classes_alert_independently() {
        let mut m = BurnRateMonitor::new(2, cfg());
        for t in 0..2000u64 {
            m.observe(0, t * 20, true); // class 0 melts down
            m.observe(1, t * 20, false); // class 1 is fine
        }
        assert!(m.is_firing(0));
        assert!(!m.is_firing(1));
        assert_eq!(m.firing_count(), 1);
    }

    #[test]
    fn transitions_are_deterministic() {
        let run = || {
            let mut m = BurnRateMonitor::new(1, cfg());
            let mut log = Vec::new();
            for t in 0..3000u64 {
                let bad = (t / 400) % 2 == 0; // alternating hot/cold phases
                if let Some(tr) = m.observe(0, t * 17, bad) {
                    log.push(tr);
                }
            }
            log
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty(), "phased workload should transition");
    }

    #[test]
    fn out_of_range_class_is_ignored() {
        let mut m = BurnRateMonitor::new(1, cfg());
        assert!(m.observe(5, 0, true).is_none());
        assert!(!m.is_firing(5));
    }
}
