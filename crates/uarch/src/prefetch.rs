//! Hardware prefetcher models (extension beyond the paper's Table IV).
//!
//! The paper's configurations do not vary prefetching, so the hierarchy
//! default is *no* prefetcher — but transcoding's reference-window streams
//! are classic prefetcher fodder, making this the natural "future work"
//! ablation. Two models are provided:
//!
//! * [`PrefetcherKind::NextLine`] — always fetch `line + 1` on a demand miss;
//! * [`PrefetcherKind::Stream`] — a small table of stream detectors that
//!   lock onto constant-stride sequences and run ahead of them.

use serde::{Deserialize, Serialize};

/// Selectable prefetcher model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching (the paper's implicit setting).
    #[default]
    None,
    /// Next-line prefetch on demand miss.
    NextLine,
    /// Multi-stream stride detection.
    Stream,
}

/// Prefetch issue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetches issued to the hierarchy.
    pub issued: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Stream {
    last: u64,
    stride: i64,
    confidence: u8,
    lru: u8,
}

/// A stream prefetcher: observes the demand-miss line sequence and emits
/// lines to fetch ahead.
#[derive(Debug, Clone)]
pub struct Prefetcher {
    kind: PrefetcherKind,
    streams: [Stream; 8],
    stats: PrefetchStats,
}

impl Prefetcher {
    /// Creates a prefetcher of the given kind.
    pub fn new(kind: PrefetcherKind) -> Self {
        Prefetcher {
            kind,
            streams: [Stream::default(); 8],
            stats: PrefetchStats::default(),
        }
    }

    /// The model in use.
    pub fn kind(&self) -> PrefetcherKind {
        self.kind
    }

    /// Statistics so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Observes a demand access on `line` (`missed` = it left the L1) and
    /// returns the lines to prefetch (at most 2).
    ///
    /// Stream detectors train on *all* accesses — hits keep a stream's
    /// position current so run-ahead continues once the stream is covered
    /// by its own prefetches.
    pub fn on_access(&mut self, line: u64, missed: bool) -> Vec<u64> {
        let out = match self.kind {
            PrefetcherKind::None => Vec::new(),
            PrefetcherKind::NextLine if missed => vec![line + 1],
            PrefetcherKind::NextLine => Vec::new(),
            PrefetcherKind::Stream => self.observe_stream(line),
        };
        self.stats.issued += out.len() as u64;
        out
    }

    fn observe_stream(&mut self, line: u64) -> Vec<u64> {
        // Age every stream; reset on use.
        for s in &mut self.streams {
            s.lru = s.lru.saturating_add(1);
        }
        // A stream matches if the new line continues its stride.
        for s in &mut self.streams {
            if s.stride != 0 && line as i64 == s.last as i64 + s.stride {
                s.last = line;
                s.lru = 0;
                s.confidence = (s.confidence + 1).min(4);
                if s.confidence >= 2 {
                    // Run ahead: degree 2 once confident.
                    let p1 = (line as i64 + s.stride).max(0) as u64;
                    let p2 = (line as i64 + 2 * s.stride).max(0) as u64;
                    return vec![p1, p2];
                }
                return Vec::new();
            }
        }
        // Try to pair the miss with an existing stream head to learn a stride.
        for s in &mut self.streams {
            if s.stride == 0 && s.last != 0 {
                let stride = line as i64 - s.last as i64;
                if stride != 0 && stride.abs() <= 64 {
                    s.stride = stride;
                    s.last = line;
                    s.lru = 0;
                    s.confidence = 1;
                    return Vec::new();
                }
            }
        }
        // Allocate the LRU slot as a new stream head.
        let victim = self
            .streams
            .iter_mut()
            .max_by_key(|s| s.lru)
            .expect("nonempty");
        *victim = Stream {
            last: line,
            stride: 0,
            confidence: 0,
            lru: 0,
        };
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_prefetches() {
        let mut p = Prefetcher::new(PrefetcherKind::None);
        assert!(p.on_access(10, true).is_empty());
        assert_eq!(p.stats().issued, 0);
    }

    #[test]
    fn next_line_fetches_successor_on_miss_only() {
        let mut p = Prefetcher::new(PrefetcherKind::NextLine);
        assert_eq!(p.on_access(10, true), vec![11]);
        assert!(p.on_access(11, false).is_empty());
        assert_eq!(p.stats().issued, 1);
    }

    #[test]
    fn stream_locks_onto_unit_stride() {
        let mut p = Prefetcher::new(PrefetcherKind::Stream);
        assert!(p.on_access(100, true).is_empty()); // head
        assert!(p.on_access(101, true).is_empty()); // stride learned
        let pf = p.on_access(102, true); // confidence reached
        assert_eq!(pf, vec![103, 104], "confident stream runs ahead");
        // Hits keep the stream current.
        let pf = p.on_access(103, false);
        assert_eq!(pf, vec![104, 105]);
    }

    #[test]
    fn stream_locks_onto_large_stride() {
        // Row-stride access pattern (every 20 lines, a 1280-byte stride).
        let mut p = Prefetcher::new(PrefetcherKind::Stream);
        let mut got = Vec::new();
        for i in 0..6u64 {
            got = p.on_access(1000 + i * 20, true);
        }
        assert_eq!(got, vec![1120, 1140]);
    }

    #[test]
    fn random_misses_do_not_trigger() {
        let mut p = Prefetcher::new(PrefetcherKind::Stream);
        let mut issued = 0;
        let mut x: u64 = 0x9E37_79B9;
        for _ in 0..200 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            issued += p.on_access((x >> 20) & 0xFFFF, true).len();
        }
        assert!(
            issued < 40,
            "random stream should rarely trigger: {issued} prefetches"
        );
    }

    #[test]
    fn tracks_multiple_streams() {
        let mut p = Prefetcher::new(PrefetcherKind::Stream);
        // Interleave two unit-stride streams far apart.
        let mut fetched = 0;
        for i in 0..8u64 {
            fetched += p.on_access(1000 + i, true).len();
            fetched += p.on_access(900_000 + i, true).len();
        }
        assert!(fetched >= 8, "both streams should trigger: {fetched}");
    }
}
