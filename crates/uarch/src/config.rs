//! Microarchitecture configurations — Table IV of the paper.
//!
//! The baseline mirrors Sniper's `gainestown` core (the paper's default) and
//! the four variants each attack one Top-down bottleneck class:
//!
//! | Config     | Change vs baseline                                   | Targets |
//! |------------|------------------------------------------------------|---------|
//! | `fe_op`    | 64 KiB L1i, 256-entry iTLB                           | front-end stalls |
//! | `be_op1`   | 64 KiB L1d, 512 KiB L2, 4 MiB L3 + 16 MiB L4         | back-end (memory) |
//! | `be_op2`   | 256-entry ROB, 72-entry RS, issue-at-dispatch        | back-end (core)   |
//! | `bs_op`    | TAGE instead of the Pentium-M hybrid                 | bad speculation   |

use serde::{Deserialize, Serialize};

use crate::branch::PredictorKind;
use crate::cache::CacheParams;
use crate::prefetch::PrefetcherKind;
use crate::ConfigError;

/// A complete core + memory-hierarchy configuration (one column of Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UarchConfig {
    /// Configuration name as used in the paper ("baseline", "fe_op", ...).
    pub name: String,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// Unified L2.
    pub l2: CacheParams,
    /// Unified L3 (last level unless `l4` is present).
    pub l3: CacheParams,
    /// Optional L4 (only `be_op1` has one).
    pub l4: Option<CacheParams>,
    /// Instruction TLB entries.
    pub itlb_entries: u32,
    /// Reorder buffer entries.
    pub rob_size: u32,
    /// Reservation station entries.
    pub rs_size: u32,
    /// Store buffer entries.
    pub sb_size: u32,
    /// Pipeline dispatch width (uops per cycle).
    pub dispatch_width: u32,
    /// Whether uops issue in the same cycle they dispatch (Table IV's
    /// "issue at dispatch"); removes the dispatch→issue bubble.
    pub issue_at_dispatch: bool,
    /// Branch direction predictor.
    pub predictor: PredictorKind,
    /// L1d hardware prefetcher (extension; Table IV implies none).
    #[serde(default)]
    pub l1d_prefetcher: PrefetcherKind,
    /// Core frequency in GHz (the paper's Xeon E3 runs at 3.5 GHz).
    pub freq_ghz: f64,
    /// DRAM access latency in cycles.
    pub mem_latency: u32,
    /// Branch misprediction pipeline-refill penalty in cycles.
    pub mispredict_penalty: u32,
    /// iTLB miss (page walk) penalty in cycles.
    pub itlb_miss_penalty: u32,
}

impl UarchConfig {
    /// The default configuration provided by Sniper, Gainestown.
    pub fn baseline() -> Self {
        UarchConfig {
            name: "baseline".to_owned(),
            l1d: CacheParams::new(32, 8, 4),
            l1i: CacheParams::new(32, 4, 1),
            l2: CacheParams::new(256, 8, 12),
            l3: CacheParams::new(8192, 16, 36),
            l4: None,
            itlb_entries: 128,
            rob_size: 128,
            rs_size: 36,
            sb_size: 36,
            dispatch_width: 4,
            issue_at_dispatch: false,
            predictor: PredictorKind::PentiumM,
            l1d_prefetcher: PrefetcherKind::None,
            freq_ghz: 3.5,
            mem_latency: 200,
            mispredict_penalty: 15,
            itlb_miss_penalty: 30,
        }
    }

    /// `fe_op`: larger L1i and iTLB to reduce front-end stalls.
    pub fn fe_op() -> Self {
        UarchConfig {
            name: "fe_op".to_owned(),
            l1i: CacheParams::new(64, 4, 1),
            itlb_entries: 256,
            ..Self::baseline()
        }
    }

    /// `be_op1`: larger data caches (plus a 16 MiB L4) to reduce memory-bound
    /// back-end stalls.
    pub fn be_op1() -> Self {
        UarchConfig {
            name: "be_op1".to_owned(),
            l1d: CacheParams::new(64, 8, 4),
            l2: CacheParams::new(512, 8, 12),
            l3: CacheParams::new(4096, 16, 36),
            l4: Some(CacheParams::new(16384, 16, 90)),
            ..Self::baseline()
        }
    }

    /// `be_op2`: larger window (ROB/RS) and issue-at-dispatch to reduce
    /// core-bound back-end stalls.
    pub fn be_op2() -> Self {
        UarchConfig {
            name: "be_op2".to_owned(),
            rob_size: 256,
            rs_size: 72,
            issue_at_dispatch: true,
            ..Self::baseline()
        }
    }

    /// `bs_op`: TAGE branch predictor to reduce bad-speculation stalls.
    pub fn bs_op() -> Self {
        UarchConfig {
            name: "bs_op".to_owned(),
            predictor: PredictorKind::Tage,
            ..Self::baseline()
        }
    }

    /// All five Table IV configurations, baseline first.
    pub fn table_iv() -> Vec<UarchConfig> {
        vec![
            Self::baseline(),
            Self::fe_op(),
            Self::be_op1(),
            Self::be_op2(),
            Self::bs_op(),
        ]
    }

    /// The four modified (non-baseline) configurations.
    pub fn modified_configs() -> Vec<UarchConfig> {
        Self::table_iv().into_iter().skip(1).collect()
    }

    /// Validates every sub-component's geometry.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any cache, TLB, or pipeline
    /// parameter.
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.l1d.validate()?;
        self.l1i.validate()?;
        self.l2.validate()?;
        self.l3.validate()?;
        if let Some(l4) = self.l4 {
            l4.validate()?;
        }
        for (what, v) in [
            ("rob_size", self.rob_size),
            ("rs_size", self.rs_size),
            ("sb_size", self.sb_size),
            ("dispatch_width", self.dispatch_width),
            ("itlb_entries", self.itlb_entries),
        ] {
            if v == 0 {
                return Err(ConfigError::Zero { what });
            }
        }
        Ok(())
    }

    /// `try_`-style finisher for hand-built configs: validates and returns
    /// the config by value, so struct-update construction can end in one
    /// fallible call instead of a separate `validate()` the caller may
    /// forget:
    ///
    /// ```
    /// # use vtx_uarch::config::UarchConfig;
    /// let cfg = UarchConfig {
    ///     rob_size: 192,
    ///     ..UarchConfig::baseline()
    /// }
    /// .validated()
    /// .expect("geometry is sound");
    /// assert_eq!(cfg.rob_size, 192);
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`UarchConfig::validate`].
    pub fn validated(self) -> Result<Self, ConfigError> {
        self.validate()?;
        Ok(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_iv_matches_paper() {
        let b = UarchConfig::baseline();
        assert_eq!(b.l1d.size_bytes, 32 * 1024);
        assert_eq!(b.l1i.size_bytes, 32 * 1024);
        assert_eq!(b.l2.size_bytes, 256 * 1024);
        assert_eq!(b.l3.size_bytes, 8192 * 1024);
        assert!(b.l4.is_none());
        assert_eq!(b.itlb_entries, 128);
        assert_eq!(b.rob_size, 128);
        assert_eq!(b.rs_size, 36);
        assert!(!b.issue_at_dispatch);
        assert_eq!(b.predictor, PredictorKind::PentiumM);

        let fe = UarchConfig::fe_op();
        assert_eq!(fe.l1i.size_bytes, 64 * 1024);
        assert_eq!(fe.itlb_entries, 256);
        assert_eq!(fe.l1d, b.l1d);

        let be1 = UarchConfig::be_op1();
        assert_eq!(be1.l1d.size_bytes, 64 * 1024);
        assert_eq!(be1.l2.size_bytes, 512 * 1024);
        assert_eq!(be1.l3.size_bytes, 4096 * 1024);
        assert_eq!(be1.l4.unwrap().size_bytes, 16384 * 1024);

        let be2 = UarchConfig::be_op2();
        assert_eq!(be2.rob_size, 256);
        assert_eq!(be2.rs_size, 72);
        assert!(be2.issue_at_dispatch);

        let bs = UarchConfig::bs_op();
        assert_eq!(bs.predictor, PredictorKind::Tage);
    }

    #[test]
    fn all_configs_validate() {
        for cfg in UarchConfig::table_iv() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
        assert_eq!(UarchConfig::modified_configs().len(), 4);
    }

    #[test]
    fn validated_accepts_sound_and_rejects_zero_geometry() {
        assert!(UarchConfig::baseline().validated().is_ok());
        for field in ["rob_size", "rs_size", "sb_size", "dispatch_width"] {
            let mut cfg = UarchConfig::baseline();
            match field {
                "rob_size" => cfg.rob_size = 0,
                "rs_size" => cfg.rs_size = 0,
                "sb_size" => cfg.sb_size = 0,
                _ => cfg.dispatch_width = 0,
            }
            assert_eq!(
                cfg.validated(),
                Err(ConfigError::Zero { what: field }),
                "{field}"
            );
        }
    }

    #[test]
    fn serde_roundtrip_all_configs() {
        for cfg in UarchConfig::table_iv() {
            let json = serde_json::to_string(&cfg).unwrap();
            let back: UarchConfig = serde_json::from_str(&json).unwrap();
            assert_eq!(cfg, back, "{}", cfg.name);
        }
    }

    #[test]
    fn old_configs_without_prefetcher_field_deserialize() {
        // The l1d_prefetcher field is a post-Table-IV extension with
        // #[serde(default)]: configs serialized before it must still load.
        let mut json: serde_json::Value = serde_json::to_value(UarchConfig::baseline()).unwrap();
        json.as_object_mut().unwrap().remove("l1d_prefetcher");
        let back: UarchConfig = serde_json::from_value(json).unwrap();
        assert_eq!(back.l1d_prefetcher, crate::prefetch::PrefetcherKind::None);
    }

    #[test]
    fn freq_matches_paper_platform() {
        assert!((UarchConfig::baseline().freq_ghz - 3.5).abs() < 1e-12);
    }
}
