//! Instruction TLB model.
//!
//! Table IV varies the iTLB between 128 entries (baseline) and 256 entries
//! (`fe_op`), so the front-end model needs a page-level structure. The TLB is
//! modelled as 4-way set-associative with true LRU over 4 KiB pages.

use serde::{Deserialize, Serialize};

use crate::ConfigError;

/// Page size assumed by the TLB model (4 KiB, as on the paper's Xeon E3).
pub const PAGE_BYTES: u64 = 4096;

/// Hit/miss counters for a TLB.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TlbStats {
    /// Total translations requested.
    pub accesses: u64,
    /// Translations that missed (page walk required).
    pub misses: u64,
}

/// A set-associative translation lookaside buffer over 4 KiB pages.
///
/// # Example
///
/// ```
/// use vtx_uarch::tlb::Tlb;
///
/// let mut tlb = Tlb::new(128).unwrap();
/// assert!(!tlb.access_page(3)); // cold
/// assert!(tlb.access_page(3));
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: u32,
    ways: usize,
    set_mask: u64,
    set_shift: u32,
    tags: Vec<u64>,
    lru: Vec<u32>,
    stats: TlbStats,
}

const INVALID: u64 = u64::MAX;

impl Tlb {
    /// Builds a TLB with the given total entry count (4-way set-associative).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `entries` is zero, not a multiple of 4, or
    /// the implied set count is not a power of two.
    pub fn new(entries: u32) -> Result<Self, ConfigError> {
        if entries == 0 {
            return Err(ConfigError::Zero {
                what: "tlb entries",
            });
        }
        let ways = 4usize;
        if !(entries as usize).is_multiple_of(ways) {
            return Err(ConfigError::BadCacheGeometry {
                size: u64::from(entries),
                assoc: ways as u32,
                line: 1,
            });
        }
        let sets = entries as u64 / ways as u64;
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "tlb set count",
                value: sets,
            });
        }
        Ok(Tlb {
            entries,
            ways,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            tags: vec![INVALID; sets as usize * ways],
            lru: (0..sets as usize * ways)
                .map(|i| (i % ways) as u32)
                .collect(),
            stats: TlbStats::default(),
        })
    }

    /// Total entry count.
    pub fn entries(&self) -> u32 {
        self.entries
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TlbStats {
        self.stats
    }

    /// Translates a page number, filling on miss. Returns `true` on hit.
    pub fn access_page(&mut self, page: u64) -> bool {
        self.stats.accesses += 1;
        let set = (page & self.set_mask) as usize;
        let tag = page >> self.set_shift;
        let base = set * self.ways;
        for w in 0..self.ways {
            if self.tags[base + w] == tag {
                self.touch(base, w);
                return true;
            }
        }
        self.stats.misses += 1;
        let mut victim = 0;
        let mut worst = 0;
        for w in 0..self.ways {
            if self.lru[base + w] >= worst {
                worst = self.lru[base + w];
                victim = w;
            }
        }
        self.tags[base + victim] = tag;
        self.touch(base, victim);
        false
    }

    /// Translates a code byte address (convenience over [`Tlb::access_page`]).
    pub fn access_addr(&mut self, addr: u64) -> bool {
        self.access_page(addr / PAGE_BYTES)
    }

    #[inline]
    fn touch(&mut self, base: usize, used: usize) {
        let cur = self.lru[base + used];
        for w in 0..self.ways {
            if self.lru[base + w] < cur {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + used] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_behaviour() {
        let mut t = Tlb::new(8).unwrap(); // 2 sets x 4 ways
        for p in 0..8 {
            t.access_page(p);
        }
        for p in 0..8 {
            assert!(t.access_page(p), "page {p} should be resident");
        }
        assert_eq!(t.stats().misses, 8);
    }

    #[test]
    fn overflow_evicts() {
        let mut t = Tlb::new(8).unwrap();
        // 12 pages all mapping across 2 sets: 6 per set > 4 ways
        for p in 0..12 {
            t.access_page(p);
        }
        let before = t.stats().misses;
        assert_eq!(before, 12);
        // Re-touch the oldest pages: some must miss again.
        let mut second_misses = 0;
        for p in 0..12 {
            if !t.access_page(p) {
                second_misses += 1;
            }
        }
        assert!(second_misses > 0);
    }

    #[test]
    fn validation() {
        assert!(Tlb::new(0).is_err());
        assert!(Tlb::new(6).is_err());
        assert!(Tlb::new(128).is_ok());
        assert!(Tlb::new(256).is_ok());
    }

    #[test]
    fn addr_maps_to_page() {
        let mut t = Tlb::new(128).unwrap();
        t.access_addr(5000); // page 1
        assert!(t.access_page(1));
    }

    #[test]
    fn bigger_tlb_misses_less() {
        let pages: Vec<u64> = (0..200).collect();
        let mut small = Tlb::new(128).unwrap();
        let mut big = Tlb::new(256).unwrap();
        for _ in 0..4 {
            for &p in &pages {
                small.access_page(p);
                big.access_page(p);
            }
        }
        assert!(big.stats().misses < small.stats().misses);
    }
}
