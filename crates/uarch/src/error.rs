use std::error::Error;
use std::fmt;

/// Errors raised when validating microarchitecture configuration parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A value that must be a power of two is not.
    NotPowerOfTwo {
        /// Parameter name.
        what: &'static str,
        /// Offending value.
        value: u64,
    },
    /// A capacity parameter is zero.
    Zero {
        /// Parameter name.
        what: &'static str,
    },
    /// Cache geometry is inconsistent (size not divisible by assoc * line).
    BadCacheGeometry {
        /// Cache size in bytes.
        size: u64,
        /// Associativity (ways).
        assoc: u32,
        /// Line size in bytes.
        line: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NotPowerOfTwo { what, value } => {
                write!(f, "{what} must be a power of two, got {value}")
            }
            ConfigError::Zero { what } => write!(f, "{what} must be nonzero"),
            ConfigError::BadCacheGeometry { size, assoc, line } => write!(
                f,
                "cache geometry invalid: size {size} not divisible by {assoc} ways x {line} B lines"
            ),
        }
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ConfigError::NotPowerOfTwo {
            what: "rob_size",
            value: 3,
        };
        assert!(e.to_string().contains("rob_size"));
        let e = ConfigError::BadCacheGeometry {
            size: 1000,
            assoc: 3,
            line: 64,
        };
        assert!(e.to_string().contains("1000"));
    }
}
