use super::{BranchPredictor, Counter2};

/// Global-history predictor: the pattern table is indexed by the branch PC
/// XOR-ed with a global history register, letting it capture correlated
/// branches that defeat [`super::Bimodal`].
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<Counter2>,
    mask: u64,
    ghr: u64,
    history_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^log2_entries` counters and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is not in `1..=24` or `history_bits > 63`.
    pub fn new(log2_entries: u32, history_bits: u32) -> Self {
        assert!(log2_entries > 0 && log2_entries <= 24);
        assert!(history_bits <= 63);
        let n = 1usize << log2_entries;
        Gshare {
            table: vec![Counter2::weakly_taken(); n],
            mask: (n - 1) as u64,
            ghr: 0,
            history_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        ((pc ^ self.ghr) & self.mask) as usize
    }

    #[inline]
    fn push_history(&mut self, taken: bool) {
        self.ghr = ((self.ghr << 1) | u64::from(taken)) & ((1 << self.history_bits) - 1);
    }
}

impl BranchPredictor for Gshare {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let pred = self.table[idx].predict();
        self.table[idx].update(taken);
        self.push_history(taken);
        pred == taken
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern() {
        let mut p = Gshare::new(12, 8);
        let mut taken = false;
        let mut correct_late = 0;
        for i in 0..2000 {
            taken = !taken;
            let ok = p.observe(0x40, taken);
            if i >= 1000 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late > 950, "got {correct_late}");
    }

    #[test]
    fn learns_short_repeating_pattern() {
        // Pattern T T N repeating — needs history to disambiguate.
        let pattern = [true, true, false];
        let mut p = Gshare::new(12, 10);
        let mut correct_late = 0;
        for i in 0..3000 {
            let ok = p.observe(0x88, pattern[i % 3]);
            if i >= 1500 && ok {
                correct_late += 1;
            }
        }
        assert!(correct_late > 1400, "got {correct_late}");
    }
}
