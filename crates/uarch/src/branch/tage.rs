use super::{BranchPredictor, Counter2};

/// A TAGE (TAgged GEometric history length) predictor — the upgrade the
/// paper's `bs_op` configuration uses to attack bad-speculation stalls.
///
/// Structure: a bimodal base predictor plus four tagged components indexed by
/// geometrically increasing global-history lengths (5, 15, 44, 120). The
/// longest-history component whose tag matches provides the prediction;
/// entries carry a 3-bit signed counter and a 2-bit usefulness counter
/// governing allocation, with periodic usefulness aging.
#[derive(Debug, Clone)]
pub struct Tage {
    base: Vec<Counter2>,
    tables: Vec<TaggedTable>,
    ghr: u128,
    lfsr: u32,
    branch_count: u64,
}

#[derive(Debug, Clone)]
struct TaggedTable {
    history_len: u32,
    tag_bits: u32,
    entries: Vec<TageEntry>,
}

#[derive(Debug, Clone, Copy, Default)]
struct TageEntry {
    tag: u16,
    /// 3-bit signed counter, 0..=7; >= 4 predicts taken.
    ctr: u8,
    /// 2-bit usefulness counter.
    useful: u8,
}

const BASE_BITS: u32 = 13;
const TABLE_BITS: u32 = 10;
const HISTORY_LENGTHS: [u32; 4] = [5, 15, 44, 120];
const TAG_BITS: [u32; 4] = [8, 8, 9, 9];
const USEFUL_RESET_PERIOD: u64 = 1 << 18;

impl Tage {
    /// Creates a TAGE predictor with its canonical sizing (~8 KiB of state).
    pub fn new() -> Self {
        Tage {
            base: vec![Counter2::weakly_taken(); 1 << BASE_BITS],
            tables: HISTORY_LENGTHS
                .iter()
                .zip(TAG_BITS.iter())
                .map(|(&h, &t)| TaggedTable {
                    history_len: h,
                    tag_bits: t,
                    entries: vec![TageEntry::default(); 1 << TABLE_BITS],
                })
                .collect(),
            ghr: 0,
            lfsr: 0xACE1,
            branch_count: 0,
        }
    }

    /// Folds the low `len` bits of history down to `bits` bits by XOR.
    #[inline]
    fn fold(history: u128, len: u32, bits: u32) -> u64 {
        let mask = if len >= 128 {
            u128::MAX
        } else {
            (1u128 << len) - 1
        };
        let mut h = history & mask;
        let mut out = 0u64;
        while h != 0 {
            out ^= (h as u64) & ((1 << bits) - 1);
            h >>= bits;
        }
        out
    }

    #[inline]
    fn index(&self, t: usize, pc: u64) -> usize {
        let tab = &self.tables[t];
        let folded = Self::fold(self.ghr, tab.history_len, TABLE_BITS);
        ((pc ^ (pc >> TABLE_BITS) ^ folded) as usize) & ((1 << TABLE_BITS) - 1)
    }

    #[inline]
    fn tag(&self, t: usize, pc: u64) -> u16 {
        let tab = &self.tables[t];
        let folded = Self::fold(self.ghr, tab.history_len, tab.tag_bits);
        let folded2 = Self::fold(self.ghr, tab.history_len, tab.tag_bits - 1) << 1;
        ((pc ^ folded ^ folded2) & ((1 << tab.tag_bits) - 1)) as u16
    }

    #[inline]
    fn base_index(&self, pc: u64) -> usize {
        (pc as usize) & ((1 << BASE_BITS) - 1)
    }

    #[inline]
    fn next_rand(&mut self) -> u32 {
        // 16-bit Galois LFSR: deterministic tie-breaking for allocation.
        let lsb = self.lfsr & 1;
        self.lfsr >>= 1;
        if lsb == 1 {
            self.lfsr ^= 0xB400;
        }
        self.lfsr
    }
}

impl Default for Tage {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for Tage {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        self.branch_count += 1;

        // Find provider (longest history with tag match) and alternate.
        let mut provider: Option<usize> = None;
        let mut alt: Option<usize> = None;
        let mut idx = [0usize; 4];
        let mut tags = [0u16; 4];
        for t in (0..self.tables.len()).rev() {
            idx[t] = self.index(t, pc);
            tags[t] = self.tag(t, pc);
            if self.tables[t].entries[idx[t]].tag == tags[t] {
                if provider.is_none() {
                    provider = Some(t);
                } else if alt.is_none() {
                    alt = Some(t);
                    break;
                }
            }
        }
        // Fill any indices we skipped (needed for allocation below).
        for t in 0..self.tables.len() {
            if idx[t] == 0 && tags[t] == 0 {
                idx[t] = self.index(t, pc);
                tags[t] = self.tag(t, pc);
            }
        }

        let base_pred = self.base[self.base_index(pc)].predict();
        let alt_pred = match alt {
            Some(t) => self.tables[t].entries[idx[t]].ctr >= 4,
            None => base_pred,
        };
        let pred = match provider {
            Some(t) => self.tables[t].entries[idx[t]].ctr >= 4,
            None => base_pred,
        };

        // --- Update phase ---
        match provider {
            Some(t) => {
                let e = &mut self.tables[t].entries[idx[t]];
                if taken {
                    e.ctr = (e.ctr + 1).min(7);
                } else {
                    e.ctr = e.ctr.saturating_sub(1);
                }
                if pred != alt_pred {
                    if pred == taken {
                        e.useful = (e.useful + 1).min(3);
                    } else {
                        e.useful = e.useful.saturating_sub(1);
                    }
                }
            }
            None => {
                let bi = self.base_index(pc);
                self.base[bi].update(taken);
            }
        }

        // Allocate on misprediction in a longer-history table.
        if pred != taken {
            let start = provider.map_or(0, |t| t + 1);
            if start < self.tables.len() {
                let candidates: Vec<usize> = (start..self.tables.len())
                    .filter(|&t| self.tables[t].entries[idx[t]].useful == 0)
                    .collect();
                if candidates.is_empty() {
                    for (t, tab) in self.tables.iter_mut().enumerate().skip(start) {
                        let e = &mut tab.entries[idx[t]];
                        e.useful = e.useful.saturating_sub(1);
                    }
                } else {
                    let pick = candidates[self.next_rand() as usize % candidates.len()];
                    let e = &mut self.tables[pick].entries[idx[pick]];
                    e.tag = tags[pick];
                    e.ctr = if taken { 4 } else { 3 };
                    e.useful = 0;
                }
            }
        }

        // Periodic usefulness aging.
        if self.branch_count.is_multiple_of(USEFUL_RESET_PERIOD) {
            for tab in &mut self.tables {
                for e in &mut tab.entries {
                    e.useful >>= 1;
                }
            }
        }

        self.ghr = (self.ghr << 1) | u128::from(taken);
        pred == taken
    }

    fn name(&self) -> &'static str {
        "tage"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::branch::PentiumM;

    fn run(p: &mut dyn BranchPredictor, stream: &[(u64, bool)], skip: usize) -> f64 {
        let mut total = 0;
        let mut correct = 0;
        for (i, &(pc, t)) in stream.iter().enumerate() {
            let ok = p.observe(pc, t);
            if i >= skip {
                total += 1;
                if ok {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn long_period_pattern_learned() {
        // Period-13 pattern — beyond bimodal/local reach, within TAGE histories.
        let pat: Vec<bool> = (0..13).map(|i| i % 13 < 9).collect();
        let stream: Vec<(u64, bool)> = (0..20_000).map(|i| (0x1234, pat[i % 13])).collect();
        let mut tage = Tage::new();
        let acc = run(&mut tage, &stream, 10_000);
        assert!(acc > 0.97, "got {acc}");
    }

    #[test]
    fn beats_pentium_m_on_correlated_stream() {
        // Two correlated branches: B2 outcome equals B1's previous outcome
        // with a long scrambling filler between them.
        let mut stream = Vec::new();
        let mut last = false;
        for i in 0..8000usize {
            let b1 = (i / 3) % 5 < 2;
            stream.push((0x100, b1));
            for k in 0..6 {
                stream.push((0x200 + k as u64, (i + k) % 2 == 0));
            }
            stream.push((0x300, last));
            last = b1;
        }
        let mut tage = Tage::new();
        let mut pm = PentiumM::new();
        let tage_acc = run(&mut tage, &stream, 20_000);
        let pm_acc = run(&mut pm, &stream, 20_000);
        assert!(
            tage_acc >= pm_acc,
            "tage {tage_acc} should be >= pentium_m {pm_acc}"
        );
    }

    #[test]
    fn fold_is_stable_and_bounded() {
        let h = 0x1234_5678_9abc_def0_u128;
        let f = Tage::fold(h, 44, 10);
        assert_eq!(f, Tage::fold(h, 44, 10));
        assert!(f < 1024);
        // Only the low `len` bits participate.
        assert_eq!(Tage::fold(h, 5, 10), (h as u64) & 0x1f);
    }

    #[test]
    fn deterministic() {
        let stream: Vec<(u64, bool)> = (0..5000).map(|i| (i % 7, i % 3 == 0)).collect();
        let mut a = Tage::new();
        let mut b = Tage::new();
        let ra: Vec<bool> = stream.iter().map(|&(pc, t)| a.observe(pc, t)).collect();
        let rb: Vec<bool> = stream.iter().map(|&(pc, t)| b.observe(pc, t)).collect();
        assert_eq!(ra, rb);
    }
}
