//! Branch direction predictors.
//!
//! Sniper's default core (`gainestown`) uses a Pentium-M-style hybrid
//! predictor; the paper's `bs_op` configuration (Table IV) replaces it with
//! TAGE. Both are implemented here, plus bimodal and gshare baselines used in
//! ablation benchmarks.
//!
//! Predictors expose a single [`BranchPredictor::observe`] entry point that
//! performs predict-then-update and reports whether the prediction was
//! correct — exactly what a trace-driven simulation needs.

mod bimodal;
mod gshare;
mod pentium_m;
mod tage;

pub use bimodal::Bimodal;
pub use gshare::Gshare;
pub use pentium_m::PentiumM;
pub use tage::Tage;

use serde::{Deserialize, Serialize};

/// Accumulated branch prediction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchStats {
    /// Conditional branches observed.
    pub branches: u64,
    /// Branches whose direction was mispredicted.
    pub mispredicts: u64,
}

impl BranchStats {
    /// Misprediction ratio in [0, 1]; zero when no branches were observed.
    pub fn mispredict_ratio(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// A trace-driven conditional branch direction predictor.
///
/// Implementations are deterministic: the same (pc, outcome) stream always
/// yields the same accuracy.
pub trait BranchPredictor: std::fmt::Debug + Send {
    /// Predicts the branch at `pc`, updates internal state with the real
    /// `taken` outcome, and returns `true` if the prediction was correct.
    fn observe(&mut self, pc: u64, taken: bool) -> bool;

    /// Short human-readable name.
    fn name(&self) -> &'static str;
}

/// Selectable predictor family, as named in Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PredictorKind {
    /// Per-PC 2-bit counters.
    Bimodal,
    /// Global-history XOR PC indexed 2-bit counters.
    Gshare,
    /// Pentium-M-style hybrid (local + global with a chooser) — the baseline.
    PentiumM,
    /// Tagged geometric-history-length predictor — `bs_op`.
    Tage,
}

impl PredictorKind {
    /// Instantiates the predictor with its default sizing.
    pub fn build(self) -> Box<dyn BranchPredictor> {
        match self {
            PredictorKind::Bimodal => Box::new(Bimodal::new(14)),
            PredictorKind::Gshare => Box::new(Gshare::new(14, 12)),
            PredictorKind::PentiumM => Box::new(PentiumM::new()),
            PredictorKind::Tage => Box::new(Tage::new()),
        }
    }

    /// Table IV spelling of the predictor name.
    pub fn table_name(self) -> &'static str {
        match self {
            PredictorKind::Bimodal => "bimodal",
            PredictorKind::Gshare => "gshare",
            PredictorKind::PentiumM => "Pentium m",
            PredictorKind::Tage => "Tage",
        }
    }
}

/// A saturating 2-bit counter, the building block of most predictors here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Counter2(u8);

impl Counter2 {
    pub(crate) fn weakly_taken() -> Self {
        Counter2(2)
    }

    #[inline]
    pub(crate) fn predict(self) -> bool {
        self.0 >= 2
    }

    #[inline]
    pub(crate) fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_saturates() {
        let mut c = Counter2::default();
        assert!(!c.predict());
        for _ in 0..10 {
            c.update(true);
        }
        assert!(c.predict());
        c.update(false);
        assert!(c.predict(), "3 -> 2 still predicts taken");
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn stats_ratio() {
        let s = BranchStats {
            branches: 1000,
            mispredicts: 25,
        };
        assert!((s.mispredict_ratio() - 0.025).abs() < 1e-12);
        assert_eq!(BranchStats::default().mispredict_ratio(), 0.0);
    }

    #[test]
    fn all_kinds_build() {
        for kind in [
            PredictorKind::Bimodal,
            PredictorKind::Gshare,
            PredictorKind::PentiumM,
            PredictorKind::Tage,
        ] {
            let mut p = kind.build();
            // Perfectly biased branch must converge to near-perfect accuracy.
            let mut correct = 0;
            for _ in 0..1000 {
                if p.observe(0x400, true) {
                    correct += 1;
                }
            }
            assert!(correct > 950, "{}: {correct}", p.name());
        }
    }

    #[test]
    fn table_names_match_paper() {
        assert_eq!(PredictorKind::PentiumM.table_name(), "Pentium m");
        assert_eq!(PredictorKind::Tage.table_name(), "Tage");
    }
}
