use super::{BranchPredictor, Counter2};

/// The simplest dynamic predictor: a table of 2-bit saturating counters
/// indexed by the low bits of the branch PC.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<Counter2>,
    mask: u64,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^log2_entries` counters.
    ///
    /// # Panics
    ///
    /// Panics if `log2_entries` is zero or greater than 24.
    pub fn new(log2_entries: u32) -> Self {
        assert!(log2_entries > 0 && log2_entries <= 24);
        let n = 1usize << log2_entries;
        Bimodal {
            table: vec![Counter2::weakly_taken(); n],
            mask: (n - 1) as u64,
        }
    }
}

impl BranchPredictor for Bimodal {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let idx = (pc & self.mask) as usize;
        let pred = self.table[idx].predict();
        self.table[idx].update(taken);
        pred == taken
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branch() {
        let mut p = Bimodal::new(10);
        let mut wrong = 0;
        for _ in 0..100 {
            if !p.observe(0x10, false) {
                wrong += 1;
            }
        }
        assert!(wrong <= 2);
    }

    #[test]
    fn cannot_learn_alternating_pattern() {
        let mut p = Bimodal::new(10);
        let mut correct = 0;
        let mut taken = false;
        for _ in 0..1000 {
            taken = !taken;
            if p.observe(0x20, taken) {
                correct += 1;
            }
        }
        // Alternating branches defeat a bimodal predictor (~50% or worse).
        assert!(correct < 600, "got {correct}");
    }

    #[test]
    fn distinct_pcs_do_not_interfere_without_aliasing() {
        let mut p = Bimodal::new(10);
        for _ in 0..50 {
            p.observe(1, true);
            p.observe(2, false);
        }
        assert!(p.observe(1, true));
        assert!(p.observe(2, false));
    }
}
