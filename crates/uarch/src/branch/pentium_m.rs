use super::{BranchPredictor, Counter2};

/// A Pentium-M-style hybrid predictor — Sniper's default for the
/// `gainestown` core used as the paper's baseline.
///
/// The real Pentium-M combines a bimodal table, a global predictor, and a
/// loop detector. This model captures the same structure with three
/// components:
///
/// * a per-PC *local* two-level predictor (local history register file
///   indexing a pattern table),
/// * a *global* gshare-style component,
/// * a per-PC 2-bit *chooser* that tracks which component has been more
///   accurate for each branch.
///
/// A small loop detector handles perfectly periodic branches (loop exits)
/// that neither table captures well.
#[derive(Debug, Clone)]
pub struct PentiumM {
    local_history: Vec<u16>,
    local_pattern: Vec<Counter2>,
    global_pattern: Vec<Counter2>,
    chooser: Vec<Counter2>,
    loop_count: Vec<u16>,
    loop_limit: Vec<u16>,
    loop_conf: Vec<u8>,
    ghr: u64,
}

const LOCAL_ENTRIES: usize = 1 << 10;
const LOCAL_HIST_BITS: u32 = 8;
const PATTERN_ENTRIES: usize = 1 << LOCAL_HIST_BITS;
const GLOBAL_ENTRIES: usize = 1 << 12;
const CHOOSER_ENTRIES: usize = 1 << 10;
const LOOP_ENTRIES: usize = 1 << 8;
const LOOP_CONF_MAX: u8 = 3;

impl PentiumM {
    /// Creates the predictor with its canonical sizing (~4 KiB of state).
    pub fn new() -> Self {
        PentiumM {
            local_history: vec![0; LOCAL_ENTRIES],
            local_pattern: vec![Counter2::weakly_taken(); LOCAL_ENTRIES * PATTERN_ENTRIES / 4],
            global_pattern: vec![Counter2::weakly_taken(); GLOBAL_ENTRIES],
            chooser: vec![Counter2::weakly_taken(); CHOOSER_ENTRIES],
            loop_count: vec![0; LOOP_ENTRIES],
            loop_limit: vec![0; LOOP_ENTRIES],
            loop_conf: vec![0; LOOP_ENTRIES],
            ghr: 0,
        }
    }

    #[inline]
    fn local_index(&self, pc: u64) -> usize {
        (pc as usize) & (LOCAL_ENTRIES - 1)
    }

    #[inline]
    fn pattern_index(&self, pc: u64, hist: u16) -> usize {
        let set = (pc as usize) & (LOCAL_ENTRIES / 4 - 1);
        (set * PATTERN_ENTRIES + (hist as usize & (PATTERN_ENTRIES - 1)))
            % (LOCAL_ENTRIES * PATTERN_ENTRIES / 4)
    }

    #[inline]
    fn global_index(&self, pc: u64) -> usize {
        ((pc ^ self.ghr) as usize) & (GLOBAL_ENTRIES - 1)
    }

    #[inline]
    fn loop_index(pc: u64) -> usize {
        (pc as usize) & (LOOP_ENTRIES - 1)
    }

    /// Loop detector: predicts not-taken once every `limit + 1` occurrences
    /// when a stable period has been observed.
    fn loop_predict(&self, pc: u64) -> Option<bool> {
        let i = Self::loop_index(pc);
        if self.loop_conf[i] >= LOOP_CONF_MAX && self.loop_limit[i] > 0 {
            Some(self.loop_count[i] < self.loop_limit[i])
        } else {
            None
        }
    }

    fn loop_update(&mut self, pc: u64, taken: bool) {
        let i = Self::loop_index(pc);
        if taken {
            self.loop_count[i] = self.loop_count[i].saturating_add(1);
        } else {
            let observed = self.loop_count[i];
            if self.loop_limit[i] == observed && observed >= 2 {
                self.loop_conf[i] = (self.loop_conf[i] + 1).min(LOOP_CONF_MAX);
            } else {
                self.loop_limit[i] = observed;
                self.loop_conf[i] = 0;
            }
            self.loop_count[i] = 0;
        }
    }
}

impl Default for PentiumM {
    fn default() -> Self {
        Self::new()
    }
}

impl BranchPredictor for PentiumM {
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let li = self.local_index(pc);
        let hist = self.local_history[li];
        let pi = self.pattern_index(pc, hist);
        let gi = self.global_index(pc);
        let ci = (pc as usize) & (CHOOSER_ENTRIES - 1);

        let local_pred = self.local_pattern[pi].predict();
        let global_pred = self.global_pattern[gi].predict();
        let table_pred = if self.chooser[ci].predict() {
            global_pred
        } else {
            local_pred
        };
        let pred = self.loop_predict(pc).unwrap_or(table_pred);

        // Updates.
        self.local_pattern[pi].update(taken);
        self.global_pattern[gi].update(taken);
        if local_pred != global_pred {
            // Train chooser toward whichever component was right.
            self.chooser[ci].update(global_pred == taken);
        }
        self.loop_update(pc, taken);
        self.local_history[li] = ((hist << 1) | u16::from(taken)) & ((1 << LOCAL_HIST_BITS) - 1);
        self.ghr = (self.ghr << 1) | u64::from(taken);

        pred == taken
    }

    fn name(&self) -> &'static str {
        "pentium_m"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn accuracy(p: &mut PentiumM, stream: impl Iterator<Item = (u64, bool)>, skip: usize) -> f64 {
        let mut total = 0;
        let mut correct = 0;
        for (i, (pc, taken)) in stream.enumerate() {
            let ok = p.observe(pc, taken);
            if i >= skip {
                total += 1;
                if ok {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn biased_branches_near_perfect() {
        let mut p = PentiumM::new();
        let acc = accuracy(&mut p, (0..2000).map(|_| (0x10u64, true)), 100);
        assert!(acc > 0.99);
    }

    #[test]
    fn loop_exit_branch_learned() {
        // A loop of 7 iterations: TTTTTTN repeating.
        let mut p = PentiumM::new();
        let stream = (0..7000).map(|i| (0x30u64, i % 7 != 6));
        let acc = accuracy(&mut p, stream, 3000);
        assert!(acc > 0.95, "got {acc}");
    }

    #[test]
    fn local_pattern_learned() {
        // Period-3 pattern on one PC.
        let pat = [true, false, false];
        let mut p = PentiumM::new();
        let stream = (0..6000).map(|i| (0x99u64, pat[i % 3]));
        let acc = accuracy(&mut p, stream, 3000);
        assert!(acc > 0.9, "got {acc}");
    }

    #[test]
    fn random_branches_are_hard() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let mut p = PentiumM::new();
        let outcomes: Vec<bool> = (0..4000).map(|_| rng.gen()).collect();
        let acc = accuracy(&mut p, outcomes.iter().map(|&t| (0x77u64, t)), 1000);
        assert!(acc < 0.65, "random stream should not be predictable: {acc}");
    }
}
