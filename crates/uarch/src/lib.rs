//! A Sniper-style mechanistic CPU microarchitecture model.
//!
//! The paper this workspace reproduces profiles video transcoding with Intel
//! VTune's Top-down methodology and validates its scheduler on the Sniper
//! simulator's mechanistic *interval* core model. This crate rebuilds that
//! apparatus from scratch:
//!
//! * [`cache`] — set-associative LRU caches with per-level statistics;
//! * [`tlb`] — an instruction TLB model;
//! * [`hierarchy`] — a configurable L1i/L1d/L2/L3/(L4) hierarchy;
//! * [`branch`] — pluggable predictors: bimodal, gshare, a Pentium-M-style
//!   hybrid (Sniper's default) and TAGE (the paper's `bs_op` upgrade);
//! * [`interval`] — the interval core model that converts accumulated miss
//!   events into cycles, with ROB-aware memory-level-parallelism overlap;
//! * [`topdown`] — VTune-style Top-down slot accounting (retiring /
//!   front-end / bad speculation / back-end{memory, core});
//! * [`config`] — the paper's Table IV microarchitecture configurations.
//!
//! # Example
//!
//! ```
//! use vtx_uarch::config::UarchConfig;
//! use vtx_uarch::interval::{CoreModel, ExecutionCounts};
//!
//! let cfg = UarchConfig::baseline();
//! let mut counts = ExecutionCounts::default();
//! counts.instructions = 1_000_000;
//! counts.uops = 1_100_000;
//! let model = CoreModel::new(&cfg);
//! let breakdown = model.run(&counts);
//! assert!(breakdown.total_cycles > 0);
//! let td = breakdown.topdown();
//! assert!((td.sum() - 1.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod branch;
pub mod cache;
pub mod config;
pub mod hierarchy;
pub mod interval;
pub mod prefetch;
pub mod tlb;
pub mod topdown;

mod error;

pub use error::ConfigError;
