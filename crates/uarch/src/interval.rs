//! The mechanistic interval core model.
//!
//! Sniper (which the paper uses for its scheduler study) models an
//! out-of-order core analytically: execution proceeds at the dispatch width
//! except during *intervals* opened by miss events — branch mispredictions,
//! instruction-cache/iTLB misses, and long-latency loads — whose penalties
//! are added on top of the base dispatch time. Long-latency load penalties
//! overlap each other up to the amount of memory-level parallelism the
//! reorder buffer can expose, which is how a larger ROB (`be_op2`) speeds up
//! memory-bound code.
//!
//! [`CoreModel::run`] converts accumulated [`ExecutionCounts`] into a
//! [`CycleBreakdown`] whose penalty ledger feeds both the Top-down summary
//! and the Figure-5 resource-stall counters.

use serde::{Deserialize, Serialize};

use crate::config::UarchConfig;
use crate::error::ConfigError;
use crate::hierarchy::LevelCounters;
use crate::topdown::TopDown;

/// Aggregated events from one profiled execution region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ExecutionCounts {
    /// Retired instructions.
    pub instructions: u64,
    /// Retired micro-operations (>= instructions on x86-style cores).
    pub uops: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Conditional branches mispredicted (from the predictor simulation).
    pub branch_mispredicts: u64,
    /// Instruction-line fetches by the level that satisfied them.
    pub inst_fetch: LevelCounters,
    /// iTLB misses.
    pub itlb_misses: u64,
    /// Data-load line accesses by satisfying level.
    pub loads: LevelCounters,
    /// Data-store line accesses by satisfying level.
    pub stores: LevelCounters,
    /// Long-latency arithmetic uops (multiplies, divides) that stress the
    /// execution ports — the core-bound driver.
    pub heavy_ops: u64,
    /// Front-end redirects: transfers between code regions far enough apart
    /// to restart the decode pipeline (kernel-to-kernel calls).
    pub redirects: u64,
}

impl ExecutionCounts {
    /// Merges another region's counts into this one.
    pub fn merge(&mut self, other: &ExecutionCounts) {
        self.instructions += other.instructions;
        self.uops += other.uops;
        self.branches += other.branches;
        self.branch_mispredicts += other.branch_mispredicts;
        merge_levels(&mut self.inst_fetch, &other.inst_fetch);
        self.itlb_misses += other.itlb_misses;
        merge_levels(&mut self.loads, &other.loads);
        merge_levels(&mut self.stores, &other.stores);
        self.heavy_ops += other.heavy_ops;
        self.redirects += other.redirects;
    }

    /// Misses-per-kilo-instruction helper.
    pub fn mpki(&self, misses: u64) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            misses as f64 * 1000.0 / self.instructions as f64
        }
    }
}

fn merge_levels(a: &mut LevelCounters, b: &LevelCounters) {
    a.l1 += b.l1;
    a.l2 += b.l2;
    a.l3 += b.l3;
    a.l4 += b.l4;
    a.mem += b.mem;
}

/// Tunable penalty/overlap constants of the interval model.
///
/// The defaults are calibrated against the shapes the paper reports; they
/// are exposed so ablation studies can vary them.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Fraction of an instruction-fetch miss penalty actually exposed
    /// (fetch-ahead hides the rest).
    pub fetch_exposure: f64,
    /// Decode-restart penalty per front-end redirect, cycles.
    pub redirect_penalty: f64,
    /// Exposed penalty of an L2-hit load (mostly hidden by OoO), cycles.
    pub l2_hit_exposed: f64,
    /// Maximum memory-level parallelism the model will credit.
    pub max_mlp: f64,
    /// Extra cycles of port pressure per heavy (mul/div) uop.
    pub heavy_cost: f64,
    /// Store-buffer occupancy (fraction of capacity) above which stalls
    /// accrue. Average occupancy understates burst pressure, so the
    /// threshold is a small fraction of capacity.
    pub sb_threshold: f64,
    /// Dispatch-to-issue bubble charged per uop when `issue_at_dispatch` is
    /// false (fraction of a cycle, amortized).
    pub dispatch_bubble: f64,
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams {
            fetch_exposure: 0.6,
            redirect_penalty: 3.0,
            l2_hit_exposed: 3.0,
            max_mlp: 8.0,
            heavy_cost: 1.6,
            sb_threshold: 0.0015,
            dispatch_bubble: 0.012,
        }
    }
}

/// Result of running the interval model: the cycle/penalty ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Dispatch-limited baseline cycles (`uops / width`, rounded up).
    pub base_cycles: f64,
    /// Cycles lost to instruction fetch/decode (L1i, iTLB, redirects).
    pub frontend_cycles: f64,
    /// Cycles lost to branch misprediction recovery.
    pub badspec_cycles: f64,
    /// Cycles lost waiting on data loads (after MLP overlap).
    pub memory_cycles: f64,
    /// Cycles lost to store-buffer back-pressure.
    pub sb_cycles: f64,
    /// Cycles lost to execution-resource (port/window) pressure.
    pub core_cycles: f64,
    /// Total cycles.
    pub total_cycles: u64,
    /// Retired uops (copied from the input counts).
    pub uops: u64,
    /// Dispatch width used for slot accounting.
    pub dispatch_width: u32,
    /// ROB-full stall cycles (Figure 5f).
    pub rob_stall_cycles: f64,
    /// RS-full stall cycles (Figure 5g).
    pub rs_stall_cycles: f64,
    /// SB-full stall cycles (Figure 5h).
    pub sb_stall_cycles: f64,
}

impl CycleBreakdown {
    /// Any-resource stall cycles (Figure 5e).
    pub fn any_stall_cycles(&self) -> f64 {
        self.rob_stall_cycles + self.rs_stall_cycles + self.sb_stall_cycles
    }

    /// Cycles-per-instruction given an instruction count.
    pub fn cpi(&self, instructions: u64) -> f64 {
        if instructions == 0 {
            0.0
        } else {
            self.total_cycles as f64 / instructions as f64
        }
    }

    /// Execution time in seconds at the given core frequency.
    pub fn seconds(&self, freq_ghz: f64) -> f64 {
        self.total_cycles as f64 / (freq_ghz * 1e9)
    }

    /// Top-down slot attribution; categories sum to exactly 1.0.
    pub fn topdown(&self) -> TopDown {
        let width = f64::from(self.dispatch_width);
        let slots = self.total_cycles as f64 * width;
        if slots <= 0.0 {
            return TopDown {
                retiring: 1.0,
                frontend: 0.0,
                bad_speculation: 0.0,
                backend_memory: 0.0,
                backend_core: 0.0,
            };
        }
        let retiring = self.uops as f64;
        let fe = self.frontend_cycles * width;
        let bs = self.badspec_cycles * width;
        let mem = (self.memory_cycles + self.sb_cycles) * width;
        // Everything else (core pressure + base rounding slack) is core-bound.
        let core = (slots - retiring - fe - bs - mem).max(0.0);
        TopDown {
            retiring: retiring / slots,
            frontend: fe / slots,
            bad_speculation: bs / slots,
            backend_memory: mem / slots,
            backend_core: core / slots,
        }
    }
}

/// The interval model for a given configuration.
#[derive(Debug, Clone)]
pub struct CoreModel {
    cfg: UarchConfig,
    params: ModelParams,
    /// Optional port-model dispatch bound (sustained uops/cycle the issue
    /// ports can deliver for the profiled uop mix). When set and lower than
    /// the nominal dispatch width, the base dispatch time stretches while
    /// Top-down slot accounting keeps the nominal width — so port
    /// contention surfaces as backend-core share, exactly where Top-down
    /// puts it on real hardware.
    dispatch_bound: Option<f64>,
}

impl CoreModel {
    /// Creates a model with default [`ModelParams`].
    pub fn new(cfg: &UarchConfig) -> Self {
        CoreModel {
            cfg: cfg.clone(),
            params: ModelParams::default(),
            dispatch_bound: None,
        }
    }

    /// Fallible constructor: validates the configuration first, so a
    /// hand-built config with a zero dispatch width, window, or buffer is
    /// rejected instead of silently producing garbage cycles.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`UarchConfig::validate`].
    pub fn try_new(cfg: &UarchConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self::new(cfg))
    }

    /// Creates a model with explicit parameters (for ablation studies).
    pub fn with_params(cfg: &UarchConfig, params: ModelParams) -> Self {
        CoreModel {
            cfg: cfg.clone(),
            params,
            dispatch_bound: None,
        }
    }

    /// Fallible variant of [`CoreModel::with_params`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] of [`UarchConfig::validate`].
    pub fn try_with_params(cfg: &UarchConfig, params: ModelParams) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self::with_params(cfg, params))
    }

    /// Installs a port-model dispatch bound (uops/cycle). Bounds above the
    /// nominal width are harmless (the width still clamps).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Zero`] when `bound` is not a positive finite
    /// number.
    pub fn with_dispatch_bound(mut self, bound: f64) -> Result<Self, ConfigError> {
        if !(bound.is_finite() && bound > 0.0) {
            return Err(ConfigError::Zero {
                what: "dispatch_bound",
            });
        }
        self.dispatch_bound = Some(bound);
        Ok(self)
    }

    /// The installed dispatch bound, if any.
    pub fn dispatch_bound(&self) -> Option<f64> {
        self.dispatch_bound
    }

    /// The configuration this model simulates.
    pub fn config(&self) -> &UarchConfig {
        &self.cfg
    }

    /// Converts accumulated execution counts into a cycle breakdown.
    pub fn run(&self, c: &ExecutionCounts) -> CycleBreakdown {
        let p = &self.params;
        let cfg = &self.cfg;
        // Guard hand-built zero-sized configs: clamp rather than divide by
        // zero (use `try_new` to reject them loudly instead).
        let width = f64::from(cfg.dispatch_width.max(1));
        // Effective issue rate: the port model may bound dispatch below the
        // nominal width for contention-heavy uop mixes.
        let eff_width = self
            .dispatch_bound
            .map_or(width, |b| b.min(width))
            .max(f64::MIN_POSITIVE);

        // --- Base dispatch time ---
        let mut base = (c.uops as f64 / eff_width).ceil();
        if !cfg.issue_at_dispatch {
            base += c.uops as f64 * p.dispatch_bubble / eff_width;
        }

        // --- Front-end penalties ---
        let fe_lat = |hits: u64, lat: u32| hits as f64 * f64::from(lat) * p.fetch_exposure;
        let l4_lat = cfg.l4.map_or(cfg.mem_latency, |l| l.latency);
        let frontend = fe_lat(c.inst_fetch.l2, cfg.l2.latency)
            + fe_lat(c.inst_fetch.l3, cfg.l3.latency)
            + fe_lat(c.inst_fetch.l4, l4_lat)
            + fe_lat(c.inst_fetch.mem, cfg.mem_latency)
            + c.itlb_misses as f64 * f64::from(cfg.itlb_miss_penalty) * p.fetch_exposure
            + c.redirects as f64 * p.redirect_penalty;

        // --- Bad speculation ---
        let badspec = c.branch_mispredicts as f64 * f64::from(cfg.mispredict_penalty);

        // --- Memory penalties with ROB-limited MLP overlap ---
        // Long-latency events: everything that missed L2 on the data side.
        let long_misses = c.loads.l3 + c.loads.l4 + c.loads.mem;
        let raw_long = c.loads.l3 as f64 * f64::from(cfg.l3.latency)
            + c.loads.l4 as f64 * f64::from(l4_lat)
            + c.loads.mem as f64 * f64::from(cfg.mem_latency);
        let mlp = if long_misses == 0 {
            1.0
        } else {
            // Sub-linear in miss density: doubling the miss rate does not
            // double the exposed parallelism (dependent misses, bank
            // conflicts), so stall time still grows when misses grow —
            // which also means optimizations that remove misses always pay.
            let gap = c.uops as f64 / long_misses as f64; // uops between misses
            (f64::from(cfg.rob_size) / gap.max(1.0))
                .sqrt()
                .clamp(1.0, p.max_mlp)
        };
        let memory = c.loads.l2 as f64 * p.l2_hit_exposed + raw_long / mlp;

        // --- Store-buffer back-pressure ---
        // Each store that misses L1d occupies a store-buffer entry for its
        // fill latency; by Little's law, occupancy = fill-cycles / cycles.
        let store_fill_cycles = c.stores.l2 as f64 * f64::from(cfg.l2.latency)
            + c.stores.l3 as f64 * f64::from(cfg.l3.latency)
            + c.stores.l4 as f64 * f64::from(l4_lat)
            + c.stores.mem as f64 * f64::from(cfg.mem_latency);
        let pre_cycles = (base + frontend + badspec + memory).max(1.0);
        let occupancy = store_fill_cycles / pre_cycles; // average entries in use
        let pressure = occupancy / f64::from(cfg.sb_size.max(1));
        let sb = pre_cycles * (pressure - p.sb_threshold).clamp(0.0, 0.5);

        // --- Core (execution resource) pressure ---
        // Heavy uops contend for the long-latency ports; a smaller RS exposes
        // more of that contention.
        let rs_factor = (36.0 / f64::from(cfg.rs_size.max(1))).powf(0.3);
        let core = c.heavy_ops as f64 * p.heavy_cost / eff_width * rs_factor;

        let total = (base + frontend + badspec + memory + sb + core).ceil() as u64;

        // --- Resource-stall attribution (Figure 5e-h) ---
        // The ROB fills while long loads drain; the RS fills both on core
        // pressure and (faster, when small) on memory waits.
        let rob_stall = memory * 0.7;
        let rs_stall = core + memory * 0.3 * (36.0 / f64::from(cfg.rs_size.max(1))).sqrt();

        CycleBreakdown {
            base_cycles: base,
            frontend_cycles: frontend,
            badspec_cycles: badspec,
            memory_cycles: memory,
            sb_cycles: sb,
            core_cycles: core,
            total_cycles: total.max(1),
            uops: c.uops,
            dispatch_width: cfg.dispatch_width,
            rob_stall_cycles: rob_stall,
            rs_stall_cycles: rs_stall,
            sb_stall_cycles: sb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::LevelCounters;

    fn base_counts() -> ExecutionCounts {
        ExecutionCounts {
            instructions: 1_000_000,
            uops: 1_100_000,
            branches: 100_000,
            branch_mispredicts: 2_000,
            inst_fetch: LevelCounters {
                l1: 300_000,
                l2: 2_000,
                l3: 200,
                l4: 0,
                mem: 50,
            },
            itlb_misses: 100,
            loads: LevelCounters {
                l1: 200_000,
                l2: 8_000,
                l3: 1_500,
                l4: 0,
                mem: 700,
            },
            stores: LevelCounters {
                l1: 80_000,
                l2: 3_000,
                l3: 400,
                l4: 0,
                mem: 150,
            },
            heavy_ops: 40_000,
            redirects: 10_000,
        }
    }

    #[test]
    fn topdown_sums_to_one() {
        let model = CoreModel::new(&UarchConfig::baseline());
        let bd = model.run(&base_counts());
        let td = bd.topdown();
        assert!((td.sum() - 1.0).abs() < 1e-9, "sum = {}", td.sum());
        assert!(td.retiring > 0.0 && td.retiring < 1.0);
    }

    #[test]
    fn more_mispredicts_more_badspec() {
        let model = CoreModel::new(&UarchConfig::baseline());
        let c1 = base_counts();
        let mut c2 = base_counts();
        c2.branch_mispredicts *= 10;
        let t1 = model.run(&c1).topdown();
        let t2 = model.run(&c2).topdown();
        assert!(t2.bad_speculation > t1.bad_speculation);
        assert!(model.run(&c2).total_cycles > model.run(&c1).total_cycles);
    }

    #[test]
    fn more_dram_misses_more_memory_bound() {
        let model = CoreModel::new(&UarchConfig::baseline());
        let c1 = base_counts();
        let mut c2 = base_counts();
        c2.loads.mem *= 20;
        let t1 = model.run(&c1).topdown();
        let t2 = model.run(&c2).topdown();
        assert!(t2.backend_memory > t1.backend_memory);
    }

    #[test]
    fn bigger_rob_overlaps_memory_latency() {
        let mut c = base_counts();
        c.loads.mem = 20_000; // dense misses => MLP-limited
        let t_small = CoreModel::new(&UarchConfig::baseline()).run(&c);
        let t_big = CoreModel::new(&UarchConfig::be_op2()).run(&c);
        assert!(
            t_big.memory_cycles < t_small.memory_cycles,
            "be_op2 ROB should overlap more: {} vs {}",
            t_big.memory_cycles,
            t_small.memory_cycles
        );
        assert!(t_big.total_cycles < t_small.total_cycles);
    }

    #[test]
    fn store_pressure_stalls_and_bigger_sb_helps() {
        let mut c = base_counts();
        c.stores.mem = 60_000;
        let baseline = CoreModel::new(&UarchConfig::baseline()).run(&c);
        assert!(baseline.sb_stall_cycles > 0.0, "expected SB stalls");
        let mut big_sb = UarchConfig::baseline();
        big_sb.sb_size = 144;
        let relaxed = CoreModel::new(&big_sb).run(&c);
        assert!(relaxed.sb_stall_cycles < baseline.sb_stall_cycles);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = base_counts();
        let b = base_counts();
        a.merge(&b);
        assert_eq!(a.instructions, 2_000_000);
        assert_eq!(a.loads.mem, 1_400);
        assert_eq!(a.stores.l2, 6_000);
    }

    #[test]
    fn mpki_helper() {
        let c = base_counts();
        assert!((c.mpki(2_000) - 2.0).abs() < 1e-12);
        assert_eq!(ExecutionCounts::default().mpki(5), 0.0);
    }

    #[test]
    fn seconds_uses_frequency() {
        let model = CoreModel::new(&UarchConfig::baseline());
        let bd = model.run(&base_counts());
        let s = bd.seconds(3.5);
        assert!((s - bd.total_cycles as f64 / 3.5e9).abs() < 1e-15);
    }

    #[test]
    fn zero_counts_do_not_divide_by_zero() {
        let model = CoreModel::new(&UarchConfig::baseline());
        let bd = model.run(&ExecutionCounts::default());
        assert!(bd.total_cycles >= 1);
        let td = bd.topdown();
        assert!(td.sum().is_finite());
    }

    #[test]
    fn try_new_rejects_zero_sized_configs() {
        let mut cfg = UarchConfig::baseline();
        cfg.dispatch_width = 0;
        assert!(CoreModel::try_new(&cfg).is_err());
        assert!(CoreModel::try_with_params(&cfg, ModelParams::default()).is_err());
        assert!(CoreModel::try_new(&UarchConfig::baseline()).is_ok());
        // The infallible path clamps instead of dividing by zero.
        let bd = CoreModel::new(&cfg).run(&base_counts());
        assert!(bd.total_cycles >= 1);
        assert!(bd.topdown().sum().is_finite());
    }

    #[test]
    fn dispatch_bound_must_be_positive_finite() {
        let cfg = UarchConfig::baseline();
        assert!(CoreModel::new(&cfg).with_dispatch_bound(0.0).is_err());
        assert!(CoreModel::new(&cfg).with_dispatch_bound(-1.0).is_err());
        assert!(CoreModel::new(&cfg).with_dispatch_bound(f64::NAN).is_err());
        let m = CoreModel::new(&cfg).with_dispatch_bound(2.5).unwrap();
        assert_eq!(m.dispatch_bound(), Some(2.5));
    }

    #[test]
    fn dispatch_bound_stretches_cycles_into_backend_core() {
        let cfg = UarchConfig::baseline();
        let c = base_counts();
        let flat = CoreModel::new(&cfg).run(&c);
        let bound = CoreModel::new(&cfg)
            .with_dispatch_bound(f64::from(cfg.dispatch_width) * 0.6)
            .unwrap()
            .run(&c);
        assert!(bound.total_cycles > flat.total_cycles);
        // Slot accounting keeps the nominal width, so the extra cycles all
        // land in backend-core and the shares still sum to one.
        assert_eq!(bound.dispatch_width, cfg.dispatch_width);
        let td_flat = flat.topdown();
        let td_bound = bound.topdown();
        assert!((td_bound.sum() - 1.0).abs() < 1e-9);
        assert!(td_bound.backend_core > td_flat.backend_core);
        assert!(td_bound.retiring < td_flat.retiring);
    }

    #[test]
    fn dispatch_bound_above_width_is_inert() {
        let cfg = UarchConfig::baseline();
        let c = base_counts();
        let flat = CoreModel::new(&cfg).run(&c);
        let bound = CoreModel::new(&cfg)
            .with_dispatch_bound(f64::from(cfg.dispatch_width) * 2.0)
            .unwrap()
            .run(&c);
        assert_eq!(flat, bound);
    }

    #[test]
    fn issue_at_dispatch_removes_bubble() {
        let c = base_counts();
        let base = CoreModel::new(&UarchConfig::baseline()).run(&c);
        let mut cfg = UarchConfig::baseline();
        cfg.issue_at_dispatch = true;
        let fast = CoreModel::new(&cfg).run(&c);
        assert!(fast.base_cycles < base.base_cycles);
    }
}
