//! Set-associative LRU cache model.
//!
//! The model is *functional* (hit/miss only, no timing inside the cache;
//! latency attribution happens in [`crate::interval`]) and operates on
//! 64-byte cache-line addresses, which is the granularity at which the
//! instrumented transcoder emits memory events.

use serde::{Deserialize, Serialize};

use crate::ConfigError;

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Number of ways.
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Load-to-use latency in cycles (used by the interval model).
    pub latency: u32,
}

impl CacheParams {
    /// Convenience constructor with 64-byte lines.
    pub fn new(size_kib: u64, assoc: u32, latency: u32) -> Self {
        CacheParams {
            size_bytes: size_kib * 1024,
            assoc,
            line_bytes: 64,
            latency,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.assoc) * u64::from(self.line_bytes))
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if any field is zero, the capacity is not an
    /// exact multiple of `assoc * line_bytes`, or the set count is not a
    /// power of two.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.size_bytes == 0 {
            return Err(ConfigError::Zero { what: "cache size" });
        }
        if self.assoc == 0 {
            return Err(ConfigError::Zero {
                what: "cache associativity",
            });
        }
        if self.line_bytes == 0 {
            return Err(ConfigError::Zero {
                what: "cache line size",
            });
        }
        let way_bytes = u64::from(self.assoc) * u64::from(self.line_bytes);
        if !self.size_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::BadCacheGeometry {
                size: self.size_bytes,
                assoc: self.assoc,
                line: self.line_bytes,
            });
        }
        let sets = self.num_sets();
        if !sets.is_power_of_two() {
            return Err(ConfigError::NotPowerOfTwo {
                what: "cache set count",
                value: sets,
            });
        }
        Ok(())
    }
}

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in [0, 1]; zero when there were no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// A set-associative cache with true-LRU replacement.
///
/// Lookups take *line numbers* (byte address divided by the line size); the
/// caller is responsible for that division, which lets the instrumentation
/// layer emit line-granular events directly.
///
/// # Example
///
/// ```
/// use vtx_uarch::cache::{Cache, CacheParams};
///
/// let mut c = Cache::new(CacheParams::new(32, 8, 4)).unwrap();
/// assert!(!c.access_line(100)); // cold miss
/// assert!(c.access_line(100));  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    set_mask: u64,
    set_shift: u32,
    // ways[set * assoc + way] = line tag (u64::MAX = invalid)
    tags: Vec<u64>,
    // LRU order: lower = more recently used
    lru: Vec<u32>,
    stats: CacheStats,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Builds a cache from validated parameters.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheParams::validate`] failures.
    pub fn new(params: CacheParams) -> Result<Self, ConfigError> {
        params.validate()?;
        let sets = params.num_sets();
        let ways = params.assoc as usize;
        Ok(Cache {
            params,
            set_mask: sets - 1,
            set_shift: sets.trailing_zeros(),
            tags: vec![INVALID; sets as usize * ways],
            lru: (0..sets as usize * ways)
                .map(|i| (i % ways) as u32)
                .collect(),
            stats: CacheStats::default(),
        })
    }

    /// The cache geometry.
    pub fn params(&self) -> &CacheParams {
        &self.params
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Looks up a line, inserting it on miss. Returns `true` on hit.
    pub fn access_line(&mut self, line: u64) -> bool {
        self.stats.accesses += 1;
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let ways = self.params.assoc as usize;
        let base = set * ways;

        let mut hit_way = None;
        for w in 0..ways {
            if self.tags[base + w] == tag {
                hit_way = Some(w);
                break;
            }
        }
        match hit_way {
            Some(w) => {
                self.touch(base, ways, w);
                true
            }
            None => {
                self.stats.misses += 1;
                // Find LRU victim (highest lru value).
                let mut victim = 0;
                let mut worst = 0;
                for w in 0..ways {
                    if self.lru[base + w] >= worst {
                        worst = self.lru[base + w];
                        victim = w;
                    }
                }
                self.tags[base + victim] = tag;
                self.touch(base, ways, victim);
                false
            }
        }
    }

    /// Probes for a line without updating contents or statistics.
    pub fn contains_line(&self, line: u64) -> bool {
        let set = (line & self.set_mask) as usize;
        let tag = line >> self.set_shift;
        let ways = self.params.assoc as usize;
        (0..ways).any(|w| self.tags[set * ways + w] == tag)
    }

    /// Invalidates all contents (statistics are preserved).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
    }

    #[inline]
    fn touch(&mut self, base: usize, ways: usize, used: usize) {
        let cur = self.lru[base + used];
        for w in 0..ways {
            if self.lru[base + w] < cur {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + used] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B = 512B
        Cache::new(CacheParams {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
            latency: 1,
        })
        .unwrap()
    }

    #[test]
    fn geometry_validation() {
        assert!(CacheParams::new(32, 8, 4).validate().is_ok());
        assert!(CacheParams {
            size_bytes: 0,
            assoc: 8,
            line_bytes: 64,
            latency: 1
        }
        .validate()
        .is_err());
        // 3 sets -> not a power of two
        assert!(CacheParams {
            size_bytes: 3 * 2 * 64,
            assoc: 2,
            line_bytes: 64,
            latency: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access_line(7));
        assert!(c.access_line(7));
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(); // 2 ways, set = line % 4
                            // Three lines mapping to set 0: 0, 4, 8
        c.access_line(0);
        c.access_line(4);
        c.access_line(0); // 0 is now MRU, 4 is LRU
        c.access_line(8); // evicts 4
        assert!(c.contains_line(0));
        assert!(!c.contains_line(4));
        assert!(c.contains_line(8));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        for line in 0..4 {
            c.access_line(line);
        }
        for line in 0..4 {
            assert!(c.contains_line(line), "line {line}");
        }
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = tiny();
        c.access_line(1);
        c.flush();
        assert!(!c.contains_line(1));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(CacheParams::new(1, 2, 1)).unwrap(); // 1 KiB = 16 lines
                                                                    // Stream 64 distinct lines twice: second pass must still miss heavily.
        for _ in 0..2 {
            for line in 0..64u64 {
                c.access_line(line);
            }
        }
        assert!(c.stats().miss_ratio() > 0.9);
    }

    #[test]
    fn working_set_within_capacity_hits() {
        let mut c = Cache::new(CacheParams::new(4, 4, 1)).unwrap(); // 64 lines
        for _ in 0..4 {
            for line in 0..32u64 {
                c.access_line(line);
            }
        }
        // first pass cold misses only
        assert_eq!(c.stats().misses, 32);
    }

    #[test]
    fn miss_ratio_empty_is_zero() {
        assert_eq!(CacheStats::default().miss_ratio(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Whatever the access sequence, the just-accessed line is resident
        /// and the stats identity holds.
        #[test]
        fn accessed_line_is_resident(lines in proptest::collection::vec(0u64..10_000, 1..500)) {
            let mut c = Cache::new(CacheParams::new(4, 2, 1)).unwrap();
            for &l in &lines {
                c.access_line(l);
                prop_assert!(c.contains_line(l));
            }
            prop_assert_eq!(c.stats().accesses, lines.len() as u64);
            prop_assert!(c.stats().misses <= c.stats().accesses);
        }

        /// Repeating any sequence back-to-back never misses more the second
        /// time if the working set fits.
        #[test]
        fn second_pass_of_small_set_hits(lines in proptest::collection::vec(0u64..16, 1..64)) {
            // 4 KiB, 8-way = 64 lines: a 16-line universe always fits.
            let mut c = Cache::new(CacheParams::new(4, 8, 1)).unwrap();
            for &l in &lines {
                c.access_line(l);
            }
            let misses_after_warm = c.stats().misses;
            for &l in &lines {
                prop_assert!(c.access_line(l), "line {} should hit", l);
            }
            prop_assert_eq!(c.stats().misses, misses_after_warm);
        }
    }
}
