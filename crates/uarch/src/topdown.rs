//! VTune-style Top-down pipeline-slot accounting.
//!
//! The Top-down Microarchitecture Analysis Method (Yasin, ISPASS'14 — the
//! methodology VTune implements and the paper profiles with) divides every
//! pipeline *slot* (one uop issue opportunity: `dispatch_width x cycles`)
//! into four categories: **retiring** (useful work), **front-end bound**
//! (fetch/decode starved), **bad speculation** (work thrown away after
//! mispredicts), and **back-end bound** (execution resources or memory
//! blocked), with back-end further split into *memory bound* and *core
//! bound*.

use serde::{Deserialize, Serialize};

/// Fractional Top-down breakdown; the five fields sum to 1.0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TopDown {
    /// Slots that retired useful uops.
    pub retiring: f64,
    /// Slots lost to instruction fetch/decode starvation.
    pub frontend: f64,
    /// Slots lost to branch mispredictions (wasted + refill).
    pub bad_speculation: f64,
    /// Back-end slots lost waiting for data (cache/DRAM).
    pub backend_memory: f64,
    /// Back-end slots lost to execution-resource shortage.
    pub backend_core: f64,
}

impl TopDown {
    /// Total back-end bound fraction (memory + core).
    pub fn backend(&self) -> f64 {
        self.backend_memory + self.backend_core
    }

    /// Sum of all categories (should be 1.0 up to rounding).
    pub fn sum(&self) -> f64 {
        self.retiring + self.frontend + self.bad_speculation + self.backend()
    }

    /// The dominant non-retiring bottleneck category.
    pub fn bottleneck(&self) -> Bottleneck {
        let fe = self.frontend;
        let bs = self.bad_speculation;
        let be = self.backend();
        if fe >= bs && fe >= be {
            Bottleneck::FrontEnd
        } else if bs >= be {
            Bottleneck::BadSpeculation
        } else if self.backend_memory >= self.backend_core {
            Bottleneck::BackEndMemory
        } else {
            Bottleneck::BackEndCore
        }
    }
}

/// The dominant bottleneck class — what the smart scheduler keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Bottleneck {
    /// Fetch/decode limited: bigger L1i / iTLB helps (`fe_op`).
    FrontEnd,
    /// Mispredict limited: a better predictor helps (`bs_op`).
    BadSpeculation,
    /// Data-access limited: bigger data caches help (`be_op1`).
    BackEndMemory,
    /// Execution-window limited: bigger ROB/RS helps (`be_op2`).
    BackEndCore,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn td(r: f64, f: f64, b: f64, m: f64, c: f64) -> TopDown {
        TopDown {
            retiring: r,
            frontend: f,
            bad_speculation: b,
            backend_memory: m,
            backend_core: c,
        }
    }

    #[test]
    fn sums_and_backend() {
        let t = td(0.4, 0.1, 0.1, 0.3, 0.1);
        assert!((t.sum() - 1.0).abs() < 1e-12);
        assert!((t.backend() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_selection() {
        assert_eq!(
            td(0.4, 0.3, 0.1, 0.1, 0.1).bottleneck(),
            Bottleneck::FrontEnd
        );
        assert_eq!(
            td(0.4, 0.1, 0.3, 0.1, 0.1).bottleneck(),
            Bottleneck::BadSpeculation
        );
        assert_eq!(
            td(0.3, 0.1, 0.1, 0.4, 0.1).bottleneck(),
            Bottleneck::BackEndMemory
        );
        assert_eq!(
            td(0.3, 0.1, 0.1, 0.1, 0.4).bottleneck(),
            Bottleneck::BackEndCore
        );
    }
}
