//! The multi-level memory hierarchy.
//!
//! Models the paper's machine: split L1 (instruction/data), unified L2,
//! unified L3, and — for the `be_op1` configuration of Table IV — an optional
//! L4. Instruction fetches additionally consult the iTLB. All caches use
//! write-allocate stores, so a store miss traverses the hierarchy like a
//! load.

use serde::{Deserialize, Serialize};

use crate::cache::{Cache, CacheStats};
use crate::config::UarchConfig;
use crate::prefetch::{PrefetchStats, Prefetcher};
use crate::tlb::{Tlb, TlbStats};
use crate::ConfigError;

/// The level at which an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HitLevel {
    /// Satisfied by the first-level cache (L1i or L1d depending on side).
    L1,
    /// Satisfied by the unified L2.
    L2,
    /// Satisfied by the unified L3.
    L3,
    /// Satisfied by the optional L4 (only present in `be_op1`).
    L4,
    /// Required a DRAM access.
    Memory,
}

/// Per-level hit counters for one access stream (instruction, load or store).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelCounters {
    /// Accesses satisfied in L1.
    pub l1: u64,
    /// Accesses satisfied in L2.
    pub l2: u64,
    /// Accesses satisfied in L3.
    pub l3: u64,
    /// Accesses satisfied in L4.
    pub l4: u64,
    /// Accesses that went to DRAM.
    pub mem: u64,
}

impl LevelCounters {
    /// Total accesses in this stream.
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.l3 + self.l4 + self.mem
    }

    /// Accesses that missed L1 (i.e. left the first level).
    pub fn l1_misses(&self) -> u64 {
        self.total() - self.l1
    }

    /// Accesses that missed L2 or a deeper level.
    pub fn l2_misses(&self) -> u64 {
        self.l3 + self.l4 + self.mem
    }

    /// Accesses that missed L3.
    pub fn l3_misses(&self) -> u64 {
        self.l4 + self.mem
    }

    fn record(&mut self, level: HitLevel) {
        match level {
            HitLevel::L1 => self.l1 += 1,
            HitLevel::L2 => self.l2 += 1,
            HitLevel::L3 => self.l3 += 1,
            HitLevel::L4 => self.l4 += 1,
            HitLevel::Memory => self.mem += 1,
        }
    }
}

/// A complete cache/TLB hierarchy instantiated from a [`UarchConfig`].
///
/// # Example
///
/// ```
/// use vtx_uarch::config::UarchConfig;
/// use vtx_uarch::hierarchy::{HitLevel, MemoryHierarchy};
///
/// let mut m = MemoryHierarchy::new(&UarchConfig::baseline())?;
/// assert_eq!(m.load_line(42), HitLevel::Memory); // cold
/// assert_eq!(m.load_line(42), HitLevel::L1);
/// # Ok::<(), vtx_uarch::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Cache,
    l4: Option<Cache>,
    itlb: Tlb,
    prefetcher: Prefetcher,
    inst: LevelCounters,
    loads: LevelCounters,
    stores: LevelCounters,
}

impl MemoryHierarchy {
    /// Instantiates the hierarchy described by `cfg`.
    ///
    /// # Errors
    ///
    /// Propagates cache/TLB geometry validation failures.
    pub fn new(cfg: &UarchConfig) -> Result<Self, ConfigError> {
        Ok(MemoryHierarchy {
            l1i: Cache::new(cfg.l1i)?,
            l1d: Cache::new(cfg.l1d)?,
            l2: Cache::new(cfg.l2)?,
            l3: Cache::new(cfg.l3)?,
            l4: cfg.l4.map(Cache::new).transpose()?,
            itlb: Tlb::new(cfg.itlb_entries)?,
            prefetcher: Prefetcher::new(cfg.l1d_prefetcher),
            inst: LevelCounters::default(),
            loads: LevelCounters::default(),
            stores: LevelCounters::default(),
        })
    }

    /// Fetches an instruction cache line (also consults the iTLB).
    pub fn fetch_line(&mut self, line: u64) -> HitLevel {
        // 64 B lines, 4 KiB pages -> 64 lines per page.
        self.itlb.access_page(line >> 6);
        let level = Self::walk(
            &mut self.l1i,
            &mut self.l2,
            &mut self.l3,
            self.l4.as_mut(),
            line,
        );
        self.inst.record(level);
        level
    }

    /// Loads a data cache line.
    pub fn load_line(&mut self, line: u64) -> HitLevel {
        let level = Self::walk(
            &mut self.l1d,
            &mut self.l2,
            &mut self.l3,
            self.l4.as_mut(),
            line,
        );
        self.loads.record(level);
        self.run_prefetcher(line, level != HitLevel::L1);
        level
    }

    /// Stores to a data cache line (write-allocate).
    pub fn store_line(&mut self, line: u64) -> HitLevel {
        let level = Self::walk(
            &mut self.l1d,
            &mut self.l2,
            &mut self.l3,
            self.l4.as_mut(),
            line,
        );
        self.stores.record(level);
        level
    }

    /// Trains the prefetcher and issues any prefetches it requests;
    /// prefetch fills populate the hierarchy but are not demand accesses,
    /// so they do not appear in the load/store counters.
    fn run_prefetcher(&mut self, line: u64, missed: bool) {
        if self.prefetcher.kind() == crate::prefetch::PrefetcherKind::None {
            return;
        }
        for pf in self.prefetcher.on_access(line, missed) {
            Self::walk(
                &mut self.l1d,
                &mut self.l2,
                &mut self.l3,
                self.l4.as_mut(),
                pf,
            );
        }
    }

    fn walk(
        l1: &mut Cache,
        l2: &mut Cache,
        l3: &mut Cache,
        l4: Option<&mut Cache>,
        line: u64,
    ) -> HitLevel {
        if l1.access_line(line) {
            return HitLevel::L1;
        }
        if l2.access_line(line) {
            return HitLevel::L2;
        }
        if l3.access_line(line) {
            return HitLevel::L3;
        }
        if let Some(l4) = l4 {
            if l4.access_line(line) {
                return HitLevel::L4;
            }
        }
        HitLevel::Memory
    }

    /// Instruction-side per-level counters.
    pub fn inst_counters(&self) -> LevelCounters {
        self.inst
    }

    /// Data-load per-level counters.
    pub fn load_counters(&self) -> LevelCounters {
        self.loads
    }

    /// Data-store per-level counters.
    pub fn store_counters(&self) -> LevelCounters {
        self.stores
    }

    /// iTLB statistics.
    pub fn itlb_stats(&self) -> TlbStats {
        self.itlb.stats()
    }

    /// Raw L1 instruction cache statistics.
    pub fn l1i_stats(&self) -> CacheStats {
        self.l1i.stats()
    }

    /// Raw L1 data cache statistics.
    pub fn l1d_stats(&self) -> CacheStats {
        self.l1d.stats()
    }

    /// Prefetcher statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UarchConfig;

    #[test]
    fn cold_access_reaches_memory_then_l1() {
        let mut m = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        assert_eq!(m.load_line(1000), HitLevel::Memory);
        assert_eq!(m.load_line(1000), HitLevel::L1);
        assert_eq!(m.load_counters().mem, 1);
        assert_eq!(m.load_counters().l1, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut m = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        // Baseline L1d = 32 KiB = 512 lines. Touch 1024 distinct lines, then
        // retouch the first: it should have been evicted from L1 but live in
        // the 256 KiB L2.
        for line in 0..1024u64 {
            m.load_line(line);
        }
        assert_eq!(m.load_line(0), HitLevel::L2);
    }

    #[test]
    fn instruction_side_counts_itlb() {
        let mut m = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        m.fetch_line(0);
        m.fetch_line(64); // next page (64 lines per page)
        assert_eq!(m.itlb_stats().accesses, 2);
        assert_eq!(m.itlb_stats().misses, 2);
        m.fetch_line(1); // same page as line 0
        assert_eq!(m.itlb_stats().misses, 2);
    }

    #[test]
    fn be_op1_has_l4() {
        let mut m = MemoryHierarchy::new(&UarchConfig::be_op1()).unwrap();
        // Working set larger than L3 (4 MiB = 65536 lines) but within L4 (16 MiB).
        let lines: Vec<u64> = (0..100_000u64).collect();
        for &l in &lines {
            m.load_line(l);
        }
        let mut l4_hits = 0;
        for &l in &lines {
            if m.load_line(l) == HitLevel::L4 {
                l4_hits += 1;
            }
        }
        assert!(l4_hits > 0, "expected some L4 hits");
    }

    #[test]
    fn counters_sum_to_accesses() {
        let mut m = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        for line in 0..5000u64 {
            m.load_line(line % 700);
            m.store_line((line % 300) + 10_000);
        }
        assert_eq!(m.load_counters().total(), 5000);
        assert_eq!(m.store_counters().total(), 5000);
    }

    #[test]
    fn stream_prefetcher_hides_sequential_misses() {
        let mut cfg = UarchConfig::baseline();
        cfg.l1d_prefetcher = crate::prefetch::PrefetcherKind::Stream;
        let mut with = MemoryHierarchy::new(&cfg).unwrap();
        let mut without = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        for line in 0..2000u64 {
            with.load_line(line);
            without.load_line(line);
        }
        assert!(
            with.load_counters().l1_misses() < without.load_counters().l1_misses() / 2,
            "prefetched {} vs demand {}",
            with.load_counters().l1_misses(),
            without.load_counters().l1_misses()
        );
        assert!(with.prefetch_stats().issued > 0);
    }

    #[test]
    fn instruction_and_data_l1_are_split() {
        let mut m = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        // A line loaded as data does not populate the L1i: the fetch must
        // miss L1i (hitting the unified L2 instead).
        m.load_line(5000);
        assert_eq!(m.fetch_line(5000), HitLevel::L2);
        // And vice versa: the fetch filled L2/L1i, not L1d contents beyond
        // what the load already placed.
        assert_eq!(m.load_line(5000), HitLevel::L1);
    }

    #[test]
    fn stores_allocate() {
        let mut m = MemoryHierarchy::new(&UarchConfig::baseline()).unwrap();
        assert_eq!(m.store_line(77), HitLevel::Memory);
        assert_eq!(m.load_line(77), HitLevel::L1);
    }
}
