//! Encoder configuration: every option the paper varies.

use serde::{Deserialize, Serialize};

use crate::types::MeMethod;
use crate::CodecError;

/// Which block partitions the mode decision may use (x264 `partitions`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSet {
    /// Allow 8x8 inter partitions in P macroblocks.
    pub p8x8: bool,
    /// Allow 4x4 inter partitions (x264 default disables: `-p4x4`).
    pub p4x4: bool,
    /// Allow 8x8 intra prediction.
    pub i8x8: bool,
    /// Allow 4x4 intra prediction.
    pub i4x4: bool,
    /// Allow 8x8 partitions in B macroblocks.
    pub b8x8: bool,
}

impl PartitionSet {
    /// `partitions=none` (ultrafast): 16x16 only.
    pub fn none() -> Self {
        PartitionSet {
            p8x8: false,
            p4x4: false,
            i8x8: false,
            i4x4: false,
            b8x8: false,
        }
    }

    /// The medium default: everything except `p4x4`.
    pub fn standard() -> Self {
        PartitionSet {
            p8x8: true,
            p4x4: false,
            i8x8: true,
            i4x4: true,
            b8x8: true,
        }
    }

    /// `partitions=all` (slower and up).
    pub fn all() -> Self {
        PartitionSet {
            p8x8: true,
            p4x4: true,
            i8x8: true,
            i4x4: true,
            b8x8: true,
        }
    }

    /// Superfast's `+i8x8,+i4x4`: intra splits only.
    pub fn intra_only() -> Self {
        PartitionSet {
            p8x8: false,
            p4x4: false,
            i8x8: true,
            i4x4: true,
            b8x8: false,
        }
    }
}

impl Default for PartitionSet {
    fn default() -> Self {
        Self::standard()
    }
}

/// Rate-control mode (§II-B.1 lists all six).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RateControlMode {
    /// Constant quantizer.
    Cqp(u8),
    /// Constant rate factor — quality-targeted, the x264 default (23.0).
    Crf(f64),
    /// Average bitrate with closed-loop feedback, in kbit/s.
    Abr {
        /// Target average bitrate in kbit/s.
        bitrate_kbps: u32,
    },
    /// Constant bitrate: like ABR but corrected at *macroblock* granularity
    /// (the only mode the paper notes operates per-macroblock).
    Cbr {
        /// Target bitrate in kbit/s.
        bitrate_kbps: u32,
    },
    /// Two-pass average bitrate: a first pass measures per-frame complexity,
    /// the second allocates bits proportionally.
    TwoPassAbr {
        /// Target average bitrate in kbit/s.
        bitrate_kbps: u32,
    },
    /// CRF constrained by a VBV-style bitrate cap.
    Vbv {
        /// Base CRF quality target.
        crf: f64,
        /// Maximum bitrate in kbit/s over the buffer window.
        max_kbps: u32,
    },
}

impl RateControlMode {
    /// Short name as used in the paper's §II-B.1.
    pub fn name(&self) -> &'static str {
        match self {
            RateControlMode::Cqp(_) => "CQP",
            RateControlMode::Crf(_) => "CRF",
            RateControlMode::Abr { .. } => "ABR",
            RateControlMode::Cbr { .. } => "CBR",
            RateControlMode::TwoPassAbr { .. } => "2-Pass ABR",
            RateControlMode::Vbv { .. } => "VBV",
        }
    }
}

/// Complete encoder configuration.
///
/// `Default` is the `medium` preset with CRF 23 and `refs` 3, matching the
/// paper's profiling setup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Rate control mode.
    pub rc: RateControlMode,
    /// Number of reference frames for inter prediction (1..=16).
    pub refs: u8,
    /// Integer motion search method.
    pub me: MeMethod,
    /// Motion search range in full pixels.
    pub merange: u16,
    /// Sub-pel refinement / mode decision effort (0..=11).
    pub subme: u8,
    /// Maximum consecutive B frames (0 disables B frames).
    pub bframes: u8,
    /// Adaptive B-frame placement: 0 = fixed, 1 = fast, 2 = optimal.
    pub b_adapt: u8,
    /// Trellis quantization level (0..=2).
    pub trellis: u8,
    /// Adaptive quantization mode (0 = off, 1 = variance AQ).
    pub aq_mode: u8,
    /// In-loop deblocking: `None` = disabled, `Some((alpha, beta))` offsets.
    pub deblock: Option<(i8, i8)>,
    /// Scene-cut sensitivity (0 disables detection; x264 default 40).
    pub scenecut: u8,
    /// Enabled partition shapes.
    pub partitions: PartitionSet,
    /// Entropy backend: `true` = CABAC-style arithmetic coding, `false` =
    /// CAVLC-style bit codes.
    pub cabac: bool,
    /// Maximum GOP length (forced I-frame interval).
    pub keyint: u16,
    /// Worker threads for wavefront-parallel macroblock-row encoding.
    /// `1` = serial (the default), `0` = one worker per available core,
    /// `n` = at most `n` workers. The parallel path is bit-identical to
    /// the serial one — bitstream and profiler counts do not change.
    #[serde(default = "default_threads")]
    pub threads: u32,
    /// Display-frame indices at which an IDR keyframe is forced (segment
    /// boundaries for the CMAF-style segmenter). A forced cut is *closed-
    /// GOP*: the lookahead demotes any B-run that would straddle it and the
    /// encoder clears the reference anchors, so every record from the cut
    /// onward decodes without any state from before it. Empty (the default)
    /// leaves the bitstream byte-identical to pre-`force_kf` encoders.
    #[serde(default)]
    pub force_kf: Vec<u32>,
}

fn default_threads() -> u32 {
    1
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            rc: RateControlMode::Crf(23.0),
            refs: 3,
            me: MeMethod::Hex,
            merange: 16,
            subme: 7,
            bframes: 3,
            b_adapt: 1,
            trellis: 1,
            aq_mode: 1,
            deblock: Some((1, 0)),
            scenecut: 40,
            partitions: PartitionSet::standard(),
            cabac: true,
            keyint: 250,
            threads: default_threads(),
            force_kf: Vec::new(),
        }
    }
}

impl EncoderConfig {
    /// Sets the CRF value (switches the rate mode to CRF). Builder-style.
    pub fn with_crf(mut self, crf: f64) -> Self {
        self.rc = RateControlMode::Crf(crf);
        self
    }

    /// Sets the reference frame count. Builder-style.
    pub fn with_refs(mut self, refs: u8) -> Self {
        self.refs = refs;
        self
    }

    /// Sets the wavefront worker-thread count (`0` = auto). Builder-style.
    pub fn with_threads(mut self, threads: u32) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the forced-IDR display indices (GOP-aligned segment
    /// boundaries). Out-of-range indices are ignored at encode time; order
    /// and duplicates do not matter. Builder-style.
    pub fn with_force_kf(mut self, force_kf: Vec<u32>) -> Self {
        self.force_kf = force_kf;
        self
    }

    /// Resolves `threads` to a concrete worker count: `0` maps to the
    /// number of available cores, anything else is taken as-is.
    pub fn effective_threads(&self) -> u32 {
        if self.threads == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get() as u32)
        } else {
            self.threads
        }
    }

    /// Validates all parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::InvalidConfig`] naming the offending field.
    pub fn validate(&self) -> Result<(), CodecError> {
        if !(1..=16).contains(&self.refs) {
            return Err(CodecError::InvalidConfig {
                what: "refs",
                detail: format!("{} not in 1..=16", self.refs),
            });
        }
        if self.subme > 11 {
            return Err(CodecError::InvalidConfig {
                what: "subme",
                detail: format!("{} not in 0..=11", self.subme),
            });
        }
        if self.trellis > 2 {
            return Err(CodecError::InvalidConfig {
                what: "trellis",
                detail: format!("{} not in 0..=2", self.trellis),
            });
        }
        if self.b_adapt > 2 {
            return Err(CodecError::InvalidConfig {
                what: "b_adapt",
                detail: format!("{} not in 0..=2", self.b_adapt),
            });
        }
        if self.bframes > 16 {
            return Err(CodecError::InvalidConfig {
                what: "bframes",
                detail: format!("{} not in 0..=16", self.bframes),
            });
        }
        if self.merange == 0 || self.merange > 64 {
            return Err(CodecError::InvalidConfig {
                what: "merange",
                detail: format!("{} not in 1..=64", self.merange),
            });
        }
        if self.aq_mode > 1 {
            return Err(CodecError::InvalidConfig {
                what: "aq_mode",
                detail: format!("{} not in 0..=1", self.aq_mode),
            });
        }
        if self.threads > 128 {
            return Err(CodecError::InvalidConfig {
                what: "threads",
                detail: format!("{} not in 0..=128", self.threads),
            });
        }
        match self.rc {
            RateControlMode::Cqp(q) if q > 51 => Err(CodecError::InvalidConfig {
                what: "qp",
                detail: format!("{q} not in 0..=51"),
            }),
            RateControlMode::Crf(c) | RateControlMode::Vbv { crf: c, .. }
                if !(0.0..=51.0).contains(&c) =>
            {
                Err(CodecError::InvalidConfig {
                    what: "crf",
                    detail: format!("{c} not in 0..=51"),
                })
            }
            RateControlMode::Abr { bitrate_kbps }
            | RateControlMode::Cbr { bitrate_kbps }
            | RateControlMode::TwoPassAbr { bitrate_kbps }
                if bitrate_kbps == 0 =>
            {
                Err(CodecError::InvalidConfig {
                    what: "bitrate",
                    detail: "zero bitrate".to_owned(),
                })
            }
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_profiling_setup() {
        let c = EncoderConfig::default();
        assert_eq!(c.rc, RateControlMode::Crf(23.0));
        assert_eq!(c.refs, 3);
        assert_eq!(c.me, MeMethod::Hex);
        assert_eq!(c.subme, 7);
        assert_eq!(c.trellis, 1);
        assert!(c.cabac);
        c.validate().unwrap();
    }

    #[test]
    fn builder_methods() {
        let c = EncoderConfig::default()
            .with_crf(35.0)
            .with_refs(8)
            .with_threads(4);
        assert_eq!(c.rc, RateControlMode::Crf(35.0));
        assert_eq!(c.refs, 8);
        assert_eq!(c.threads, 4);
    }

    #[test]
    fn threads_resolution() {
        assert_eq!(EncoderConfig::default().threads, 1);
        assert_eq!(EncoderConfig::default().effective_threads(), 1);
        assert_eq!(
            EncoderConfig::default().with_threads(6).effective_threads(),
            6
        );
        // Auto mode resolves to at least one worker.
        assert!(EncoderConfig::default().with_threads(0).effective_threads() >= 1);
        assert!(EncoderConfig::default()
            .with_threads(129)
            .validate()
            .is_err());
        EncoderConfig::default().with_threads(0).validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_values() {
        assert!(EncoderConfig::default().with_refs(0).validate().is_err());
        assert!(EncoderConfig::default().with_refs(17).validate().is_err());
        assert!(EncoderConfig::default().with_crf(99.0).validate().is_err());
        let mut c = EncoderConfig::default();
        c.subme = 12;
        assert!(c.validate().is_err());
        let mut c = EncoderConfig::default();
        c.rc = RateControlMode::Abr { bitrate_kbps: 0 };
        assert!(c.validate().is_err());
        let mut c = EncoderConfig::default();
        c.merange = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn rc_mode_names_match_paper() {
        assert_eq!(RateControlMode::Cqp(20).name(), "CQP");
        assert_eq!(RateControlMode::Crf(23.0).name(), "CRF");
        assert_eq!(
            RateControlMode::TwoPassAbr { bitrate_kbps: 500 }.name(),
            "2-Pass ABR"
        );
        assert_eq!(
            RateControlMode::Vbv {
                crf: 23.0,
                max_kbps: 800
            }
            .name(),
            "VBV"
        );
    }

    #[test]
    fn partition_sets() {
        assert!(!PartitionSet::none().i4x4);
        assert!(PartitionSet::standard().p8x8);
        assert!(!PartitionSet::standard().p4x4);
        assert!(PartitionSet::all().p4x4);
        assert!(PartitionSet::intra_only().i4x4);
        assert!(!PartitionSet::intra_only().p8x8);
    }
}
