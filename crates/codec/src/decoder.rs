//! The video decoder: the exact mirror of [`crate::encoder`].
//!
//! Decoding is the first stage of every transcode (§II-A of the paper:
//! decode to raw frames, then re-encode). The decoder is fully instrumented
//! with its own kernel identities (`dec_parse`, `dec_pred`, `dec_recon`,
//! `dec_deblock`) so transcoding profiles include the decode-side front-end
//! and memory behaviour.

use vtx_frame::Frame;
use vtx_trace::Profiler;

use crate::bufs::CodecBufs;
use crate::deblock::deblock_frame;
use crate::encoder::{mv_predictor, ref_lists, Anchor, Bitstream, MAGIC, VERSION};
use crate::entropy::cabac::CabacReader;
use crate::entropy::cavlc::CavlcReader;
use crate::entropy::{ctx, EntropyReader};
use crate::instr::{K_DEC_DEBLOCK, K_DEC_PARSE, K_DEC_PRED, K_DEC_RECON};
use crate::intra::{predict16, predict4, predict_chroma_dc, Intra16Mode, Intra4Mode};
use crate::mbenc::{decode_chroma_residual, decode_luma_residual, read_coef_block};
use crate::mc::{build_inter_pred_frames, build_p8_pred};
use crate::quant::dequant4x4;
use crate::transform::idct4x4;
use crate::types::{FrameType, MotionVector, Qp};
use crate::{CodecError, DecodeError};

/// A decoded clip, in display order.
#[derive(Debug, Clone)]
pub struct DecodedVideo {
    /// Decoded frames in display order.
    pub frames: Vec<Frame>,
    /// Luma width.
    pub width: usize,
    /// Luma height.
    pub height: usize,
    /// Frame rate from the container.
    pub fps: u32,
}

struct Header {
    width: usize,
    height: usize,
    fps: u32,
    frame_count: usize,
    cabac: bool,
    deblock: Option<(i8, i8)>,
    refs: u8,
    scale: u32,
}

/// Largest luma dimension the decoder will allocate for. A flipped bit in
/// the 16-bit width/height fields can otherwise demand multi-gigabyte frame
/// buffers; 4096 covers every vbench clip (up to 4K) with headroom.
pub const MAX_DECODE_DIM: usize = 4096;

fn parse_header(data: &[u8]) -> Result<(Header, usize), DecodeError> {
    if data.len() < 15 {
        return Err(DecodeError::Truncated {
            offset: 0,
            context: "container header",
        });
    }
    if &data[0..4] != MAGIC || data[4] != VERSION {
        return Err(DecodeError::BadMagic);
    }
    let width = usize::from(u16::from_le_bytes([data[5], data[6]]));
    let height = usize::from(u16::from_le_bytes([data[7], data[8]]));
    let fps = u32::from(data[9]);
    let frame_count = usize::from(u16::from_le_bytes([data[10], data[11]]));
    let flags = data[12];
    let refs = data[13].clamp(1, 16);
    let da = data[14] as i8;
    if data.len() < 17 {
        return Err(DecodeError::Truncated {
            offset: 14,
            context: "deblock offsets",
        });
    }
    let db = data[15] as i8;
    let scale = u32::from(data[16].max(1));
    if width == 0 || height == 0 || width % 16 != 0 || height % 16 != 0 {
        return Err(DecodeError::Corrupt {
            offset: 5,
            context: "frame dimensions",
        });
    }
    if width > MAX_DECODE_DIM || height > MAX_DECODE_DIM {
        return Err(DecodeError::Oversized { width, height });
    }
    Ok((
        Header {
            width,
            height,
            fps,
            frame_count,
            cabac: flags & 1 != 0,
            deblock: if flags & 2 != 0 { Some((da, db)) } else { None },
            refs,
            scale,
        },
        17,
    ))
}

/// Decodes a vtx bitstream back into raw frames.
///
/// # Errors
///
/// Returns [`CodecError::BadMagic`] for foreign data and
/// [`CodecError::CorruptBitstream`] for truncated or inconsistent payloads.
pub fn decode_video(bs: &Bitstream, prof: &mut Profiler) -> Result<DecodedVideo, CodecError> {
    let (hdr, mut pos) = parse_header(&bs.data)?;
    let pool = usize::from(hdr.refs) + 2;
    let bufs = CodecBufs::new(prof, hdr.width, hdr.height, 1, pool, hdr.scale);

    let mut st = DecoderState {
        bufs,
        mb_w: hdr.width / 16,
        mb_h: hdr.height / 16,
        anchors: Vec::new(),
        next_slot: 0,
        global_mb: 0,
        refs: hdr.refs,
        deblock: hdr.deblock,
    };

    let mut frames: Vec<Option<Frame>> = vec![None; hdr.frame_count];
    for _ in 0..hdr.frame_count {
        if pos + 8 > bs.data.len() {
            return Err(CodecError::CorruptBitstream {
                offset: pos,
                context: "frame header",
            });
        }
        let ftype = match bs.data[pos] {
            0 => FrameType::I,
            1 => FrameType::P,
            2 => FrameType::B,
            3 => {
                // IDR: a forced segment-boundary keyframe. Mirror the
                // encoder by dropping every reference anchor before the
                // frame decodes — nothing may predict across the cut.
                st.anchors.clear();
                FrameType::I
            }
            _ => {
                return Err(CodecError::CorruptBitstream {
                    offset: pos,
                    context: "frame type",
                })
            }
        };
        let display = usize::from(u16::from_le_bytes([bs.data[pos + 1], bs.data[pos + 2]]));
        let qp = Qp::new(i32::from(bs.data[pos + 3]));
        let len = u32::from_le_bytes([
            bs.data[pos + 4],
            bs.data[pos + 5],
            bs.data[pos + 6],
            bs.data[pos + 7],
        ]) as usize;
        pos += 8;
        if pos + len > bs.data.len() || display >= hdr.frame_count {
            return Err(CodecError::CorruptBitstream {
                offset: pos,
                context: "frame payload",
            });
        }
        let payload = &bs.data[pos..pos + len];
        prof.load_range(st.bufs.bitstream + pos as u64, len as u64);
        pos += len;

        let frame = {
            let _frame_span = vtx_telemetry::Span::enter_with(
                match ftype {
                    FrameType::I => "decode_frame/I",
                    FrameType::P => "decode_frame/P",
                    FrameType::B => "decode_frame/B",
                },
                |a| {
                    a.u64("display", display as u64);
                },
            );
            if hdr.cabac {
                decode_frame(&mut st, ftype, qp, display, CabacReader::new(payload), prof)?
            } else {
                decode_frame(&mut st, ftype, qp, display, CavlcReader::new(payload), prof)?
            }
        };

        if frames[display].is_some() {
            return Err(CodecError::CorruptBitstream {
                offset: pos,
                context: "duplicate display index",
            });
        }
        frames[display] = Some(frame.clone());

        if ftype != FrameType::B {
            let slot = st.next_slot;
            st.next_slot = (st.next_slot + 1) % pool;
            st.anchors.push(Anchor {
                display,
                frame,
                slot,
            });
            let keep = usize::from(hdr.refs) + 1;
            if st.anchors.len() > keep {
                st.anchors.drain(..st.anchors.len() - keep);
            }
        }
    }

    let frames: Result<Vec<Frame>, CodecError> = frames
        .into_iter()
        .map(|f| {
            f.ok_or(CodecError::CorruptBitstream {
                offset: pos,
                context: "missing frame",
            })
        })
        .collect();

    Ok(DecodedVideo {
        frames: frames?,
        width: hdr.width,
        height: hdr.height,
        fps: hdr.fps,
    })
}

struct DecoderState {
    bufs: CodecBufs,
    mb_w: usize,
    mb_h: usize,
    anchors: Vec<Anchor>,
    next_slot: usize,
    global_mb: u64,
    refs: u8,
    deblock: Option<(i8, i8)>,
}

fn decode_frame<R: EntropyReader>(
    st: &mut DecoderState,
    ftype: FrameType,
    base_qp: Qp,
    display: usize,
    mut r: R,
    prof: &mut Profiler,
) -> Result<Frame, CodecError> {
    let width = st.mb_w * 16;
    let height = st.mb_h * 16;
    let mut recon = Frame::new(width, height);
    let (list0, list1) = ref_lists(&st.anchors, display, st.refs);
    let mut mvs = vec![MotionVector::ZERO; st.mb_w * st.mb_h];
    let mut intra_map = vec![false; st.mb_w * st.mb_h];
    let mut prev_qp = base_qp;
    let cur_slot = st.next_slot % st.bufs.ref_pool.len();

    for mb_y in 0..st.mb_h {
        for mb_x in 0..st.mb_w {
            let mb_i = mb_y * st.mb_w + mb_x;
            prof.begin_unit(st.global_mb);
            st.global_mb += 1;
            prof.kernel(K_DEC_PARSE, 1, 120, 2);

            let pred_mv = mv_predictor(&mvs, &intra_map, st.mb_w, mb_x, mb_y);
            prof.load(st.bufs.tables + 8192);

            if ftype != FrameType::I && r.get_bit(ctx::SKIP)? {
                // Skip: forward MC with the predictor, no residual.
                let anchor = anchor_at(st, &list0, 0)?;
                let (py, pu, pv) = build_inter_pred_frames(
                    &anchor.frame,
                    None,
                    pred_mv,
                    MotionVector::ZERO,
                    0,
                    mb_x,
                    mb_y,
                );
                charge_pred(st, anchor, mb_x, mb_y, prof);
                commit(st, &mut recon, &py, &pu, &pv, mb_x, mb_y, cur_slot, prof);
                mvs[mb_i] = pred_mv;
                intra_map[mb_i] = false;
                continue;
            }

            let mode = r.get_ue(ctx::MB_MODE)?;
            match (ftype, mode) {
                (FrameType::P, 0) => {
                    let ref_idx = if st.refs > 1 {
                        r.get_ue(ctx::REF_IDX)? as usize
                    } else {
                        0
                    };
                    let mv = read_mv(&mut r, pred_mv)?;
                    let qp = read_qp(&mut r, &mut prev_qp)?;
                    let anchor = anchor_at(st, &list0, ref_idx)?;
                    let (py, pu, pv) = build_inter_pred_frames(
                        &anchor.frame,
                        None,
                        mv,
                        MotionVector::ZERO,
                        0,
                        mb_x,
                        mb_y,
                    );
                    charge_pred(st, anchor, mb_x, mb_y, prof);
                    inter_decode(
                        st, &mut r, &mut recon, &py, &pu, &pv, qp, mb_x, mb_y, cur_slot, prof,
                    )?;
                    mvs[mb_i] = mv;
                    intra_map[mb_i] = false;
                }
                (FrameType::P, 1) => {
                    let ref_idx = if st.refs > 1 {
                        r.get_ue(ctx::REF_IDX)? as usize
                    } else {
                        0
                    };
                    let mut sub = [MotionVector::ZERO; 4];
                    for mv in &mut sub {
                        *mv = read_mv(&mut r, pred_mv)?;
                    }
                    let qp = read_qp(&mut r, &mut prev_qp)?;
                    let anchor = anchor_at(st, &list0, ref_idx)?;
                    let (py, pu, pv) = build_p8_pred(&anchor.frame, &sub, mb_x, mb_y);
                    charge_pred(st, anchor, mb_x, mb_y, prof);
                    inter_decode(
                        st, &mut r, &mut recon, &py, &pu, &pv, qp, mb_x, mb_y, cur_slot, prof,
                    )?;
                    mvs[mb_i] = sub[3];
                    intra_map[mb_i] = false;
                }
                (FrameType::B, 0) => {
                    let dir = r.get_ue(ctx::MB_MODE + 4)? as u8;
                    if dir > 2 {
                        return Err(CodecError::CorruptBitstream {
                            offset: 0,
                            context: "b direction",
                        });
                    }
                    let fwd = if dir != 1 {
                        read_mv(&mut r, pred_mv)?
                    } else {
                        MotionVector::ZERO
                    };
                    let bwd = if dir != 0 {
                        read_mv(&mut r, MotionVector::ZERO)?
                    } else {
                        MotionVector::ZERO
                    };
                    let qp = read_qp(&mut r, &mut prev_qp)?;
                    let fa = anchor_at(st, &list0, 0)?;
                    let ba = anchor_at(st, &list1, 0)?;
                    let (py, pu, pv) = build_inter_pred_frames(
                        &fa.frame,
                        Some(&ba.frame),
                        fwd,
                        bwd,
                        dir,
                        mb_x,
                        mb_y,
                    );
                    if dir != 1 {
                        charge_pred(st, fa, mb_x, mb_y, prof);
                    }
                    if dir != 0 {
                        charge_pred(st, ba, mb_x, mb_y, prof);
                    }
                    inter_decode(
                        st, &mut r, &mut recon, &py, &pu, &pv, qp, mb_x, mb_y, cur_slot, prof,
                    )?;
                    mvs[mb_i] = if dir == 1 { MotionVector::ZERO } else { fwd };
                    intra_map[mb_i] = false;
                }
                // I16x16 in I/P/B frames (mode indices differ per frame type).
                (FrameType::I, 0) | (FrameType::P, 2) | (FrameType::B, 1) => {
                    let m = Intra16Mode::from_index(r.get_ue(ctx::IPRED)?).ok_or(
                        CodecError::CorruptBitstream {
                            offset: 0,
                            context: "intra16 mode",
                        },
                    )?;
                    let qp = read_qp(&mut r, &mut prev_qp)?;
                    let pred = predict16(recon.y(), mb_x * 16, mb_y * 16, m);
                    let pu = predict_chroma_dc(recon.u(), mb_x * 8, mb_y * 8);
                    let pv = predict_chroma_dc(recon.v(), mb_x * 8, mb_y * 8);
                    prof.kernel(K_DEC_PRED, 1, 260, 6);
                    inter_decode(
                        st, &mut r, &mut recon, &pred, &pu, &pv, qp, mb_x, mb_y, cur_slot, prof,
                    )?;
                    mvs[mb_i] = MotionVector::ZERO;
                    intra_map[mb_i] = true;
                }
                // I4x4.
                (FrameType::I, 1) | (FrameType::P, 3) | (FrameType::B, 2) => {
                    let qp = read_qp(&mut r, &mut prev_qp)?;
                    intra4_decode(st, &mut r, &mut recon, qp, mb_x, mb_y, cur_slot, prof)?;
                    mvs[mb_i] = MotionVector::ZERO;
                    intra_map[mb_i] = true;
                }
                _ => {
                    return Err(CodecError::CorruptBitstream {
                        offset: 0,
                        context: "mb mode",
                    })
                }
            }
        }
    }

    if let Some(offsets) = st.deblock {
        prof.begin_unit(st.global_mb);
        st.global_mb += 1;
        deblock_frame(
            &mut recon,
            base_qp,
            offsets,
            prof,
            K_DEC_DEBLOCK,
            st.bufs.ref_pool[cur_slot],
            st.bufs.scale(),
        );
    }
    Ok(recon)
}

fn anchor_at<'a>(
    st: &'a DecoderState,
    list: &[usize],
    idx: usize,
) -> Result<&'a Anchor, CodecError> {
    list.get(idx)
        .map(|&i| &st.anchors[i])
        .ok_or(CodecError::CorruptBitstream {
            offset: 0,
            context: "reference index",
        })
}

fn read_mv<R: EntropyReader>(r: &mut R, pred: MotionVector) -> Result<MotionVector, CodecError> {
    let dx = r.get_se(ctx::MVD_X)?;
    let dy = r.get_se(ctx::MVD_Y)?;
    let cx = i32::from(pred.x) + dx;
    let cy = i32::from(pred.y) + dy;
    if !(-2048..=2048).contains(&cx) || !(-2048..=2048).contains(&cy) {
        return Err(CodecError::CorruptBitstream {
            offset: 0,
            context: "motion vector",
        });
    }
    Ok(MotionVector::new(cx as i16, cy as i16))
}

fn read_qp<R: EntropyReader>(r: &mut R, prev: &mut Qp) -> Result<Qp, CodecError> {
    let delta = r.get_se(ctx::QP_DELTA)?;
    let qp = Qp::new(i32::from(prev.value()) + delta);
    *prev = qp;
    Ok(qp)
}

fn charge_pred(st: &DecoderState, anchor: &Anchor, mb_x: usize, mb_y: usize, prof: &mut Profiler) {
    for row in 0..16usize {
        prof.load(st.bufs.ref_luma(anchor.slot, mb_x * 16, mb_y * 16 + row));
    }
    prof.kernel(K_DEC_PRED, 1, 420, 24);
}

#[allow(clippy::too_many_arguments)]
fn inter_decode<R: EntropyReader>(
    st: &DecoderState,
    r: &mut R,
    recon: &mut Frame,
    py: &[u8; 256],
    pu: &[u8; 64],
    pv: &[u8; 64],
    qp: Qp,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) -> Result<(), CodecError> {
    let (ry, _) = decode_luma_residual(py, qp, r, prof, st.bufs.scratch)?;
    let (ru, _) = decode_chroma_residual(pu, qp, r, prof)?;
    let (rv, _) = decode_chroma_residual(pv, qp, r, prof)?;
    commit(st, recon, &ry, &ru, &rv, mb_x, mb_y, cur_slot, prof);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn intra4_decode<R: EntropyReader>(
    st: &DecoderState,
    r: &mut R,
    recon: &mut Frame,
    qp: Qp,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) -> Result<(), CodecError> {
    let x0 = mb_x * 16;
    let y0 = mb_y * 16;
    for by in 0..4 {
        for bx in 0..4 {
            let x = x0 + bx * 4;
            let y = y0 + by * 4;
            let mode = Intra4Mode::from_index(r.get_ue(ctx::IPRED + 1)?).ok_or(
                CodecError::CorruptBitstream {
                    offset: 0,
                    context: "intra4 mode",
                },
            )?;
            let pred = predict4(recon.y(), x, y, mode);
            let mut blk = read_coef_block(r, false, prof)?;
            let nz = blk.iter().filter(|&&v| v != 0).count();
            let mut out = pred;
            if nz > 0 {
                dequant4x4(&mut blk, qp);
                idct4x4(&mut blk);
                for i in 0..16 {
                    out[i] = (i32::from(pred[i]) + blk[i]).clamp(0, 255) as u8;
                }
            }
            recon.y_mut().write_block(x, y, 4, 4, &out);
        }
    }
    prof.kernel(K_DEC_PRED, 16, 110, 2);

    let pu = predict_chroma_dc(recon.u(), mb_x * 8, mb_y * 8);
    let pv = predict_chroma_dc(recon.v(), mb_x * 8, mb_y * 8);
    let (ru, _) = decode_chroma_residual(&pu, qp, r, prof)?;
    let (rv, _) = decode_chroma_residual(&pv, qp, r, prof)?;
    recon.u_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, &ru);
    recon.v_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, &rv);
    charge_stores(st, mb_x, mb_y, cur_slot, prof);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn commit(
    st: &DecoderState,
    recon: &mut Frame,
    ry: &[u8; 256],
    ru: &[u8; 64],
    rv: &[u8; 64],
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    recon.y_mut().write_block(mb_x * 16, mb_y * 16, 16, 16, ry);
    recon.u_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, ru);
    recon.v_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, rv);
    charge_stores(st, mb_x, mb_y, cur_slot, prof);
}

fn charge_stores(
    st: &DecoderState,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    prof.kernel(K_DEC_RECON, 16, 60, 0);
    for row in 0..16usize {
        prof.store(st.bufs.ref_luma(cur_slot, mb_x * 16, mb_y * 16 + row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EncoderConfig;
    use crate::encoder::encode_video;
    use vtx_frame::{synth, vbench, Video};
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    fn tiny_video(name: &str) -> Video {
        let mut spec = vbench::by_name(name).unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 6;
        synth::generate(&spec, 7)
    }

    fn roundtrip(name: &str, cfg: &EncoderConfig) {
        let v = tiny_video(name);
        let mut p = prof();
        let enc = encode_video(&v, cfg, &mut p).unwrap();
        let dec = decode_video(&enc.bitstream, &mut p).unwrap();
        assert_eq!(dec.frames.len(), v.frames.len());
        for (i, (d, e)) in dec.frames.iter().zip(enc.recon.iter()).enumerate() {
            assert_eq!(d, e, "frame {i} ({name}) decode != encoder recon");
        }
    }

    #[test]
    fn decode_matches_encoder_recon_cabac() {
        roundtrip("cricket", &EncoderConfig::default());
    }

    #[test]
    fn decode_matches_encoder_recon_cavlc() {
        let mut cfg = EncoderConfig::default();
        cfg.cabac = false;
        roundtrip("cricket", &cfg);
    }

    #[test]
    fn decode_matches_with_bframes_disabled() {
        let mut cfg = EncoderConfig::default();
        cfg.bframes = 0;
        roundtrip("girl", &cfg);
    }

    #[test]
    fn decode_matches_without_deblock() {
        let mut cfg = EncoderConfig::default();
        cfg.deblock = None;
        roundtrip("bike", &cfg);
    }

    #[test]
    fn decode_matches_high_crf() {
        roundtrip("holi", &EncoderConfig::default().with_crf(40.0));
    }

    #[test]
    fn decode_matches_many_refs() {
        roundtrip("game2", &EncoderConfig::default().with_refs(6));
    }

    #[test]
    fn header_rejects_bad_geometry_and_truncation() {
        let mut p = prof();
        // Too short for even the fixed header.
        let bs = Bitstream {
            data: b"VTXB\x01".to_vec(),
        };
        assert!(matches!(
            decode_video(&bs, &mut p),
            Err(CodecError::CorruptBitstream { .. })
        ));
        // Valid magic but non-MB-aligned dimensions.
        let mut data = Vec::new();
        data.extend_from_slice(b"VTXB");
        data.push(1); // version
        data.extend_from_slice(&33u16.to_le_bytes()); // width: not even MB
        data.extend_from_slice(&32u16.to_le_bytes());
        data.push(30);
        data.extend_from_slice(&0u16.to_le_bytes());
        data.extend_from_slice(&[0, 1, 0, 0, 8]);
        let bs = Bitstream { data };
        assert!(matches!(
            decode_video(&bs, &mut p),
            Err(CodecError::CorruptBitstream { .. })
        ));
    }

    #[test]
    fn oversized_geometry_is_refused_without_allocating() {
        // 65520x65520 (the largest MB-aligned u16 geometry) would demand
        // ~6 GB of frame buffer; the decoder must refuse up front.
        let mut data = Vec::new();
        data.extend_from_slice(b"VTXB");
        data.push(1);
        data.extend_from_slice(&65520u16.to_le_bytes());
        data.extend_from_slice(&65520u16.to_le_bytes());
        data.push(30);
        data.extend_from_slice(&1u16.to_le_bytes());
        data.extend_from_slice(&[0, 1, 0, 0, 8]);
        let mut p = prof();
        assert_eq!(
            decode_video(&Bitstream { data }, &mut p).unwrap_err(),
            CodecError::CorruptBitstream {
                offset: 5,
                context: "oversized geometry"
            }
        );
    }

    #[test]
    fn zero_frames_yields_empty_clip_error_free_structures() {
        // A header declaring zero frames decodes to zero frames.
        let mut data = Vec::new();
        data.extend_from_slice(b"VTXB");
        data.push(1);
        data.extend_from_slice(&32u16.to_le_bytes());
        data.extend_from_slice(&32u16.to_le_bytes());
        data.push(30);
        data.extend_from_slice(&0u16.to_le_bytes()); // 0 frames
        data.extend_from_slice(&[0, 1, 0, 0, 8]);
        let mut p = prof();
        let out = decode_video(&Bitstream { data }, &mut p).unwrap();
        assert!(out.frames.is_empty());
        assert_eq!(out.width, 32);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut p = prof();
        let bs = Bitstream {
            data: b"NOPE0000000000000000".to_vec(),
        };
        assert_eq!(decode_video(&bs, &mut p).unwrap_err(), CodecError::BadMagic);
    }

    #[test]
    fn truncated_stream_errors_not_panics() {
        let v = tiny_video("cat");
        let mut p = prof();
        let enc = encode_video(&v, &EncoderConfig::default(), &mut p).unwrap();
        for cut in [10, 20, enc.bitstream.data.len() / 2] {
            let bs = Bitstream {
                data: enc.bitstream.data[..cut].to_vec(),
            };
            assert!(decode_video(&bs, &mut p).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn forced_idr_cut_decodes_standalone() {
        // A forced keyframe must reset prediction state so the records from
        // the cut onward form a self-contained stream: rebuild them under a
        // fresh header and the real decoder must reproduce the encoder's
        // reconstruction without ever seeing the frames before the cut.
        let v = tiny_video("cricket"); // 6 frames
        let n = v.frames.len();
        let cut = 3usize;
        let cfg = EncoderConfig::default().with_force_kf(vec![cut as u32]);
        let mut p = prof();
        let enc = encode_video(&v, &cfg, &mut p).unwrap();

        // Whole-stream roundtrip still matches the encoder recon.
        let dec = decode_video(&enc.bitstream, &mut p).unwrap();
        for (i, (d, e)) in dec.frames.iter().zip(enc.recon.iter()).enumerate() {
            assert_eq!(d, e, "frame {i} decode != encoder recon");
        }

        // Walk the records: header is 17 bytes, then per-record
        // ftype u8 + display u16 LE + qp u8 + len u32 LE + payload.
        let data = &enc.bitstream.data;
        let mut pos = 17usize;
        let mut idr_seen = false;
        let mut tail = Vec::new(); // records with display >= cut, rebased
        while pos < data.len() {
            let ftype = data[pos];
            let display = usize::from(u16::from_le_bytes([data[pos + 1], data[pos + 2]]));
            let len =
                u32::from_le_bytes([data[pos + 4], data[pos + 5], data[pos + 6], data[pos + 7]])
                    as usize;
            let rec_end = pos + 8 + len;
            if display == cut {
                assert_eq!(ftype, 3, "forced cut must be coded as an IDR record");
                idr_seen = true;
            }
            if display >= cut {
                assert!(idr_seen, "segment records must start at the IDR");
                let mut rec = data[pos..rec_end].to_vec();
                let rebased = (display - cut) as u16;
                rec[1..3].copy_from_slice(&rebased.to_le_bytes());
                tail.extend_from_slice(&rec);
            }
            pos = rec_end;
        }
        assert!(idr_seen, "IDR record missing");

        // Standalone stream: original header with frame_count patched.
        let mut seg = data[..17].to_vec();
        seg[10..12].copy_from_slice(&((n - cut) as u16).to_le_bytes());
        seg.extend_from_slice(&tail);
        let out = decode_video(&Bitstream { data: seg }, &mut p).unwrap();
        assert_eq!(out.frames.len(), n - cut);
        for (i, f) in out.frames.iter().enumerate() {
            assert_eq!(
                f,
                &enc.recon[cut + i],
                "standalone frame {i} != whole-clip recon {}",
                cut + i
            );
        }
    }

    #[test]
    fn empty_force_kf_leaves_bitstream_unchanged() {
        let v = tiny_video("girl");
        let mut p1 = prof();
        let base = encode_video(&v, &EncoderConfig::default(), &mut p1).unwrap();
        let mut p2 = prof();
        let cfg = EncoderConfig::default().with_force_kf(Vec::new());
        let same = encode_video(&v, &cfg, &mut p2).unwrap();
        assert_eq!(base.bitstream, same.bitstream);
    }

    #[test]
    fn corrupted_payload_errors_not_panics() {
        let v = tiny_video("cat");
        let mut p = prof();
        let enc = encode_video(&v, &EncoderConfig::default(), &mut p).unwrap();
        let mut data = enc.bitstream.data.clone();
        // Flip bits through the middle of the payload area.
        let n = data.len();
        for i in (n / 2..n / 2 + 64).step_by(3) {
            if i < n {
                data[i] ^= 0x5A;
            }
        }
        let bs = Bitstream { data };
        // Must terminate with Ok (garbage that still parses) or Err — no panic.
        let _ = decode_video(&bs, &mut p);
    }
}
