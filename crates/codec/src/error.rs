use std::error::Error;
use std::fmt;

use vtx_frame::FrameError;
use vtx_uarch::ConfigError;

/// Errors produced by the encoder and decoder.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// An encoder configuration value is out of its legal range.
    InvalidConfig {
        /// Parameter name.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The input video has no frames.
    EmptyVideo,
    /// The bitstream is truncated or corrupt.
    CorruptBitstream {
        /// Byte offset (approximate) where parsing failed.
        offset: usize,
        /// What was being parsed.
        context: &'static str,
    },
    /// The bitstream magic/version does not match.
    BadMagic,
    /// A frame-model error surfaced during encoding or decoding.
    Frame(FrameError),
    /// A simulator configuration error surfaced while profiling.
    Sim(ConfigError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidConfig { what, detail } => {
                write!(f, "invalid encoder configuration: {what}: {detail}")
            }
            CodecError::EmptyVideo => write!(f, "input video has no frames"),
            CodecError::CorruptBitstream { offset, context } => {
                write!(
                    f,
                    "corrupt bitstream near byte {offset} while reading {context}"
                )
            }
            CodecError::BadMagic => write!(f, "not a vtx bitstream (bad magic)"),
            CodecError::Frame(e) => write!(f, "frame error: {e}"),
            CodecError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Frame(e) => Some(e),
            CodecError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for CodecError {
    fn from(e: FrameError) -> Self {
        CodecError::Frame(e)
    }
}

/// Structured decode-path error: what exactly went wrong while parsing a
/// bitstream. The decoder uses this internally (and it converts into
/// [`CodecError`] for the public API), so hardening work can distinguish
/// truncation from corruption from resource-exhaustion attacks without
/// changing the public decode signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The stream ended before the structure being parsed was complete.
    Truncated {
        /// Byte offset where more data was expected.
        offset: usize,
        /// What was being parsed.
        context: &'static str,
    },
    /// A parsed value is impossible (bad mode index, out-of-range motion
    /// vector, inconsistent frame table, …).
    Corrupt {
        /// Byte offset (approximate) where parsing failed.
        offset: usize,
        /// What was being parsed.
        context: &'static str,
    },
    /// The magic/version prefix does not identify a vtx bitstream.
    BadMagic,
    /// The header declares geometry large enough to exhaust memory; the
    /// decoder refuses rather than attempting the allocation.
    Oversized {
        /// Declared luma width.
        width: usize,
        /// Declared luma height.
        height: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated { offset, context } => {
                write!(f, "bitstream truncated at byte {offset} in {context}")
            }
            DecodeError::Corrupt { offset, context } => {
                write!(f, "corrupt bitstream near byte {offset} in {context}")
            }
            DecodeError::BadMagic => write!(f, "not a vtx bitstream (bad magic)"),
            DecodeError::Oversized { width, height } => {
                write!(
                    f,
                    "declared geometry {width}x{height} exceeds decoder limits"
                )
            }
        }
    }
}

impl Error for DecodeError {}

impl From<DecodeError> for CodecError {
    fn from(e: DecodeError) -> Self {
        match e {
            DecodeError::Truncated { offset, context }
            | DecodeError::Corrupt { offset, context } => {
                CodecError::CorruptBitstream { offset, context }
            }
            DecodeError::BadMagic => CodecError::BadMagic,
            DecodeError::Oversized { .. } => CodecError::CorruptBitstream {
                offset: 5,
                context: "oversized geometry",
            },
        }
    }
}

impl From<ConfigError> for CodecError {
    fn from(e: ConfigError) -> Self {
        CodecError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CodecError::CorruptBitstream {
            offset: 12,
            context: "mb_type",
        };
        assert!(e.to_string().contains("12"));
        assert!(e.source().is_none());
        let e = CodecError::Frame(FrameError::GeometryMismatch);
        assert!(e.source().is_some());
    }

    #[test]
    fn from_conversions() {
        let e: CodecError = FrameError::GeometryMismatch.into();
        assert!(matches!(e, CodecError::Frame(_)));
        let e: CodecError = ConfigError::Zero { what: "x" }.into();
        assert!(matches!(e, CodecError::Sim(_)));
    }

    #[test]
    fn decode_error_maps_into_codec_error() {
        let e: CodecError = DecodeError::Truncated {
            offset: 9,
            context: "frame header",
        }
        .into();
        assert_eq!(
            e,
            CodecError::CorruptBitstream {
                offset: 9,
                context: "frame header"
            }
        );
        let e: CodecError = DecodeError::BadMagic.into();
        assert_eq!(e, CodecError::BadMagic);
        let big = DecodeError::Oversized {
            width: 65520,
            height: 65520,
        };
        assert!(big.to_string().contains("65520"));
        let e: CodecError = big.into();
        assert!(matches!(e, CodecError::CorruptBitstream { .. }));
    }
}
