use std::error::Error;
use std::fmt;

use vtx_frame::FrameError;
use vtx_uarch::ConfigError;

/// Errors produced by the encoder and decoder.
#[derive(Debug, Clone, PartialEq)]
pub enum CodecError {
    /// An encoder configuration value is out of its legal range.
    InvalidConfig {
        /// Parameter name.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The input video has no frames.
    EmptyVideo,
    /// The bitstream is truncated or corrupt.
    CorruptBitstream {
        /// Byte offset (approximate) where parsing failed.
        offset: usize,
        /// What was being parsed.
        context: &'static str,
    },
    /// The bitstream magic/version does not match.
    BadMagic,
    /// A frame-model error surfaced during encoding or decoding.
    Frame(FrameError),
    /// A simulator configuration error surfaced while profiling.
    Sim(ConfigError),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::InvalidConfig { what, detail } => {
                write!(f, "invalid encoder configuration: {what}: {detail}")
            }
            CodecError::EmptyVideo => write!(f, "input video has no frames"),
            CodecError::CorruptBitstream { offset, context } => {
                write!(
                    f,
                    "corrupt bitstream near byte {offset} while reading {context}"
                )
            }
            CodecError::BadMagic => write!(f, "not a vtx bitstream (bad magic)"),
            CodecError::Frame(e) => write!(f, "frame error: {e}"),
            CodecError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl Error for CodecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CodecError::Frame(e) => Some(e),
            CodecError::Sim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FrameError> for CodecError {
    fn from(e: FrameError) -> Self {
        CodecError::Frame(e)
    }
}

impl From<ConfigError> for CodecError {
    fn from(e: ConfigError) -> Self {
        CodecError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CodecError::CorruptBitstream {
            offset: 12,
            context: "mb_type",
        };
        assert!(e.to_string().contains("12"));
        assert!(e.source().is_none());
        let e = CodecError::Frame(FrameError::GeometryMismatch);
        assert!(e.source().is_some());
    }

    #[test]
    fn from_conversions() {
        let e: CodecError = FrameError::GeometryMismatch.into();
        assert!(matches!(e, CodecError::Frame(_)));
        let e: CodecError = ConfigError::Zero { what: "x" }.into();
        assert!(matches!(e, CodecError::Sim(_)));
    }
}
