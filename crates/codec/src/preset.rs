//! The ten x264 presets — Table II of the paper, reproduced option by option.

use serde::{Deserialize, Serialize};

use crate::config::{EncoderConfig, PartitionSet};
use crate::types::MeMethod;

/// An x264 speed/quality preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Preset {
    /// Fastest, lowest quality/compression.
    Ultrafast,
    /// Very fast with minimal analysis.
    Superfast,
    /// Fast with hexagon search.
    Veryfast,
    /// Slightly more refs/subme.
    Faster,
    /// Balanced fast setting.
    Fast,
    /// The default.
    Medium,
    /// More refs, deeper analysis.
    Slow,
    /// UMH search, all partitions.
    Slower,
    /// Very deep analysis, 16 refs.
    Veryslow,
    /// Exhaustive search; impractical but maximal.
    Placebo,
}

impl Preset {
    /// All presets from fastest to slowest (the x-axis of Figure 6).
    pub const ALL: [Preset; 10] = [
        Preset::Ultrafast,
        Preset::Superfast,
        Preset::Veryfast,
        Preset::Faster,
        Preset::Fast,
        Preset::Medium,
        Preset::Slow,
        Preset::Slower,
        Preset::Veryslow,
        Preset::Placebo,
    ];

    /// The preset's x264 name.
    pub fn name(self) -> &'static str {
        match self {
            Preset::Ultrafast => "ultrafast",
            Preset::Superfast => "superfast",
            Preset::Veryfast => "veryfast",
            Preset::Faster => "faster",
            Preset::Fast => "fast",
            Preset::Medium => "medium",
            Preset::Slow => "slow",
            Preset::Slower => "slower",
            Preset::Veryslow => "veryslow",
            Preset::Placebo => "placebo",
        }
    }

    /// Parses an x264 preset name.
    pub fn from_name(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.name() == s)
    }

    /// The encoder configuration for this preset, per Table II.
    ///
    /// The paper's preset experiments fix `crf = 23` and `refs = 3` (those
    /// two are studied separately); this method returns the preset's *own*
    /// Table II refs value — override it for the Figure 6 experiment.
    pub fn config(self) -> EncoderConfig {
        let mut c = EncoderConfig::default();
        match self {
            Preset::Ultrafast => {
                c.aq_mode = 0;
                c.b_adapt = 0;
                c.bframes = 0;
                c.deblock = None;
                c.me = MeMethod::Dia;
                c.merange = 16;
                c.partitions = PartitionSet::none();
                c.refs = 1;
                c.scenecut = 0;
                c.subme = 0;
                c.trellis = 0;
                c.cabac = false;
            }
            Preset::Superfast => {
                c.me = MeMethod::Dia;
                c.partitions = PartitionSet::intra_only();
                c.refs = 1;
                c.subme = 1;
                c.trellis = 0;
            }
            Preset::Veryfast => {
                c.refs = 1;
                c.subme = 2;
                c.trellis = 0;
            }
            Preset::Faster => {
                c.refs = 2;
                c.subme = 4;
            }
            Preset::Fast => {
                c.refs = 2;
                c.subme = 6;
            }
            Preset::Medium => {}
            Preset::Slow => {
                c.refs = 5;
                c.subme = 8;
                c.trellis = 2;
            }
            Preset::Slower => {
                c.b_adapt = 2;
                c.me = MeMethod::Umh;
                c.partitions = PartitionSet::all();
                c.refs = 8;
                c.subme = 9;
                c.trellis = 2;
            }
            Preset::Veryslow => {
                c.b_adapt = 2;
                c.bframes = 8;
                c.me = MeMethod::Umh;
                c.merange = 24;
                c.partitions = PartitionSet::all();
                c.refs = 16;
                c.subme = 10;
                c.trellis = 2;
            }
            Preset::Placebo => {
                c.b_adapt = 2;
                c.bframes = 16;
                c.me = MeMethod::Tesa;
                c.merange = 24;
                c.partitions = PartitionSet::all();
                c.refs = 16;
                c.subme = 11;
                c.trellis = 2;
            }
        }
        c
    }

    /// Like [`Preset::config`], with wavefront worker threads on top
    /// (`0` = auto). Threading never changes the bitstream or profiler
    /// counts, so presets stay comparable at any thread count.
    pub fn config_threaded(self, threads: u32) -> EncoderConfig {
        self.config().with_threads(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_spot_checks() {
        let uf = Preset::Ultrafast.config();
        assert_eq!(uf.aq_mode, 0);
        assert_eq!(uf.bframes, 0);
        assert_eq!(uf.me, MeMethod::Dia);
        assert_eq!(uf.refs, 1);
        assert_eq!(uf.subme, 0);
        assert_eq!(uf.scenecut, 0);
        assert!(uf.deblock.is_none());
        assert!(!uf.cabac);

        let m = Preset::Medium.config();
        assert_eq!(m.refs, 3);
        assert_eq!(m.subme, 7);
        assert_eq!(m.trellis, 1);
        assert_eq!(m.me, MeMethod::Hex);
        assert_eq!(m.scenecut, 40);

        let vs = Preset::Veryslow.config();
        assert_eq!(vs.refs, 16);
        assert_eq!(vs.merange, 24);
        assert_eq!(vs.bframes, 8);
        assert_eq!(vs.me, MeMethod::Umh);

        let p = Preset::Placebo.config();
        assert_eq!(p.me, MeMethod::Tesa);
        assert_eq!(p.bframes, 16);
        assert_eq!(p.subme, 11);
    }

    #[test]
    fn all_presets_validate() {
        for p in Preset::ALL {
            p.config()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        }
    }

    #[test]
    fn effort_is_monotone_in_subme() {
        let submes: Vec<u8> = Preset::ALL.iter().map(|p| p.config().subme).collect();
        let mut sorted = submes.clone();
        sorted.sort_unstable();
        assert_eq!(submes, sorted);
    }

    #[test]
    fn threaded_config_only_changes_threads() {
        for p in Preset::ALL {
            let threaded = p.config_threaded(4);
            assert_eq!(threaded.threads, 4);
            let mut back = threaded.clone();
            back.threads = p.config().threads;
            assert_eq!(back, p.config(), "{}", p.name());
            threaded.validate().unwrap();
        }
    }

    #[test]
    fn names_roundtrip() {
        for p in Preset::ALL {
            assert_eq!(Preset::from_name(p.name()), Some(p));
        }
        assert_eq!(Preset::from_name("warp9"), None);
    }
}
