//! Kernel identities and code-footprint descriptors for instrumentation.
//!
//! Every hot function of the codec is declared here with an approximate hot
//! code footprint (sized after the corresponding x264/FFmpeg routines). The
//! profiler lays these kernels out in a synthetic text section; instruction
//! cache, iTLB and branch behaviour follow from that layout (see
//! `vtx-trace`).
//!
//! The kernel table is identical under wavefront-parallel encoding: worker
//! threads record the same kernel events a serial encode would emit and the
//! stitcher replays them in raster order, so per-kernel instruction and
//! cycle attribution does not depend on `EncoderConfig::threads`.

use vtx_trace::KernelDesc;

/// Look-ahead (scene cut / B-placement) analysis.
pub const K_LOOKAHEAD: usize = 0;
/// Rate-control bookkeeping.
pub const K_RC: usize = 1;
/// Macroblock-encode control (mode decision driver).
pub const K_MBENC: usize = 2;
/// Intra 16x16 prediction.
pub const K_IPRED16: usize = 3;
/// Intra 4x4 prediction.
pub const K_IPRED4: usize = 4;
/// Intra mode decision.
pub const K_IDECIDE: usize = 5;
/// Diamond motion search.
pub const K_ME_DIA: usize = 6;
/// Hexagon motion search.
pub const K_ME_HEX: usize = 7;
/// Uneven multi-hexagon motion search.
pub const K_ME_UMH: usize = 8;
/// Exhaustive motion search.
pub const K_ME_ESA: usize = 9;
/// Block SAD evaluation.
pub const K_SAD: usize = 10;
/// Block SATD evaluation.
pub const K_SATD: usize = 11;
/// Half-pel interpolation.
pub const K_HPEL: usize = 12;
/// Motion compensation (full-pel copy / average).
pub const K_MC: usize = 13;
/// Forward 4x4 transform.
pub const K_DCT: usize = 14;
/// Inverse 4x4 transform.
pub const K_IDCT: usize = 15;
/// Quantization.
pub const K_QUANT: usize = 16;
/// Dequantization.
pub const K_DEQUANT: usize = 17;
/// Trellis RD quantization.
pub const K_TRELLIS: usize = 18;
/// CAVLC residual coding.
pub const K_CAVLC: usize = 19;
/// CABAC residual coding.
pub const K_CABAC: usize = 20;
/// Reconstruction (prediction + residual merge).
pub const K_RECON: usize = 21;
/// In-loop deblocking filter.
pub const K_DEBLOCK: usize = 22;
/// Headers and frame-level bookkeeping.
pub const K_HEADER: usize = 23;
/// Decoder: bitstream parsing / entropy decode.
pub const K_DEC_PARSE: usize = 24;
/// Decoder: prediction (intra + motion compensation).
pub const K_DEC_PRED: usize = 25;
/// Decoder: residual reconstruction.
pub const K_DEC_RECON: usize = 26;
/// Decoder: in-loop deblocking.
pub const K_DEC_DEBLOCK: usize = 27;

const KERNELS: &[KernelDesc] = &[
    KernelDesc::new("lookahead", 2048),
    KernelDesc::new("ratecontrol", 1536),
    KernelDesc::new("mbenc_ctrl", 5120),
    KernelDesc::new("intra_pred16", 1536),
    KernelDesc::new("intra_pred4", 2048),
    KernelDesc::new("intra_decide", 2048),
    KernelDesc::new("me_dia", 1024),
    KernelDesc::new("me_hex", 1536),
    KernelDesc::new("me_umh", 4096),
    KernelDesc::new("me_esa", 2048),
    KernelDesc::new("sad", 1024),
    KernelDesc::new("satd", 1536),
    KernelDesc::new("hpel_interp", 3072),
    KernelDesc::new("mc", 1024),
    KernelDesc::new("dct4x4", 1280),
    KernelDesc::new("idct4x4", 1280),
    KernelDesc::new("quant", 1024),
    KernelDesc::new("dequant", 768),
    KernelDesc::new("trellis", 4096),
    KernelDesc::new("cavlc", 3072),
    KernelDesc::new("cabac", 5120),
    KernelDesc::new("recon", 1024),
    KernelDesc::new("deblock", 4096),
    KernelDesc::new("header", 512),
    KernelDesc::new("dec_parse", 3072),
    KernelDesc::new("dec_pred", 2048),
    KernelDesc::new("dec_recon", 1024),
    KernelDesc::new("dec_deblock", 2048),
];

/// The codec's full kernel table, indexed by the `K_*` constants.
pub fn kernel_table() -> &'static [KernelDesc] {
    KERNELS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_index_the_table() {
        let t = kernel_table();
        assert_eq!(t[K_LOOKAHEAD].name, "lookahead");
        assert_eq!(t[K_CABAC].name, "cabac");
        assert_eq!(t[K_DEC_DEBLOCK].name, "dec_deblock");
        assert_eq!(t.len(), K_DEC_DEBLOCK + 1);
    }

    #[test]
    fn hot_footprint_exceeds_l1i() {
        // The whole point: the interleaved hot working set must not fit in a
        // 32 KiB L1i, like real x264.
        let total: u32 = kernel_table().iter().map(|k| k.code_bytes).sum();
        assert!(total > 48 * 1024, "total hot code {total} bytes");
    }
}
