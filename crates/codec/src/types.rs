//! Fundamental codec value types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantization parameter, 0..=51 (H.264 range; 0 = near-lossless).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Qp(u8);

impl Qp {
    /// Maximum legal QP.
    pub const MAX: u8 = 51;

    /// Creates a QP, clamping into `0..=51`.
    pub fn new(v: i32) -> Self {
        Qp(v.clamp(0, i32::from(Self::MAX)) as u8)
    }

    /// The raw value.
    #[inline]
    pub fn value(self) -> u8 {
        self.0
    }

    /// Quantizer step scale exponent (`qp / 6`).
    #[inline]
    pub fn shift(self) -> u8 {
        self.0 / 6
    }

    /// Table row within a step octave (`qp % 6`).
    #[inline]
    pub fn rem(self) -> usize {
        usize::from(self.0 % 6)
    }

    /// RD Lagrange multiplier for this QP (x264's `0.85 * 2^((qp-12)/3)`).
    pub fn lambda(self) -> f64 {
        0.85 * 2f64.powf((f64::from(self.0) - 12.0) / 3.0)
    }

    /// Quantizer step size (`0.625 * 2^(qp/6)`, the H.264 scale).
    pub fn qstep(self) -> f64 {
        0.625 * 2f64.powf(f64::from(self.0) / 6.0)
    }

    /// Chroma QP derived from the luma QP (simplified mapping).
    pub fn chroma(self) -> Qp {
        Qp(self.0.saturating_sub(3))
    }
}

impl fmt::Display for Qp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qp{}", self.0)
    }
}

/// Picture type, §II-A of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FrameType {
    /// Intra-coded: no reference to other frames.
    I,
    /// Predicted from past reference frames.
    P,
    /// Bidirectionally predicted from a past and a future reference.
    B,
}

impl fmt::Display for FrameType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameType::I => "I",
            FrameType::P => "P",
            FrameType::B => "B",
        };
        f.write_str(s)
    }
}

/// Integer-pixel motion estimation method (§II-B.2), in increasing order of
/// search effort.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MeMethod {
    /// Small diamond search.
    Dia,
    /// Hexagon search (x264's default).
    Hex,
    /// Uneven multi-hexagon search.
    Umh,
    /// Exhaustive search over the motion range.
    Esa,
    /// Exhaustive search with SATD cost (placebo's `tesa`).
    Tesa,
}

impl MeMethod {
    /// Parses the x264 option spelling.
    pub fn from_option(s: &str) -> Option<Self> {
        match s {
            "dia" => Some(MeMethod::Dia),
            "hex" => Some(MeMethod::Hex),
            "umh" => Some(MeMethod::Umh),
            "esa" => Some(MeMethod::Esa),
            "tesa" => Some(MeMethod::Tesa),
            _ => None,
        }
    }

    /// x264 option spelling.
    pub fn as_option(self) -> &'static str {
        match self {
            MeMethod::Dia => "dia",
            MeMethod::Hex => "hex",
            MeMethod::Umh => "umh",
            MeMethod::Esa => "esa",
            MeMethod::Tesa => "tesa",
        }
    }
}

/// A motion vector in half-pel units.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct MotionVector {
    /// Horizontal component, half-pel units.
    pub x: i16,
    /// Vertical component, half-pel units.
    pub y: i16,
}

impl MotionVector {
    /// Zero vector.
    pub const ZERO: MotionVector = MotionVector { x: 0, y: 0 };

    /// Creates a vector from half-pel components.
    pub fn new(x: i16, y: i16) -> Self {
        MotionVector { x, y }
    }

    /// Creates a vector from full-pel components.
    pub fn from_fullpel(x: i16, y: i16) -> Self {
        MotionVector { x: x * 2, y: y * 2 }
    }

    /// Full-pel part (floor division by 2).
    pub fn fullpel(self) -> (i16, i16) {
        (self.x >> 1, self.y >> 1)
    }

    /// Whether either component has a half-pel fraction.
    pub fn has_halfpel(self) -> bool {
        (self.x | self.y) & 1 != 0
    }

    /// Approximate coded size of this vector relative to a predictor, in
    /// bits (exp-Golomb length of both difference components).
    pub fn cost_bits(self, pred: MotionVector) -> u32 {
        se_len(i32::from(self.x) - i32::from(pred.x))
            + se_len(i32::from(self.y) - i32::from(pred.y))
    }

    /// Component-wise median of three vectors — the H.264 MV predictor.
    pub fn median(a: MotionVector, b: MotionVector, c: MotionVector) -> MotionVector {
        MotionVector {
            x: median3(a.x, b.x, c.x),
            y: median3(a.y, b.y, c.y),
        }
    }
}

fn median3(a: i16, b: i16, c: i16) -> i16 {
    a.max(b.min(c)).min(b.max(c))
}

/// Bit length of a signed exp-Golomb code for `v`.
pub fn se_len(v: i32) -> u32 {
    let mapped = if v <= 0 {
        (-2 * v) as u32
    } else {
        (2 * v - 1) as u32
    };
    ue_len(mapped)
}

/// Bit length of an unsigned exp-Golomb code for `v`.
pub fn ue_len(v: u32) -> u32 {
    2 * (32 - (v + 1).leading_zeros()) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qp_clamps() {
        assert_eq!(Qp::new(-5).value(), 0);
        assert_eq!(Qp::new(23).value(), 23);
        assert_eq!(Qp::new(99).value(), 51);
        assert_eq!(Qp::new(23).shift(), 3);
        assert_eq!(Qp::new(23).rem(), 5);
    }

    #[test]
    fn lambda_grows_with_qp() {
        assert!(Qp::new(40).lambda() > Qp::new(20).lambda());
        // qp 12 -> exactly 0.85
        assert!((Qp::new(12).lambda() - 0.85).abs() < 1e-12);
    }

    #[test]
    fn mv_median_predictor() {
        let m = MotionVector::median(
            MotionVector::new(2, 10),
            MotionVector::new(4, -2),
            MotionVector::new(8, 0),
        );
        assert_eq!(m, MotionVector::new(4, 0));
    }

    #[test]
    fn mv_fullpel_and_halfpel() {
        let v = MotionVector::new(5, -4);
        assert!(v.has_halfpel());
        assert_eq!(v.fullpel(), (2, -2));
        let w = MotionVector::from_fullpel(3, -1);
        assert_eq!(w, MotionVector::new(6, -2));
        assert!(!w.has_halfpel());
    }

    #[test]
    fn exp_golomb_lengths() {
        assert_eq!(ue_len(0), 1);
        assert_eq!(ue_len(1), 3);
        assert_eq!(ue_len(2), 3);
        assert_eq!(ue_len(3), 5);
        assert_eq!(se_len(0), 1);
        assert_eq!(se_len(1), 3);
        assert_eq!(se_len(-1), 3);
        assert_eq!(se_len(2), 5);
    }

    #[test]
    fn mv_cost_zero_for_predicted() {
        let v = MotionVector::new(6, -2);
        assert_eq!(v.cost_bits(v), 2);
        assert!(v.cost_bits(MotionVector::ZERO) > 2);
    }

    #[test]
    fn me_method_option_roundtrip() {
        for m in [
            MeMethod::Dia,
            MeMethod::Hex,
            MeMethod::Umh,
            MeMethod::Esa,
            MeMethod::Tesa,
        ] {
            assert_eq!(MeMethod::from_option(m.as_option()), Some(m));
        }
        assert_eq!(MeMethod::from_option("full"), None);
        assert!(MeMethod::Dia < MeMethod::Esa);
    }

    #[test]
    fn frame_type_display() {
        assert_eq!(FrameType::I.to_string(), "I");
        assert_eq!(FrameType::B.to_string(), "B");
    }
}
