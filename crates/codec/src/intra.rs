//! Intra prediction (spatial redundancy elimination, §II-A of the paper).
//!
//! 16x16 prediction offers DC / vertical / horizontal / plane modes; 4x4
//! prediction offers DC / vertical / horizontal / diagonal-down-left /
//! diagonal-down-right. Prediction always reads the *reconstructed*
//! neighbours (what the decoder will have), never the source.

use vtx_frame::Plane;

use crate::transform::satd4x4;

/// Intra 16x16 luma prediction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intra16Mode {
    /// Average of available neighbours.
    Dc,
    /// Copy the row above.
    Vertical,
    /// Copy the column to the left.
    Horizontal,
    /// First-order plane fit of the border samples.
    Plane,
}

impl Intra16Mode {
    /// All modes, in coded order.
    pub const ALL: [Intra16Mode; 4] = [
        Intra16Mode::Dc,
        Intra16Mode::Vertical,
        Intra16Mode::Horizontal,
        Intra16Mode::Plane,
    ];

    /// Coded index of the mode.
    pub fn index(self) -> u32 {
        match self {
            Intra16Mode::Dc => 0,
            Intra16Mode::Vertical => 1,
            Intra16Mode::Horizontal => 2,
            Intra16Mode::Plane => 3,
        }
    }

    /// Mode for a coded index.
    pub fn from_index(i: u32) -> Option<Self> {
        Self::ALL.get(i as usize).copied()
    }
}

/// Intra 4x4 luma prediction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intra4Mode {
    /// Average of available neighbours.
    Dc,
    /// Copy the row above.
    Vertical,
    /// Copy the column to the left.
    Horizontal,
    /// Diagonal down-left (H.264 mode 3): 45-degree edges from the top row.
    DiagDownLeft,
    /// Diagonal down-right (H.264 mode 4): 45-degree edges through the corner.
    DiagDownRight,
}

impl Intra4Mode {
    /// All modes, in coded order.
    pub const ALL: [Intra4Mode; 5] = [
        Intra4Mode::Dc,
        Intra4Mode::Vertical,
        Intra4Mode::Horizontal,
        Intra4Mode::DiagDownLeft,
        Intra4Mode::DiagDownRight,
    ];

    /// Coded index of the mode.
    pub fn index(self) -> u32 {
        match self {
            Intra4Mode::Dc => 0,
            Intra4Mode::Vertical => 1,
            Intra4Mode::Horizontal => 2,
            Intra4Mode::DiagDownLeft => 3,
            Intra4Mode::DiagDownRight => 4,
        }
    }

    /// Mode for a coded index.
    pub fn from_index(i: u32) -> Option<Self> {
        Self::ALL.get(i as usize).copied()
    }
}

/// Predicts a 16x16 luma block at pixel `(x, y)` from reconstructed
/// neighbours in `recon`.
pub fn predict16(recon: &Plane, x: usize, y: usize, mode: Intra16Mode) -> [u8; 256] {
    let top_avail = y > 0;
    let left_avail = x > 0;
    let mut out = [0u8; 256];
    match mode {
        Intra16Mode::Dc => {
            let dc = dc_value(recon, x, y, 16, top_avail, left_avail);
            out.fill(dc);
        }
        Intra16Mode::Vertical => {
            for col in 0..16 {
                let v = if top_avail {
                    recon.get_clamped((x + col) as isize, y as isize - 1)
                } else {
                    128
                };
                for row in 0..16 {
                    out[row * 16 + col] = v;
                }
            }
        }
        Intra16Mode::Horizontal => {
            for row in 0..16 {
                let v = if left_avail {
                    recon.get_clamped(x as isize - 1, (y + row) as isize)
                } else {
                    128
                };
                for col in 0..16 {
                    out[row * 16 + col] = v;
                }
            }
        }
        Intra16Mode::Plane => {
            if !top_avail || !left_avail {
                let dc = dc_value(recon, x, y, 16, top_avail, left_avail);
                out.fill(dc);
            } else {
                // Simplified plane fit: gradients from the border samples.
                let tl = i32::from(recon.get_clamped(x as isize - 1, y as isize - 1));
                let tr = i32::from(recon.get_clamped(x as isize + 15, y as isize - 1));
                let bl = i32::from(recon.get_clamped(x as isize - 1, y as isize + 15));
                let gh = (tr - tl) as f32 / 15.0;
                let gv = (bl - tl) as f32 / 15.0;
                for row in 0..16 {
                    for col in 0..16 {
                        let v = tl as f32 + gh * (col as f32 + 1.0) + gv * (row as f32 + 1.0);
                        out[row * 16 + col] = v.clamp(0.0, 255.0) as u8;
                    }
                }
            }
        }
    }
    out
}

/// Predicts a 4x4 luma block at pixel `(x, y)` from reconstructed neighbours.
pub fn predict4(recon: &Plane, x: usize, y: usize, mode: Intra4Mode) -> [u8; 16] {
    let top_avail = y > 0;
    let left_avail = x > 0;
    let mut out = [0u8; 16];
    match mode {
        Intra4Mode::Dc => {
            let dc = dc_value(recon, x, y, 4, top_avail, left_avail);
            out.fill(dc);
        }
        Intra4Mode::Vertical => {
            for col in 0..4 {
                let v = if top_avail {
                    recon.get_clamped((x + col) as isize, y as isize - 1)
                } else {
                    128
                };
                for row in 0..4 {
                    out[row * 4 + col] = v;
                }
            }
        }
        Intra4Mode::Horizontal => {
            for row in 0..4 {
                let v = if left_avail {
                    recon.get_clamped(x as isize - 1, (y + row) as isize)
                } else {
                    128
                };
                for col in 0..4 {
                    out[row * 4 + col] = v;
                }
            }
        }
        Intra4Mode::DiagDownLeft => {
            if !top_avail {
                out.fill(dc_value(recon, x, y, 4, top_avail, left_avail));
            } else {
                // Above samples extended to the top-right (clamped reads
                // edge-extend when the neighbours don't exist).
                let a: [i32; 8] = std::array::from_fn(|i| {
                    i32::from(recon.get_clamped((x + i) as isize, y as isize - 1))
                });
                for r in 0..4 {
                    for c in 0..4 {
                        let i = r + c;
                        let v = if i < 6 {
                            (a[i] + 2 * a[i + 1] + a[i + 2] + 2) >> 2
                        } else {
                            (a[6] + 3 * a[7] + 2) >> 2
                        };
                        out[r * 4 + c] = v as u8;
                    }
                }
            }
        }
        Intra4Mode::DiagDownRight => {
            if !top_avail || !left_avail {
                out.fill(dc_value(recon, x, y, 4, top_avail, left_avail));
            } else {
                // Border b[0..9]: left column bottom-to-top, the corner,
                // then the above row left-to-right.
                let mut b = [0i32; 9];
                for (i, v) in b.iter_mut().take(4).enumerate() {
                    *v = i32::from(recon.get_clamped(x as isize - 1, (y + 3 - i) as isize));
                }
                b[4] = i32::from(recon.get_clamped(x as isize - 1, y as isize - 1));
                for i in 0..4 {
                    b[5 + i] = i32::from(recon.get_clamped((x + i) as isize, y as isize - 1));
                }
                for r in 0..4 {
                    for c in 0..4 {
                        let d = 4 + c as i32 - r as i32; // diagonal index into b
                        let i = d as usize;
                        out[r * 4 + c] = ((b[i - 1] + 2 * b[i] + b[i + 1] + 2) >> 2) as u8;
                    }
                }
            }
        }
    }
    out
}

/// DC prediction for an 8x8 chroma block at chroma coordinates `(cx, cy)`.
pub fn predict_chroma_dc(recon: &Plane, cx: usize, cy: usize) -> [u8; 64] {
    let dc = dc_value(recon, cx, cy, 8, cy > 0, cx > 0);
    [dc; 64]
}

fn dc_value(
    recon: &Plane,
    x: usize,
    y: usize,
    size: usize,
    top_avail: bool,
    left_avail: bool,
) -> u8 {
    let mut sum = 0u32;
    let mut n = 0u32;
    if top_avail {
        for col in 0..size {
            sum += u32::from(recon.get_clamped((x + col) as isize, y as isize - 1));
        }
        n += size as u32;
    }
    if left_avail {
        for row in 0..size {
            sum += u32::from(recon.get_clamped(x as isize - 1, (y + row) as isize));
        }
        n += size as u32;
    }
    match (sum + n / 2).checked_div(n) {
        Some(avg) => avg as u8,
        None => 128,
    }
}

/// SATD between a 16x16 source block and a 16x16 prediction.
pub fn satd16(src: &[u8; 256], pred: &[u8; 256]) -> u32 {
    let mut total = 0;
    let mut a = [0u8; 16];
    let mut b = [0u8; 16];
    for by in 0..4 {
        for bx in 0..4 {
            for r in 0..4 {
                for c in 0..4 {
                    a[r * 4 + c] = src[(by * 4 + r) * 16 + bx * 4 + c];
                    b[r * 4 + c] = pred[(by * 4 + r) * 16 + bx * 4 + c];
                }
            }
            total += satd4x4(&a, &b);
        }
    }
    total
}

/// Chooses the cheapest 16x16 intra mode by SATD against the source block.
/// Returns the mode, its prediction, and its cost.
pub fn decide16(
    src: &[u8; 256],
    recon: &Plane,
    x: usize,
    y: usize,
) -> (Intra16Mode, [u8; 256], u32) {
    let mut best = (Intra16Mode::Dc, [0u8; 256], u32::MAX);
    for mode in Intra16Mode::ALL {
        let pred = predict16(recon, x, y, mode);
        let cost = satd16(src, &pred);
        if cost < best.2 {
            best = (mode, pred, cost);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_plane() -> Plane {
        let mut p = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                p.set(x, y, (x * 2 + y) as u8);
            }
        }
        p
    }

    #[test]
    fn dc_without_neighbours_is_midgray() {
        let p = gradient_plane();
        let pred = predict16(&p, 0, 0, Intra16Mode::Dc);
        assert!(pred.iter().all(|&v| v == 128));
    }

    #[test]
    fn vertical_copies_top_row() {
        let p = gradient_plane();
        let pred = predict16(&p, 16, 16, Intra16Mode::Vertical);
        for col in 0..16 {
            let top = p.get(16 + col, 15);
            for row in 0..16 {
                assert_eq!(pred[row * 16 + col], top);
            }
        }
    }

    #[test]
    fn horizontal_copies_left_col() {
        let p = gradient_plane();
        let pred = predict4(&p, 8, 8, Intra4Mode::Horizontal);
        for row in 0..4 {
            let left = p.get(7, 8 + row);
            for col in 0..4 {
                assert_eq!(pred[row * 4 + col], left);
            }
        }
    }

    #[test]
    fn plane_mode_tracks_gradient() {
        let p = gradient_plane();
        let pred = predict16(&p, 16, 16, Intra16Mode::Plane);
        // On a perfect linear ramp, the plane prediction should be close.
        let mut max_err = 0i32;
        for row in 0..16 {
            for col in 0..16 {
                let actual = i32::from(p.get(16 + col, 16 + row));
                let e = (i32::from(pred[row * 16 + col]) - actual).abs();
                max_err = max_err.max(e);
            }
        }
        assert!(max_err <= 4, "max_err {max_err}");
    }

    #[test]
    fn decide_picks_plane_on_ramp() {
        let p = gradient_plane();
        let mut src = [0u8; 256];
        for row in 0..16 {
            for col in 0..16 {
                src[row * 16 + col] = p.get(16 + col, 16 + row);
            }
        }
        let (mode, _, cost) = decide16(&src, &p, 16, 16);
        assert_eq!(mode, Intra16Mode::Plane);
        let dc_pred = predict16(&p, 16, 16, Intra16Mode::Dc);
        assert!(cost < satd16(&src, &dc_pred));
    }

    #[test]
    fn diag_down_left_follows_top_diagonal() {
        // A hard diagonal edge in the top row propagates down-left.
        let mut p = Plane::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                p.set(x, y, if x + y < 12 { 40 } else { 200 });
            }
        }
        let pred = predict4(&p, 8, 8, Intra4Mode::DiagDownLeft);
        // Along a 45-degree diagonal, predicted values are constant.
        assert_eq!(pred[2], pred[4 + 1]);
        assert_eq!(pred[4 + 1], pred[2 * 4]);
    }

    #[test]
    fn diag_down_right_is_constant_on_diagonals() {
        let mut p = Plane::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                p.set(x, y, ((x * 13 + y * 31) % 200) as u8);
            }
        }
        let pred = predict4(&p, 8, 8, Intra4Mode::DiagDownRight);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(
                    pred[r * 4 + c],
                    pred[(r + 1) * 4 + c + 1],
                    "({r},{c}) diagonal constancy"
                );
            }
        }
    }

    #[test]
    fn diagonal_modes_fall_back_to_dc_without_neighbours() {
        let p = Plane::new(16, 16);
        let ddl = predict4(&p, 4, 0, Intra4Mode::DiagDownLeft);
        assert!(ddl.iter().all(|&v| v == ddl[0]));
        let ddr = predict4(&p, 0, 4, Intra4Mode::DiagDownRight);
        assert!(ddr.iter().all(|&v| v == ddr[0]));
    }

    #[test]
    fn mode_index_roundtrip() {
        for m in Intra16Mode::ALL {
            assert_eq!(Intra16Mode::from_index(m.index()), Some(m));
        }
        for m in Intra4Mode::ALL {
            assert_eq!(Intra4Mode::from_index(m.index()), Some(m));
        }
        assert_eq!(Intra16Mode::from_index(9), None);
        assert_eq!(Intra4Mode::from_index(5), None);
    }

    #[test]
    fn chroma_dc_is_flat() {
        let p = gradient_plane();
        let pred = predict_chroma_dc(&p, 8, 8);
        assert!(pred.iter().all(|&v| v == pred[0]));
    }
}
