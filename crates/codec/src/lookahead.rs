//! Look-ahead analysis: scene-cut detection and adaptive B-frame placement.
//!
//! Decides the frame type (I/P/B) for every display frame before encoding
//! starts, and derives the coding order (anchors precede the B frames that
//! reference them).

use vtx_frame::Video;
use vtx_trace::Profiler;

use crate::config::EncoderConfig;
use crate::instr::K_LOOKAHEAD;
use crate::types::FrameType;

/// Output of the look-ahead pass.
#[derive(Debug, Clone, PartialEq)]
pub struct LookaheadResult {
    /// Frame types in display order.
    pub types: Vec<FrameType>,
    /// Display indices in coding order (anchors before their B frames).
    pub coding_order: Vec<usize>,
    /// Per-frame complexity estimate (mean absolute luma delta), display order.
    pub complexity: Vec<f64>,
}

/// Scene-cut floor: a mean absolute luma delta below `480 / scenecut`
/// never triggers an I frame (x264's default `scenecut=40` maps to 12).
fn cut_threshold(scenecut: u8) -> f64 {
    480.0 / f64::from(scenecut.max(1))
}

/// Analyzes the clip and assigns frame types and coding order.
pub fn analyze(video: &Video, cfg: &EncoderConfig, prof: &mut Profiler) -> LookaheadResult {
    let n = video.frames.len();
    let mut complexity = Vec::with_capacity(n);
    let mut cuts = vec![false; n];

    // Per-frame complexity.
    for i in 0..n {
        let c = if i == 0 {
            mean_abs_deviation(&video.frames[0])
        } else {
            video.frames[i]
                .mean_abs_luma_diff(&video.frames[i - 1])
                .expect("frames share geometry")
        };
        complexity.push(c);
    }

    // Adaptive cut detection: a cut is a *spike* relative to the clip's
    // typical inter-frame activity (x264 compares intra vs inter cost, so
    // steady fast motion does not read as a cut), with an absolute floor.
    // In fast-moving content a hard cut only roughly doubles the luma delta
    // (the scene is mostly new pixels either way), so the spike multiplier
    // must sit well below 2x; continuous motion stays near 1x the median.
    if cfg.scenecut > 0 && n > 1 {
        let mut sorted: Vec<f64> = complexity[1..].to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let threshold = cut_threshold(cfg.scenecut).max(1.5 * median);
        for i in 1..n {
            cuts[i] = complexity[i] > threshold;
            prof.branch(0, cuts[i]);
        }
    }
    // Look-ahead reads every frame once at low resolution; charge ~1/4 of
    // the luma rows.
    prof.kernel(K_LOOKAHEAD, n as u32, 600, 24);

    // Frame type assignment.
    let mut types = vec![FrameType::P; n];
    types[0] = FrameType::I;
    for i in 1..n {
        if cuts[i] || (cfg.keyint > 0 && i % usize::from(cfg.keyint.max(1)) == 0) {
            types[i] = FrameType::I;
        }
    }
    // Forced IDR cuts (segment boundaries). Set before B assignment so
    // `assign_b_frames` never plans a run across a boundary.
    for &k in &cfg.force_kf {
        let k = k as usize;
        if k < n {
            types[k] = FrameType::I;
        }
    }

    if cfg.bframes > 0 {
        assign_b_frames(&mut types, &complexity, cfg, prof);
    }

    // The final frame cannot be a B frame (no future anchor).
    if let Some(last) = types.last_mut() {
        if *last == FrameType::B {
            *last = FrameType::P;
        }
    }

    // Closed GOP at every forced cut: a B frame just before the boundary
    // would reference the boundary I as its future anchor and be coded
    // *after* it, interleaving the previous segment's records into the new
    // one. Demote the trailing B run to P so each segment's records are
    // contiguous and reference nothing across the cut.
    for &k in &cfg.force_kf {
        let k = k as usize;
        if k == 0 || k >= n {
            continue;
        }
        let mut j = k;
        while j > 0 && types[j - 1] == FrameType::B {
            types[j - 1] = FrameType::P;
            j -= 1;
        }
    }

    // Coding order: each anchor, then the B frames that precede it in
    // display order (and follow the previous anchor).
    let mut coding_order = Vec::with_capacity(n);
    let mut pending_b: Vec<usize> = Vec::new();
    for (i, t) in types.iter().enumerate() {
        if *t == FrameType::B {
            pending_b.push(i);
        } else {
            coding_order.push(i);
            coding_order.append(&mut pending_b);
        }
    }
    // Defensive: trailing Bs (should not happen after the fix-up above).
    coding_order.append(&mut pending_b);

    LookaheadResult {
        types,
        coding_order,
        complexity,
    }
}

fn assign_b_frames(
    types: &mut [FrameType],
    complexity: &[f64],
    cfg: &EncoderConfig,
    prof: &mut Profiler,
) {
    let n = types.len();
    let max_run = usize::from(cfg.bframes);
    let avg = (complexity.iter().sum::<f64>() / n as f64).max(1e-6);

    let mut i = 1;
    while i < n {
        if types[i] == FrameType::I {
            i += 1;
            continue;
        }
        // Candidate run of B frames starting at i, ending before the next
        // anchor candidate.
        let mut limit = 0;
        while limit < max_run && i + limit < n - 1 && types[i + limit] != FrameType::I {
            limit += 1;
        }
        let run = match cfg.b_adapt {
            0 => limit,
            1 => {
                // Fast heuristic: stop the B run at the first busy frame.
                let mut r = 0;
                while r < limit {
                    let busy = complexity[i + r] > 1.5 * avg;
                    prof.branch(1, busy);
                    if busy {
                        break;
                    }
                    r += 1;
                }
                r
            }
            _ => {
                // "Optimal": evaluate every candidate run length by an
                // aggregate cost model (B frames are cheap unless motion is
                // high; long runs pay a propagation penalty).
                let mut best = (0usize, f64::MAX);
                for r in 0..=limit {
                    let mut cost = 0.0;
                    for k in 0..r {
                        cost += complexity[i + k] * 0.6 + avg * 0.05 * (k as f64);
                    }
                    if i + r < n {
                        cost += complexity[i + r]; // the anchor pays full price
                    }
                    prof.branch(2, cost < best.1);
                    if cost < best.1 {
                        best = (r, cost);
                    }
                }
                prof.kernel(K_LOOKAHEAD, (limit + 1) as u32, 220, 8);
                best.0
            }
        };
        for k in 0..run {
            types[i + k] = FrameType::B;
        }
        i += run + 1;
    }
}

fn mean_abs_deviation(frame: &vtx_frame::Frame) -> f64 {
    let samples = frame.y().samples();
    let mean = samples.iter().map(|&v| u64::from(v)).sum::<u64>() / samples.len() as u64;
    let mad: u64 = samples
        .iter()
        .map(|&v| u64::from(v.abs_diff(mean as u8)))
        .sum();
    mad as f64 / samples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_frame::{synth, vbench};
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    fn video(name: &str) -> Video {
        synth::generate(&vbench::by_name(name).unwrap(), 3)
    }

    #[test]
    fn first_frame_is_i() {
        let v = video("desktop");
        let r = analyze(&v, &EncoderConfig::default(), &mut prof());
        assert_eq!(r.types[0], FrameType::I);
        assert_eq!(r.types.len(), v.frames.len());
        assert_eq!(r.coding_order.len(), v.frames.len());
    }

    #[test]
    fn coding_order_is_permutation_with_anchors_first() {
        let v = video("cricket");
        let r = analyze(&v, &EncoderConfig::default(), &mut prof());
        let mut seen = vec![false; v.frames.len()];
        for &i in &r.coding_order {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Every B frame must appear in coding order after some later anchor.
        let pos: Vec<usize> = {
            let mut p = vec![0; v.frames.len()];
            for (k, &i) in r.coding_order.iter().enumerate() {
                p[i] = k;
            }
            p
        };
        for (i, t) in r.types.iter().enumerate() {
            if *t == FrameType::B {
                let anchor_after = (i + 1..v.frames.len())
                    .find(|&j| r.types[j] != FrameType::B)
                    .expect("B frame must have a future anchor");
                assert!(
                    pos[anchor_after] < pos[i],
                    "anchor {anchor_after} must be coded before B {i}"
                );
            }
        }
    }

    #[test]
    fn no_b_frames_when_disabled() {
        let v = video("cricket");
        let mut cfg = EncoderConfig::default();
        cfg.bframes = 0;
        let r = analyze(&v, &cfg, &mut prof());
        assert!(r.types.iter().all(|&t| t != FrameType::B));
        // Coding order equals display order with no Bs.
        assert_eq!(r.coding_order, (0..v.frames.len()).collect::<Vec<_>>());
    }

    #[test]
    fn b_frames_appear_with_fixed_pattern() {
        let v = video("desktop"); // calm content
        let mut cfg = EncoderConfig::default();
        cfg.b_adapt = 0;
        cfg.bframes = 2;
        cfg.scenecut = 0;
        let r = analyze(&v, &cfg, &mut prof());
        let b_count = r.types.iter().filter(|&&t| t == FrameType::B).count();
        assert!(b_count > 0, "fixed pattern must emit B frames");
        // No run of Bs longer than bframes.
        let mut run = 0;
        for t in &r.types {
            if *t == FrameType::B {
                run += 1;
                assert!(run <= 2);
            } else {
                run = 0;
            }
        }
    }

    #[test]
    fn high_entropy_video_gets_scene_cuts() {
        let v = video("hall"); // entropy 7.7: frequent cuts
        let r = analyze(&v, &EncoderConfig::default(), &mut prof());
        let i_count = r.types.iter().filter(|&&t| t == FrameType::I).count();
        assert!(i_count >= 2, "expected scene-cut I frames, got {i_count}");
    }

    #[test]
    fn scenecut_zero_disables_detection() {
        let v = video("hall");
        let mut cfg = EncoderConfig::default();
        cfg.scenecut = 0;
        let r = analyze(&v, &cfg, &mut prof());
        let i_count = r.types.iter().filter(|&&t| t == FrameType::I).count();
        assert_eq!(i_count, 1);
    }

    #[test]
    fn last_frame_never_b() {
        for name in ["desktop", "cricket", "hall"] {
            let v = video(name);
            let r = analyze(&v, &EncoderConfig::default(), &mut prof());
            assert_ne!(*r.types.last().unwrap(), FrameType::B, "{name}");
        }
    }

    #[test]
    fn forced_cuts_are_i_frames_with_closed_gops() {
        let v = video("desktop");
        let n = v.frames.len();
        let cuts: Vec<u32> = vec![n as u32 / 3, 2 * n as u32 / 3];
        let cfg = EncoderConfig::default().with_force_kf(cuts.clone());
        let r = analyze(&v, &cfg, &mut prof());
        let pos: Vec<usize> = {
            let mut p = vec![0; n];
            for (k, &i) in r.coding_order.iter().enumerate() {
                p[i] = k;
            }
            p
        };
        for &k in &cuts {
            let k = k as usize;
            assert_eq!(r.types[k], FrameType::I, "forced index {k} must be I");
            // Closed GOP: the frame before the cut is an anchor, so no
            // record from before the cut is coded after the cut's I frame.
            assert_ne!(r.types[k - 1], FrameType::B, "no B straddles cut {k}");
            for i in 0..k {
                assert!(
                    pos[i] < pos[k],
                    "frame {i} coded after forced cut {k} — segment not contiguous"
                );
            }
        }
    }

    #[test]
    fn out_of_range_forced_cuts_are_ignored() {
        let v = video("desktop");
        let cfg = EncoderConfig::default().with_force_kf(vec![10_000]);
        let base = analyze(&v, &EncoderConfig::default(), &mut prof());
        let forced = analyze(&v, &cfg, &mut prof());
        assert_eq!(base.types, forced.types);
        assert_eq!(base.coding_order, forced.coding_order);
    }
}
