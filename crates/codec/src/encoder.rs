//! The video encoder: frame-type decision, rate control, mode decision,
//! motion search, residual coding, reconstruction and in-loop filtering.
//!
//! The entry point is [`encode_video`]; see the [crate documentation](crate)
//! for an end-to-end example. Everything the encoder does is mirrored
//! bit-exactly by [`crate::decoder::decode_video`].

use serde::{Deserialize, Serialize};

use vtx_frame::{Frame, Video};
use vtx_trace::Profiler;

use crate::bufs::CodecBufs;
use crate::config::{EncoderConfig, RateControlMode};
use crate::deblock::deblock_frame;
use crate::entropy::cabac::CabacWriter;
use crate::entropy::cavlc::CavlcWriter;
use crate::entropy::{ctx, EntropyWriter};
use crate::instr::{
    K_CABAC, K_CAVLC, K_DEBLOCK, K_HEADER, K_IDECIDE, K_IPRED16, K_IPRED4, K_MBENC, K_MC, K_RC,
    K_SAD, K_SATD,
};
use crate::intra::{decide16, predict4, predict_chroma_dc, Intra4Mode};
use crate::lookahead::{analyze, LookaheadResult};
use crate::mbenc::{encode_chroma_residual, encode_luma_residual, write_coef_block};
use crate::mc::{average, mc_luma};
use crate::me::{search_ref, MeParams, MeResult, RefView};
use crate::quant::{aq_offset, dequant4x4, quant4x4};
use crate::ratecontrol::RateControl;
use crate::transform::{dct4x4, idct4x4, sad, Block4x4};
use crate::trellis::trellis_quant;
use crate::types::{ue_len, FrameType, MotionVector, Qp};
use crate::wavefront::{
    wavefront_workers, DirectSink, FrameShared, MbClass, MbCounts, MbRecord, MbSink, PoisonGuard,
    RecordSink, WfShared,
};
use crate::CodecError;

/// Magic bytes opening every vtx bitstream.
pub const MAGIC: &[u8; 4] = b"VTXB";
/// Bitstream format version.
pub const VERSION: u8 = 1;

/// A serialized encoded video.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    /// The raw container bytes (header + per-frame payloads).
    pub data: Vec<u8>,
}

impl Bitstream {
    /// Total size in bits.
    pub fn total_bits(&self) -> u64 {
        self.data.len() as u64 * 8
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// Bitrate in kbit/s for a clip of the given duration.
    pub fn bitrate_kbps(&self, duration_secs: f64) -> f64 {
        if duration_secs <= 0.0 {
            return 0.0;
        }
        self.total_bits() as f64 / duration_secs / 1000.0
    }
}

/// Per-frame encoding statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameStat {
    /// Display-order index.
    pub display: u32,
    /// Frame type.
    pub ftype: FrameType,
    /// Base QP used.
    pub qp: u8,
    /// Coded bits for this frame.
    pub bits: u64,
}

/// Aggregate encoding statistics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EncodeStats {
    /// Per-frame records in coding order.
    pub frames: Vec<FrameStat>,
    /// Macroblocks coded as skip.
    pub skip_mbs: u64,
    /// Macroblocks coded intra.
    pub intra_mbs: u64,
    /// Macroblocks coded inter.
    pub inter_mbs: u64,
}

impl EncodeStats {
    /// Total coded bits across frames.
    pub fn total_bits(&self) -> u64 {
        self.frames.iter().map(|f| f.bits).sum()
    }
}

/// Everything an encode produces.
#[derive(Debug, Clone)]
pub struct EncodeResult {
    /// The serialized bitstream.
    pub bitstream: Bitstream,
    /// Reconstructed frames in display order (identical to decoder output).
    pub recon: Vec<Frame>,
    /// Statistics.
    pub stats: EncodeStats,
}

/// Encodes a raw video clip.
///
/// For [`RateControlMode::TwoPassAbr`] this runs a quick first pass to
/// measure per-frame complexity — doubling the work, exactly as the paper
/// describes for 2-pass ABR — and then the real encode.
///
/// # Errors
///
/// Returns [`CodecError::InvalidConfig`] for bad parameters,
/// [`CodecError::EmptyVideo`] for an empty clip, and
/// [`CodecError::InvalidConfig`] if frame dimensions are not multiples of 16.
pub fn encode_video(
    video: &Video,
    cfg: &EncoderConfig,
    prof: &mut Profiler,
) -> Result<EncodeResult, CodecError> {
    cfg.validate()?;
    if video.frames.is_empty() {
        return Err(CodecError::EmptyVideo);
    }
    let w = video.frames[0].width();
    let h = video.frames[0].height();
    if !w.is_multiple_of(16) || !h.is_multiple_of(16) {
        return Err(CodecError::InvalidConfig {
            what: "dimensions",
            detail: format!("{w}x{h} not macroblock aligned"),
        });
    }

    if let RateControlMode::TwoPassAbr { .. } = cfg.rc {
        // First pass: fast settings, constant QP, no B adaptation cost.
        let mut p1 = cfg.clone();
        p1.rc = RateControlMode::Cqp(30);
        p1.subme = p1.subme.min(1);
        p1.me = crate::types::MeMethod::Dia;
        p1.refs = 1;
        p1.trellis = 0;
        p1.aq_mode = 0;
        let first = encode_inner(video, &p1, prof, None)?;
        let complexity: Vec<f64> = first.stats.frames.iter().map(|f| f.bits as f64).collect();
        encode_inner(video, cfg, prof, Some(complexity))
    } else {
        encode_inner(video, cfg, prof, None)
    }
}

pub(crate) struct Anchor {
    pub(crate) display: usize,
    pub(crate) frame: Frame,
    pub(crate) slot: usize,
}

struct EncoderState<'a> {
    cfg: &'a EncoderConfig,
    bufs: CodecBufs,
    mb_w: usize,
    mb_h: usize,
    anchors: Vec<Anchor>,
    next_slot: usize,
    global_mb: u64,
    stats: EncodeStats,
}

fn encode_inner(
    video: &Video,
    cfg: &EncoderConfig,
    prof: &mut Profiler,
    pass1: Option<Vec<f64>>,
) -> Result<EncodeResult, CodecError> {
    let w = video.frames[0].width();
    let h = video.frames[0].height();
    let la = analyze(video, cfg, prof);
    let mut rc = RateControl::new(cfg.rc, f64::from(video.spec.fps));
    if let Some(c) = pass1 {
        rc.set_pass1(c);
    }

    let pool = usize::from(cfg.refs) + 2;
    let addr_scale = (u64::from(video.spec.nominal_width) / w as u64).max(1) as u32;
    let bufs = CodecBufs::new(prof, w, h, video.frames.len(), pool, addr_scale);
    let mut st = EncoderState {
        cfg,
        bufs,
        mb_w: w / 16,
        mb_h: h / 16,
        anchors: Vec::new(),
        next_slot: 0,
        global_mb: 0,
        stats: EncodeStats::default(),
    };

    let mut data = Vec::new();
    data.extend_from_slice(MAGIC);
    data.push(VERSION);
    data.extend_from_slice(&(w as u16).to_le_bytes());
    data.extend_from_slice(&(h as u16).to_le_bytes());
    data.push(video.spec.fps.min(255) as u8);
    data.extend_from_slice(&(video.frames.len() as u16).to_le_bytes());
    let mut flags = 0u8;
    if cfg.cabac {
        flags |= 1;
    }
    if cfg.deblock.is_some() {
        flags |= 2;
    }
    data.push(flags);
    data.push(cfg.refs);
    let (da, db) = cfg.deblock.unwrap_or((0, 0));
    data.push(da as u8);
    data.push(db as u8);
    let scale = (u64::from(video.spec.nominal_width) / w as u64).max(1) as u8;
    data.push(scale);
    prof.kernel(K_HEADER, 1, 60, 0);

    let mut recon_frames: Vec<Option<Frame>> = vec![None; video.frames.len()];

    for (ci, &display) in la.coding_order.iter().enumerate() {
        let ftype = la.types[display];
        // Per-frame-type span: static name per arm so trace viewers group
        // I/P/B frames into separate rows.
        let _frame_span = vtx_telemetry::Span::enter_with(
            match ftype {
                FrameType::I => "frame/I",
                FrameType::P => "frame/P",
                FrameType::B => "frame/B",
            },
            |a| {
                a.u64("display", display as u64)
                    .u64("coding_index", ci as u64);
            },
        );
        let qp = rc.frame_qp(ftype, la.complexity[display], ci);
        prof.kernel(K_RC, 1, 140, 10);

        // A forced segment-boundary I frame is an IDR: drop every reference
        // anchor *before* encoding so nothing after the cut predicts across
        // it. The decoder mirrors this on frame-type byte 3.
        let forced_idr = ftype == FrameType::I && cfg.force_kf.contains(&(display as u32));
        if forced_idr {
            st.anchors.clear();
        }

        let (payload, recon, frame_qp) = if cfg.cabac {
            encode_frame(
                &mut st,
                video,
                display,
                ftype,
                qp,
                &la,
                &mut rc,
                prof,
                CabacWriter::new(),
            )?
        } else {
            encode_frame(
                &mut st,
                video,
                display,
                ftype,
                qp,
                &la,
                &mut rc,
                prof,
                CavlcWriter::new(),
            )?
        };

        let bits = payload.len() as u64 * 8;
        rc.end_frame(bits as f64);
        st.stats.frames.push(FrameStat {
            display: display as u32,
            ftype,
            qp: frame_qp.value(),
            bits,
        });

        data.push(match ftype {
            FrameType::I if forced_idr => 3u8,
            FrameType::I => 0u8,
            FrameType::P => 1,
            FrameType::B => 2,
        });
        data.extend_from_slice(&(display as u16).to_le_bytes());
        data.push(frame_qp.value());
        data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        prof.store_range(st.bufs.bitstream + data.len() as u64, payload.len() as u64);
        data.extend_from_slice(&payload);

        recon_frames[display] = Some(recon.clone());

        if ftype != FrameType::B {
            let slot = st.next_slot;
            st.next_slot = (st.next_slot + 1) % pool;
            st.anchors.push(Anchor {
                display,
                frame: recon,
                slot,
            });
            let keep = usize::from(cfg.refs) + 1;
            if st.anchors.len() > keep {
                st.anchors.drain(..st.anchors.len() - keep);
            }
        }
    }

    let recon: Vec<Frame> = recon_frames
        .into_iter()
        .map(|f| f.expect("every frame encoded"))
        .collect();

    Ok(EncodeResult {
        bitstream: Bitstream { data },
        recon,
        stats: st.stats,
    })
}

/// Builds (list0, list1) as indices into `anchors` for a frame at `display`.
pub(crate) fn ref_lists(anchors: &[Anchor], display: usize, refs: u8) -> (Vec<usize>, Vec<usize>) {
    let mut list0: Vec<usize> = (0..anchors.len())
        .filter(|&i| anchors[i].display < display)
        .collect();
    list0.sort_by(|&a, &b| anchors[b].display.cmp(&anchors[a].display));
    list0.truncate(usize::from(refs));
    let mut list1: Vec<usize> = (0..anchors.len())
        .filter(|&i| anchors[i].display > display)
        .collect();
    list1.sort_by(|&a, &b| anchors[a].display.cmp(&anchors[b].display));
    list1.truncate(1);
    (list0, list1)
}

/// Median MV predictor from already-coded neighbours.
pub(crate) fn mv_predictor(
    mvs: &[MotionVector],
    intra: &[bool],
    mb_w: usize,
    mb_x: usize,
    mb_y: usize,
) -> MotionVector {
    let get = |x: isize, y: isize| -> MotionVector {
        if x < 0 || y < 0 || x >= mb_w as isize {
            return MotionVector::ZERO;
        }
        let i = y as usize * mb_w + x as usize;
        if i >= mvs.len() || intra[i] {
            MotionVector::ZERO
        } else {
            mvs[i]
        }
    };
    let left = get(mb_x as isize - 1, mb_y as isize);
    let top = get(mb_x as isize, mb_y as isize - 1);
    let topright = get(mb_x as isize + 1, mb_y as isize - 1);
    MotionVector::median(left, top, topright)
}

fn extract_luma(frame: &Frame, mb_x: usize, mb_y: usize) -> [u8; 256] {
    let mut out = [0u8; 256];
    frame
        .y()
        .copy_block_clamped((mb_x * 16) as isize, (mb_y * 16) as isize, 16, 16, &mut out);
    out
}

fn extract_chroma(frame: &Frame, plane: usize, mb_x: usize, mb_y: usize) -> [u8; 64] {
    let mut out = [0u8; 64];
    let p = if plane == 0 { frame.u() } else { frame.v() };
    p.copy_block_clamped((mb_x * 8) as isize, (mb_y * 8) as isize, 8, 8, &mut out);
    out
}

/// P-skip / B-skip SAD threshold. The skip test compares the source block
/// against a *quantized* reconstruction, so the tolerable residual scales
/// with the quantizer step (its dead zone), not with the RD lambda: per
/// pixel, anything below ~0.35 qstep quantizes away.
fn skip_threshold(qp: Qp) -> u32 {
    (256.0 * 0.35 * qp.qstep()) as u32
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MbMode {
    P16 {
        ref_idx: u8,
        mv: MotionVector,
    },
    P8 {
        ref_idx: u8,
        mvs: [MotionVector; 4],
    },
    B16 {
        dir: u8, // 0 = fwd, 1 = bwd, 2 = bi
        fwd: MotionVector,
        bwd: MotionVector,
    },
    I16,
    I4,
}

/// Immutable per-frame context shared by every macroblock encode — and, in
/// the wavefront path, by every worker thread.
struct FrameCtx<'a> {
    cfg: &'a EncoderConfig,
    bufs: &'a CodecBufs,
    anchors: &'a [Anchor],
    src: &'a Frame,
    list0: Vec<usize>,
    list1: Vec<usize>,
    mb_w: usize,
    display: usize,
    ftype: FrameType,
    base_qp: Qp,
    avg_var: f64,
    lambda: f64,
    me_params: MeParams,
    mbs_total: u32,
    cur_slot: usize,
    /// First profiler sampling-unit index of this frame; units advance one
    /// per macroblock in raster order, exactly as in the serial encoder.
    unit_base: u64,
}

#[allow(clippy::too_many_arguments)]
fn encode_frame<W: EntropyWriter>(
    st: &mut EncoderState<'_>,
    video: &Video,
    display: usize,
    ftype: FrameType,
    base_qp: Qp,
    _la: &LookaheadResult,
    rc: &mut RateControl,
    prof: &mut Profiler,
    mut w: W,
) -> Result<(Vec<u8>, Frame, Qp), CodecError> {
    let cfg = st.cfg;
    let src = &video.frames[display];
    let width = src.width();
    let height = src.height();
    let (list0, list1) = ref_lists(&st.anchors, display, cfg.refs);
    let mbs_total = (st.mb_w * st.mb_h) as u32;

    // Average luma variance for AQ.
    let avg_var = if cfg.aq_mode == 1 {
        let mut acc = 0f64;
        for mb_y in 0..st.mb_h {
            for mb_x in 0..st.mb_w {
                acc += f64::from(src.y().block_variance(
                    (mb_x * 16) as isize,
                    (mb_y * 16) as isize,
                    16,
                    16,
                ));
            }
        }
        (acc / f64::from(mbs_total)).max(1.0)
    } else {
        1.0
    };

    let lambda = base_qp.lambda();
    let fc = FrameCtx {
        cfg,
        bufs: &st.bufs,
        anchors: &st.anchors,
        src,
        list0,
        list1,
        mb_w: st.mb_w,
        display,
        ftype,
        base_qp,
        avg_var,
        lambda,
        me_params: MeParams {
            method: cfg.me,
            merange: i32::from(cfg.merange),
            subme: cfg.subme,
            lambda,
        },
        mbs_total,
        cur_slot: st.next_slot % st.bufs.ref_pool.len(),
        unit_base: st.global_mb,
    };

    // CBR corrects the quantizer per MB against bits actually written so
    // far — an inherently serial feedback loop — so it stays on the serial
    // path; every other mode can go wavefront without changing a bit.
    let per_mb_feedback = matches!(rc.mode(), RateControlMode::Cbr { .. });
    let workers = wavefront_workers(cfg, st.mb_w, st.mb_h, per_mb_feedback);

    let (counts, mut recon) = if workers <= 1 {
        let mut fs = FrameShared {
            recon: Frame::new(width, height),
            mvs: vec![MotionVector::ZERO; st.mb_w * st.mb_h],
            intra_map: vec![false; st.mb_w * st.mb_h],
        };
        let mut counts = MbCounts::default();
        let mut sink = DirectSink::new(&mut w, base_qp);
        for mb_y in 0..st.mb_h {
            for mb_x in 0..st.mb_w {
                let class = encode_mb(
                    &fc,
                    &mut fs.recon,
                    &mut fs.mvs,
                    &mut fs.intra_map,
                    rc,
                    mb_x,
                    mb_y,
                    &mut sink,
                    prof,
                );
                counts.add(class);
                // Output-stream store pressure: one line per ~64 coded bits.
                prof.store(fc.bufs.bitstream + (sink.bits_estimate() as u64) / 8);
            }
        }
        (counts, fs.recon)
    } else {
        let (counts, fs) =
            encode_frame_wavefront(&fc, st.mb_h, workers, rc, &mut w, prof, width, height);
        (counts, fs.recon)
    };

    st.global_mb += u64::from(mbs_total);
    st.stats.skip_mbs += counts.skip;
    st.stats.intra_mbs += counts.intra;
    st.stats.inter_mbs += counts.inter;

    if let Some(offsets) = cfg.deblock {
        // Deblocking is per frame, not per macroblock: gate it on its own
        // sampling unit so sampled runs scale it correctly on average.
        prof.begin_unit(st.global_mb);
        st.global_mb += 1;
        deblock_frame(
            &mut recon,
            base_qp,
            offsets,
            prof,
            K_DEBLOCK,
            st.bufs.ref_pool[fc.cur_slot],
            st.bufs.scale(),
        );
    }

    Ok((w.finish(), recon, base_qp))
}

/// Wavefront-parallel frame encode. Workers claim macroblock rows under
/// the 2D dependency (row `r` may start column `x` once row `r - 1` has
/// published column `x + 1`) and record each macroblock's syntax and
/// profiler traffic; the main thread stitches the records in raster order
/// into the real entropy writer and profiler *while the wavefront is still
/// running*, so frame latency is the slower of the two, not their sum.
/// Output — bitstream, reconstruction and every simulated counter — is
/// bit-identical to the serial path.
#[allow(clippy::too_many_arguments)]
fn encode_frame_wavefront<W: EntropyWriter>(
    fc: &FrameCtx<'_>,
    mb_h: usize,
    workers: usize,
    rc: &RateControl,
    w: &mut W,
    prof: &mut Profiler,
    width: usize,
    height: usize,
) -> (MbCounts, FrameShared) {
    let wf = WfShared::new(Frame::new(width, height), fc.mb_w, mb_h);
    let shards: Vec<Profiler> = (0..workers).map(|_| prof.recording_shard()).collect();
    let mut counts = MbCounts::default();

    std::thread::scope(|s| {
        for (wi, mut shard) in shards.into_iter().enumerate() {
            let wf = &wf;
            s.spawn(move || {
                let _span = vtx_telemetry::Span::enter_with("wavefront/worker", |a| {
                    a.u64("worker", wi as u64);
                });
                let guard = PoisonGuard::new(&wf.poisoned);
                loop {
                    let row = wf.claim_row();
                    if row >= wf.mb_h {
                        break;
                    }
                    for mb_x in 0..wf.mb_w {
                        if row > 0 {
                            wf.wait_row(row - 1, (mb_x + 2).min(wf.mb_w) as u32);
                        }
                        let mut sink = RecordSink::new();
                        // SAFETY: wavefront discipline — this worker owns
                        // `row`, and the wait above ordered it after the
                        // publishes of every neighbour it reads.
                        let fs = unsafe { wf.frame_mut() };
                        let class = encode_mb(
                            fc,
                            &mut fs.recon,
                            &mut fs.mvs,
                            &mut fs.intra_map,
                            rc,
                            mb_x,
                            row,
                            &mut sink,
                            &mut shard,
                        );
                        wf.publish(
                            row,
                            mb_x,
                            MbRecord {
                                class,
                                syn: sink.into_cmds(),
                                events: shard.take_events(),
                            },
                        );
                    }
                }
                guard.disarm();
            });
        }

        // Stitch concurrently, in raster order: replay profiler events into
        // the real simulation and syntax into the real entropy writer.
        let mut sink = DirectSink::new(w, fc.base_qp);
        for mb_y in 0..mb_h {
            for mb_x in 0..fc.mb_w {
                wf.wait_row(mb_y, mb_x as u32 + 1);
                let rec = wf.take_record(mb_y, mb_x);
                prof.replay(&rec.events);
                rec.replay_syntax(&mut sink);
                counts.add(rec.class);
                // Output-stream store pressure, as in the serial path.
                prof.store(fc.bufs.bitstream + (sink.bits_estimate() as u64) / 8);
            }
        }
    });

    (counts, wf.into_inner())
}

/// Encodes one macroblock: mode decision, syntax (into the sink) and
/// reconstruction. Returns the macroblock's classification. The caller
/// charges the trailing output-stream store — it depends on the total bits
/// written so far, which in the wavefront path only the stitcher knows.
#[allow(clippy::too_many_arguments)]
fn encode_mb<S: MbSink>(
    fc: &FrameCtx<'_>,
    recon: &mut Frame,
    mvs: &mut [MotionVector],
    intra_map: &mut [bool],
    rc: &RateControl,
    mb_x: usize,
    mb_y: usize,
    w: &mut S,
    prof: &mut Profiler,
) -> MbClass {
    let cfg = fc.cfg;
    let src = fc.src;
    let ftype = fc.ftype;
    let list0 = &fc.list0;
    let list1 = &fc.list1;
    let lambda = fc.lambda;
    let cur_slot = fc.cur_slot;
    let mb_i = mb_y * fc.mb_w + mb_x;
    prof.begin_unit(fc.unit_base + mb_i as u64);
    prof.kernel(K_MBENC, 1, 180, 6);

    let src_y = extract_luma(src, mb_x, mb_y);
    let src_u = extract_chroma(src, 0, mb_x, mb_y);
    let src_v = extract_chroma(src, 1, mb_x, mb_y);
    for row in 0..16 {
        prof.load(fc.bufs.src_luma_row(fc.display, mb_y * 16 + row) + (mb_x * 16) as u64);
    }

    // Per-MB QP: adaptive quantization + CBR feedback.
    let mut qp = fc.base_qp;
    if cfg.aq_mode == 1 {
        let var = src
            .y()
            .block_variance((mb_x * 16) as isize, (mb_y * 16) as isize, 16, 16);
        qp = Qp::new(i32::from(qp.value()) + aq_offset(var, fc.avg_var));
    }
    qp = rc.mb_qp_adjust(qp, mb_i as u32, fc.mbs_total, w.bits_estimate());

    let pred_mv = mv_predictor(mvs, intra_map, fc.mb_w, mb_x, mb_y);
    let x = mb_x * 16;
    let y = mb_y * 16;
    // Quantization tables and entropy-coder contexts are resident data.
    prof.load(fc.bufs.tables + u64::from(qp.value()) * 64);
    prof.load(fc.bufs.tables + 8192);

    // --- Early skip check (before any motion search, like x264) ---
    if ftype != FrameType::I && !list0.is_empty() {
        let anchor = &fc.anchors[list0[0]];
        let mut pb = [0u8; 256];
        mc_luma(anchor.frame.y(), pred_mv, x, y, 16, 16, &mut pb);
        let m = sad(&src_y, &pb);
        prof.kernel(K_SAD, 1, 64, 0);
        let early = m < skip_threshold(qp);
        prof.branch(7, early);
        if early {
            w.put_bit(ctx::SKIP, true);
            let anchor = &fc.anchors[list0[0]];
            write_inter_recon(
                fc,
                recon,
                anchor,
                None,
                pred_mv,
                MotionVector::ZERO,
                0,
                mb_x,
                mb_y,
                cur_slot,
                prof,
            );
            mvs[mb_i] = pred_mv;
            intra_map[mb_i] = false;
            return MbClass::Skip;
        }
    }

    // --- Inter candidates ---
    let mut inter: Option<(MbMode, u32, u32)> = None; // (mode, cost, metric_at_pred)
    if ftype == FrameType::P && !list0.is_empty() {
        let mut best: Option<(u8, MeResult)> = None;
        for (ri, &ai) in list0.iter().enumerate() {
            let anchor = &fc.anchors[ai];
            let rv = RefView {
                plane: anchor.frame.y(),
                vaddr: fc.bufs.ref_pool[anchor.slot],
                scale: fc.bufs.scale(),
            };
            let mut r = search_ref(&src_y, &rv, x, y, pred_mv, &fc.me_params, prof);
            r.cost = r
                .cost
                .saturating_add((lambda * f64::from(ue_len(ri as u32))) as u32);
            let better = best.is_none_or(|(_, b)| r.cost < b.cost);
            prof.branch(9, better);
            if better {
                best = Some((ri as u8, r));
            }
            // Early ref termination, like x264.
            if best.is_some_and(|(_, b)| b.metric < 128) {
                break;
            }
        }
        if let Some((ref_idx, r)) = best {
            let mut mode = MbMode::P16 { ref_idx, mv: r.mv };
            let mut cost = r.cost;
            // P8x8 refinement.
            if cfg.partitions.p8x8 && r.metric > 500 {
                if let Some((m8, c8)) = try_p8x8(
                    fc,
                    &src_y,
                    &fc.anchors[list0[ref_idx as usize]],
                    x,
                    y,
                    r.mv,
                    ref_idx,
                    lambda,
                    cfg,
                    prof,
                ) {
                    prof.branch(10, c8 < cost);
                    if c8 < cost {
                        mode = m8;
                        cost = c8;
                    }
                }
            }
            inter = Some((mode, cost, r.metric));
        }
    } else if ftype == FrameType::B && !list0.is_empty() && !list1.is_empty() {
        let fa = &fc.anchors[list0[0]];
        let ba = &fc.anchors[list1[0]];
        let fv = RefView {
            plane: fa.frame.y(),
            vaddr: fc.bufs.ref_pool[fa.slot],
            scale: fc.bufs.scale(),
        };
        let bv = RefView {
            plane: ba.frame.y(),
            vaddr: fc.bufs.ref_pool[ba.slot],
            scale: fc.bufs.scale(),
        };
        let rf = search_ref(&src_y, &fv, x, y, pred_mv, &fc.me_params, prof);
        let rb = search_ref(&src_y, &bv, x, y, MotionVector::ZERO, &fc.me_params, prof);
        // Bi-prediction: average both.
        let mut pf = [0u8; 256];
        let mut pb = [0u8; 256];
        mc_luma(fa.frame.y(), rf.mv, x, y, 16, 16, &mut pf);
        mc_luma(ba.frame.y(), rb.mv, x, y, 16, 16, &mut pb);
        let mut bi = [0u8; 256];
        average(&pf, &pb, &mut bi);
        let bi_metric = sad(&src_y, &bi);
        prof.kernel(K_SAD, 1, 64, 0);
        let bi_bits = rf.mv.cost_bits(pred_mv) + rb.mv.cost_bits(MotionVector::ZERO);
        let bi_cost = bi_metric.saturating_add((lambda * f64::from(bi_bits)) as u32);
        let (dir, cost, metric) = if rf.cost <= rb.cost && rf.cost <= bi_cost {
            (0u8, rf.cost, rf.metric)
        } else if rb.cost <= bi_cost {
            (1u8, rb.cost, rb.metric)
        } else {
            (2u8, bi_cost, bi_metric)
        };
        prof.branch(11, dir == 2);
        inter = Some((
            MbMode::B16 {
                dir,
                fwd: rf.mv,
                bwd: rb.mv,
            },
            cost,
            metric,
        ));
    }

    // --- Intra candidates ---
    let (i16_mode, i16_pred, i16_cost) = decide16(&src_y, recon.y(), x, y);
    prof.kernel(K_IPRED16, 4, 300, 8);
    prof.kernel(K_SATD, 64, 40, 0);
    prof.kernel(K_IDECIDE, 1, 120, 4);
    let i16_total = i16_cost + (lambda * 4.0) as u32;
    let i4_enabled = cfg.partitions.i4x4 || cfg.partitions.i8x8;
    let i4_cost_approx = if i4_enabled {
        approx_i4_cost(&src_y, prof) + (lambda * 40.0) as u32
    } else {
        u32::MAX
    };

    // --- Mode choice ---
    let intra_cost = i16_total.min(i4_cost_approx);
    let mode = match inter {
        Some((m, cost, _metric)) => {
            if intra_cost < cost {
                prof.branch(8, true);
                if i4_cost_approx < i16_total {
                    MbMode::I4
                } else {
                    MbMode::I16
                }
            } else {
                prof.branch(8, false);
                m
            }
        }
        None => {
            if i4_enabled && i4_cost_approx < i16_total {
                MbMode::I4
            } else {
                MbMode::I16
            }
        }
    };

    // --- Syntax + reconstruction ---
    if ftype != FrameType::I {
        w.put_bit(ctx::SKIP, false);
    }

    match mode {
        MbMode::P16 { ref_idx, mv } => {
            w.put_ue(ctx::MB_MODE, 0);
            if cfg.refs > 1 {
                w.put_ue(ctx::REF_IDX, u32::from(ref_idx));
            }
            w.put_se(ctx::MVD_X, i32::from(mv.x) - i32::from(pred_mv.x));
            w.put_se(ctx::MVD_Y, i32::from(mv.y) - i32::from(pred_mv.y));
            w.qp_delta(qp);
            let anchor = &fc.anchors[list0[usize::from(ref_idx)]];
            inter_residual(
                fc,
                w,
                recon,
                anchor,
                None,
                mv,
                MotionVector::ZERO,
                0,
                &src_y,
                &src_u,
                &src_v,
                qp,
                mb_x,
                mb_y,
                cur_slot,
                prof,
            );
            mvs[mb_i] = mv;
            intra_map[mb_i] = false;
            MbClass::Inter
        }
        MbMode::P8 { ref_idx, mvs: sub } => {
            w.put_ue(ctx::MB_MODE, 1);
            if cfg.refs > 1 {
                w.put_ue(ctx::REF_IDX, u32::from(ref_idx));
            }
            for mv in &sub {
                w.put_se(ctx::MVD_X, i32::from(mv.x) - i32::from(pred_mv.x));
                w.put_se(ctx::MVD_Y, i32::from(mv.y) - i32::from(pred_mv.y));
            }
            w.qp_delta(qp);
            let anchor = &fc.anchors[list0[usize::from(ref_idx)]];
            p8_residual(
                fc, w, recon, anchor, sub, &src_y, &src_u, &src_v, qp, mb_x, mb_y, cur_slot, prof,
            );
            mvs[mb_i] = sub[3];
            intra_map[mb_i] = false;
            MbClass::Inter
        }
        MbMode::B16 { dir, fwd, bwd } => {
            w.put_ue(ctx::MB_MODE, 0);
            w.put_ue(ctx::MB_MODE + 4, u32::from(dir));
            if dir != 1 {
                w.put_se(ctx::MVD_X, i32::from(fwd.x) - i32::from(pred_mv.x));
                w.put_se(ctx::MVD_Y, i32::from(fwd.y) - i32::from(pred_mv.y));
            }
            if dir != 0 {
                w.put_se(ctx::MVD_X, i32::from(bwd.x));
                w.put_se(ctx::MVD_Y, i32::from(bwd.y));
            }
            w.qp_delta(qp);
            let fa = &fc.anchors[list0[0]];
            let ba = &fc.anchors[list1[0]];
            inter_residual(
                fc,
                w,
                recon,
                fa,
                Some(ba),
                fwd,
                bwd,
                dir,
                &src_y,
                &src_u,
                &src_v,
                qp,
                mb_x,
                mb_y,
                cur_slot,
                prof,
            );
            mvs[mb_i] = if dir == 1 { MotionVector::ZERO } else { fwd };
            intra_map[mb_i] = false;
            MbClass::Inter
        }
        MbMode::I16 => {
            let mode_idx = if ftype == FrameType::I {
                0
            } else if ftype == FrameType::P {
                2
            } else {
                1
            };
            w.put_ue(ctx::MB_MODE, mode_idx);
            w.put_ue(ctx::IPRED, i16_mode.index());
            w.qp_delta(qp);
            intra16_residual(
                fc, w, recon, &i16_pred, &src_y, &src_u, &src_v, qp, mb_x, mb_y, cur_slot, prof,
            );
            mvs[mb_i] = MotionVector::ZERO;
            intra_map[mb_i] = true;
            MbClass::Intra
        }
        MbMode::I4 => {
            let mode_idx = if ftype == FrameType::I {
                1
            } else if ftype == FrameType::P {
                3
            } else {
                2
            };
            w.put_ue(ctx::MB_MODE, mode_idx);
            w.qp_delta(qp);
            intra4_encode(
                fc, w, recon, &src_y, &src_u, &src_v, qp, mb_x, mb_y, cur_slot, prof,
            );
            mvs[mb_i] = MotionVector::ZERO;
            intra_map[mb_i] = true;
            MbClass::Intra
        }
    }
}

/// Cheap I4x4 cost approximation for mode decision: per 4x4 block, the best
/// of DC/V/H prediction built from *source* neighbours.
fn approx_i4_cost(src: &[u8; 256], prof: &mut Profiler) -> u32 {
    let mut total = 0u32;
    for by in 0..4 {
        for bx in 0..4 {
            let mut blk = [0u8; 16];
            for r in 0..4 {
                for c in 0..4 {
                    blk[r * 4 + c] = src[(by * 4 + r) * 16 + bx * 4 + c];
                }
            }
            // DC from the block itself (proxy), V/H from neighbouring rows.
            let mean = (blk.iter().map(|&v| u32::from(v)).sum::<u32>() / 16) as i32;
            let dc_cost: u32 = blk
                .iter()
                .map(|&v| (i32::from(v) - mean).unsigned_abs())
                .sum();
            let mut v_cost = 0u32;
            let mut h_cost = 0u32;
            for r in 0..4 {
                for c in 0..4 {
                    let top = if by * 4 + r > 0 {
                        src[(by * 4 + r - 1) * 16 + bx * 4 + c]
                    } else {
                        128
                    };
                    let left = if bx * 4 + c > 0 {
                        src[(by * 4 + r) * 16 + bx * 4 + c - 1]
                    } else {
                        128
                    };
                    let cur = blk[r * 4 + c];
                    v_cost += u32::from(cur.abs_diff(top));
                    h_cost += u32::from(cur.abs_diff(left));
                }
            }
            total += dc_cost.min(v_cost).min(h_cost);
        }
    }
    prof.kernel(K_IPRED4, 16, 90, 2);
    total
}

#[allow(clippy::too_many_arguments)]
fn try_p8x8(
    fc: &FrameCtx<'_>,
    src_y: &[u8; 256],
    anchor: &Anchor,
    x: usize,
    y: usize,
    base_mv: MotionVector,
    ref_idx: u8,
    lambda: f64,
    cfg: &EncoderConfig,
    prof: &mut Profiler,
) -> Option<(MbMode, u32)> {
    let plane = anchor.frame.y();
    let mut total = 0u32;
    let mut sub_mvs = [MotionVector::ZERO; 4];
    // Extra refinement radius when p4x4 partitions are enabled (deeper
    // splits approximated as a wider sub-search).
    let radius = if cfg.partitions.p4x4 { 2i32 } else { 1 };
    let mut cands = 0u32;

    for q in 0..4 {
        let qx = x + (q % 2) * 8;
        let qy = y + (q / 2) * 8;
        let mut blk = [0u8; 64];
        for r in 0..8 {
            for c in 0..8 {
                blk[r * 8 + c] = src_y[((q / 2) * 8 + r) * 16 + (q % 2) * 8 + c];
            }
        }
        let (bx0, by0) = base_mv.fullpel();
        let mut best = (u32::MAX, MotionVector::ZERO);
        for dy in -radius..=radius {
            for dx in -radius..=radius {
                let mx = i32::from(bx0) + dx;
                let my = i32::from(by0) + dy;
                let mut pred = [0u8; 64];
                plane.copy_block_clamped(
                    qx as isize + mx as isize,
                    qy as isize + my as isize,
                    8,
                    8,
                    &mut pred,
                );
                prof.load(fc.bufs.ref_luma(anchor.slot, qx, qy));
                cands += 1;
                let mv = MotionVector::from_fullpel(mx as i16, my as i16);
                let cost = sad(&blk, &pred)
                    .saturating_add((lambda * f64::from(mv.cost_bits(base_mv))) as u32);
                if cost < best.0 {
                    best = (cost, mv);
                }
            }
        }
        total = total.saturating_add(best.0);
        sub_mvs[q] = best.1;
    }
    prof.kernel(crate::instr::K_ME_DIA, cands, 48, 0);
    // Partition overhead: three extra MVs plus mode bits.
    total = total.saturating_add((lambda * 24.0) as u32);
    Some((
        MbMode::P8 {
            ref_idx,
            mvs: sub_mvs,
        },
        total,
    ))
}

/// Builds the inter prediction for a whole MB (luma + chroma) and charges MC
/// events. `dir`: 0 = fwd only, 1 = bwd only, 2 = bi.
#[allow(clippy::too_many_arguments)]
fn build_inter_pred(
    fc: &FrameCtx<'_>,
    fwd_anchor: &Anchor,
    bwd_anchor: Option<&Anchor>,
    fwd: MotionVector,
    bwd: MotionVector,
    dir: u8,
    mb_x: usize,
    mb_y: usize,
    prof: &mut Profiler,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    let out = crate::mc::build_inter_pred_frames(
        &fwd_anchor.frame,
        bwd_anchor.map(|a| &a.frame),
        fwd,
        bwd,
        dir,
        mb_x,
        mb_y,
    );
    // Charge reference reads for each direction actually used.
    let charge = |anchor: &Anchor, mv: MotionVector, prof: &mut Profiler| {
        let (fx, fy) = mv.fullpel();
        for row in 0..16i64 {
            let ry = (mb_y as i64 * 16 + i64::from(fy) + row).clamp(0, fc.bufs.height() as i64 - 1)
                as usize;
            let rx =
                (mb_x as i64 * 16 + i64::from(fx)).clamp(0, fc.bufs.width() as i64 - 1) as usize;
            prof.load(fc.bufs.ref_luma(anchor.slot, rx, ry));
        }
        // Chroma planes are motion-compensated too (half the vector).
        for row in 0..8i64 {
            let ry = (mb_y as i64 * 8 + i64::from(fy / 2) + row)
                .clamp(0, fc.bufs.height() as i64 / 2 - 1) as usize;
            let rx = (mb_x as i64 * 8 + i64::from(fx / 2)).clamp(0, fc.bufs.width() as i64 / 2 - 1)
                as usize;
            prof.load(fc.bufs.ref_chroma(anchor.slot, 0, rx, ry));
            prof.load(fc.bufs.ref_chroma(anchor.slot, 1, rx, ry));
        }
    };
    if dir != 1 {
        charge(fwd_anchor, fwd, prof);
    }
    if dir != 0 {
        charge(bwd_anchor.unwrap_or(fwd_anchor), bwd, prof);
    }
    prof.kernel(K_MC, if dir == 2 { 2 } else { 1 }, 420, 24);
    out
}

/// Skip-mode reconstruction: prediction only, no residual.
#[allow(clippy::too_many_arguments)]
fn write_inter_recon(
    fc: &FrameCtx<'_>,
    recon: &mut Frame,
    fwd_anchor: &Anchor,
    bwd_anchor: Option<&Anchor>,
    fwd: MotionVector,
    bwd: MotionVector,
    dir: u8,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    let (py, pu, pv) =
        build_inter_pred(fc, fwd_anchor, bwd_anchor, fwd, bwd, dir, mb_x, mb_y, prof);
    commit_mb(fc, recon, &py, &pu, &pv, mb_x, mb_y, prof, cur_slot);
}

#[allow(clippy::too_many_arguments)]
fn inter_residual<W: EntropyWriter>(
    fc: &FrameCtx<'_>,
    w: &mut W,
    recon: &mut Frame,
    fwd_anchor: &Anchor,
    bwd_anchor: Option<&Anchor>,
    fwd: MotionVector,
    bwd: MotionVector,
    dir: u8,
    src_y: &[u8; 256],
    src_u: &[u8; 64],
    src_v: &[u8; 64],
    qp: Qp,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    let (py, pu, pv) =
        build_inter_pred(fc, fwd_anchor, bwd_anchor, fwd, bwd, dir, mb_x, mb_y, prof);
    let ek = if fc.cfg.cabac { K_CABAC } else { K_CAVLC };
    let (ry, _nz) = encode_luma_residual(
        src_y,
        &py,
        qp,
        false,
        fc.cfg.trellis,
        w,
        prof,
        fc.bufs.scratch,
        ek,
    );
    let (ru, _) = encode_chroma_residual(src_u, &pu, qp, false, fc.cfg.trellis, w, prof, ek);
    let (rv, _) = encode_chroma_residual(src_v, &pv, qp, false, fc.cfg.trellis, w, prof, ek);
    commit_mb(fc, recon, &ry, &ru, &rv, mb_x, mb_y, prof, cur_slot);
}

#[allow(clippy::too_many_arguments)]
fn p8_residual<W: EntropyWriter>(
    fc: &FrameCtx<'_>,
    w: &mut W,
    recon: &mut Frame,
    anchor: &Anchor,
    sub: [MotionVector; 4],
    src_y: &[u8; 256],
    src_u: &[u8; 64],
    src_v: &[u8; 64],
    qp: Qp,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    // Shared P8x8 prediction assembly (see mc::build_p8_pred).
    let (py, pu, pv) = crate::mc::build_p8_pred(&anchor.frame, &sub, mb_x, mb_y);
    for row in 0..16usize {
        prof.load(fc.bufs.ref_luma(anchor.slot, mb_x * 16, mb_y * 16 + row));
    }
    prof.kernel(K_MC, 4, 180, 12);

    let ek = if fc.cfg.cabac { K_CABAC } else { K_CAVLC };
    let (ry, _) = encode_luma_residual(
        src_y,
        &py,
        qp,
        false,
        fc.cfg.trellis,
        w,
        prof,
        fc.bufs.scratch,
        ek,
    );
    let (ru, _) = encode_chroma_residual(src_u, &pu, qp, false, fc.cfg.trellis, w, prof, ek);
    let (rv, _) = encode_chroma_residual(src_v, &pv, qp, false, fc.cfg.trellis, w, prof, ek);
    commit_mb(fc, recon, &ry, &ru, &rv, mb_x, mb_y, prof, cur_slot);
}

#[allow(clippy::too_many_arguments)]
fn intra16_residual<W: EntropyWriter>(
    fc: &FrameCtx<'_>,
    w: &mut W,
    recon: &mut Frame,
    pred_y: &[u8; 256],
    src_y: &[u8; 256],
    src_u: &[u8; 64],
    src_v: &[u8; 64],
    qp: Qp,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    let pu = predict_chroma_dc(recon.u(), mb_x * 8, mb_y * 8);
    let pv = predict_chroma_dc(recon.v(), mb_x * 8, mb_y * 8);
    let ek = if fc.cfg.cabac { K_CABAC } else { K_CAVLC };
    let (ry, _) = encode_luma_residual(
        src_y,
        pred_y,
        qp,
        true,
        fc.cfg.trellis,
        w,
        prof,
        fc.bufs.scratch,
        ek,
    );
    let (ru, _) = encode_chroma_residual(src_u, &pu, qp, true, fc.cfg.trellis, w, prof, ek);
    let (rv, _) = encode_chroma_residual(src_v, &pv, qp, true, fc.cfg.trellis, w, prof, ek);
    commit_mb(fc, recon, &ry, &ru, &rv, mb_x, mb_y, prof, cur_slot);
}

/// Encodes an I4x4 macroblock: per 4x4 block, choose a mode against the
/// *reconstructed* neighbours, code the residual, and commit immediately so
/// the next block predicts from real reconstruction. The decoder replays
/// this exactly.
#[allow(clippy::too_many_arguments)]
fn intra4_encode<W: EntropyWriter>(
    fc: &FrameCtx<'_>,
    w: &mut W,
    recon: &mut Frame,
    src_y: &[u8; 256],
    src_u: &[u8; 64],
    src_v: &[u8; 64],
    qp: Qp,
    mb_x: usize,
    mb_y: usize,
    cur_slot: usize,
    prof: &mut Profiler,
) {
    let x0 = mb_x * 16;
    let y0 = mb_y * 16;
    let mut cands = 0u32;
    for by in 0..4 {
        for bx in 0..4 {
            let x = x0 + bx * 4;
            let y = y0 + by * 4;
            let mut blk_src = [0u8; 16];
            for r in 0..4 {
                for c in 0..4 {
                    blk_src[r * 4 + c] = src_y[(by * 4 + r) * 16 + bx * 4 + c];
                }
            }
            // Mode decision on real reconstructed neighbours. x264 computes
            // all candidate SATDs and min-reduces, so the decision costs one
            // data-dependent branch per block, not one per candidate.
            let mut best = (Intra4Mode::Dc, [0u8; 16], u32::MAX);
            for mode in Intra4Mode::ALL {
                let pred = predict4(recon.y(), x, y, mode);
                let cost = crate::transform::satd4x4(&blk_src, &pred);
                cands += 1;
                if cost < best.2 {
                    best = (mode, pred, cost);
                }
            }
            prof.branch(12, best.0 != Intra4Mode::Dc);
            w.put_ue(ctx::IPRED + 1, best.0.index());

            // Residual for this 4x4.
            let mut res: Block4x4 = [0; 16];
            for i in 0..16 {
                res[i] = i32::from(blk_src[i]) - i32::from(best.1[i]);
            }
            dct4x4(&mut res);
            let nz = if fc.cfg.trellis > 0 {
                let out = trellis_quant(&mut res, qp, true, qp.lambda(), fc.cfg.trellis);
                crate::mbenc::emit_trellis_branches(prof, &out);
                out.nonzero
            } else {
                quant4x4(&mut res, qp, true)
            };
            let ek = if fc.cfg.cabac { K_CABAC } else { K_CAVLC };
            write_coef_block(w, &res, false, prof, ek);
            let mut out = best.1;
            if nz > 0 {
                dequant4x4(&mut res, qp);
                idct4x4(&mut res);
                for i in 0..16 {
                    out[i] = (i32::from(best.1[i]) + res[i]).clamp(0, 255) as u8;
                }
            }
            recon.y_mut().write_block(x, y, 4, 4, &out);
        }
    }
    prof.kernel(K_IPRED4, cands, 110, 2);
    prof.kernel(crate::instr::K_DCT, 16, 90, 2);
    prof.kernel(crate::instr::K_QUANT, 16, 70, 16);

    // Chroma: DC prediction as with I16x16.
    let pu = predict_chroma_dc(recon.u(), mb_x * 8, mb_y * 8);
    let pv = predict_chroma_dc(recon.v(), mb_x * 8, mb_y * 8);
    let ek = if fc.cfg.cabac { K_CABAC } else { K_CAVLC };
    let (ru, _) = encode_chroma_residual(src_u, &pu, qp, true, fc.cfg.trellis, w, prof, ek);
    let (rv, _) = encode_chroma_residual(src_v, &pv, qp, true, fc.cfg.trellis, w, prof, ek);
    recon.u_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, &ru);
    recon.v_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, &rv);
    // Luma was already committed block by block; charge the stores.
    charge_mb_stores(fc, mb_x, mb_y, prof, cur_slot);
}

/// Writes a completed MB into the reconstruction frame and charges the
/// store traffic.
#[allow(clippy::too_many_arguments)]
fn commit_mb(
    fc: &FrameCtx<'_>,
    recon: &mut Frame,
    ry: &[u8; 256],
    ru: &[u8; 64],
    rv: &[u8; 64],
    mb_x: usize,
    mb_y: usize,
    prof: &mut Profiler,
    cur_slot: usize,
) {
    recon.y_mut().write_block(mb_x * 16, mb_y * 16, 16, 16, ry);
    recon.u_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, ru);
    recon.v_mut().write_block(mb_x * 8, mb_y * 8, 8, 8, rv);
    charge_mb_stores(fc, mb_x, mb_y, prof, cur_slot);
}

fn charge_mb_stores(
    fc: &FrameCtx<'_>,
    mb_x: usize,
    mb_y: usize,
    prof: &mut Profiler,
    cur_slot: usize,
) {
    for row in 0..16usize {
        prof.store(fc.bufs.ref_luma(cur_slot, mb_x * 16, mb_y * 16 + row));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_frame::{quality, synth, vbench};
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    fn tiny_video(name: &str) -> Video {
        // Shrink the catalog entry so encoder tests stay fast in debug builds.
        let mut spec = vbench::by_name(name).unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 6;
        synth::generate(&spec, 7)
    }

    #[test]
    fn encode_produces_bits_and_recon() {
        let v = tiny_video("cricket");
        let mut p = prof();
        let r = encode_video(&v, &EncoderConfig::default(), &mut p).unwrap();
        assert_eq!(r.recon.len(), v.frames.len());
        assert!(r.bitstream.size_bytes() > 16);
        assert_eq!(r.stats.frames.len(), v.frames.len());
    }

    #[test]
    fn recon_quality_reasonable_at_crf23() {
        let v = tiny_video("bike");
        let mut p = prof();
        let r = encode_video(&v, &EncoderConfig::default(), &mut p).unwrap();
        let psnr = quality::sequence_psnr(&v.frames, &r.recon).unwrap();
        assert!(psnr > 27.0, "psnr {psnr}");
    }

    #[test]
    fn higher_crf_means_smaller_and_worse() {
        let v = tiny_video("cricket");
        let enc = |crf: f64| {
            let mut p = prof();
            let cfg = EncoderConfig::default().with_crf(crf);
            let r = encode_video(&v, &cfg, &mut p).unwrap();
            let psnr = quality::sequence_psnr(&v.frames, &r.recon).unwrap();
            (r.bitstream.size_bytes(), psnr)
        };
        let (big, good) = enc(15.0);
        let (small, bad) = enc(40.0);
        assert!(small < big, "bytes {small} < {big}");
        assert!(bad < good, "psnr {bad} < {good}");
    }

    #[test]
    fn empty_video_rejected() {
        let spec = vbench::by_name("cat").unwrap();
        let v = Video::new(spec, vec![]);
        let mut p = prof();
        assert_eq!(
            encode_video(&v, &EncoderConfig::default(), &mut p).unwrap_err(),
            CodecError::EmptyVideo
        );
    }

    #[test]
    fn calm_content_uses_skip_mbs() {
        let v = tiny_video("desktop");
        let mut p = prof();
        let r = encode_video(&v, &EncoderConfig::default(), &mut p).unwrap();
        assert!(
            r.stats.skip_mbs > 0,
            "static content should produce skips: {:?}",
            r.stats
        );
    }

    #[test]
    fn first_frame_all_intra() {
        let v = tiny_video("cricket");
        let mut p = prof();
        let r = encode_video(&v, &EncoderConfig::default(), &mut p).unwrap();
        assert_eq!(r.stats.frames[0].ftype, FrameType::I);
        assert!(r.stats.intra_mbs >= 12, "I frame must code intra MBs");
    }

    #[test]
    fn two_pass_runs_two_encodes() {
        let v = tiny_video("cricket");
        let mut cfg = EncoderConfig::default();
        cfg.rc = RateControlMode::TwoPassAbr { bitrate_kbps: 300 };
        let mut p_two = prof();
        let two = encode_video(&v, &cfg, &mut p_two).unwrap();
        let rep_two = p_two.finish();

        let mut cfg1 = EncoderConfig::default();
        cfg1.rc = RateControlMode::Abr { bitrate_kbps: 300 };
        let mut p_one = prof();
        let _ = encode_video(&v, &cfg1, &mut p_one).unwrap();
        let rep_one = p_one.finish();
        assert!(
            rep_two.counts.instructions > rep_one.counts.instructions * 6 / 5,
            "two-pass {} should cost well over one-pass {}",
            rep_two.counts.instructions,
            rep_one.counts.instructions
        );
        assert!(two.bitstream.size_bytes() > 0);
    }

    #[test]
    fn deterministic_bitstream() {
        let v = tiny_video("girl");
        let mut p1 = prof();
        let a = encode_video(&v, &EncoderConfig::default(), &mut p1).unwrap();
        let mut p2 = prof();
        let b = encode_video(&v, &EncoderConfig::default(), &mut p2).unwrap();
        assert_eq!(a.bitstream, b.bitstream);
    }

    #[test]
    fn wavefront_matches_serial() {
        // The whole point of the wavefront design: threads must change
        // nothing observable — bitstream, reconstruction, stats, and every
        // simulated profiler counter.
        let v = tiny_video("bike");
        let mut p1 = prof();
        let serial = encode_video(&v, &EncoderConfig::default(), &mut p1).unwrap();
        let rep1 = p1.finish();

        for threads in [2u32, 3] {
            let mut pn = prof();
            let cfg = EncoderConfig::default().with_threads(threads);
            let par = encode_video(&v, &cfg, &mut pn).unwrap();
            let repn = pn.finish();
            assert_eq!(serial.bitstream, par.bitstream, "threads={threads}");
            assert_eq!(serial.recon, par.recon, "threads={threads}");
            assert_eq!(serial.stats, par.stats, "threads={threads}");
            assert_eq!(rep1.counts, repn.counts, "threads={threads}");
            assert_eq!(rep1.profile, repn.profile, "threads={threads}");
        }
    }

    #[test]
    fn wavefront_cbr_falls_back_to_serial() {
        // CBR's per-MB bit feedback is serial by construction; threads
        // must still produce the identical stream via the fallback.
        let v = tiny_video("cricket");
        let cfg = EncoderConfig {
            rc: RateControlMode::Cbr { bitrate_kbps: 400 },
            ..EncoderConfig::default()
        };
        let mut p1 = prof();
        let serial = encode_video(&v, &cfg, &mut p1).unwrap();
        let mut p4 = prof();
        let par = encode_video(&v, &cfg.clone().with_threads(4), &mut p4).unwrap();
        assert_eq!(serial.bitstream, par.bitstream);
        assert_eq!(p1.finish().counts, p4.finish().counts);
    }

    #[test]
    fn mv_predictor_uses_median_of_neighbours() {
        use crate::types::MotionVector as Mv;
        let mb_w = 3;
        // Grid layout (3 wide): index 4 is the centre of a 3x2 grid.
        let mvs = vec![
            Mv::new(2, 2),  // 0: top-left
            Mv::new(4, 0),  // 1: top
            Mv::new(8, -2), // 2: top-right
            Mv::new(0, 6),  // 3: left
            Mv::ZERO,       // 4: current (unset)
            Mv::ZERO,
        ];
        let intra = vec![false; 6];
        let pred = mv_predictor(&mvs, &intra, mb_w, 1, 1);
        // median(left (0,6), top (4,0), topright (8,-2)) = (4, 0)
        assert_eq!(pred, Mv::new(4, 0));
    }

    #[test]
    fn mv_predictor_treats_intra_and_borders_as_zero() {
        use crate::types::MotionVector as Mv;
        let mvs = vec![Mv::new(10, 10); 4];
        let mut intra = vec![false; 4];
        intra[1] = true; // top neighbour of (1,1) in a 2-wide grid
                         // (0,0): no neighbours at all -> zero.
        assert_eq!(mv_predictor(&mvs, &intra, 2, 0, 0), Mv::ZERO);
        // (1,1): left = mvs[2] = (10,10), top = intra -> 0, topright = off-grid -> 0.
        // median(10,0,0) = 0.
        assert_eq!(mv_predictor(&mvs, &intra, 2, 1, 1), Mv::ZERO);
    }

    #[test]
    fn ref_lists_order_and_truncate() {
        let mk = |display: usize, slot: usize| Anchor {
            display,
            frame: Frame::new(16, 16),
            slot,
        };
        let anchors = vec![mk(0, 0), mk(3, 1), mk(6, 2), mk(9, 3)];
        // P frame at display 10: list0 = newest-first past anchors, capped.
        let (l0, l1) = ref_lists(&anchors, 10, 2);
        assert_eq!(l0, vec![3, 2]); // displays 9, 6
        assert!(l1.is_empty());
        // B frame at display 5: past = {3, 0}, future = {6} (nearest only).
        let (l0, l1) = ref_lists(&anchors, 5, 4);
        assert_eq!(l0, vec![1, 0]); // displays 3, 0
        assert_eq!(l1, vec![2]); // display 6
    }

    #[test]
    fn skip_threshold_grows_with_qp() {
        assert!(skip_threshold(Qp::new(40)) > skip_threshold(Qp::new(20)));
        assert!(skip_threshold(Qp::new(20)) > 0);
    }

    #[test]
    fn bitstream_serde_roundtrip() {
        let bs = Bitstream {
            data: vec![1, 2, 3],
        };
        let json = serde_json::to_string(&bs).unwrap();
        let back: Bitstream = serde_json::from_str(&json).unwrap();
        assert_eq!(bs, back);
    }

    #[test]
    fn bitrate_helper() {
        let bs = Bitstream {
            data: vec![0; 1250],
        };
        assert!((bs.bitrate_kbps(1.0) - 10.0).abs() < 1e-9);
        assert_eq!(bs.bitrate_kbps(0.0), 0.0);
    }
}
