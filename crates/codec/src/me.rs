//! Integer and sub-pel motion estimation (§II-B.2 of the paper).
//!
//! Four search strategies mirror x264's: `dia` (small diamond), `hex`
//! (hexagon, the default), `umh` (uneven multi-hexagon) and `esa`/`tesa`
//! (exhaustive, the latter re-ranking by SATD). Search effort — and with it
//! instruction count, reference working set, and branch behaviour — rises
//! monotonically across that list, which is what differentiates the presets
//! in Figure 6.

use vtx_frame::Plane;
use vtx_trace::Profiler;

use crate::instr::{K_HPEL, K_ME_DIA, K_ME_ESA, K_ME_HEX, K_ME_UMH, K_SAD, K_SATD};
use crate::mc::mc_luma;
use crate::transform::{sad, satd4x4};
use crate::types::{se_len, MeMethod, MotionVector};

/// A reference picture plus its virtual base address for cache tracing.
#[derive(Debug)]
pub struct RefView<'a> {
    /// Reconstructed luma plane of the reference frame.
    pub plane: &'a Plane,
    /// Virtual address of the plane's first sample.
    pub vaddr: u64,
    /// Address scale factor (nominal / simulated resolution; see
    /// `vtx_codec::bufs` for the scaled-addressing scheme).
    pub scale: u64,
}

impl RefView<'_> {
    /// Nominal-scale address of the sample at simulated `(x, y)`.
    #[inline]
    pub fn addr(&self, x: u64, y: u64) -> u64 {
        let stride = self.plane.width() as u64 * self.scale;
        self.vaddr + y * self.scale * stride + x * self.scale
    }
}

/// Search parameters, derived from the encoder configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeParams {
    /// Search strategy.
    pub method: MeMethod,
    /// Maximum motion range in full pixels.
    pub merange: i32,
    /// Sub-pel refinement level (0 = integer only; >= 4 uses SATD).
    pub subme: u8,
    /// RD lambda for motion-vector rate costing.
    pub lambda: f64,
}

/// Result of a motion search against one reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeResult {
    /// Best motion vector (half-pel units).
    pub mv: MotionVector,
    /// Rate-distortion cost (metric + lambda * mv bits).
    pub cost: u32,
    /// Raw distortion metric (SAD, or SATD at high subme).
    pub metric: u32,
}

/// SAD between a 16x16 source block and the reference at full-pel `(rx, ry)`.
fn sad_16x16_at(src: &[u8; 256], reference: &Plane, rx: isize, ry: isize, early_out: u32) -> u32 {
    let w = reference.width() as isize;
    let h = reference.height() as isize;
    let mut acc = 0u32;
    if rx >= 0 && ry >= 0 && rx + 16 <= w && ry + 16 <= h {
        // Fast interior path with early termination every 4 rows.
        let stride = reference.width();
        let samples = reference.samples();
        for row in 0..16 {
            let off = (ry as usize + row) * stride + rx as usize;
            acc += sad(&src[row * 16..row * 16 + 16], &samples[off..off + 16]);
            if row % 4 == 3 && acc >= early_out {
                return acc;
            }
        }
        acc
    } else {
        // Clamped border path: same every-4-rows early termination as the
        // interior path, so profiled SAD work does not depend on whether a
        // candidate straddles the frame edge.
        let mut blk = [0u8; 256];
        reference.copy_block_clamped(rx, ry, 16, 16, &mut blk);
        for row in 0..16 {
            acc += sad(&src[row * 16..row * 16 + 16], &blk[row * 16..row * 16 + 16]);
            if row % 4 == 3 && acc >= early_out {
                return acc;
            }
        }
        acc
    }
}

fn mv_cost(lambda: f64, mv: MotionVector, pred: MotionVector) -> u32 {
    let dx = i32::from(mv.x) - i32::from(pred.x);
    let dy = i32::from(mv.y) - i32::from(pred.y);
    (lambda * f64::from(se_len(dx) + se_len(dy))).round() as u32
}

struct SearchState<'a, 'p> {
    src: &'a [u8; 256],
    reference: &'a RefView<'a>,
    x: usize,
    y: usize,
    pred: MotionVector,
    lambda: f64,
    merange: i32,
    best_mv: (i32, i32), // full-pel
    best_cost: u32,
    best_metric: u32,
    candidates: u32,
    prof: &'p mut Profiler,
    branch_stride: u32,
}

impl SearchState<'_, '_> {
    /// Evaluates a full-pel candidate, updating the best. Returns whether it
    /// improved.
    fn try_candidate(&mut self, mx: i32, my: i32) -> bool {
        if mx.abs() > self.merange * 2 || my.abs() > self.merange * 2 {
            return false;
        }
        self.candidates += 1;
        let rx = self.x as isize + mx as isize;
        let ry = self.y as isize + my as isize;
        // Touch the candidate's first reference line (the detailed window
        // read was charged when the window was loaded).
        let cy = ry.clamp(0, self.reference.plane.height() as isize - 1) as u64;
        let cx = rx.clamp(0, self.reference.plane.width() as isize - 1) as u64;
        let addr = self.reference.addr(cx, cy);
        self.prof.load(addr);

        let metric = sad_16x16_at(self.src, self.reference.plane, rx, ry, self.best_cost);
        let mv = MotionVector::from_fullpel(mx as i16, my as i16);
        let cost = metric.saturating_add(mv_cost(self.lambda, mv, self.pred));
        let improved = cost < self.best_cost;
        if self.candidates.is_multiple_of(self.branch_stride) {
            self.prof.branch(1, improved);
        }
        if improved {
            self.best_cost = cost;
            self.best_metric = metric;
            self.best_mv = (mx, my);
        }
        improved
    }
}

const DIA_OFFSETS: [(i32, i32); 4] = [(0, -1), (-1, 0), (1, 0), (0, 1)];
const HEX_OFFSETS: [(i32, i32); 6] = [(-2, 0), (-1, -2), (1, -2), (2, 0), (1, 2), (-1, 2)];
const SQUARE_OFFSETS: [(i32, i32); 8] = [
    (-1, -1),
    (0, -1),
    (1, -1),
    (-1, 0),
    (1, 0),
    (-1, 1),
    (0, 1),
    (1, 1),
];

/// Searches one reference frame for the best motion vector for the 16x16
/// block at `(x, y)` of `src`, starting from the `pred_mv` predictor.
///
/// Emits kernel, cache-line and branch events to `prof` as a side effect.
pub fn search_ref(
    src: &[u8; 256],
    reference: &RefView<'_>,
    x: usize,
    y: usize,
    pred_mv: MotionVector,
    params: &MeParams,
    prof: &mut Profiler,
) -> MeResult {
    // Charge the search-window working set: merange rows above/below. When
    // the optimizer tiled this loop over x, only the columns newly exposed
    // by the sliding window are fetched (the rest were loaded for the
    // previous macroblock and are still addressable as hits).
    let sim_width = reference.plane.width() as u64;
    let top = (y as i64 - i64::from(params.merange)).max(0) as u64;
    let bot =
        ((y + 16) as i64 + i64::from(params.merange)).min(reference.plane.height() as i64) as u64;
    let tiled = prof.data_plan().tile_me_window && x > 0;
    let (left, span) = if tiled {
        ((x + 16) as i64 - 16, (16 + params.merange) as u64)
    } else {
        (
            (x as i64 - i64::from(params.merange)).max(0),
            (16 + 2 * params.merange) as u64,
        )
    };
    let left = (left.max(0) as u64).min(sim_width - 1);
    let span_bytes = span.min(sim_width - left) * reference.scale;
    for row in top..bot {
        prof.load_range(reference.addr(left, row), span_bytes);
    }

    let (px, py) = pred_mv.fullpel();
    let mut st = SearchState {
        src,
        reference,
        x,
        y,
        pred: pred_mv,
        lambda: params.lambda,
        merange: params.merange.max(4),
        best_mv: (0, 0),
        best_cost: u32::MAX,
        best_metric: u32::MAX,
        candidates: 0,
        prof,
        branch_stride: if matches!(params.method, MeMethod::Esa | MeMethod::Tesa) {
            8
        } else {
            1
        },
    };

    // Seed with the predictor and the zero vector.
    st.try_candidate(i32::from(px), i32::from(py));
    st.try_candidate(0, 0);

    match params.method {
        MeMethod::Dia => diamond_search(&mut st),
        MeMethod::Hex => hex_search(&mut st),
        MeMethod::Umh => umh_search(&mut st),
        MeMethod::Esa | MeMethod::Tesa => esa_search(&mut st, params.method == MeMethod::Tesa),
    }

    let kernel = match params.method {
        MeMethod::Dia => K_ME_DIA,
        MeMethod::Hex => K_ME_HEX,
        MeMethod::Umh => K_ME_UMH,
        MeMethod::Esa | MeMethod::Tesa => K_ME_ESA,
    };
    let cands = st.candidates;
    let best_mv = st.best_mv;
    let mut best_cost = st.best_cost;
    let mut best_metric = st.best_metric;
    prof.kernel(kernel, cands, 30, 0);
    prof.kernel(K_SAD, cands, 64, 0);

    let mut mv = MotionVector::from_fullpel(best_mv.0 as i16, best_mv.1 as i16);

    // Sub-pel refinement: deeper subme levels run more refinement rounds
    // (x264's subme ladder adds qpel iterations and RD checks), and levels
    // >= 5 always complete their scan instead of breaking early.
    if params.subme >= 1 {
        let use_satd = params.subme >= 4;
        let rounds = u32::from(params.subme).div_ceil(3);
        let exhaustive_rounds = if params.subme >= 5 { 2 } else { 0 };
        let mut hpel_cands = 0u32;
        for round in 0..rounds {
            let mut improved = false;
            for (dx, dy) in SQUARE_OFFSETS {
                let cand = MotionVector::new(mv.x + dx as i16, mv.y + dy as i16);
                if !cand.has_halfpel() {
                    continue; // full-pel positions were already searched
                }
                hpel_cands += 1;
                let mut pred_blk = [0u8; 256];
                mc_luma(reference.plane, cand, x, y, 16, 16, &mut pred_blk);
                let metric = if use_satd {
                    satd16_blocks(src, &pred_blk)
                } else {
                    sad(src, &pred_blk)
                };
                let cost = metric.saturating_add(mv_cost(params.lambda, cand, pred_mv));
                let better = cost < best_cost;
                prof.branch(2, better);
                if better {
                    best_cost = cost;
                    best_metric = metric;
                    mv = cand;
                    improved = true;
                }
            }
            if !improved && round >= exhaustive_rounds {
                break;
            }
        }
        prof.kernel(K_HPEL, hpel_cands, 90, 16);
        if use_satd {
            prof.kernel(K_SATD, hpel_cands, 160, 0);
        }
    }

    MeResult {
        mv,
        cost: best_cost,
        metric: best_metric,
    }
}

fn satd16_blocks(a: &[u8; 256], b: &[u8; 256]) -> u32 {
    let mut total = 0;
    let mut pa = [0u8; 16];
    let mut pb = [0u8; 16];
    for by in 0..4 {
        for bx in 0..4 {
            for r in 0..4 {
                for c in 0..4 {
                    pa[r * 4 + c] = a[(by * 4 + r) * 16 + bx * 4 + c];
                    pb[r * 4 + c] = b[(by * 4 + r) * 16 + bx * 4 + c];
                }
            }
            total += satd4x4(&pa, &pb);
        }
    }
    total
}

fn diamond_search(st: &mut SearchState<'_, '_>) {
    let mut iters = 0;
    loop {
        let (cx, cy) = st.best_mv;
        let mut improved = false;
        for (dx, dy) in DIA_OFFSETS {
            improved |= st.try_candidate(cx + dx, cy + dy);
        }
        iters += 1;
        if !improved || iters >= st.merange {
            break;
        }
    }
}

fn hex_search(st: &mut SearchState<'_, '_>) {
    let mut iters = 0;
    loop {
        let (cx, cy) = st.best_mv;
        let mut improved = false;
        for (dx, dy) in HEX_OFFSETS {
            improved |= st.try_candidate(cx + dx, cy + dy);
        }
        iters += 1;
        if !improved || iters >= st.merange {
            break;
        }
    }
    // Final square refinement.
    let (cx, cy) = st.best_mv;
    for (dx, dy) in SQUARE_OFFSETS {
        st.try_candidate(cx + dx, cy + dy);
    }
}

fn umh_search(st: &mut SearchState<'_, '_>) {
    // 1. Cross search at stride 2 out to merange.
    let (sx, sy) = st.best_mv;
    let range = st.merange;
    let mut d = 2;
    while d <= range {
        st.try_candidate(sx + d, sy);
        st.try_candidate(sx - d, sy);
        st.try_candidate(sx, sy + d);
        st.try_candidate(sx, sy - d);
        d += 2;
    }
    // 2. 5x5 full window around the current best.
    let (cx, cy) = st.best_mv;
    for dy in -2..=2 {
        for dx in -2..=2 {
            st.try_candidate(cx + dx, cy + dy);
        }
    }
    // 3. Uneven multi-hexagon rings expanding outward.
    let (cx, cy) = st.best_mv;
    let mut r = 4;
    while r <= range {
        for (hx, hy) in HEX_OFFSETS {
            st.try_candidate(cx + hx * r / 2, cy + hy * r / 2);
        }
        for (hx, hy) in SQUARE_OFFSETS {
            st.try_candidate(cx + hx * r, cy + hy * r);
        }
        r *= 2;
    }
    // 4. Hexagon convergence from the best point found.
    hex_search(st);
}

fn esa_search(st: &mut SearchState<'_, '_>, satd_rerank: bool) {
    let range = st.merange;
    let mut top: Vec<(u32, i32, i32)> = Vec::new();
    for my in -range..=range {
        for mx in -range..=range {
            st.try_candidate(mx, my);
            if satd_rerank && st.best_mv == (mx, my) {
                top.push((st.best_cost, mx, my));
            }
        }
    }
    if satd_rerank {
        // Re-rank the most recent best candidates by SATD (tesa behaviour).
        let n = top.len().min(8);
        let slice = &top[top.len() - n..];
        let mut best = (u32::MAX, st.best_mv);
        let mut blk = [0u8; 256];
        for &(_, mx, my) in slice {
            st.reference.plane.copy_block_clamped(
                st.x as isize + mx as isize,
                st.y as isize + my as isize,
                16,
                16,
                &mut blk,
            );
            let metric = satd16_blocks(st.src, &blk);
            let mv = MotionVector::from_fullpel(mx as i16, my as i16);
            let cost = metric.saturating_add(mv_cost(st.lambda, mv, st.pred));
            if cost < best.0 {
                best = (cost, (mx, my));
            }
        }
        if best.0 != u32::MAX {
            st.best_mv = best.1;
            st.best_cost = best.0;
            st.best_metric = best.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    /// Builds a reference containing a smooth Gaussian blob centred at
    /// (32, 32) and a source block that equals the reference shifted by
    /// (8, 8): the SAD landscape is unimodal with a unique zero at that
    /// displacement, so both local and exhaustive searches must find it.
    fn shifted_scene() -> (Plane, [u8; 256]) {
        let mut reference = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                let dx = x as f64 - 32.0;
                let dy = y as f64 - 32.0;
                let v = 20.0 + 220.0 * (-(dx * dx + dy * dy) / 90.0).exp();
                reference.set(x, y, v as u8);
            }
        }
        let mut src = [0u8; 256];
        for r in 0..16 {
            for c in 0..16 {
                src[r * 16 + c] = reference.get(24 + c, 24 + r);
            }
        }
        (reference, src)
    }

    fn run(method: MeMethod, subme: u8) -> MeResult {
        let (plane, src) = shifted_scene();
        let mut p = prof();
        let rv = RefView {
            plane: &plane,
            vaddr: 0x2000_0000,
            scale: 1,
        };
        let params = MeParams {
            method,
            merange: 16,
            subme,
            lambda: 4.0,
        };
        search_ref(&src, &rv, 16, 16, MotionVector::ZERO, &params, &mut p)
    }

    #[test]
    fn esa_finds_exact_displacement() {
        let r = run(MeMethod::Esa, 0);
        assert_eq!(r.mv, MotionVector::from_fullpel(8, 8));
        assert_eq!(r.metric, 0);
    }

    #[test]
    fn umh_finds_exact_displacement() {
        let r = run(MeMethod::Umh, 0);
        assert_eq!(r.mv, MotionVector::from_fullpel(8, 8));
    }

    #[test]
    fn hex_finds_displacement() {
        let r = run(MeMethod::Hex, 0);
        assert_eq!(r.mv, MotionVector::from_fullpel(8, 8));
    }

    #[test]
    fn method_effort_ordering() {
        // Candidate counts (instructions charged to ME kernels) must grow
        // from dia to esa.
        let count = |m: MeMethod| {
            let (plane, src) = shifted_scene();
            let mut p = prof();
            let rv = RefView {
                plane: &plane,
                vaddr: 0x2000_0000,
                scale: 1,
            };
            let params = MeParams {
                method: m,
                merange: 16,
                subme: 0,
                lambda: 4.0,
            };
            search_ref(&src, &rv, 16, 16, MotionVector::ZERO, &params, &mut p);
            let rep = p.finish();
            rep.counts.instructions
        };
        let dia = count(MeMethod::Dia);
        let hex = count(MeMethod::Hex);
        let umh = count(MeMethod::Umh);
        let esa = count(MeMethod::Esa);
        // dia takes 1-px steps so it may iterate more than hex on deep
        // displacements; the robust ordering is pattern searches < umh < esa.
        assert!(dia < umh, "dia {dia} umh {umh}");
        assert!(hex < umh, "hex {hex} umh {umh}");
        assert!(umh < esa, "umh {umh} esa {esa}");
    }

    #[test]
    fn subpel_refinement_improves_half_pel_content() {
        // Build a reference whose best match is at a half-pel offset: the
        // source is the average of two adjacent columns.
        let mut reference = Plane::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                reference.set(x, y, ((x * 11 + y * 3) % 240) as u8);
            }
        }
        let mut src = [0u8; 256];
        for r in 0..16 {
            for c in 0..16 {
                let a = u16::from(reference.get(16 + c, 16 + r));
                let b = u16::from(reference.get(17 + c, 16 + r));
                src[r * 16 + c] = (a + b).div_ceil(2) as u8;
            }
        }
        let mut p = prof();
        let rv = RefView {
            plane: &reference,
            vaddr: 0x2000_0000,
            scale: 1,
        };
        let coarse = search_ref(
            &src,
            &rv,
            16,
            16,
            MotionVector::ZERO,
            &MeParams {
                method: MeMethod::Hex,
                merange: 8,
                subme: 0,
                lambda: 1.0,
            },
            &mut p,
        );
        let fine = search_ref(
            &src,
            &rv,
            16,
            16,
            MotionVector::ZERO,
            &MeParams {
                method: MeMethod::Hex,
                merange: 8,
                subme: 2,
                lambda: 1.0,
            },
            &mut p,
        );
        assert!(
            fine.metric < coarse.metric,
            "{} vs {}",
            fine.metric,
            coarse.metric
        );
        assert!(fine.mv.has_halfpel());
    }

    #[test]
    fn tiled_window_loading_emits_fewer_accesses() {
        use vtx_trace::plan::DataPlan;
        let (plane, src) = shifted_scene();
        let params = MeParams {
            method: MeMethod::Hex,
            merange: 16,
            subme: 0,
            lambda: 4.0,
        };
        let run = |plan: DataPlan| {
            let mut p = prof();
            p.set_data_plan(plan);
            // Nominal-scale addressing (scale 8), where the narrower tiled
            // span covers measurably fewer cache lines.
            let rv = RefView {
                plane: &plane,
                vaddr: 0x2000_0000,
                scale: 8,
            };
            // x > 0 so the sliding-window delta applies.
            search_ref(&src, &rv, 32, 16, MotionVector::ZERO, &params, &mut p);
            p.finish().counts.loads.total()
        };
        let canonical = run(DataPlan::canonical());
        let tiled = run(DataPlan::fully_blocked());
        assert!(
            tiled < canonical,
            "tiled {tiled} should load less than canonical {canonical}"
        );
    }

    #[test]
    fn tesa_runs_and_finds_displacement() {
        let r = run(MeMethod::Tesa, 0);
        assert_eq!(r.mv, MotionVector::from_fullpel(8, 8));
    }

    #[test]
    fn border_sad_honours_early_out() {
        let (plane, src) = shifted_scene();
        // rx = -4 straddles the left edge, forcing the clamped path.
        let full = sad_16x16_at(&src, &plane, -4, 16, u32::MAX);
        let mut blk = [0u8; 256];
        plane.copy_block_clamped(-4, 16, 16, 16, &mut blk);
        assert_eq!(full, sad(&src, &blk), "no early-out must give full SAD");
        assert!(full > 0);

        // A threshold the first 4 rows already exceed must terminate early:
        // the partial accumulator is below the full SAD but at or above the
        // threshold, exactly like the interior path.
        let partial = sad_16x16_at(&src, &plane, -4, 16, 1);
        assert!(partial >= 1);
        assert!(
            partial < full,
            "partial {partial} should stop before full {full}"
        );

        let four_rows: u32 = (0..4)
            .map(|row| sad(&src[row * 16..row * 16 + 16], &blk[row * 16..row * 16 + 16]))
            .sum();
        assert_eq!(partial, four_rows);
    }
}
