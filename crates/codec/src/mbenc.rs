//! Macroblock residual coding: transform → quantization (optionally
//! trellis) → entropy syntax → reconstruction, plus the exact decode mirror.
//!
//! The coefficient syntax per 4x4 block is: a coded-block flag; if set, the
//! nonzero count minus one, then for each nonzero coefficient in zig-zag
//! order its preceding zero-run (ue) and level (se). Encoder and decoder
//! traverse blocks in identical raster order, so reconstruction is
//! bit-exact.
//!
//! Every syntax element and profiler event emitted here is a pure function
//! of the coefficient data — never of the entropy writer's internal state.
//! That invariant is what lets wavefront workers record syntax against a
//! stateless sink and replay it later through the real (stateful) writer
//! with bit-identical results.

use vtx_trace::Profiler;

use crate::entropy::{ctx, EntropyReader, EntropyWriter};
use crate::instr::{K_DCT, K_DEQUANT, K_IDCT, K_QUANT, K_RECON, K_TRELLIS};
use crate::quant::{dequant4x4, quant4x4};
use crate::tables::ZIGZAG4X4;
use crate::transform::{dct4x4, idct4x4, Block4x4};
use crate::trellis::trellis_quant;
use crate::types::Qp;
use crate::CodecError;

/// Quantized levels of one 4x4 block.
pub type CoefBlock = Block4x4;

/// Writes one quantized 4x4 block's syntax. Returns the nonzero count.
pub fn write_coef_block<W: EntropyWriter>(
    w: &mut W,
    levels: &CoefBlock,
    chroma: bool,
    prof: &mut Profiler,
    entropy_kernel: usize,
) -> u32 {
    let coff = u32::from(chroma) * 2;
    let nz = levels.iter().filter(|&&v| v != 0).count() as u32;
    w.put_bit(ctx::CBF + coff, nz > 0);
    prof.branch(4, nz > 0);
    if nz == 0 {
        prof.kernel(entropy_kernel, 1, 18, 0);
        return 0;
    }
    w.put_ue(ctx::NZ_COUNT + coff, nz - 1);
    let mut run = 0u32;
    for (zi, &pos) in ZIGZAG4X4.iter().enumerate() {
        let level = levels[pos];
        // The significance test is the run/level coder's inner branch; one
        // data-dependent event per coefficient pair keeps the simulated
        // branch density close to the real coder's.
        if zi % 2 == 0 {
            prof.branch(13, level != 0 || levels[ZIGZAG4X4[zi + 1]] != 0);
        }
        if level == 0 {
            run += 1;
        } else {
            w.put_ue(ctx::RUN + coff, run);
            w.put_se(ctx::LEVEL + coff, level);
            prof.branch(5, level.abs() > 1);
            prof.branch(6, level < 0);
            run = 0;
        }
    }
    prof.kernel(entropy_kernel, nz * 3 + 6, 26, 0);
    nz
}

/// Reads one 4x4 block's syntax (mirror of [`write_coef_block`]).
///
/// # Errors
///
/// Returns [`CodecError::CorruptBitstream`] on truncated payloads or
/// impossible run/level placements.
pub fn read_coef_block<R: EntropyReader>(
    r: &mut R,
    chroma: bool,
    prof: &mut Profiler,
) -> Result<CoefBlock, CodecError> {
    use crate::instr::K_DEC_PARSE;
    let coff = u32::from(chroma) * 2;
    let mut levels: CoefBlock = [0; 16];
    if !r.get_bit(ctx::CBF + coff)? {
        prof.branch(4, false);
        prof.kernel(K_DEC_PARSE, 1, 18, 0);
        return Ok(levels);
    }
    prof.branch(4, true);
    let nz = r.get_ue(ctx::NZ_COUNT + coff)? + 1;
    if nz > 16 {
        return Err(CodecError::CorruptBitstream {
            offset: 0,
            context: "nonzero count",
        });
    }
    let mut zi = 0usize;
    for _ in 0..nz {
        let run = r.get_ue(ctx::RUN + coff)? as usize;
        zi += run;
        if zi >= 16 {
            return Err(CodecError::CorruptBitstream {
                offset: 0,
                context: "coefficient run",
            });
        }
        let level = r.get_se(ctx::LEVEL + coff)?;
        if level == 0 {
            return Err(CodecError::CorruptBitstream {
                offset: 0,
                context: "zero level",
            });
        }
        prof.branch(5, level.abs() > 1);
        prof.branch(6, level < 0);
        levels[ZIGZAG4X4[zi]] = level;
        zi += 1;
    }
    // Mirror the encoder's per-pair significance branches.
    for zi in (0..16).step_by(2) {
        prof.branch(
            13,
            levels[ZIGZAG4X4[zi]] != 0 || levels[ZIGZAG4X4[zi + 1]] != 0,
        );
    }
    prof.kernel(K_DEC_PARSE, nz * 3 + 6, 24, 0);
    Ok(levels)
}

/// Feeds the trellis's per-coefficient accept/reject outcomes to the branch
/// predictor: these RD comparisons are the data-dependent branches that make
/// trellis quantization expensive on real cores.
pub(crate) fn emit_trellis_branches(prof: &mut Profiler, out: &crate::trellis::TrellisOutcome) {
    for i in 0..out.considered.min(32) {
        prof.branch(15, out.changed_bits & (1 << i) != 0);
    }
}

#[inline]
fn clip_pixel(v: i32) -> u8 {
    v.clamp(0, 255) as u8
}

fn sub_block<const N: usize>(
    src: &[u8],
    pred: &[u8],
    stride: usize,
    bx: usize,
    by: usize,
) -> Block4x4 {
    let mut d: Block4x4 = [0; 16];
    for r in 0..4 {
        for c in 0..4 {
            let i = (by * 4 + r) * stride + bx * 4 + c;
            d[r * 4 + c] = i32::from(src[i]) - i32::from(pred[i]);
        }
    }
    d
}

fn add_block(recon: &mut [u8], pred: &[u8], stride: usize, bx: usize, by: usize, res: &Block4x4) {
    for r in 0..4 {
        for c in 0..4 {
            let i = (by * 4 + r) * stride + bx * 4 + c;
            recon[i] = clip_pixel(i32::from(pred[i]) + res[r * 4 + c]);
        }
    }
}

/// Transforms, quantizes and entropy-codes the residual between a 16x16
/// source block and its prediction, producing the reconstruction. Returns
/// `(recon, total_nonzero)`.
#[allow(clippy::too_many_arguments)]
pub fn encode_luma_residual<W: EntropyWriter>(
    src: &[u8; 256],
    pred: &[u8; 256],
    qp: Qp,
    intra: bool,
    trellis_level: u8,
    w: &mut W,
    prof: &mut Profiler,
    scratch: u64,
    entropy_kernel: usize,
) -> ([u8; 256], u32) {
    let mut recon = *pred;
    let mut total_nz = 0u32;
    let mut trellis_decisions = 0u32;
    let mut coded_blocks = 0u32;

    // Canonical compilation keeps the transform / quantize / reconstruct
    // stages as separate loops, each sweeping the residual scratch; the
    // optimizer's loop fusion collapses them into one sweep.
    let sweeps = if prof.data_plan().fuse_residual { 1 } else { 4 };
    for _ in 0..sweeps {
        prof.load_range(scratch, 1024);
        prof.store_range(scratch, 1024);
    }
    for by in 0..4 {
        for bx in 0..4 {
            let mut blk = sub_block::<16>(src, pred, 16, bx, by);
            dct4x4(&mut blk);
            let nz = if trellis_level > 0 {
                let out = trellis_quant(&mut blk, qp, intra, qp.lambda(), trellis_level);
                trellis_decisions += out.decisions;
                emit_trellis_branches(prof, &out);
                out.nonzero
            } else {
                quant4x4(&mut blk, qp, intra)
            };
            write_coef_block(w, &blk, false, prof, entropy_kernel);
            if nz > 0 {
                total_nz += nz;
                coded_blocks += 1;
                dequant4x4(&mut blk, qp);
                idct4x4(&mut blk);
                add_block(&mut recon, pred, 16, bx, by, &blk);
            }
        }
    }

    prof.kernel(K_DCT, 16, 90, 2);
    prof.kernel(K_QUANT, 16, 70, 16);
    if trellis_level > 0 && trellis_decisions > 0 {
        prof.kernel(K_TRELLIS, trellis_decisions, 45, 2);
    }
    if coded_blocks > 0 {
        prof.kernel(K_DEQUANT, coded_blocks, 40, 8);
        prof.kernel(K_IDCT, coded_blocks, 90, 2);
    }
    prof.kernel(K_RECON, 16, 60, 0);
    (recon, total_nz)
}

/// Decodes a 16x16 luma residual against `pred` (mirror of
/// [`encode_luma_residual`]).
///
/// # Errors
///
/// Propagates [`CodecError::CorruptBitstream`] from the syntax reader.
pub fn decode_luma_residual<R: EntropyReader>(
    pred: &[u8; 256],
    qp: Qp,
    r: &mut R,
    prof: &mut Profiler,
    scratch: u64,
) -> Result<([u8; 256], u32), CodecError> {
    let mut recon = *pred;
    let mut total_nz = 0u32;
    prof.load_range(scratch, 1024);
    for by in 0..4 {
        for bx in 0..4 {
            let mut blk = read_coef_block(r, false, prof)?;
            let nz = blk.iter().filter(|&&v| v != 0).count() as u32;
            if nz > 0 {
                total_nz += nz;
                dequant4x4(&mut blk, qp);
                idct4x4(&mut blk);
                add_block(&mut recon, pred, 16, bx, by, &blk);
            }
        }
    }
    prof.store_range(scratch, 1024);
    Ok((recon, total_nz))
}

/// Encodes an 8x8 chroma residual (one plane). Returns `(recon, nonzero)`.
#[allow(clippy::too_many_arguments)]
pub fn encode_chroma_residual<W: EntropyWriter>(
    src: &[u8; 64],
    pred: &[u8; 64],
    qp: Qp,
    intra: bool,
    trellis_level: u8,
    w: &mut W,
    prof: &mut Profiler,
    entropy_kernel: usize,
) -> ([u8; 64], u32) {
    let cqp = qp.chroma();
    let mut recon = *pred;
    let mut total_nz = 0u32;
    // x264 applies trellis to chroma only at level 2.
    let t = if trellis_level >= 2 { 2 } else { 0 };
    for by in 0..2 {
        for bx in 0..2 {
            let mut blk = sub_block::<8>(src, pred, 8, bx, by);
            dct4x4(&mut blk);
            let nz = if t > 0 {
                let out = trellis_quant(&mut blk, cqp, intra, cqp.lambda(), t);
                emit_trellis_branches(prof, &out);
                out.nonzero
            } else {
                quant4x4(&mut blk, cqp, intra)
            };
            write_coef_block(w, &blk, true, prof, entropy_kernel);
            if nz > 0 {
                total_nz += nz;
                dequant4x4(&mut blk, cqp);
                idct4x4(&mut blk);
                add_block(&mut recon, pred, 8, bx, by, &blk);
            }
        }
    }
    prof.kernel(K_DCT, 4, 90, 2);
    prof.kernel(K_QUANT, 4, 70, 16);
    (recon, total_nz)
}

/// Decodes an 8x8 chroma residual (mirror of [`encode_chroma_residual`]).
///
/// # Errors
///
/// Propagates [`CodecError::CorruptBitstream`] from the syntax reader.
pub fn decode_chroma_residual<R: EntropyReader>(
    pred: &[u8; 64],
    qp: Qp,
    r: &mut R,
    prof: &mut Profiler,
) -> Result<([u8; 64], u32), CodecError> {
    let cqp = qp.chroma();
    let mut recon = *pred;
    let mut total_nz = 0u32;
    for by in 0..2 {
        for bx in 0..2 {
            let mut blk = read_coef_block(r, true, prof)?;
            let nz = blk.iter().filter(|&&v| v != 0).count() as u32;
            if nz > 0 {
                total_nz += nz;
                dequant4x4(&mut blk, cqp);
                idct4x4(&mut blk);
                add_block(&mut recon, pred, 8, bx, by, &blk);
            }
        }
    }
    Ok((recon, total_nz))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::cavlc::{CavlcReader, CavlcWriter};
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    fn textured_src() -> [u8; 256] {
        let mut s = [0u8; 256];
        for (i, v) in s.iter_mut().enumerate() {
            *v = ((i * 13) % 200 + 20) as u8;
        }
        s
    }

    #[test]
    fn coef_block_syntax_roundtrip() {
        let mut p = prof();
        let mut levels: CoefBlock = [0; 16];
        levels[0] = 5;
        levels[1] = -2;
        levels[10] = 1;
        let mut w = CavlcWriter::new();
        let nz = write_coef_block(&mut w, &levels, false, &mut p, crate::instr::K_CAVLC);
        assert_eq!(nz, 3);
        let bytes = w.finish();
        let mut r = CavlcReader::new(&bytes);
        let decoded = read_coef_block(&mut r, false, &mut p).unwrap();
        assert_eq!(decoded, levels);
    }

    #[test]
    fn empty_block_is_one_flag() {
        let mut p = prof();
        let levels: CoefBlock = [0; 16];
        let mut w = CavlcWriter::new();
        write_coef_block(&mut w, &levels, false, &mut p, crate::instr::K_CAVLC);
        assert_eq!(w.bits_estimate(), 1.0);
    }

    #[test]
    fn luma_residual_encode_decode_match() {
        let mut p = prof();
        let src = textured_src();
        let pred = [128u8; 256];
        let qp = Qp::new(24);
        let mut w = CavlcWriter::new();
        let (enc_recon, enc_nz) = encode_luma_residual(
            &src,
            &pred,
            qp,
            true,
            1,
            &mut w,
            &mut p,
            0x5000_0000,
            crate::instr::K_CAVLC,
        );
        let bytes = w.finish();
        let mut r = CavlcReader::new(&bytes);
        let (dec_recon, dec_nz) =
            decode_luma_residual(&pred, qp, &mut r, &mut p, 0x5000_0000).unwrap();
        assert_eq!(enc_recon, dec_recon);
        assert_eq!(enc_nz, dec_nz);
        assert!(enc_nz > 0, "textured content must produce coefficients");
    }

    #[test]
    fn low_qp_reconstruction_is_accurate() {
        let mut p = prof();
        let src = textured_src();
        let pred = [128u8; 256];
        let mut w = CavlcWriter::new();
        let (recon, _) = encode_luma_residual(
            &src,
            &pred,
            Qp::new(4),
            true,
            0,
            &mut w,
            &mut p,
            0,
            crate::instr::K_CAVLC,
        );
        let max_err = src
            .iter()
            .zip(recon.iter())
            .map(|(a, b)| i32::from(a.abs_diff(*b)))
            .max()
            .unwrap();
        assert!(max_err <= 3, "max_err {max_err}");
    }

    #[test]
    fn high_qp_codes_fewer_coefficients() {
        let src = textured_src();
        let pred = [128u8; 256];
        let nz_at = |qp: i32| {
            let mut p = prof();
            let mut w = CavlcWriter::new();
            let (_, nz) = encode_luma_residual(
                &src,
                &pred,
                Qp::new(qp),
                true,
                0,
                &mut w,
                &mut p,
                0,
                crate::instr::K_CAVLC,
            );
            nz
        };
        assert!(nz_at(10) > nz_at(35));
    }

    #[test]
    fn chroma_residual_roundtrip() {
        let mut p = prof();
        let mut src = [0u8; 64];
        for (i, v) in src.iter_mut().enumerate() {
            *v = (100 + (i * 7) % 80) as u8;
        }
        let pred = [128u8; 64];
        let qp = Qp::new(20);
        let mut w = CavlcWriter::new();
        let (er, _) = encode_chroma_residual(
            &src,
            &pred,
            qp,
            false,
            2,
            &mut w,
            &mut p,
            crate::instr::K_CAVLC,
        );
        let bytes = w.finish();
        let mut r = CavlcReader::new(&bytes);
        let (dr, _) = decode_chroma_residual(&pred, qp, &mut r, &mut p).unwrap();
        assert_eq!(er, dr);
    }

    #[test]
    fn corrupt_coef_stream_errors() {
        let mut p = prof();
        // A stream of all-ones bits: cbf=1 then garbage counts.
        let bytes = vec![0xFFu8; 2];
        let mut r = CavlcReader::new(&bytes);
        // Either parses something odd or errors — but must not panic, and a
        // clearly invalid nz (>16) must error.
        let _ = read_coef_block(&mut r, false, &mut p);
    }
}
