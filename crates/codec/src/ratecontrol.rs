//! Rate control (§II-B.1): the six modes and their QP decisions.
//!
//! All modes hand out a per-frame base QP; CBR additionally corrects the QP
//! *within* a frame at macroblock granularity (the paper highlights that CBR
//! is the only macroblock-granular mode).

use crate::config::RateControlMode;
use crate::types::{FrameType, Qp};

/// Frame-type QP offsets (I frames get finer quantization, B frames coarser),
/// matching x264's ip/pb factor defaults in spirit.
const I_OFFSET: i32 = -3;
const B_OFFSET: i32 = 2;

/// Stateful rate controller for one encode.
#[derive(Debug, Clone)]
pub struct RateControl {
    mode: RateControlMode,
    fps: f64,
    /// Average complexity observed so far (EMA of look-ahead cost).
    complexity_ema: f64,
    /// Total bits produced so far.
    bits_so_far: f64,
    /// Frames completed.
    frames_done: u32,
    /// ABR/CBR integral feedback term.
    feedback_qp: f64,
    /// Per-frame complexity table from a first pass (two-pass mode).
    pass1_complexity: Option<Vec<f64>>,
    /// Mean of `pass1_complexity`.
    pass1_mean: f64,
    /// VBV window accounting: bits in the trailing one-second window.
    window_bits: f64,
}

impl RateControl {
    /// Creates a controller for `mode` at the given frame rate.
    pub fn new(mode: RateControlMode, fps: f64) -> Self {
        RateControl {
            mode,
            fps: fps.max(1.0),
            complexity_ema: 0.0,
            bits_so_far: 0.0,
            frames_done: 0,
            feedback_qp: 0.0,
            pass1_complexity: None,
            pass1_mean: 1.0,
            window_bits: 0.0,
        }
    }

    /// Installs per-frame complexities measured by a first pass (two-pass
    /// ABR only). `complexities` is indexed by coding order.
    pub fn set_pass1(&mut self, complexities: Vec<f64>) {
        let mean = if complexities.is_empty() {
            1.0
        } else {
            complexities.iter().sum::<f64>() / complexities.len() as f64
        };
        self.pass1_mean = mean.max(1e-6);
        self.pass1_complexity = Some(complexities);
    }

    /// The mode being executed.
    pub fn mode(&self) -> RateControlMode {
        self.mode
    }

    /// Picks the base QP for the next frame.
    ///
    /// `complexity` is the look-ahead cost estimate for this frame;
    /// `coding_index` is the frame's position in coding order.
    pub fn frame_qp(&mut self, ftype: FrameType, complexity: f64, coding_index: usize) -> Qp {
        let type_offset = match ftype {
            FrameType::I => I_OFFSET,
            FrameType::P => 0,
            FrameType::B => B_OFFSET,
        };
        // Track complexity for CRF modulation.
        if self.complexity_ema == 0.0 {
            self.complexity_ema = complexity.max(1e-6);
        } else {
            self.complexity_ema = 0.9 * self.complexity_ema + 0.1 * complexity.max(1e-6);
        }

        let base = match self.mode {
            RateControlMode::Cqp(q) => {
                f64::from(q) - f64::from(type_offset != 0) * 0.0 + f64::from(type_offset)
            }
            RateControlMode::Crf(crf) | RateControlMode::Vbv { crf, .. } => {
                // Constant quality: busier frames may spend a little more
                // quantization (keeping perceptual quality roughly constant).
                let modulation = if self.complexity_ema > 0.0 && complexity > 0.0 {
                    (complexity / self.complexity_ema).log2().clamp(-1.0, 1.0)
                } else {
                    0.0
                };
                crf + f64::from(type_offset) + modulation
            }
            RateControlMode::Abr { bitrate_kbps } | RateControlMode::Cbr { bitrate_kbps } => {
                self.abr_qp(bitrate_kbps) + f64::from(type_offset)
            }
            RateControlMode::TwoPassAbr { bitrate_kbps } => {
                let alloc = match &self.pass1_complexity {
                    Some(cs) => {
                        let c = cs.get(coding_index).copied().unwrap_or(self.pass1_mean);
                        // Complex frames get more bits => lower qp.
                        -3.0 * (c / self.pass1_mean).max(1e-6).log2().clamp(-2.0, 2.0)
                    }
                    None => 0.0,
                };
                self.abr_qp(bitrate_kbps) + alloc + f64::from(type_offset)
            }
        };

        // VBV cap: if the trailing window exceeded the cap, coarsen.
        let vbv_adjust = if let RateControlMode::Vbv { max_kbps, .. } = self.mode {
            let window_kbps = self.window_bits / 1000.0 * self.fps / self.fps.max(1.0);
            let cap = f64::from(max_kbps);
            if window_kbps > cap {
                2.0 + 4.0 * ((window_kbps / cap) - 1.0).min(2.0)
            } else {
                0.0
            }
        } else {
            0.0
        };

        Qp::new((base + vbv_adjust).round() as i32)
    }

    fn abr_qp(&self, bitrate_kbps: u32) -> f64 {
        26.0 + self.feedback_qp - f64::from(bitrate_kbps).log2() * 0.0 // bitrate enters via feedback
    }

    /// Per-macroblock QP correction (CBR only): compares bits spent so far
    /// in this frame against the pro-rata budget and nudges the quantizer.
    pub fn mb_qp_adjust(
        &self,
        frame_qp: Qp,
        mbs_done: u32,
        mbs_total: u32,
        frame_bits_so_far: f64,
    ) -> Qp {
        let RateControlMode::Cbr { bitrate_kbps } = self.mode else {
            return frame_qp;
        };
        if mbs_done == 0 || mbs_total == 0 {
            return frame_qp;
        }
        let frame_budget = f64::from(bitrate_kbps) * 1000.0 / self.fps;
        let expected = frame_budget * f64::from(mbs_done) / f64::from(mbs_total);
        let ratio = (frame_bits_so_far / expected.max(1.0)).max(0.1);
        let delta = (ratio.log2() * 2.0).clamp(-4.0, 4.0);
        Qp::new(i32::from(frame_qp.value()) + delta.round() as i32)
    }

    /// Reports a finished frame's actual size, updating feedback state.
    pub fn end_frame(&mut self, bits: f64) {
        self.bits_so_far += bits;
        self.frames_done += 1;
        self.window_bits = self.window_bits * (1.0 - 1.0 / self.fps).max(0.0) + bits;

        if let RateControlMode::Abr { bitrate_kbps }
        | RateControlMode::Cbr { bitrate_kbps }
        | RateControlMode::TwoPassAbr { bitrate_kbps } = self.mode
        {
            let target = f64::from(bitrate_kbps) * 1000.0 / self.fps * f64::from(self.frames_done);
            let err = (self.bits_so_far - target) / (f64::from(bitrate_kbps) * 1000.0 / self.fps);
            // Integral controller: one full frame budget of error ~ 1 QP.
            self.feedback_qp = (err * 1.0).clamp(-22.0, 22.0);
        }
    }

    /// Total bits produced so far.
    pub fn bits_so_far(&self) -> f64 {
        self.bits_so_far
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqp_is_constant_per_type() {
        let mut rc = RateControl::new(RateControlMode::Cqp(30), 30.0);
        assert_eq!(rc.frame_qp(FrameType::I, 10.0, 0).value(), 27);
        assert_eq!(rc.frame_qp(FrameType::P, 10.0, 1).value(), 30);
        assert_eq!(rc.frame_qp(FrameType::B, 10.0, 2).value(), 32);
    }

    #[test]
    fn crf_tracks_crf_value() {
        let mut lo = RateControl::new(RateControlMode::Crf(18.0), 30.0);
        let mut hi = RateControl::new(RateControlMode::Crf(40.0), 30.0);
        let q_lo = lo.frame_qp(FrameType::P, 5.0, 0);
        let q_hi = hi.frame_qp(FrameType::P, 5.0, 0);
        assert!(q_hi > q_lo);
    }

    #[test]
    fn abr_feedback_raises_qp_when_overshooting() {
        let mut rc = RateControl::new(RateControlMode::Abr { bitrate_kbps: 100 }, 30.0);
        let q0 = rc.frame_qp(FrameType::P, 5.0, 0);
        // Spend 10x the per-frame budget for several frames.
        for _ in 0..5 {
            rc.end_frame(100.0 * 1000.0 / 30.0 * 10.0);
        }
        let q1 = rc.frame_qp(FrameType::P, 5.0, 5);
        assert!(q1 > q0, "{q1} should exceed {q0}");
    }

    #[test]
    fn abr_feedback_lowers_qp_when_undershooting() {
        let mut rc = RateControl::new(RateControlMode::Abr { bitrate_kbps: 100 }, 30.0);
        let q0 = rc.frame_qp(FrameType::P, 5.0, 0);
        for _ in 0..5 {
            rc.end_frame(10.0); // nearly nothing
        }
        let q1 = rc.frame_qp(FrameType::P, 5.0, 5);
        assert!(q1 < q0);
    }

    #[test]
    fn cbr_adjusts_within_frame() {
        let rc = RateControl::new(RateControlMode::Cbr { bitrate_kbps: 100 }, 30.0);
        let base = Qp::new(26);
        // Massive overshoot halfway through the frame -> coarser.
        let q = rc.mb_qp_adjust(base, 50, 100, 100_000.0);
        assert!(q > base);
        // Undershoot -> finer.
        let q = rc.mb_qp_adjust(base, 50, 100, 10.0);
        assert!(q < base);
        // Non-CBR modes never adjust.
        let rc2 = RateControl::new(RateControlMode::Crf(23.0), 30.0);
        assert_eq!(rc2.mb_qp_adjust(base, 50, 100, 1e9), base);
    }

    #[test]
    fn two_pass_allocates_by_complexity() {
        let mut rc = RateControl::new(RateControlMode::TwoPassAbr { bitrate_kbps: 500 }, 30.0);
        rc.set_pass1(vec![1.0, 100.0]);
        let q_simple = rc.frame_qp(FrameType::P, 1.0, 0);
        let q_complex = rc.frame_qp(FrameType::P, 100.0, 1);
        assert!(
            q_complex < q_simple,
            "complex frames get more bits: {q_complex} vs {q_simple}"
        );
    }

    #[test]
    fn vbv_caps_bitrate() {
        let mut rc = RateControl::new(
            RateControlMode::Vbv {
                crf: 23.0,
                max_kbps: 50,
            },
            30.0,
        );
        let q0 = rc.frame_qp(FrameType::P, 5.0, 0);
        // Blow through the cap.
        for _ in 0..10 {
            rc.end_frame(500_000.0);
        }
        let q1 = rc.frame_qp(FrameType::P, 5.0, 10);
        assert!(q1 > q0);
    }
}
