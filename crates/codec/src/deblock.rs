//! In-loop deblocking filter.
//!
//! A simplified H.264-style edge filter applied to reconstructed frames
//! along macroblock boundaries (luma 16-pel grid, chroma 8-pel grid). Both
//! the encoder and the decoder run this identically, so reconstruction stays
//! bit-exact across the pair. The filter thresholds derive from QP plus the
//! configured alpha/beta offsets (x264's `deblock a:b`).
//!
//! Deblocking runs serially after the macroblock wavefront has been
//! stitched — it reads across macroblock boundaries in both directions, so
//! it cannot join the wavefront without a second dependency front, and as
//! a single frame-sized pass it is cheap relative to macroblock encoding.

use vtx_frame::{Frame, Plane};
use vtx_trace::Profiler;

use crate::types::Qp;

/// Filter strength parameters for a given QP and offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeblockStrength {
    /// Edge activation threshold on |p0 - q0|.
    pub alpha: i32,
    /// Side flatness threshold on |p1 - p0| and |q1 - q0|.
    pub beta: i32,
    /// Clipping bound for the filter delta.
    pub tc: i32,
}

impl DeblockStrength {
    /// Derives thresholds from QP and (alpha, beta) offsets.
    pub fn new(qp: Qp, offsets: (i8, i8)) -> Self {
        let qa = (i32::from(qp.value()) + 2 * i32::from(offsets.0)).clamp(0, 51);
        let qb = (i32::from(qp.value()) + 2 * i32::from(offsets.1)).clamp(0, 51);
        DeblockStrength {
            // Exponential-ish growth like the H.264 alpha table.
            alpha: (0.8 * 2f64.powf(f64::from(qa) / 6.0)).round() as i32,
            beta: qb / 2 - 7,
            tc: qa / 10 + 1,
        }
    }

    /// Whether the filter can modify anything at all at this strength.
    pub fn active(&self) -> bool {
        self.alpha > 0 && self.beta > 0
    }
}

#[inline]
fn filter_pair(p1: u8, p0: u8, q0: u8, q1: u8, s: &DeblockStrength) -> Option<(u8, u8)> {
    let (p1, p0, q0, q1) = (i32::from(p1), i32::from(p0), i32::from(q0), i32::from(q1));
    if (p0 - q0).abs() >= s.alpha || (p1 - p0).abs() >= s.beta || (q1 - q0).abs() >= s.beta {
        return None;
    }
    let delta = (((q0 - p0) * 4 + (p1 - q1) + 4) >> 3).clamp(-s.tc, s.tc);
    Some((
        (p0 + delta).clamp(0, 255) as u8,
        (q0 - delta).clamp(0, 255) as u8,
    ))
}

fn deblock_plane(
    plane: &mut Plane,
    grid: usize,
    s: &DeblockStrength,
    prof: &mut Profiler,
    vaddr: u64,
    scale: u64,
) -> u32 {
    if !s.active() {
        return 0;
    }
    // When the optimizer fused deblocking into the macroblock loop, the
    // filtered lines are still cache-resident: the separate cold sweep's
    // memory traffic disappears (the arithmetic is unchanged).
    let emit = !prof.data_plan().fuse_deblock;
    let w = plane.width();
    let h = plane.height();
    let stride = w as u64 * scale;
    let mut edges_filtered = 0;

    // Vertical edges (columns at multiples of `grid`).
    let mut x = grid;
    while x < w {
        let mut seg_filtered = false;
        for y in 0..h {
            let p1 = plane.get(x - 2.min(x), y);
            let p0 = plane.get(x - 1, y);
            let q0 = plane.get(x, y);
            let q1 = plane.get((x + 1).min(w - 1), y);
            if let Some((np, nq)) = filter_pair(p1, p0, q0, q1, s) {
                plane.set(x - 1, y, np);
                plane.set(x, y, nq);
                edges_filtered += 1;
                seg_filtered = true;
            }
            if y % 8 == 0 {
                // One filter-activation branch per 8-sample segment: the
                // outcome depends on local pixel gradients.
                prof.branch(14, seg_filtered);
                seg_filtered = false;
                if emit {
                    let a = vaddr + y as u64 * scale * stride + x as u64 * scale;
                    prof.load(a);
                    prof.store(a);
                }
            }
        }
        x += grid;
    }

    // Horizontal edges (rows at multiples of `grid`).
    let mut y = grid;
    while y < h {
        if emit {
            prof.load_range(vaddr + (y - 1) as u64 * scale * stride, stride);
            prof.store_range(vaddr + y as u64 * scale * stride, stride);
        }
        let mut seg_filtered = false;
        for x in 0..w {
            let p1 = plane.get(x, y - 2.min(y));
            let p0 = plane.get(x, y - 1);
            let q0 = plane.get(x, y);
            let q1 = plane.get(x, (y + 1).min(h - 1));
            if let Some((np, nq)) = filter_pair(p1, p0, q0, q1, s) {
                plane.set(x, y - 1, np);
                plane.set(x, y, nq);
                edges_filtered += 1;
                seg_filtered = true;
            }
            if x % 8 == 7 {
                prof.branch(14, seg_filtered);
                seg_filtered = false;
            }
        }
        y += grid;
    }
    edges_filtered
}

/// Applies the in-loop filter to a reconstructed frame.
///
/// `kernel` selects the instrumentation identity (encoder vs decoder
/// deblock kernel); `vaddr` is the frame buffer's virtual base address.
pub fn deblock_frame(
    frame: &mut Frame,
    qp: Qp,
    offsets: (i8, i8),
    prof: &mut Profiler,
    kernel: usize,
    vaddr: u64,
    scale: u64,
) {
    let s = DeblockStrength::new(qp, offsets);
    let y_edges = deblock_plane(frame.y_mut(), 16, &s, prof, vaddr, scale);
    let y_bytes = (frame.width() * frame.height()) as u64 * scale * scale;
    let c_bytes = y_bytes / 4;
    let sc = DeblockStrength::new(qp.chroma(), offsets);
    let u_edges = deblock_plane(frame.u_mut(), 8, &sc, prof, vaddr + y_bytes, scale);
    let v_edges = deblock_plane(
        frame.v_mut(),
        8,
        &sc,
        prof,
        vaddr + y_bytes + c_bytes,
        scale,
    );
    let total = y_edges + u_edges + v_edges;
    prof.kernel(kernel, total.max(1), 22, 0);
    prof.branch(3, total > 0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    /// A frame with a sharp step exactly on the MB boundary at x = 16.
    fn blocky_frame() -> Frame {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, if x < 16 { 100 } else { 110 });
            }
        }
        f
    }

    #[test]
    fn strength_grows_with_qp() {
        let weak = DeblockStrength::new(Qp::new(10), (0, 0));
        let strong = DeblockStrength::new(Qp::new(40), (0, 0));
        assert!(strong.alpha > weak.alpha);
        assert!(strong.tc >= weak.tc);
    }

    #[test]
    fn offsets_shift_thresholds() {
        let base = DeblockStrength::new(Qp::new(26), (0, 0));
        let stronger = DeblockStrength::new(Qp::new(26), (3, 3));
        assert!(stronger.alpha > base.alpha);
        assert!(stronger.beta > base.beta);
    }

    #[test]
    fn smooths_block_edge() {
        let mut f = blocky_frame();
        let before = (i32::from(f.y().get(15, 8)) - i32::from(f.y().get(16, 8))).abs();
        deblock_frame(
            &mut f,
            Qp::new(32),
            (0, 0),
            &mut prof(),
            crate::instr::K_DEBLOCK,
            0x3000_0000,
            1,
        );
        let after = (i32::from(f.y().get(15, 8)) - i32::from(f.y().get(16, 8))).abs();
        assert!(after < before, "edge {before} -> {after}");
    }

    #[test]
    fn preserves_real_edges_at_low_qp() {
        // A huge step (real content edge) must survive a low-QP filter.
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, if x < 16 { 30 } else { 220 });
            }
        }
        let before = f.y().get(15, 4);
        deblock_frame(
            &mut f,
            Qp::new(10),
            (0, 0),
            &mut prof(),
            crate::instr::K_DEBLOCK,
            0x3000_0000,
            1,
        );
        assert_eq!(f.y().get(15, 4), before);
    }

    #[test]
    fn deterministic_and_identical_across_calls() {
        let mut a = blocky_frame();
        let mut b = blocky_frame();
        deblock_frame(
            &mut a,
            Qp::new(30),
            (1, 0),
            &mut prof(),
            crate::instr::K_DEBLOCK,
            0,
            1,
        );
        deblock_frame(
            &mut b,
            Qp::new(30),
            (1, 0),
            &mut prof(),
            crate::instr::K_DEC_DEBLOCK,
            0,
            1,
        );
        assert_eq!(a, b);
    }
}
