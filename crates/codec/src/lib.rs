//! A from-scratch, x264-flavoured video transcoder — the workload under study.
//!
//! The paper profiles FFmpeg + x264. This crate reimplements the algorithmic
//! core of that stack in safe Rust, with every performance-relevant knob the
//! paper varies:
//!
//! * **Rate control** (§II-B.1): CQP, CRF, ABR, CBR (macroblock-granular),
//!   two-pass ABR and VBV-constrained — [`ratecontrol`].
//! * **Motion estimation** (§II-B.2): `dia`, `hex`, `umh`, `esa`/`tesa`
//!   integer searches with configurable `merange`, sub-pel refinement
//!   (`subme`), and 1–16 reference frames (`refs`) — [`me`].
//! * **Macroblock mode decision** (§II-B.3): I/P/B frames, intra 16x16 and
//!   4x4 prediction, P16x16/P8x8 partitions, skip detection — [`intra`],
//!   [`mbenc`].
//! * **Quantization** (§II-B.4): H.264 integer transform + quantization with
//!   three trellis levels — [`transform`], [`quant`], [`trellis`].
//! * **Entropy coding**: a decodable run/level bitstream with either plain
//!   exp-Golomb (CAVLC-style) or adaptive binary arithmetic (CABAC-style)
//!   backends — [`entropy`].
//! * **The ten x264 presets** of Table II — [`preset`].
//!
//! Every hot kernel is instrumented through [`vtx_trace::Profiler`], so
//! encoding a clip simultaneously simulates its cache, TLB, and
//! branch-predictor behaviour on a configurable microarchitecture.
//!
//! # Example
//!
//! ```
//! use vtx_codec::{decode_video, encode_video, EncoderConfig};
//! use vtx_frame::{synth, vbench, quality};
//! use vtx_trace::{layout::CodeLayout, Profiler};
//! use vtx_uarch::config::UarchConfig;
//!
//! let video = synth::generate(&vbench::by_name("cat").unwrap(), 1);
//! let cfg = EncoderConfig::default(); // medium preset, CRF 23, refs 3
//! let kernels = vtx_codec::instr::kernel_table();
//! let mut prof = Profiler::new(
//!     &UarchConfig::baseline(), kernels, CodeLayout::default_order(kernels))?;
//! let encoded = encode_video(&video, &cfg, &mut prof)?;
//! let decoded = decode_video(&encoded.bitstream, &mut prof)?;
//! let psnr = quality::sequence_psnr(&video.frames, &decoded.frames)?;
//! assert!(psnr > 28.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bufs;
mod error;
mod wavefront;

pub mod config;
pub mod deblock;
pub mod decoder;
pub mod encoder;
pub mod entropy;
pub mod instr;
pub mod intra;
pub mod lookahead;
pub mod mbenc;
pub mod mc;
pub mod me;
pub mod preset;
pub mod quant;
pub mod ratecontrol;
pub mod tables;
pub mod transform;
pub mod trellis;
pub mod types;

pub use config::{EncoderConfig, PartitionSet, RateControlMode};
pub use decoder::{decode_video, DecodedVideo};
pub use encoder::{encode_video, Bitstream, EncodeResult, EncodeStats};
pub use error::{CodecError, DecodeError};
pub use preset::Preset;
pub use types::{FrameType, MeMethod, MotionVector, Qp};
