//! The CABAC-style backend: adaptive binary arithmetic coding.
//!
//! A classic carry-propagating range coder (the LZMA construction: 32-bit
//! range, 33-bit low with byte cache) with 11-bit adaptive probabilities per
//! context. Compared to the CAVLC backend it compresses noticeably better
//! and executes far more data-dependent work per bin — the property that
//! makes x264's CABAC a front-end and branch-predictor stressor.

use super::{EntropyReader, EntropyWriter};
use crate::CodecError;

const NUM_CTX: usize = 256;
const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS; // 2048
const PROB_INIT: u16 = PROB_ONE / 2;
const ADAPT_SHIFT: u16 = 5;
const TOP: u32 = 1 << 24;

/// Adaptive binary arithmetic writer.
#[derive(Debug, Clone)]
pub struct CabacWriter {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
    probs: Vec<u16>,
    est_milli_bits: u64,
}

impl CabacWriter {
    /// Creates a writer with all contexts at probability one-half.
    pub fn new() -> Self {
        CabacWriter {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
            probs: vec![PROB_INIT; NUM_CTX],
            est_milli_bits: 0,
        }
    }

    fn shift_low(&mut self) {
        if (self.low as u32) < 0xFF00_0000 || (self.low >> 32) != 0 {
            let carry = (self.low >> 32) as u8;
            let mut temp = self.cache;
            loop {
                self.out.push(temp.wrapping_add(carry));
                temp = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & 0xFFFF_FFFF;
    }
}

impl Default for CabacWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Approximate information content of coding `bit` under probability `p`
/// (probability of the *zero* symbol), in milli-bits. A 16-entry lookup on
/// the effective symbol probability keeps this cheap.
fn milli_bits(p_zero: u16, bit: bool) -> u64 {
    let p_sym = if bit { PROB_ONE - p_zero } else { p_zero };
    // -log2(p/2048) in millibits, bucketed.
    const TABLE: [u64; 17] = [
        11_000, 4_000, 3_000, 2_415, 2_000, 1_678, 1_415, 1_193, 1_000, 830, 678, 541, 415, 300,
        193, 93, 1,
    ];
    TABLE[(usize::from(p_sym) * 16 / usize::from(PROB_ONE)).min(16)]
}

impl EntropyWriter for CabacWriter {
    fn put_bit(&mut self, ctx: u32, bit: bool) {
        let p = &mut self.probs[(ctx as usize) & (NUM_CTX - 1)];
        self.est_milli_bits += milli_bits(*p, bit);
        let bound = (self.range >> PROB_BITS) * u32::from(*p);
        if !bit {
            self.range = bound;
            *p += (PROB_ONE - *p) >> ADAPT_SHIFT;
        } else {
            self.low += u64::from(bound);
            self.range -= bound;
            *p -= *p >> ADAPT_SHIFT;
        }
        while self.range < TOP {
            self.shift_low();
            self.range <<= 8;
        }
    }

    fn bits_estimate(&self) -> f64 {
        self.est_milli_bits as f64 / 1000.0
    }

    fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }
}

/// Adaptive binary arithmetic reader; the exact mirror of [`CabacWriter`].
#[derive(Debug, Clone)]
pub struct CabacReader<'a> {
    code: u32,
    range: u32,
    data: &'a [u8],
    pos: usize,
    overruns: usize,
    probs: Vec<u16>,
}

impl<'a> CabacReader<'a> {
    /// Creates a reader over a CABAC payload.
    pub fn new(data: &'a [u8]) -> Self {
        let mut r = CabacReader {
            code: 0,
            range: u32::MAX,
            data,
            pos: 0,
            overruns: 0,
            probs: vec![PROB_INIT; NUM_CTX],
        };
        // The encoder's first emitted byte is the initial zero cache.
        for _ in 0..5 {
            r.code = (r.code << 8) | u32::from(r.next_byte());
        }
        r
    }

    fn next_byte(&mut self) -> u8 {
        if self.pos < self.data.len() {
            let b = self.data[self.pos];
            self.pos += 1;
            b
        } else {
            self.overruns += 1;
            0
        }
    }
}

impl EntropyReader for CabacReader<'_> {
    fn get_bit(&mut self, ctx: u32) -> Result<bool, CodecError> {
        if self.overruns > 8 {
            return Err(CodecError::CorruptBitstream {
                offset: self.pos,
                context: "arithmetic payload exhausted",
            });
        }
        let p = &mut self.probs[(ctx as usize) & (NUM_CTX - 1)];
        let bound = (self.range >> PROB_BITS) * u32::from(*p);
        let bit = if self.code < bound {
            self.range = bound;
            *p += (PROB_ONE - *p) >> ADAPT_SHIFT;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            *p -= *p >> ADAPT_SHIFT;
            true
        };
        while self.range < TOP {
            self.code = (self.code << 8) | u32::from(self.next_byte());
            self.range <<= 8;
        }
        Ok(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::ctx;

    #[test]
    fn bit_sequence_roundtrip() {
        let mut w = CabacWriter::new();
        let pattern: Vec<bool> = (0..5000).map(|i| (i * 7) % 11 < 4).collect();
        for (i, &b) in pattern.iter().enumerate() {
            w.put_bit((i % 6) as u32, b);
        }
        let bytes = w.finish();
        let mut r = CabacReader::new(&bytes);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(r.get_bit((i % 6) as u32).unwrap(), b, "bit {i}");
        }
    }

    #[test]
    fn ue_se_roundtrip() {
        let mut w = CabacWriter::new();
        let values: Vec<u32> = (0..500).map(|i| (i * i) % 3000).collect();
        for &v in &values {
            w.put_ue(ctx::LEVEL, v);
            w.put_se(ctx::MVD_X, v as i32 - 1500);
        }
        let bytes = w.finish();
        let mut r = CabacReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue(ctx::LEVEL).unwrap(), v);
            assert_eq!(r.get_se(ctx::MVD_X).unwrap(), v as i32 - 1500);
        }
    }

    #[test]
    fn biased_input_compresses_below_one_bit_per_bin() {
        let mut w = CabacWriter::new();
        let n = 20_000;
        for i in 0..n {
            w.put_bit(3, i % 16 == 0); // heavily biased toward false
        }
        let bytes = w.finish();
        assert!(
            (bytes.len() as u64) * 8 < n / 2,
            "adaptive coder should beat 0.5 bpb on a 1/16 biased source: {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn estimate_tracks_actual_size() {
        let mut w = CabacWriter::new();
        for i in 0..10_000u32 {
            w.put_bit(i % 4, (u64::from(i) * 2_654_435_761) % 7 < 3);
        }
        let est = w.bits_estimate();
        let actual = w.finish().len() as f64 * 8.0;
        let ratio = est / actual;
        assert!(
            (0.7..1.4).contains(&ratio),
            "estimate off: {est} vs {actual}"
        );
    }

    #[test]
    fn truncated_payload_errors_not_panics() {
        let mut w = CabacWriter::new();
        for i in 0..1000u32 {
            w.put_ue(0, i % 97);
        }
        let mut bytes = w.finish();
        bytes.truncate(bytes.len() / 4);
        let mut r = CabacReader::new(&bytes);
        let mut errored = false;
        for _ in 0..1000 {
            match r.get_ue(0) {
                Ok(_) => {}
                Err(_) => {
                    errored = true;
                    break;
                }
            }
        }
        assert!(errored);
    }

    #[test]
    fn cabac_beats_cavlc_on_biased_syntax() {
        use crate::entropy::cavlc::CavlcWriter;
        // Skewed ue values (mostly 0/1) — CABAC should shrink them.
        let vals: Vec<u32> = (0..20_000)
            .map(|i| if i % 9 == 0 { 3 } else { 0 })
            .collect();
        let mut cw = CabacWriter::new();
        let mut vw = CavlcWriter::new();
        for &v in &vals {
            cw.put_ue(ctx::NZ_COUNT, v);
            vw.put_ue(ctx::NZ_COUNT, v);
        }
        let cb = cw.finish().len();
        let vb = vw.finish().len();
        assert!(cb < vb, "cabac {cb} should beat cavlc {vb}");
    }
}
