//! The CAVLC-style backend: syntax bins map directly to raw bits.

use super::bitio::{BitReader, BitWriter};
use super::{EntropyReader, EntropyWriter};
use crate::CodecError;

/// Context-free variable-length writer (exp-Golomb bit codes).
#[derive(Debug, Default, Clone)]
pub struct CavlcWriter {
    bits: BitWriter,
}

impl CavlcWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl EntropyWriter for CavlcWriter {
    #[inline]
    fn put_bit(&mut self, _ctx: u32, bit: bool) {
        self.bits.put_bit(bit);
    }

    fn bits_estimate(&self) -> f64 {
        self.bits.bit_len() as f64
    }

    fn finish(self) -> Vec<u8> {
        self.bits.finish()
    }
}

/// Reader counterpart of [`CavlcWriter`].
#[derive(Debug, Clone)]
pub struct CavlcReader<'a> {
    bits: BitReader<'a>,
}

impl<'a> CavlcReader<'a> {
    /// Creates a reader over a CAVLC payload.
    pub fn new(data: &'a [u8]) -> Self {
        CavlcReader {
            bits: BitReader::new(data),
        }
    }
}

impl EntropyReader for CavlcReader<'_> {
    #[inline]
    fn get_bit(&mut self, _ctx: u32) -> Result<bool, CodecError> {
        self.bits.get_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_syntax_roundtrip() {
        let mut w = CavlcWriter::new();
        w.put_bit(0, true);
        w.put_ue(8, 17);
        w.put_se(16, -9);
        w.put_bit(0, false);
        let est = w.bits_estimate();
        assert!(est > 0.0);
        let bytes = w.finish();
        let mut r = CavlcReader::new(&bytes);
        assert!(r.get_bit(0).unwrap());
        assert_eq!(r.get_ue(8).unwrap(), 17);
        assert_eq!(r.get_se(16).unwrap(), -9);
        assert!(!r.get_bit(0).unwrap());
    }

    #[test]
    fn estimate_equals_exact_bits() {
        let mut w = CavlcWriter::new();
        w.put_ue(0, 5); // ue(5) = 5 bits
        assert_eq!(w.bits_estimate(), 5.0);
    }
}
