//! Entropy coding backends.
//!
//! The bitstream syntax (mode flags, motion vector differences, run/level
//! coefficient codes) is expressed against the [`EntropyWriter`] /
//! [`EntropyReader`] traits, with two interchangeable backends:
//!
//! * [`cavlc::CavlcWriter`] — plain exp-Golomb bit codes (x264's CAVLC
//!   class: cheap, used by the `ultrafast` preset);
//! * [`cabac::CabacWriter`] — adaptive binary arithmetic coding with
//!   per-syntax-element contexts (x264's CABAC: denser output, heavier and
//!   far branchier — which is exactly why the paper's front-end/branch
//!   observations depend on it).
//!
//! Values are binarized to exp-Golomb bit patterns; in the CABAC backend
//! every bin is arithmetic-coded under a context selected from the syntax
//! element class and bin position, so both backends share one syntax.

pub mod bitio;
pub mod cabac;
pub mod cavlc;

use crate::CodecError;

/// Context-class base identifiers for syntax elements. Each class reserves
/// a small range of contexts for its bin positions.
pub mod ctx {
    /// Macroblock skip flag.
    pub const SKIP: u32 = 0;
    /// Macroblock mode.
    pub const MB_MODE: u32 = 8;
    /// Reference index.
    pub const REF_IDX: u32 = 16;
    /// Motion vector difference, x component.
    pub const MVD_X: u32 = 24;
    /// Motion vector difference, y component.
    pub const MVD_Y: u32 = 32;
    /// Coded-block flag per 4x4 block.
    pub const CBF: u32 = 40;
    /// Number of nonzero coefficients in a block.
    pub const NZ_COUNT: u32 = 48;
    /// Zero-run length before a coefficient.
    pub const RUN: u32 = 64;
    /// Coefficient level magnitude.
    pub const LEVEL: u32 = 80;
    /// Coefficient sign.
    pub const SIGN: u32 = 96;
    /// Per-macroblock QP delta.
    pub const QP_DELTA: u32 = 104;
    /// Intra prediction mode.
    pub const IPRED: u32 = 112;
    /// Frame header fields.
    pub const HEADER: u32 = 120;
}

/// A sink for entropy-coded syntax elements.
pub trait EntropyWriter {
    /// Codes one binary decision under the given context.
    fn put_bit(&mut self, ctx: u32, bit: bool);

    /// Running estimate of emitted bits (exact for CAVLC, fractional
    /// information content for CABAC) — drives rate control.
    fn bits_estimate(&self) -> f64;

    /// Finalizes the stream and returns the payload bytes.
    fn finish(self) -> Vec<u8>;

    /// Codes an unsigned value as exp-Golomb bins under `ctx`.
    fn put_ue(&mut self, ctx: u32, v: u32) {
        let x = u64::from(v) + 1;
        let n = 64 - x.leading_zeros(); // bit length of x
        for i in 0..n - 1 {
            self.put_bit(ctx + i.min(3), false);
        }
        self.put_bit(ctx + (n - 1).min(3), true);
        for i in (0..n - 1).rev() {
            let bit = (x >> i) & 1 != 0;
            self.put_bit(ctx + 4 + i.min(3), bit);
        }
    }

    /// Codes a signed value (zigzag-mapped) as exp-Golomb bins under `ctx`.
    fn put_se(&mut self, ctx: u32, v: i32) {
        let mapped = if v <= 0 {
            (-2i64 * i64::from(v)) as u32
        } else {
            (2i64 * i64::from(v) - 1) as u32
        };
        self.put_ue(ctx, mapped);
    }
}

/// A source of entropy-coded syntax elements; the mirror of [`EntropyWriter`].
pub trait EntropyReader {
    /// Decodes one binary decision under the given context.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptBitstream`] when the payload is exhausted.
    fn get_bit(&mut self, ctx: u32) -> Result<bool, CodecError>;

    /// Decodes an unsigned exp-Golomb value under `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptBitstream`] on truncated or absurdly
    /// long codes (more than 32 prefix zeros).
    fn get_ue(&mut self, ctx: u32) -> Result<u32, CodecError> {
        let mut zeros = 0u32;
        while !self.get_bit(ctx + zeros.min(3))? {
            zeros += 1;
            if zeros > 32 {
                return Err(CodecError::CorruptBitstream {
                    offset: 0,
                    context: "exp-golomb prefix",
                });
            }
        }
        let mut info = 0u64;
        for i in (0..zeros).rev() {
            let bit = self.get_bit(ctx + 4 + i.min(3))?;
            info = (info << 1) | u64::from(bit);
        }
        Ok(((1u64 << zeros) + info - 1) as u32)
    }

    /// Decodes a signed exp-Golomb value under `ctx`.
    ///
    /// # Errors
    ///
    /// Propagates [`CodecError::CorruptBitstream`] from [`Self::get_ue`].
    fn get_se(&mut self, ctx: u32) -> Result<i32, CodecError> {
        let v = self.get_ue(ctx)?;
        Ok(if v & 1 == 1 {
            u64::from(v).div_ceil(2) as i32
        } else {
            -((u64::from(v) / 2) as i32)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::cavlc::{CavlcReader, CavlcWriter};
    use super::*;

    #[test]
    fn ue_se_roundtrip_via_cavlc() {
        let mut w = CavlcWriter::new();
        let values = [0u32, 1, 2, 3, 7, 8, 255, 1 << 20, u32::MAX - 1];
        for &v in &values {
            w.put_ue(ctx::LEVEL, v);
        }
        let signed = [0i32, 1, -1, 5, -5, 1 << 20, -(1 << 20)];
        for &v in &signed {
            w.put_se(ctx::MVD_X, v);
        }
        let bytes = w.finish();
        let mut r = CavlcReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.get_ue(ctx::LEVEL).unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.get_se(ctx::MVD_X).unwrap(), v);
        }
    }

    #[test]
    fn truncated_stream_errors() {
        let mut w = CavlcWriter::new();
        w.put_ue(0, 300);
        let mut bytes = w.finish();
        bytes.truncate(1);
        let mut r = CavlcReader::new(&bytes);
        // May succeed partially, but must eventually error instead of panic.
        let mut err = false;
        for _ in 0..10 {
            if r.get_ue(0).is_err() {
                err = true;
                break;
            }
        }
        assert!(err);
    }
}
