//! Raw bit-level I/O used by the CAVLC backend.

use crate::CodecError;

/// An MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u32,
    nbits: u32,
    total_bits: u64,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a single bit.
    #[inline]
    pub fn put_bit(&mut self, bit: bool) {
        self.acc = (self.acc << 1) | u32::from(bit);
        self.nbits += 1;
        self.total_bits += 1;
        if self.nbits == 8 {
            self.buf.push(self.acc as u8);
            self.acc = 0;
            self.nbits = 0;
        }
    }

    /// Appends the low `n` bits of `v`, MSB first.
    ///
    /// # Panics
    ///
    /// Panics if `n > 32`.
    pub fn put_bits(&mut self, v: u32, n: u32) {
        assert!(n <= 32);
        for i in (0..n).rev() {
            self.put_bit((v >> i) & 1 != 0);
        }
    }

    /// Total bits written so far (before padding).
    pub fn bit_len(&self) -> u64 {
        self.total_bits
    }

    /// Pads with zero bits to a byte boundary and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        while self.nbits != 0 {
            self.put_bit(false);
        }
        self.buf
    }
}

/// An MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    data: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        BitReader { data, bit_pos: 0 }
    }

    /// Reads a single bit.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptBitstream`] at end of data.
    #[inline]
    pub fn get_bit(&mut self) -> Result<bool, CodecError> {
        let byte = self.bit_pos / 8;
        if byte >= self.data.len() {
            return Err(CodecError::CorruptBitstream {
                offset: byte,
                context: "bit read past end",
            });
        }
        let bit = (self.data[byte] >> (7 - (self.bit_pos % 8))) & 1 != 0;
        self.bit_pos += 1;
        Ok(bit)
    }

    /// Reads `n` bits MSB-first.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::CorruptBitstream`] if fewer than `n` bits remain.
    pub fn get_bits(&mut self, n: u32) -> Result<u32, CodecError> {
        let mut v = 0u32;
        for _ in 0..n {
            v = (v << 1) | u32::from(self.get_bit()?);
        }
        Ok(v)
    }

    /// Current bit position.
    pub fn bit_pos(&self) -> usize {
        self.bit_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.put_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.finish();
        assert_eq!(bytes.len(), 2);
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.get_bit().unwrap(), b);
        }
    }

    #[test]
    fn multibit_roundtrip() {
        let mut w = BitWriter::new();
        w.put_bits(0b1011, 4);
        w.put_bits(0xABCD, 16);
        w.put_bits(0, 3);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get_bits(4).unwrap(), 0b1011);
        assert_eq!(r.get_bits(16).unwrap(), 0xABCD);
        assert_eq!(r.get_bits(3).unwrap(), 0);
    }

    #[test]
    #[should_panic]
    fn put_bits_over_32_panics() {
        let mut w = BitWriter::new();
        w.put_bits(0, 33);
    }

    #[test]
    fn read_past_end_errors() {
        let bytes = BitWriter::new().finish();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert!(r.get_bit().is_err());
    }
}
