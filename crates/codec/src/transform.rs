//! The H.264 4x4 integer transform and the Hadamard transform used for SATD.
//!
//! The forward/inverse pair is the standard bit-exact integer approximation
//! of the DCT: all arithmetic is shifts and adds, and
//! `idct4x4(dct4x4(x))` reproduces `x` exactly after the `>> 6` scaling
//! (given quantization-free round-tripping).

/// A 4x4 coefficient block in row-major order.
pub type Block4x4 = [i32; 16];

/// Forward 4x4 integer DCT (H.264 core transform), in place.
///
/// Input: spatial residual; output: transform coefficients (scaled by the
/// matrix gain, compensated in quantization).
pub fn dct4x4(b: &mut Block4x4) {
    // Rows.
    for r in 0..4 {
        let i = r * 4;
        let (a0, a1, a2, a3) = (b[i], b[i + 1], b[i + 2], b[i + 3]);
        let s03 = a0 + a3;
        let s12 = a1 + a2;
        let d03 = a0 - a3;
        let d12 = a1 - a2;
        b[i] = s03 + s12;
        b[i + 1] = 2 * d03 + d12;
        b[i + 2] = s03 - s12;
        b[i + 3] = d03 - 2 * d12;
    }
    // Columns.
    for c in 0..4 {
        let (a0, a1, a2, a3) = (b[c], b[c + 4], b[c + 8], b[c + 12]);
        let s03 = a0 + a3;
        let s12 = a1 + a2;
        let d03 = a0 - a3;
        let d12 = a1 - a2;
        b[c] = s03 + s12;
        b[c + 4] = 2 * d03 + d12;
        b[c + 8] = s03 - s12;
        b[c + 12] = d03 - 2 * d12;
    }
}

/// Inverse 4x4 integer DCT, in place; includes the final `(x + 32) >> 6`
/// scaling so that dequantized coefficients map back to residual amplitude.
pub fn idct4x4(b: &mut Block4x4) {
    // Rows.
    for r in 0..4 {
        let i = r * 4;
        let (a0, a1, a2, a3) = (b[i], b[i + 1], b[i + 2], b[i + 3]);
        let e0 = a0 + a2;
        let e1 = a0 - a2;
        let e2 = (a1 >> 1) - a3;
        let e3 = a1 + (a3 >> 1);
        b[i] = e0 + e3;
        b[i + 1] = e1 + e2;
        b[i + 2] = e1 - e2;
        b[i + 3] = e0 - e3;
    }
    // Columns.
    for c in 0..4 {
        let (a0, a1, a2, a3) = (b[c], b[c + 4], b[c + 8], b[c + 12]);
        let e0 = a0 + a2;
        let e1 = a0 - a2;
        let e2 = (a1 >> 1) - a3;
        let e3 = a1 + (a3 >> 1);
        b[c] = (e0 + e3 + 32) >> 6;
        b[c + 4] = (e1 + e2 + 32) >> 6;
        b[c + 8] = (e1 - e2 + 32) >> 6;
        b[c + 12] = (e0 - e3 + 32) >> 6;
    }
}

/// 4x4 Hadamard transform, in place (used for SATD cost).
pub fn hadamard4x4(b: &mut Block4x4) {
    for r in 0..4 {
        let i = r * 4;
        let (a0, a1, a2, a3) = (b[i], b[i + 1], b[i + 2], b[i + 3]);
        let s0 = a0 + a1;
        let s1 = a2 + a3;
        let d0 = a0 - a1;
        let d1 = a2 - a3;
        b[i] = s0 + s1;
        b[i + 1] = s0 - s1;
        b[i + 2] = d0 + d1;
        b[i + 3] = d0 - d1;
    }
    for c in 0..4 {
        let (a0, a1, a2, a3) = (b[c], b[c + 4], b[c + 8], b[c + 12]);
        let s0 = a0 + a1;
        let s1 = a2 + a3;
        let d0 = a0 - a1;
        let d1 = a2 - a3;
        b[c] = s0 + s1;
        b[c + 4] = s0 - s1;
        b[c + 8] = d0 + d1;
        b[c + 12] = d0 - d1;
    }
}

/// Sum of absolute transformed differences between two 4x4 pixel blocks —
/// the cost metric high `subme` levels use instead of SAD.
pub fn satd4x4(a: &[u8], b: &[u8]) -> u32 {
    debug_assert!(a.len() >= 16 && b.len() >= 16);
    let mut d: Block4x4 = [0; 16];
    for i in 0..16 {
        d[i] = i32::from(a[i]) - i32::from(b[i]);
    }
    hadamard4x4(&mut d);
    // Normalize by 2 (Hadamard gain) like x264.
    d.iter().map(|&v| v.unsigned_abs()).sum::<u32>() / 2
}

/// Sum of absolute differences between two equal-size pixel blocks.
pub fn sad(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| u32::from(x.abs_diff(y)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idct_of_scaled_dc_recovers_flat_block() {
        // A dequantized DC of 640 (10 * the 64x transform gain) must come
        // back as a flat block of 10s; the quant/dequant pipeline provides
        // that scaling in practice (see quant.rs round-trip tests).
        let mut b: Block4x4 = [0; 16];
        b[0] = 640;
        idct4x4(&mut b);
        assert!(b.iter().all(|&v| v == 10), "{b:?}");
    }

    #[test]
    fn dct_of_flat_block_is_dc_only() {
        let mut b: Block4x4 = [7; 16];
        dct4x4(&mut b);
        assert_eq!(b[0], 7 * 16);
        assert!(b[1..].iter().all(|&v| v == 0));
    }

    #[test]
    fn hadamard_energy_preserved() {
        let mut b: Block4x4 = [
            1, -2, 3, -4, 5, -6, 7, -8, 9, -10, 11, -12, 13, -14, 15, -16,
        ];
        let orig_sq: i64 = b.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        hadamard4x4(&mut b);
        let tran_sq: i64 = b.iter().map(|&v| i64::from(v) * i64::from(v)).sum();
        // Orthogonal transform with gain 4: energy scales by 16.
        assert_eq!(tran_sq, orig_sq * 16);
    }

    #[test]
    fn satd_zero_for_identical() {
        let a = [100u8; 16];
        assert_eq!(satd4x4(&a, &a), 0);
        let mut b = a;
        b[5] = 110;
        assert!(satd4x4(&a, &b) > 0);
    }

    #[test]
    fn sad_basics() {
        let a = [10u8; 16];
        let b = [13u8; 16];
        assert_eq!(sad(&a, &b), 48);
        assert_eq!(sad(&a, &a), 0);
    }

    #[test]
    fn satd_penalizes_structure_less_than_sad_for_dc_shift() {
        // A pure DC shift: SATD (after transform) concentrates it, so
        // satd < sad for flat differences of the same magnitude sum.
        let a = [100u8; 16];
        let b = [108u8; 16];
        assert!(satd4x4(&a, &b) < sad(&a, &b));
    }
}
