//! Motion compensation: full-pel block copy and half-pel bilinear
//! interpolation, with edge extension at frame borders.

use vtx_frame::Plane;

use crate::types::MotionVector;

/// Produces the `bw x bh` motion-compensated luma prediction for a block at
/// `(x, y)` displaced by `mv` (half-pel units) from `reference`.
///
/// Half-pel positions use bilinear interpolation of the 2 (or 4) nearest
/// full-pel samples, edge-extended at the borders.
///
/// # Panics
///
/// Panics if `out.len() < bw * bh`.
pub fn mc_luma(
    reference: &Plane,
    mv: MotionVector,
    x: usize,
    y: usize,
    bw: usize,
    bh: usize,
    out: &mut [u8],
) {
    assert!(out.len() >= bw * bh);
    let (fx, fy) = mv.fullpel();
    let hx = (mv.x & 1) as i32;
    let hy = (mv.y & 1) as i32;
    let bx = x as isize + fx as isize;
    let by = y as isize + fy as isize;

    if hx == 0 && hy == 0 {
        reference.copy_block_clamped(bx, by, bw, bh, out);
        return;
    }

    for row in 0..bh {
        for col in 0..bw {
            let px = bx + col as isize;
            let py = by + row as isize;
            let p00 = u32::from(reference.get_clamped(px, py));
            let v = match (hx, hy) {
                (1, 0) => (p00 + u32::from(reference.get_clamped(px + 1, py))).div_ceil(2),
                (0, 1) => (p00 + u32::from(reference.get_clamped(px, py + 1))).div_ceil(2),
                _ => {
                    let p10 = u32::from(reference.get_clamped(px + 1, py));
                    let p01 = u32::from(reference.get_clamped(px, py + 1));
                    let p11 = u32::from(reference.get_clamped(px + 1, py + 1));
                    (p00 + p10 + p01 + p11 + 2) / 4
                }
            };
            out[row * bw + col] = v as u8;
        }
    }
}

/// Motion-compensates one chroma plane: the luma vector is halved (4:2:0),
/// keeping half-pel precision via bilinear interpolation.
///
/// `(cx, cy)` are chroma-plane coordinates; the output block is `bw x bh`
/// chroma samples.
pub fn mc_chroma(
    reference: &Plane,
    mv: MotionVector,
    cx: usize,
    cy: usize,
    bw: usize,
    bh: usize,
    out: &mut [u8],
) {
    // Luma half-pel units -> chroma half-pel units = halve keeping one
    // fractional bit. Arithmetic shift, not `/ 2`: truncating division
    // rounds negative vectors toward zero, which would bias the chroma
    // prediction differently for leftward vs. rightward motion. `>> 1`
    // rounds toward -inf for both signs (the H.264 convention), keeping
    // chroma prediction mirror-symmetric.
    let cmv = MotionVector::new(mv.x >> 1, mv.y >> 1);
    mc_luma(reference, cmv, cx, cy, bw, bh, out);
}

/// Averages two prediction blocks into `out` — bi-prediction for B frames.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn average(a: &[u8], b: &[u8], out: &mut [u8]) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), out.len());
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = (u16::from(x) + u16::from(y)).div_ceil(2) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_plane() -> Plane {
        let mut p = Plane::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, (x * 4 + y) as u8);
            }
        }
        p
    }

    #[test]
    fn fullpel_copy_matches_source() {
        let p = ramp_plane();
        let mut out = [0u8; 64];
        mc_luma(&p, MotionVector::from_fullpel(2, 3), 4, 4, 8, 8, &mut out);
        for row in 0..8 {
            for col in 0..8 {
                assert_eq!(out[row * 8 + col], p.get(6 + col, 7 + row));
            }
        }
    }

    #[test]
    fn halfpel_x_interpolates() {
        let p = ramp_plane();
        let mut out = [0u8; 16];
        mc_luma(&p, MotionVector::new(1, 0), 8, 8, 4, 4, &mut out);
        let expect = (u32::from(p.get(8, 8)) + u32::from(p.get(9, 8))).div_ceil(2);
        assert_eq!(u32::from(out[0]), expect);
    }

    #[test]
    fn halfpel_xy_averages_four() {
        let p = ramp_plane();
        let mut out = [0u8; 16];
        mc_luma(&p, MotionVector::new(1, 1), 8, 8, 4, 4, &mut out);
        let e = (u32::from(p.get(8, 8))
            + u32::from(p.get(9, 8))
            + u32::from(p.get(8, 9))
            + u32::from(p.get(9, 9))
            + 2)
            / 4;
        assert_eq!(u32::from(out[0]), e);
    }

    #[test]
    fn out_of_bounds_clamps() {
        let p = ramp_plane();
        let mut out = [0u8; 256];
        mc_luma(
            &p,
            MotionVector::from_fullpel(-100, -100),
            0,
            0,
            16,
            16,
            &mut out,
        );
        assert!(out.iter().all(|&v| v == p.get(0, 0)));
    }

    #[test]
    fn chroma_halves_vector() {
        let p = ramp_plane();
        let mut a = [0u8; 16];
        let mut b = [0u8; 16];
        // Luma mv of 4 half-pels (= 2 full-pel) -> chroma 1 full-pel.
        mc_chroma(&p, MotionVector::new(4, 0), 4, 4, 4, 4, &mut a);
        mc_luma(&p, MotionVector::from_fullpel(1, 0), 4, 4, 4, 4, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn chroma_rounding_is_sign_symmetric() {
        // On a linear ramp, bilinear interpolation is exact, so the only
        // error in the chroma prediction is the MV-halving quantization.
        // An odd luma vector of +5 half-pels targets +1.25 chroma pels and
        // -5 targets -1.25; rounding toward -inf under-shoots *both* by a
        // quarter pel, so the prediction error must be identical for
        // leftward and rightward motion. (Truncating division instead
        // pulls both toward zero: -1 vs. +1 on this ramp.)
        let mut p = Plane::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                p.set(x, y, (x * 4) as u8);
            }
        }
        let mut out = [0u8; 16];

        mc_chroma(&p, MotionVector::new(5, 0), 8, 8, 4, 4, &mut out);
        // True target 8 + 1.25 = 9.25 pel -> value 37.
        let err_right = i32::from(out[0]) - 37;

        mc_chroma(&p, MotionVector::new(-5, 0), 8, 8, 4, 4, &mut out);
        // True target 8 - 1.25 = 6.75 pel -> value 27.
        let err_left = i32::from(out[0]) - 27;

        assert_eq!(
            err_right, err_left,
            "chroma MV rounding must not depend on motion direction"
        );
    }

    #[test]
    #[should_panic]
    fn average_length_mismatch_panics() {
        let a = [0u8; 4];
        let b = [0u8; 3];
        let mut out = [0u8; 4];
        average(&a, &b, &mut out);
    }

    #[test]
    fn average_rounds() {
        let a = [10u8, 11, 0, 255];
        let b = [20u8, 12, 1, 255];
        let mut out = [0u8; 4];
        average(&a, &b, &mut out);
        assert_eq!(out, [15, 12, 1, 255]);
    }
}

use vtx_frame::Frame;

/// Builds the full inter prediction (luma 16x16 + both chroma 8x8) for a
/// macroblock. `dir`: 0 = forward only, 1 = backward only, 2 = bi-predicted
/// average. Shared by the encoder and decoder so reconstruction can never
/// diverge.
pub fn build_inter_pred_frames(
    fwd: &Frame,
    bwd: Option<&Frame>,
    fwd_mv: MotionVector,
    bwd_mv: MotionVector,
    dir: u8,
    mb_x: usize,
    mb_y: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    let x = mb_x * 16;
    let y = mb_y * 16;
    let cx = mb_x * 8;
    let cy = mb_y * 8;

    let mc_one = |f: &Frame, mv: MotionVector| -> ([u8; 256], [u8; 64], [u8; 64]) {
        let mut py = [0u8; 256];
        let mut pu = [0u8; 64];
        let mut pv = [0u8; 64];
        mc_luma(f.y(), mv, x, y, 16, 16, &mut py);
        mc_chroma(f.u(), mv, cx, cy, 8, 8, &mut pu);
        mc_chroma(f.v(), mv, cx, cy, 8, 8, &mut pv);
        (py, pu, pv)
    };

    match dir {
        0 => mc_one(fwd, fwd_mv),
        1 => mc_one(bwd.unwrap_or(fwd), bwd_mv),
        _ => {
            let (fy, fu, fv) = mc_one(fwd, fwd_mv);
            let (by, bu, bv) = mc_one(bwd.unwrap_or(fwd), bwd_mv);
            let mut py = [0u8; 256];
            let mut pu = [0u8; 64];
            let mut pv = [0u8; 64];
            average(&fy, &by, &mut py);
            average(&fu, &bu, &mut pu);
            average(&fv, &bv, &mut pv);
            (py, pu, pv)
        }
    }
}

/// Builds the P8x8 prediction: four independently motion-compensated 8x8
/// luma quadrants; chroma uses the component-wise average vector. Shared by
/// the encoder and decoder.
pub fn build_p8_pred(
    reference: &Frame,
    sub: &[MotionVector; 4],
    mb_x: usize,
    mb_y: usize,
) -> ([u8; 256], [u8; 64], [u8; 64]) {
    let x = mb_x * 16;
    let y = mb_y * 16;
    let mut py = [0u8; 256];
    for q in 0..4 {
        let mut blk = [0u8; 64];
        mc_luma(
            reference.y(),
            sub[q],
            x + (q % 2) * 8,
            y + (q / 2) * 8,
            8,
            8,
            &mut blk,
        );
        for r in 0..8 {
            for c in 0..8 {
                py[((q / 2) * 8 + r) * 16 + (q % 2) * 8 + c] = blk[r * 8 + c];
            }
        }
    }
    let avg_mv = MotionVector::new(
        ((i32::from(sub[0].x) + i32::from(sub[1].x) + i32::from(sub[2].x) + i32::from(sub[3].x))
            / 4) as i16,
        ((i32::from(sub[0].y) + i32::from(sub[1].y) + i32::from(sub[2].y) + i32::from(sub[3].y))
            / 4) as i16,
    );
    let mut pu = [0u8; 64];
    let mut pv = [0u8; 64];
    mc_chroma(reference.u(), avg_mv, mb_x * 8, mb_y * 8, 8, 8, &mut pu);
    mc_chroma(reference.v(), avg_mv, mb_x * 8, mb_y * 8, 8, 8, &mut pv);
    (py, pu, pv)
}

#[cfg(test)]
mod shared_tests {
    use super::*;

    #[test]
    fn bi_direction_averages() {
        let mut a = Frame::new(32, 32);
        a.y_mut().fill(100);
        a.u_mut().fill(90);
        a.v_mut().fill(80);
        let mut b = Frame::new(32, 32);
        b.y_mut().fill(200);
        b.u_mut().fill(110);
        b.v_mut().fill(120);
        let (py, pu, pv) = build_inter_pred_frames(
            &a,
            Some(&b),
            MotionVector::ZERO,
            MotionVector::ZERO,
            2,
            0,
            0,
        );
        assert!(py.iter().all(|&v| v == 150));
        assert!(pu.iter().all(|&v| v == 100));
        assert!(pv.iter().all(|&v| v == 100));
    }

    #[test]
    fn p8_quadrants_use_own_vectors() {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, (x * 8) as u8);
            }
        }
        let sub = [
            MotionVector::from_fullpel(0, 0),
            MotionVector::from_fullpel(2, 0),
            MotionVector::from_fullpel(0, 0),
            MotionVector::from_fullpel(2, 0),
        ];
        let (py, _, _) = build_p8_pred(&f, &sub, 0, 0);
        // Quadrant 1 (top-right) shifted by +2 px: differs from unshifted copy.
        assert_eq!(py[0], f.y().get(0, 0));
        assert_eq!(py[8], f.y().get(10, 0));
    }
}
