//! Scalar quantization/dequantization of 4x4 transform coefficients, plus
//! variance-based adaptive quantization (x264's `aq-mode`).

use crate::tables::{DEQUANT_V, POS_CLASS, QUANT_MF};
use crate::transform::Block4x4;
use crate::types::Qp;

/// Quantizes a block of forward-transform coefficients in place, returning
/// the number of nonzero levels.
///
/// `intra` selects the rounding offset (intra blocks round less
/// aggressively toward zero, per the H.264 reference: f = 2^qbits/3 intra,
/// 2^qbits/6 inter).
pub fn quant4x4(b: &mut Block4x4, qp: Qp, intra: bool) -> u32 {
    let qbits = 15 + u32::from(qp.shift());
    let f: i64 = if intra {
        (1i64 << qbits) / 3
    } else {
        (1i64 << qbits) / 6
    };
    let mf = &QUANT_MF[qp.rem()];
    let mut nz = 0;
    for (i, v) in b.iter_mut().enumerate() {
        let m = i64::from(mf[POS_CLASS[i]]);
        let level = ((i64::from(v.unsigned_abs()) * m + f) >> qbits) as i32;
        *v = if *v < 0 { -level } else { level };
        if level != 0 {
            nz += 1;
        }
    }
    nz
}

/// Dequantizes a block of levels in place (inverse of [`quant4x4`] up to the
/// quantization error).
pub fn dequant4x4(b: &mut Block4x4, qp: Qp) {
    let shift = u32::from(qp.shift());
    let v = &DEQUANT_V[qp.rem()];
    for (i, c) in b.iter_mut().enumerate() {
        *c = (*c * v[POS_CLASS[i]]) << shift;
    }
}

/// Dequantizes a single level at a given block position — used by the
/// trellis search to evaluate candidate levels.
#[inline]
pub fn dequant_coef(level: i32, pos: usize, qp: Qp) -> i32 {
    (level * DEQUANT_V[qp.rem()][POS_CLASS[pos]]) << u32::from(qp.shift())
}

/// Per-macroblock adaptive-quantization offset (x264 `aq-mode 1`): flat
/// blocks get a finer quantizer, busy blocks a coarser one, steered by the
/// log-ratio of the block variance to the frame's average variance.
///
/// Returns a QP delta in `-4..=4`.
pub fn aq_offset(block_variance: u32, avg_variance: f64) -> i32 {
    if avg_variance <= 0.0 {
        return 0;
    }
    let v = f64::from(block_variance.max(1));
    let strength = 1.0; // x264 default aq-strength
    let delta = strength * (v / avg_variance).log2() * 1.5;
    delta.round().clamp(-4.0, 4.0) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{dct4x4, idct4x4};

    fn pipeline(src: Block4x4, qp: Qp, intra: bool) -> Block4x4 {
        let mut b = src;
        dct4x4(&mut b);
        quant4x4(&mut b, qp, intra);
        dequant4x4(&mut b, qp);
        idct4x4(&mut b);
        b
    }

    #[test]
    fn low_qp_is_near_lossless() {
        let src: Block4x4 = [
            10, 20, 30, 40, 15, 25, 35, 45, 12, 22, 32, 42, 18, 28, 38, 48,
        ];
        let out = pipeline(src, Qp::new(0), true);
        for (o, s) in out.iter().zip(src.iter()) {
            assert!((o - s).abs() <= 1, "{out:?} vs {src:?}");
        }
    }

    #[test]
    fn high_qp_is_lossy_but_preserves_dc() {
        let src: Block4x4 = [
            100, 105, 98, 102, 101, 99, 104, 100, 97, 103, 100, 101, 102, 98, 99, 100,
        ];
        let out = pipeline(src, Qp::new(40), true);
        let src_mean: i32 = src.iter().sum::<i32>() / 16;
        let out_mean: i32 = out.iter().sum::<i32>() / 16;
        assert!(
            (src_mean - out_mean).abs() <= 8,
            "mean {src_mean} vs {out_mean}"
        );
    }

    #[test]
    fn error_grows_with_qp() {
        let src: Block4x4 = [
            10, 60, 20, 80, 30, 90, 15, 70, 25, 85, 35, 95, 5, 65, 45, 75,
        ];
        let err = |qp: i32| -> i64 {
            let out = pipeline(src, Qp::new(qp), false);
            out.iter()
                .zip(src.iter())
                .map(|(o, s)| i64::from((o - s).pow(2)))
                .sum()
        };
        assert!(err(12) <= err(30));
        assert!(err(30) <= err(48));
    }

    #[test]
    fn nonzero_count_shrinks_with_qp() {
        let mut noisy: Block4x4 = [0; 16];
        for (i, v) in noisy.iter_mut().enumerate() {
            *v = ((i as i32 * 37) % 23) - 11;
        }
        let count = |qp: i32| {
            let mut b = noisy;
            dct4x4(&mut b);
            quant4x4(&mut b, Qp::new(qp), false)
        };
        assert!(count(4) >= count(24));
        assert!(count(24) >= count(44));
        assert_eq!(count(51).min(1), count(51), "levels can vanish entirely");
    }

    #[test]
    fn quant_preserves_sign() {
        let mut b: Block4x4 = [0; 16];
        b[0] = 500;
        b[1] = -500;
        quant4x4(&mut b, Qp::new(10), true);
        assert!(b[0] > 0);
        assert!(b[1] < 0);
    }

    #[test]
    fn dequant_coef_matches_block_dequant() {
        let mut b: Block4x4 = [0; 16];
        b[3] = 7;
        let single = dequant_coef(7, 3, Qp::new(22));
        dequant4x4(&mut b, Qp::new(22));
        assert_eq!(b[3], single);
    }

    #[test]
    fn aq_offsets_directionally_correct() {
        // Flat block vs very busy block around an average.
        let flat = aq_offset(10, 1000.0);
        let busy = aq_offset(100_000, 1000.0);
        assert!(flat < 0, "flat blocks get finer qp, got {flat}");
        assert!(busy > 0, "busy blocks get coarser qp, got {busy}");
        assert_eq!(aq_offset(100, 0.0), 0);
        assert!(aq_offset(u32::MAX, 1.0) <= 4);
    }
}
