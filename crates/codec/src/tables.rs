//! Constant tables shared by the transform/quantization pipeline.
//!
//! These are the standard H.264 4x4 tables: the zig-zag scan order and the
//! per-`qp % 6` quantization (MF) and dequantization (V) multipliers.

/// Zig-zag scan order for a 4x4 block (row-major index per scan position).
pub const ZIGZAG4X4: [usize; 16] = [0, 1, 4, 8, 5, 2, 3, 6, 9, 12, 13, 10, 7, 11, 14, 15];

/// Forward quantization multipliers `MF[qp%6][class]` where class 0 covers
/// positions (0,0),(0,2),(2,0),(2,2), class 1 the odd-odd positions, and
/// class 2 the rest (H.264 spec, Table 8-xx).
pub const QUANT_MF: [[i32; 3]; 6] = [
    [13107, 5243, 8066],
    [11916, 4660, 7490],
    [10082, 4194, 6554],
    [9362, 3647, 5825],
    [8192, 3355, 5243],
    [7282, 2893, 4559],
];

/// Dequantization multipliers `V[qp%6][class]` (same class mapping).
pub const DEQUANT_V: [[i32; 3]; 6] = [
    [10, 16, 13],
    [11, 18, 14],
    [13, 20, 16],
    [14, 23, 18],
    [16, 25, 20],
    [18, 29, 23],
];

/// Position class (0, 1 or 2) of each coefficient in a row-major 4x4 block,
/// selecting the MF/V column.
pub const POS_CLASS: [usize; 16] = [0, 2, 0, 2, 2, 1, 2, 1, 0, 2, 0, 2, 2, 1, 2, 1];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; 16];
        for &i in &ZIGZAG4X4 {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // First coefficients are the low frequencies.
        assert_eq!(ZIGZAG4X4[0], 0);
        assert_eq!(ZIGZAG4X4[15], 15);
    }

    #[test]
    fn class_mapping_matches_spec() {
        // (0,0) -> class 0, (1,1) -> class 1, (0,1) -> class 2
        assert_eq!(POS_CLASS[0], 0);
        assert_eq!(POS_CLASS[5], 1);
        assert_eq!(POS_CLASS[1], 2);
        // All four even-even positions are class 0.
        for &p in &[0usize, 2, 8, 10] {
            assert_eq!(POS_CLASS[p], 0);
        }
    }

    #[test]
    fn quant_tables_monotone_in_qp() {
        // MF shrinks (coarser) as qp%6 grows; V grows.
        for c in 0..3 {
            for r in 1..6 {
                assert!(QUANT_MF[r][c] < QUANT_MF[r - 1][c]);
                assert!(DEQUANT_V[r][c] >= DEQUANT_V[r - 1][c]);
            }
        }
    }
}
