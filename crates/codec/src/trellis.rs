//! Trellis (rate-distortion) quantization — §II-B.4 of the paper.
//!
//! After scalar quantization, each nonzero level is revisited in reverse
//! zig-zag order and the alternatives `level - 1` and `0` are evaluated
//! against the Lagrangian `D + lambda * R`, where the distortion is measured
//! in the transform domain against the unquantized coefficient and the rate
//! is the exp-Golomb cost of the level plus run coding. This is a
//! deliberately simplified (per-coefficient, greedy) version of x264's
//! Viterbi trellis, preserving its workload character: heavily
//! data-dependent branching over coefficient values.

use crate::quant::{dequant_coef, quant4x4};
use crate::tables::ZIGZAG4X4;
use crate::transform::Block4x4;
use crate::types::{se_len, Qp};

/// Outcome of trellis quantization for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrellisOutcome {
    /// Nonzero levels remaining after optimization.
    pub nonzero: u32,
    /// Number of level-adjustment decisions that were evaluated (drives
    /// instruction accounting).
    pub decisions: u32,
    /// Number of coefficients the RD search considered.
    pub considered: u32,
    /// Per-considered-coefficient outcome bits (LSB = first considered):
    /// 1 = the level was modified. These drive branch-prediction events —
    /// the trellis's accept/reject comparisons are the data-dependent
    /// branches that make it expensive on real hardware.
    pub changed_bits: u32,
}

/// Quantizes `coefs` (forward-transform output) in place with RD refinement.
///
/// `level` selects the strength: `0` = plain scalar quantization, `1` and
/// `2` enable the refinement (`2` additionally considers zeroing isolated
/// high-frequency coefficients more aggressively, mirroring x264's
/// "trellis on all mode decisions").
pub fn trellis_quant(
    coefs: &mut Block4x4,
    qp: Qp,
    intra: bool,
    lambda: f64,
    level: u8,
) -> TrellisOutcome {
    let orig = *coefs;
    let mut nz = quant4x4(coefs, qp, intra);
    if level == 0 || nz == 0 {
        return TrellisOutcome {
            nonzero: nz,
            decisions: 0,
            considered: 0,
            changed_bits: 0,
        };
    }

    // Transform-domain lambda: spatial SSE relates to transform SSE by the
    // transform gain (~64x for this integer DCT), so scale accordingly.
    let tlambda = lambda * 64.0;
    let mut decisions = 0u32;
    let mut considered = 0u32;
    let mut changed_bits = 0u32;

    for zi in (0..16).rev() {
        let pos = ZIGZAG4X4[zi];
        let lvl = coefs[pos];
        if lvl == 0 {
            continue;
        }
        let sign = lvl.signum();
        let mag = lvl.abs();
        let target = orig[pos];

        let err = |l: i32| -> f64 {
            let rec = dequant_coef(l * sign, pos, qp);
            let d = f64::from(target - rec);
            d * d
        };
        let rate = |l: i32| -> f64 {
            if l == 0 {
                // A zeroed coefficient costs nothing itself and shortens the
                // run coding of its neighbours (approximated as 1 bit saved).
                -1.0
            } else {
                f64::from(se_len(l * sign)) + 1.0
            }
        };

        let mut best_mag = mag;
        let mut best_cost = err(mag) + tlambda * rate(mag);
        decisions += 1;

        let down = mag - 1;
        let cost_down = err(down) + tlambda * rate(down);
        decisions += 1;
        if cost_down < best_cost {
            best_cost = cost_down;
            best_mag = down;
        }
        // Level 2 also tries outright zeroing of small high-frequency
        // coefficients even when level-1 looked better.
        if level >= 2 && mag <= 2 && zi >= 8 {
            let cost_zero = err(0) + tlambda * rate(0);
            decisions += 1;
            if cost_zero < best_cost {
                best_mag = 0;
            }
        }

        if best_mag != mag {
            if best_mag == 0 {
                nz -= 1;
            }
            coefs[pos] = best_mag * sign;
            if considered < 32 {
                changed_bits |= 1 << considered;
            }
        }
        considered += 1;
    }

    TrellisOutcome {
        nonzero: nz,
        decisions,
        considered,
        changed_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::dct4x4;

    fn sample_block(seed: i32) -> Block4x4 {
        let mut b: Block4x4 = [0; 16];
        for (i, v) in b.iter_mut().enumerate() {
            *v = ((i as i32 * 29 + seed * 13) % 41) - 20;
        }
        dct4x4(&mut b);
        b
    }

    #[test]
    fn level_zero_matches_scalar_quant() {
        let qp = Qp::new(26);
        let mut a = sample_block(1);
        let mut b = sample_block(1);
        let out = trellis_quant(&mut a, qp, false, qp.lambda(), 0);
        let nz = quant4x4(&mut b, qp, false);
        assert_eq!(a, b);
        assert_eq!(out.nonzero, nz);
        assert_eq!(out.decisions, 0);
        assert_eq!(out.considered, 0);
    }

    #[test]
    fn trellis_never_increases_levels() {
        let qp = Qp::new(28);
        let mut scalar = sample_block(2);
        let mut rd = sample_block(2);
        quant4x4(&mut scalar, qp, false);
        trellis_quant(&mut rd, qp, false, qp.lambda(), 2);
        for i in 0..16 {
            assert!(rd[i].abs() <= scalar[i].abs(), "pos {i}");
            // Signs never flip.
            assert!(rd[i] * scalar[i] >= 0);
        }
    }

    #[test]
    fn trellis_reduces_or_keeps_nonzeros() {
        let qp = Qp::new(34);
        for seed in 0..20 {
            let mut scalar = sample_block(seed);
            let mut rd = sample_block(seed);
            let base = quant4x4(&mut scalar, qp, false);
            let out = trellis_quant(&mut rd, qp, false, qp.lambda(), 2);
            assert!(out.nonzero <= base, "seed {seed}");
        }
    }

    #[test]
    fn decisions_counted_when_active() {
        let qp = Qp::new(24);
        let mut b = sample_block(3);
        let out = trellis_quant(&mut b, qp, false, qp.lambda(), 1);
        if out.nonzero > 0 {
            assert!(out.decisions > 0);
            assert!(out.considered > 0);
            // Changed bits only refer to considered coefficients.
            if out.considered < 32 {
                assert_eq!(out.changed_bits >> out.considered, 0);
            }
        }
    }

    #[test]
    fn empty_block_is_noop() {
        let qp = Qp::new(40);
        let mut b: Block4x4 = [0; 16];
        let out = trellis_quant(&mut b, qp, true, qp.lambda(), 2);
        assert_eq!(out.nonzero, 0);
        assert_eq!(out.decisions, 0);
        assert!(b.iter().all(|&v| v == 0));
    }
}
