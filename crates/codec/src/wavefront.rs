//! Macroblock-row wavefront parallelism.
//!
//! The encoder's 2D dependency is the classic wavefront: macroblock
//! `(x, y)` needs its left neighbour (same row) and the top/top-right
//! neighbours of row `y - 1`, so row `y` may process column `x` as soon as
//! row `y - 1` has finished column `x + 1`:
//!
//! ```text
//! row 0:  [0][1][2][3][4][5] ...
//! row 1:     [0][1][2][3]    ...   (two columns behind row 0)
//! row 2:        [0][1]       ...
//! ```
//!
//! Workers claim whole rows and encode against shared reconstruction
//! state; everything that must be *serial* to stay bit-identical — the
//! entropy writer's adaptive contexts, the raster-order `prev_qp` chain,
//! the profiler's cache/TLB/branch simulation — is captured per macroblock
//! as a replayable record ([`MbRecord`]): syntax as bit-level commands
//! ([`SynCmd`]) and profiler traffic as [`ProfEvent`]s from a recording
//! shard. The main thread stitches records in raster order into the real
//! entropy writer and profiler, so the bitstream and every simulated
//! counter are identical to the serial encoder's, event for event.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use vtx_frame::Frame;
use vtx_trace::ProfEvent;

use crate::config::EncoderConfig;
use crate::entropy::{ctx, EntropyWriter};
use crate::types::{MotionVector, Qp};

/// One recorded syntax command. Bits carry their context id so replaying
/// them through the real (stateful CABAC / CAVLC) writer is exact;
/// QP deltas are recorded as the *absolute* per-MB QP because the delta
/// depends on the raster-order predecessor, which a worker cannot know —
/// the stitching [`DirectSink`] resolves it against its running `prev_qp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SynCmd {
    /// `put_bit(ctx, bit)`.
    Bit(u32, bool),
    /// Absolute macroblock QP; encoded as a delta at stitch time.
    QpDelta(Qp),
}

/// How a macroblock was coded — the per-MB slice of [`EncodeStats`]
/// (`crate::encoder::EncodeStats`), returned instead of mutated so the
/// macroblock body has no side channel besides its outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MbClass {
    /// Skip-coded (prediction only).
    Skip,
    /// Intra-coded (I16x16 or I4x4).
    Intra,
    /// Inter-coded (P16, P8x8 or B16).
    Inter,
}

/// Accumulated macroblock classes for one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct MbCounts {
    pub skip: u64,
    pub intra: u64,
    pub inter: u64,
}

impl MbCounts {
    pub fn add(&mut self, class: MbClass) {
        match class {
            MbClass::Skip => self.skip += 1,
            MbClass::Intra => self.intra += 1,
            MbClass::Inter => self.inter += 1,
        }
    }
}

/// The entropy sink the macroblock body writes to: a normal
/// [`EntropyWriter`] plus the QP-delta element, which is the one syntax
/// element whose value depends on raster order rather than on the
/// macroblock itself.
pub(crate) trait MbSink: EntropyWriter {
    /// Codes the per-MB QP (as a delta against the raster predecessor).
    fn qp_delta(&mut self, qp: Qp);
}

/// Forwards syntax to the real entropy writer, resolving QP deltas against
/// the raster-order `prev_qp` chain. Used directly by the serial path and
/// by the wavefront stitcher.
#[derive(Debug)]
pub(crate) struct DirectSink<'a, W: EntropyWriter> {
    w: &'a mut W,
    prev_qp: Qp,
}

impl<'a, W: EntropyWriter> DirectSink<'a, W> {
    pub fn new(w: &'a mut W, frame_qp: Qp) -> Self {
        DirectSink {
            w,
            prev_qp: frame_qp,
        }
    }
}

impl<W: EntropyWriter> EntropyWriter for DirectSink<'_, W> {
    fn put_bit(&mut self, ctx: u32, bit: bool) {
        self.w.put_bit(ctx, bit);
    }

    fn bits_estimate(&self) -> f64 {
        self.w.bits_estimate()
    }

    fn finish(self) -> Vec<u8> {
        // The borrowed writer is finalized by the frame encoder, not
        // through the sink.
        Vec::new()
    }
}

impl<W: EntropyWriter> MbSink for DirectSink<'_, W> {
    fn qp_delta(&mut self, qp: Qp) {
        self.w.put_se(
            ctx::QP_DELTA,
            i32::from(qp.value()) - i32::from(self.prev_qp.value()),
        );
        self.prev_qp = qp;
    }
}

/// Captures the macroblock's syntax as replayable commands. `put_ue` /
/// `put_se` decompose into `put_bit` calls in the [`EntropyWriter`]
/// default methods, so recording at the bit level loses nothing.
#[derive(Debug, Default)]
pub(crate) struct RecordSink {
    cmds: Vec<SynCmd>,
    bits: u32,
}

impl RecordSink {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn into_cmds(self) -> Vec<SynCmd> {
        self.cmds
    }
}

impl EntropyWriter for RecordSink {
    fn put_bit(&mut self, ctx: u32, bit: bool) {
        self.cmds.push(SynCmd::Bit(ctx, bit));
        self.bits += 1;
    }

    fn bits_estimate(&self) -> f64 {
        // Plain bit count. Only consumed by per-MB rate feedback, and the
        // wavefront path is gated to rate modes that ignore it (CBR falls
        // back to serial).
        f64::from(self.bits)
    }

    fn finish(self) -> Vec<u8> {
        Vec::new()
    }
}

impl MbSink for RecordSink {
    fn qp_delta(&mut self, qp: Qp) {
        self.cmds.push(SynCmd::QpDelta(qp));
    }
}

/// Everything one macroblock produced, ready for in-order stitching.
#[derive(Debug)]
pub(crate) struct MbRecord {
    pub class: MbClass,
    pub syn: Vec<SynCmd>,
    pub events: Vec<ProfEvent>,
}

impl MbRecord {
    /// Replays the recorded syntax into a real sink.
    pub fn replay_syntax<S: MbSink>(&self, sink: &mut S) {
        for cmd in &self.syn {
            match *cmd {
                SynCmd::Bit(c, b) => sink.put_bit(c, b),
                SynCmd::QpDelta(qp) => sink.qp_delta(qp),
            }
        }
    }
}

/// Per-frame state shared between wavefront workers: the reconstruction
/// frame plus the MV / intra maps the MV predictor reads from neighbours.
#[derive(Debug)]
pub(crate) struct FrameShared {
    pub recon: Frame,
    pub mvs: Vec<MotionVector>,
    pub intra_map: Vec<bool>,
}

/// Shared wavefront coordination state.
///
/// # Safety invariant
///
/// `frame` is handed out as `&mut FrameShared` concurrently to workers via
/// [`WfShared::frame_mut`]. This is sound only under the wavefront
/// discipline, which every caller must uphold:
///
/// * a worker owns exactly one row at a time (rows are claimed via
///   [`WfShared::claim_row`]) and is the only writer of that row's
///   macroblocks in `recon` / `mvs` / `intra_map`;
/// * before encoding column `x` of row `r > 0` it calls
///   [`WfShared::wait_row`]`(r - 1, min(x + 2, mb_w))`, so every
///   neighbour it reads (left: own row; top / top-left / top-right:
///   row `r - 1`) was published before the read — the Release store in
///   [`WfShared::publish`] paired with the Acquire load in `wait_row`
///   makes those writes visible;
/// * nothing reads a macroblock region that has not been published.
///
/// Under that protocol all concurrent accesses are to disjoint memory, so
/// there are no data races.
pub(crate) struct WfShared {
    frame: UnsafeCell<FrameShared>,
    /// One slot per macroblock, written once by its row's worker, consumed
    /// once by the stitcher.
    slots: Vec<UnsafeCell<Option<MbRecord>>>,
    /// `progress[r]` = number of macroblocks of row `r` published.
    progress: Vec<AtomicU32>,
    next_row: AtomicUsize,
    pub mb_w: usize,
    pub mb_h: usize,
    /// Set when a worker panics so the spin loops abort instead of
    /// deadlocking on progress that will never come.
    pub poisoned: AtomicBool,
}

// SAFETY: see the struct-level invariant — the wavefront protocol makes
// all concurrent accesses disjoint and orders cross-row reads after the
// corresponding publishes.
unsafe impl Sync for WfShared {}

impl WfShared {
    pub fn new(recon: Frame, mb_w: usize, mb_h: usize) -> Self {
        WfShared {
            frame: UnsafeCell::new(FrameShared {
                recon,
                mvs: vec![MotionVector::ZERO; mb_w * mb_h],
                intra_map: vec![false; mb_w * mb_h],
            }),
            slots: (0..mb_w * mb_h).map(|_| UnsafeCell::new(None)).collect(),
            progress: (0..mb_h).map(|_| AtomicU32::new(0)).collect(),
            next_row: AtomicUsize::new(0),
            mb_w,
            mb_h,
            poisoned: AtomicBool::new(false),
        }
    }

    /// Claims the next unprocessed row (may be `>= mb_h`: no rows left).
    pub fn claim_row(&self) -> usize {
        self.next_row.fetch_add(1, Ordering::Relaxed)
    }

    /// Spins until row `row` has published at least `target` macroblocks.
    ///
    /// # Panics
    ///
    /// Panics if a worker poisoned the wavefront (a panic elsewhere would
    /// otherwise leave this spinning forever).
    pub fn wait_row(&self, row: usize, target: u32) {
        let mut spins = 0u32;
        while self.progress[row].load(Ordering::Acquire) < target {
            if self.poisoned.load(Ordering::Relaxed) {
                panic!("wavefront poisoned: a worker thread panicked");
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(1024) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Grants mutable access to the shared frame state.
    ///
    /// # Safety
    ///
    /// Caller must uphold the wavefront discipline documented on
    /// [`WfShared`]: only touch macroblock regions it owns or that were
    /// published by `wait_row`, and release the reference before
    /// publishing.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn frame_mut(&self) -> &mut FrameShared {
        &mut *self.frame.get()
    }

    /// Publishes macroblock `(mb_x, row)`: stores its record and makes the
    /// reconstruction writes visible to waiters.
    pub fn publish(&self, row: usize, mb_x: usize, rec: MbRecord) {
        // SAFETY: each slot is written exactly once, by the worker owning
        // `row`, before the Release store announces it.
        unsafe {
            *self.slots[row * self.mb_w + mb_x].get() = Some(rec);
        }
        self.progress[row].store(mb_x as u32 + 1, Ordering::Release);
    }

    /// Takes the record for `(mb_x, row)`. Only the stitcher calls this,
    /// after `wait_row(row, mb_x + 1)` observed the publish.
    pub fn take_record(&self, row: usize, mb_x: usize) -> MbRecord {
        // SAFETY: the Acquire in `wait_row` ordered this read after the
        // slot write, and the publishing worker never touches it again.
        unsafe { (*self.slots[row * self.mb_w + mb_x].get()).take() }
            .expect("record taken once, after publish")
    }

    /// Recovers the frame state once all workers have finished.
    pub fn into_inner(self) -> FrameShared {
        self.frame.into_inner()
    }
}

impl std::fmt::Debug for WfShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WfShared")
            .field("mb_w", &self.mb_w)
            .field("mb_h", &self.mb_h)
            .finish_non_exhaustive()
    }
}

/// Poisons the wavefront unless disarmed — a worker that panics (unwinds
/// without reaching `disarm`) trips every spin loop instead of deadlocking
/// them.
#[derive(Debug)]
pub(crate) struct PoisonGuard<'a> {
    flag: &'a AtomicBool,
    armed: bool,
}

impl<'a> PoisonGuard<'a> {
    pub fn new(flag: &'a AtomicBool) -> Self {
        PoisonGuard { flag, armed: true }
    }

    pub fn disarm(mut self) {
        self.armed = false;
    }
}

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.flag.store(true, Ordering::Relaxed);
        }
    }
}

/// Resolves the worker count for one frame. Returns 1 (serial) when the
/// config asks for it, when the frame is too small to overlap rows, or
/// when rate control needs per-MB bitstream feedback (CBR corrects the
/// quantizer against bits *actually written so far*, an inherently serial
/// dependency — threading it would change QP decisions, and the whole
/// point is bit-identical output).
pub(crate) fn wavefront_workers(
    cfg: &EncoderConfig,
    mb_w: usize,
    mb_h: usize,
    per_mb_feedback: bool,
) -> usize {
    let requested = cfg.effective_threads() as usize;
    if requested <= 1 || per_mb_feedback || mb_h < 2 || mb_w < 2 {
        1
    } else {
        requested.min(mb_h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entropy::cavlc::CavlcWriter;

    #[test]
    fn direct_sink_resolves_qp_chain() {
        // Recording absolute QPs and replaying must give the same bits as
        // writing deltas directly.
        let mut direct = CavlcWriter::new();
        let mut prev = Qp::new(30);
        for qp in [32, 32, 28, 30] {
            direct.put_se(ctx::QP_DELTA, qp - i32::from(prev.value()));
            prev = Qp::new(qp);
        }

        let mut rec = RecordSink::new();
        for qp in [32, 32, 28, 30] {
            rec.qp_delta(Qp::new(qp));
        }
        let record = MbRecord {
            class: MbClass::Inter,
            syn: rec.into_cmds(),
            events: Vec::new(),
        };
        let mut w = CavlcWriter::new();
        let mut sink = DirectSink::new(&mut w, Qp::new(30));
        record.replay_syntax(&mut sink);

        assert_eq!(direct.finish(), w.finish());
    }

    #[test]
    fn recorded_bits_replay_exactly() {
        let mut direct = CavlcWriter::new();
        direct.put_bit(ctx::SKIP, false);
        direct.put_ue(ctx::MB_MODE, 3);
        direct.put_se(ctx::MVD_X, -7);

        let mut rec = RecordSink::new();
        rec.put_bit(ctx::SKIP, false);
        rec.put_ue(ctx::MB_MODE, 3);
        rec.put_se(ctx::MVD_X, -7);
        assert!(rec.bits_estimate() > 0.0);
        let record = MbRecord {
            class: MbClass::Inter,
            syn: rec.into_cmds(),
            events: Vec::new(),
        };

        let mut w = CavlcWriter::new();
        let mut sink = DirectSink::new(&mut w, Qp::new(26));
        record.replay_syntax(&mut sink);
        assert_eq!(direct.finish(), w.finish());
    }

    #[test]
    fn publish_take_roundtrip() {
        let wf = WfShared::new(Frame::new(32, 32), 2, 2);
        assert_eq!(wf.claim_row(), 0);
        wf.publish(
            0,
            0,
            MbRecord {
                class: MbClass::Skip,
                syn: Vec::new(),
                events: Vec::new(),
            },
        );
        wf.wait_row(0, 1);
        let rec = wf.take_record(0, 0);
        assert_eq!(rec.class, MbClass::Skip);
        let fs = wf.into_inner();
        assert_eq!(fs.mvs.len(), 4);
    }

    #[test]
    fn poison_guard_arms_on_drop() {
        let flag = AtomicBool::new(false);
        {
            let _g = PoisonGuard::new(&flag);
        }
        assert!(flag.load(Ordering::Relaxed), "undisarmed drop must poison");

        let flag2 = AtomicBool::new(false);
        PoisonGuard::new(&flag2).disarm();
        assert!(!flag2.load(Ordering::Relaxed));
    }

    #[test]
    fn worker_gating() {
        let cfg = EncoderConfig::default();
        assert_eq!(wavefront_workers(&cfg, 8, 8, false), 1); // threads = 1
        let cfg4 = cfg.clone().with_threads(4);
        assert_eq!(wavefront_workers(&cfg4, 8, 8, false), 4);
        assert_eq!(wavefront_workers(&cfg4, 8, 2, false), 2); // capped by rows
        assert_eq!(wavefront_workers(&cfg4, 8, 1, false), 1); // too short
        assert_eq!(wavefront_workers(&cfg4, 1, 8, false), 1); // too narrow
        assert_eq!(wavefront_workers(&cfg4, 8, 8, true), 1); // CBR feedback
    }

    #[test]
    fn counts_accumulate() {
        let mut c = MbCounts::default();
        c.add(MbClass::Skip);
        c.add(MbClass::Intra);
        c.add(MbClass::Inter);
        c.add(MbClass::Inter);
        assert_eq!(
            c,
            MbCounts {
                skip: 1,
                intra: 1,
                inter: 2
            }
        );
    }
}
