//! Virtual-address bookkeeping for the codec's working buffers.
//!
//! Cache simulation needs addresses. Real heap addresses vary run to run, so
//! every buffer the codec touches is registered with the profiler's
//! deterministic virtual allocator; this module computes per-pixel virtual
//! addresses from those bases.
//!
//! # Scaled addressing
//!
//! Synthetic clips are executed at a reduced resolution (1/8 linear) so the
//! 816-point parameter sweep stays tractable, but cache behaviour depends on
//! *working-set size*. Addresses are therefore emitted in the **nominal**
//! resolution's address space: simulated pixel `(x, y)` maps to
//! `base + (y * scale) * (width * scale) + x * scale`. The executed trace is
//! a uniform spatial sample of the full-resolution trace — every 8th row and
//! column — so reference frames, reconstruction buffers and search windows
//! occupy their real footprints in the simulated hierarchy while the event
//! count stays at simulation scale.

use vtx_trace::Profiler;

/// Virtual address map for one encode or decode session.
#[derive(Debug, Clone)]
pub struct CodecBufs {
    /// Base of the raw source video region (encoder only).
    pub src: u64,
    /// One reconstructed-frame buffer per reference slot (newest-first pool).
    pub ref_pool: Vec<u64>,
    /// Residual/coefficient scratch (macroblock-sized working set).
    pub scratch: u64,
    /// Output (or input) bitstream bytes.
    pub bitstream: u64,
    /// Quantization / context tables.
    pub tables: u64,
    width: u64,
    height: u64,
    scale: u64,
    y_bytes: u64,
    c_bytes: u64,
}

impl CodecBufs {
    /// Registers all buffers for a session over `frames` source frames of
    /// simulated size `width x height`, with a reconstruction pool of
    /// `ref_slots` frames, emitting addresses at `scale`x the simulated
    /// geometry (see the module docs).
    pub fn new(
        prof: &mut Profiler,
        width: usize,
        height: usize,
        frames: usize,
        ref_slots: usize,
        scale: u32,
    ) -> Self {
        let scale = u64::from(scale.max(1));
        let y_bytes = (width as u64 * scale) * (height as u64 * scale);
        let c_bytes = y_bytes / 4;
        let frame_bytes = y_bytes + 2 * c_bytes;
        let src = prof.alloc("src_video", frame_bytes * frames as u64);
        let ref_pool = (0..ref_slots.max(1))
            .map(|i| prof.alloc(&format!("ref_frame_{i}"), frame_bytes))
            .collect();
        let scratch = prof.alloc("mb_scratch", 4096);
        let bitstream = prof.alloc("bitstream", frame_bytes * frames as u64 / 2);
        let tables = prof.alloc("coder_tables", 16 * 1024);
        CodecBufs {
            src,
            ref_pool,
            scratch,
            bitstream,
            tables,
            width: width as u64,
            height: height as u64,
            scale,
            y_bytes,
            c_bytes,
        }
    }

    /// The address scale factor (nominal / simulated linear resolution).
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Nominal luma row stride in bytes.
    pub fn stride(&self) -> u64 {
        self.width * self.scale
    }

    /// Bytes in one (nominal-scale) frame across all three planes.
    pub fn frame_bytes(&self) -> u64 {
        self.y_bytes + 2 * self.c_bytes
    }

    /// Address of a luma row (simulated row index) in a source frame.
    pub fn src_luma_row(&self, frame: usize, y: usize) -> u64 {
        self.src + frame as u64 * self.frame_bytes() + y as u64 * self.scale * self.stride()
    }

    /// Address of a luma sample (simulated coordinates) in a pool slot.
    pub fn ref_luma(&self, slot: usize, x: usize, y: usize) -> u64 {
        self.ref_pool[slot % self.ref_pool.len()]
            + y as u64 * self.scale * self.stride()
            + x as u64 * self.scale
    }

    /// Address of a chroma sample (`plane` 0 = U, 1 = V; simulated chroma
    /// coordinates) in a pool slot.
    pub fn ref_chroma(&self, slot: usize, plane: usize, x: usize, y: usize) -> u64 {
        self.ref_pool[slot % self.ref_pool.len()]
            + self.y_bytes
            + plane as u64 * self.c_bytes
            + y as u64 * self.scale * (self.stride() / 2)
            + x as u64 * self.scale
    }

    /// Simulated luma width in samples.
    pub fn width(&self) -> u64 {
        self.width
    }

    /// Simulated luma height in samples.
    pub fn height(&self) -> u64 {
        self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vtx_trace::layout::CodeLayout;
    use vtx_uarch::config::UarchConfig;

    fn prof() -> Profiler {
        let kernels = crate::instr::kernel_table();
        Profiler::new(
            &UarchConfig::baseline(),
            kernels,
            CodeLayout::default_order(kernels),
        )
        .unwrap()
    }

    #[test]
    fn addresses_are_disjoint_per_ref_slot() {
        let mut p = prof();
        let b = CodecBufs::new(&mut p, 64, 48, 4, 3, 1);
        assert_eq!(b.ref_pool.len(), 3);
        let fb = b.frame_bytes();
        assert_eq!(fb, 64 * 48 * 3 / 2);
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    let a = b.ref_luma(i, 0, 0);
                    let c = b.ref_luma(j, 0, 0);
                    assert!(a.abs_diff(c) >= fb);
                }
            }
        }
    }

    #[test]
    fn chroma_behind_luma() {
        let mut p = prof();
        let b = CodecBufs::new(&mut p, 64, 48, 1, 1, 1);
        assert_eq!(b.ref_chroma(0, 0, 0, 0), b.ref_luma(0, 0, 0) + 64 * 48);
        assert_eq!(
            b.ref_chroma(0, 1, 0, 0),
            b.ref_chroma(0, 0, 0, 0) + 64 * 48 / 4
        );
    }

    #[test]
    fn row_addresses_stride_by_width() {
        let mut p = prof();
        let b = CodecBufs::new(&mut p, 64, 48, 2, 1, 1);
        assert_eq!(b.src_luma_row(0, 1) - b.src_luma_row(0, 0), 64);
        assert_eq!(b.src_luma_row(1, 0) - b.src_luma_row(0, 0), b.frame_bytes());
    }

    #[test]
    fn scaled_addressing_expands_working_set() {
        let mut p = prof();
        let b = CodecBufs::new(&mut p, 160, 96, 1, 1, 8);
        // Nominal 1280 x 768 luma.
        assert_eq!(b.frame_bytes(), 1280 * 768 * 3 / 2);
        assert_eq!(b.stride(), 1280);
        // Consecutive simulated rows are 8 nominal rows apart.
        assert_eq!(b.ref_luma(0, 0, 1) - b.ref_luma(0, 0, 0), 8 * 1280);
        // Consecutive simulated columns are 8 bytes apart.
        assert_eq!(b.ref_luma(0, 1, 0) - b.ref_luma(0, 0, 0), 8);
        assert_eq!(b.scale(), 8);
    }
}
