//! Seeded bit-flip fuzzing of the decoder.
//!
//! The fault-tolerance story of the serving layer assumes a transcode
//! worker can hit arbitrary garbage (a truncated upload, a corrupted
//! object-store read) and fail *cleanly* — an `Err` consumed by the retry
//! machinery, never a panic that takes the worker thread down. This test
//! pins that property: thousands of seeded single- and multi-bit mutations
//! of a real encoded bitstream, every one of which must decode to `Ok` or
//! `Err` without panicking, and every `Ok` must be structurally sound.

use vtx_codec::decoder::decode_video;
use vtx_codec::encoder::{encode_video, Bitstream};
use vtx_codec::EncoderConfig;
use vtx_frame::{synth, vbench};
use vtx_trace::layout::CodeLayout;
use vtx_trace::Profiler;
use vtx_uarch::config::UarchConfig;

/// SplitMix64 — self-contained so the test depends on nothing but the seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn prof() -> Profiler {
    let kernels = vtx_codec::instr::kernel_table();
    Profiler::new(
        &UarchConfig::baseline(),
        kernels,
        CodeLayout::default_order(kernels),
    )
    .unwrap()
}

fn encoded_stream() -> Vec<u8> {
    let mut spec = vbench::by_name("cricket").unwrap();
    spec.sim_width = 64;
    spec.sim_height = 48;
    spec.sim_frames = 6;
    let video = synth::generate(&spec, 11);
    let mut p = prof();
    encode_video(&video, &EncoderConfig::default(), &mut p)
        .unwrap()
        .bitstream
        .data
}

#[test]
fn thousand_bit_flips_never_panic() {
    let clean = encoded_stream();
    let mut p = prof();
    // The pristine stream must decode.
    assert!(decode_video(
        &Bitstream {
            data: clean.clone()
        },
        &mut p
    )
    .is_ok());

    let mut rng = Rng(0xC0DE_C0DE);
    let (mut oks, mut errs) = (0u32, 0u32);
    for round in 0..1_000 {
        let mut data = clean.clone();
        // 1–4 bit flips anywhere in the stream, header included.
        let flips = 1 + rng.below(4);
        for _ in 0..flips {
            let byte = rng.below(data.len());
            data[byte] ^= 1 << rng.below(8);
        }
        match decode_video(&Bitstream { data }, &mut p) {
            Ok(out) => {
                // Tolerated flips (e.g. in an fps byte or a residual level)
                // may still decode; the result must be structurally sound.
                oks += 1;
                assert!(out.width > 0 && out.width % 16 == 0, "round {round}");
                assert!(out.height > 0 && out.height % 16 == 0, "round {round}");
                for f in &out.frames {
                    assert_eq!(f.width(), out.width, "round {round}");
                    assert_eq!(f.height(), out.height, "round {round}");
                }
            }
            Err(_) => errs += 1,
        }
    }
    assert_eq!(oks + errs, 1_000);
    // A decoder that "accepted" most corruption would be rubber-stamping
    // garbage: the vast majority of mutations must be detected.
    assert!(errs > 500, "only {errs}/1000 mutations were rejected");
}

#[test]
fn random_truncations_never_panic() {
    let clean = encoded_stream();
    let mut p = prof();
    let mut rng = Rng(0x7EA2);
    for _ in 0..200 {
        let cut = rng.below(clean.len());
        let bs = Bitstream {
            data: clean[..cut].to_vec(),
        };
        // Every strict prefix is missing data; decode must fail cleanly.
        assert!(decode_video(&bs, &mut p).is_err(), "cut at {cut}");
    }
}

#[test]
fn pure_garbage_never_panics() {
    let mut p = prof();
    let mut rng = Rng(0x0BAD_5EED);
    for len in [0usize, 1, 4, 16, 17, 64, 256, 4096] {
        let data: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
        let _ = decode_video(&Bitstream { data }, &mut p);
    }
}
