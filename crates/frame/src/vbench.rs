//! The vbench video catalog (Table I of the paper) plus Big Buck Bunny.
//!
//! vbench selects 15 five-second clips that cluster a corpus of millions of
//! cloud videos; each clip is characterized by resolution, frame rate and an
//! *entropy* score (bits needed for visually lossless encoding — a proxy for
//! motion and scene-transition complexity). The clips themselves are not
//! redistributable, so this module records the published metadata and derives
//! a *simulation geometry* for the synthetic stand-in content produced by
//! [`crate::synth`]: nominal dimensions are divided by 8 and rounded to
//! macroblock multiples, and half a second of frames is synthesized so that
//! frame-rate differences still matter while the full 816-point parameter
//! sweep of Figure 3 remains tractable.

use serde::{Deserialize, Serialize};

/// Metadata for one benchmark video (one row of Table I).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoSpec {
    /// Full vbench file name, e.g. `bike_1280x720_29.mkv`.
    pub full_name: String,
    /// Short name used throughout the paper's figures, e.g. `bike`.
    pub short_name: String,
    /// Nominal (published) luma width in pixels.
    pub nominal_width: u32,
    /// Nominal (published) luma height in pixels.
    pub nominal_height: u32,
    /// Frames per second.
    pub fps: u32,
    /// vbench entropy score (0.2 = near-static screen content, 7.7 = very complex).
    pub entropy: f64,
    /// Width actually synthesized and encoded (multiple of 16).
    pub sim_width: u32,
    /// Height actually synthesized and encoded (multiple of 16).
    pub sim_height: u32,
    /// Number of frames synthesized (about half a second of content).
    pub sim_frames: u32,
}

impl VideoSpec {
    /// Builds a spec from Table I fields, deriving the simulation geometry.
    pub fn from_table(short: &str, width: u32, height: u32, fps: u32, entropy: f64) -> Self {
        let sim_width = round_to_mb(width / 8);
        let sim_height = round_to_mb(height / 8);
        // Half a second of content, but always at least 10 frames so GOP
        // structure (I/P/B) is exercised even at low frame rates.
        let sim_frames = (fps / 2).max(10);
        VideoSpec {
            full_name: format!("{short}_{width}x{height}_{fps}.mkv"),
            short_name: short.to_owned(),
            nominal_width: width,
            nominal_height: height,
            fps,
            entropy,
            sim_width,
            sim_height,
            sim_frames,
        }
    }

    /// Resolution label as used in the paper ("480p", "720p", "1080p", "2160p").
    pub fn resolution_label(&self) -> String {
        format!("{}p", self.nominal_height)
    }

    /// Number of 16x16 macroblocks per synthesized frame.
    pub fn mbs_per_frame(&self) -> u32 {
        (self.sim_width / 16) * (self.sim_height / 16)
    }
}

fn round_to_mb(v: u32) -> u32 {
    let r = ((v + 8) / 16) * 16;
    r.max(32)
}

/// The 15 vbench clips of Table I, in the paper's (entropy-sorted) order,
/// plus Big Buck Bunny which the paper also studies.
///
/// # Example
///
/// ```
/// let cat = vtx_frame::vbench::catalog();
/// assert_eq!(cat.len(), 16);
/// assert_eq!(cat[0].short_name, "desktop");
/// assert!(cat.iter().any(|v| v.short_name == "bbb"));
/// ```
pub fn catalog() -> Vec<VideoSpec> {
    vec![
        VideoSpec::from_table("desktop", 1280, 720, 30, 0.2),
        VideoSpec::from_table("presentation", 1920, 1080, 25, 0.2),
        VideoSpec::from_table("bike", 1280, 720, 29, 0.9),
        VideoSpec::from_table("funny", 1920, 1080, 30, 2.5),
        VideoSpec::from_table("cricket", 1280, 720, 30, 3.4),
        VideoSpec::from_table("house", 1920, 1080, 30, 3.6),
        VideoSpec::from_table("game1", 1920, 1080, 60, 4.6),
        VideoSpec::from_table("game2", 1280, 720, 30, 4.9),
        VideoSpec::from_table("girl", 1280, 720, 30, 5.9),
        VideoSpec::from_table("chicken", 3840, 2160, 30, 5.9),
        VideoSpec::from_table("game3", 1280, 720, 59, 6.1),
        VideoSpec::from_table("cat", 854, 480, 29, 6.8),
        VideoSpec::from_table("holi", 854, 480, 30, 7.0),
        VideoSpec::from_table("landscape", 1920, 1080, 29, 7.2),
        VideoSpec::from_table("hall", 1920, 1080, 29, 7.7),
        // Big Buck Bunny, widely studied in prior work (entropy estimated mid-range).
        VideoSpec::from_table("bbb", 1920, 1080, 30, 3.0),
    ]
}

/// Looks up a catalog entry by its short name.
///
/// # Example
///
/// ```
/// let v = vtx_frame::vbench::by_name("holi").expect("holi is in Table I");
/// assert_eq!(v.nominal_height, 480);
/// ```
pub fn by_name(short_name: &str) -> Option<VideoSpec> {
    catalog().into_iter().find(|v| v.short_name == short_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_row_values() {
        let v = by_name("chicken").unwrap();
        assert_eq!(v.nominal_width, 3840);
        assert_eq!(v.nominal_height, 2160);
        assert_eq!(v.fps, 30);
        assert!((v.entropy - 5.9).abs() < 1e-9);
        assert_eq!(v.resolution_label(), "2160p");
    }

    #[test]
    fn sim_geometry_is_mb_aligned_and_ordered() {
        for v in catalog() {
            assert_eq!(v.sim_width % 16, 0, "{}", v.short_name);
            assert_eq!(v.sim_height % 16, 0, "{}", v.short_name);
            assert!(v.sim_frames >= 10);
        }
        let c480 = by_name("cat").unwrap();
        let c720 = by_name("bike").unwrap();
        let c1080 = by_name("hall").unwrap();
        let c2160 = by_name("chicken").unwrap();
        assert!(c480.mbs_per_frame() < c720.mbs_per_frame());
        assert!(c720.mbs_per_frame() < c1080.mbs_per_frame());
        assert!(c1080.mbs_per_frame() < c2160.mbs_per_frame());
    }

    #[test]
    fn fps_differentiates_frame_counts() {
        let game1 = by_name("game1").unwrap(); // 60 fps
        let funny = by_name("funny").unwrap(); // 30 fps
        assert!(game1.sim_frames > funny.sim_frames);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn entropy_sorted_within_paper_order() {
        let cat = catalog();
        // Paper's Table I is sorted by entropy (sans bbb which we append).
        let entropies: Vec<f64> = cat[..15].iter().map(|v| v.entropy).collect();
        let mut sorted = entropies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(entropies, sorted);
    }
}
