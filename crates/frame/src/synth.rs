//! Deterministic synthetic video generator — the stand-in for the vbench clips.
//!
//! The published vbench property that drives encoder behaviour is *entropy*
//! (motion magnitude and scene-transition frequency). [`ContentProfile`] maps
//! that scalar onto concrete content knobs: number and speed of moving
//! objects, global pan, texture amplitude/frequency, sensor-style noise, and
//! scene-cut cadence. The generated frames therefore stress the encoder the
//! same way the real clips do: low-entropy clips are dominated by skip
//! macroblocks and trivial motion, high-entropy clips force wide motion
//! searches, frequent intra refreshes, and dense residual coding.
//!
//! Everything is seeded; identical `(spec, seed)` inputs produce identical
//! videos on every platform.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{Frame, Video, VideoSpec};

/// Concrete content parameters derived from a vbench entropy score.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentProfile {
    /// Number of independently moving foreground objects.
    pub object_count: usize,
    /// Peak object speed in simulated pixels per frame.
    pub motion_px: f64,
    /// Global pan speed in simulated pixels per frame.
    pub pan_px: f64,
    /// Peak-to-peak amplitude of the background texture.
    pub texture_amp: f64,
    /// Spatial frequency of the background texture (radians per pixel).
    pub texture_freq: f64,
    /// Amplitude of per-pixel uniform noise.
    pub noise_amp: f64,
    /// Frames between hard scene cuts (`None` = no cuts).
    pub cut_period: Option<u32>,
}

impl ContentProfile {
    /// Derives content knobs from a vbench entropy score (0.2..=7.7).
    ///
    /// The mapping is monotone: more entropy means more objects, faster
    /// motion, busier texture, more noise, and more frequent cuts.
    pub fn from_entropy(entropy: f64) -> Self {
        let e = entropy.clamp(0.0, 8.0);
        ContentProfile {
            object_count: 1 + (e * 1.4) as usize,
            motion_px: 0.2 + e * 1.2,
            pan_px: if e >= 3.0 { 0.3 + (e - 3.0) * 0.3 } else { 0.0 },
            texture_amp: 8.0 + e * 9.0,
            texture_freq: 0.18 + e * 0.07,
            // Complexity comes mostly from motion and scene transitions
            // (vbench's definition), with only mild sensor noise.
            noise_amp: e * 0.45,
            cut_period: if e >= 2.5 {
                // e = 2.5 -> a cut roughly every 20 frames; e = 7.7 -> every ~6.
                Some(((50.0 / e) as u32).max(5))
            } else {
                None
            },
        }
    }
}

#[derive(Debug, Clone)]
struct MovingObject {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    w: f64,
    h: f64,
    luma: f64,
    tint_u: f64,
    tint_v: f64,
    tex_phase: f64,
}

#[derive(Debug)]
struct Scene {
    objects: Vec<MovingObject>,
    bg_phase_x: f64,
    bg_phase_y: f64,
    bg_base: f64,
    pan_dir: (f64, f64),
}

impl Scene {
    fn random(rng: &mut SmallRng, profile: &ContentProfile, w: f64, h: f64) -> Self {
        let mut objects = Vec::with_capacity(profile.object_count);
        for _ in 0..profile.object_count {
            let speed = profile.motion_px * rng.gen_range(0.4..1.0);
            let dir = rng.gen_range(0.0..std::f64::consts::TAU);
            objects.push(MovingObject {
                x: rng.gen_range(0.0..w),
                y: rng.gen_range(0.0..h),
                vx: speed * dir.cos(),
                vy: speed * dir.sin(),
                w: rng.gen_range(w * 0.08..w * 0.3),
                h: rng.gen_range(h * 0.08..h * 0.3),
                luma: rng.gen_range(40.0..220.0),
                tint_u: rng.gen_range(-40.0..40.0),
                tint_v: rng.gen_range(-40.0..40.0),
                tex_phase: rng.gen_range(0.0..std::f64::consts::TAU),
            });
        }
        let pan_dir = rng.gen_range(0.0..std::f64::consts::TAU);
        Scene {
            objects,
            bg_phase_x: rng.gen_range(0.0..std::f64::consts::TAU),
            bg_phase_y: rng.gen_range(0.0..std::f64::consts::TAU),
            bg_base: rng.gen_range(90.0..160.0),
            pan_dir: (pan_dir.cos(), pan_dir.sin()),
        }
    }

    fn advance(&mut self, w: f64, h: f64) {
        for o in &mut self.objects {
            o.x += o.vx;
            o.y += o.vy;
            if o.x < -o.w {
                o.x = w;
            } else if o.x > w {
                o.x = -o.w;
            }
            if o.y < -o.h {
                o.y = h;
            } else if o.y > h {
                o.y = -o.h;
            }
        }
    }
}

/// Stable FNV-1a hash of the short name so each catalog video gets distinct
/// (but reproducible) content for the same user seed.
fn name_hash(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Generates the synthetic clip for a catalog entry.
///
/// The output geometry is `spec.sim_width x spec.sim_height` with
/// `spec.sim_frames` frames; content complexity follows
/// [`ContentProfile::from_entropy`]`(spec.entropy)`.
///
/// # Example
///
/// ```
/// use vtx_frame::{synth, vbench};
///
/// let spec = vbench::by_name("desktop").unwrap();
/// let a = synth::generate(&spec, 7);
/// let b = synth::generate(&spec, 7);
/// assert_eq!(a.frames, b.frames); // fully deterministic
/// ```
pub fn generate(spec: &VideoSpec, seed: u64) -> Video {
    let profile = ContentProfile::from_entropy(spec.entropy);
    generate_with_profile(spec, &profile, seed)
}

/// Like [`generate`] but with an explicit, possibly hand-tuned profile.
pub fn generate_with_profile(spec: &VideoSpec, profile: &ContentProfile, seed: u64) -> Video {
    let w = spec.sim_width as usize;
    let h = spec.sim_height as usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ name_hash(&spec.short_name));
    let mut scene = Scene::random(&mut rng, profile, w as f64, h as f64);
    let mut pan = (0.0f64, 0.0f64);

    let mut frames = Vec::with_capacity(spec.sim_frames as usize);
    for t in 0..spec.sim_frames {
        if let Some(period) = profile.cut_period {
            if t > 0 && t % period == 0 {
                scene = Scene::random(&mut rng, profile, w as f64, h as f64);
                pan = (0.0, 0.0);
            }
        }
        frames.push(render_frame(w, h, &scene, pan, profile, &mut rng));
        pan.0 += profile.pan_px * scene.pan_dir.0;
        pan.1 += profile.pan_px * scene.pan_dir.1;
        scene.advance(w as f64, h as f64);
    }
    Video::new(spec.clone(), frames)
}

fn render_frame(
    w: usize,
    h: usize,
    scene: &Scene,
    pan: (f64, f64),
    profile: &ContentProfile,
    rng: &mut SmallRng,
) -> Frame {
    let mut frame = Frame::new(w, h);
    let fx = profile.texture_freq;
    let fy = profile.texture_freq * 0.83;

    for y in 0..h {
        let wy = (y as f64 + pan.1) * fy + scene.bg_phase_y;
        let sin_y = wy.sin();
        for x in 0..w {
            let wx = (x as f64 + pan.0) * fx + scene.bg_phase_x;
            let mut v = scene.bg_base + profile.texture_amp * 0.5 * (wx.sin() + sin_y);
            for o in &scene.objects {
                let dx = x as f64 - o.x;
                let dy = y as f64 - o.y;
                if dx >= 0.0 && dx < o.w && dy >= 0.0 && dy < o.h {
                    v = o.luma
                        + profile.texture_amp
                            * 0.4
                            * ((dx * fx * 1.7 + o.tex_phase).sin()
                                + (dy * fy * 1.9 + o.tex_phase).cos());
                }
            }
            if profile.noise_amp > 0.0 {
                v += rng.gen_range(-profile.noise_amp..=profile.noise_amp);
            }
            frame.y_mut().set(x, y, v.clamp(0.0, 255.0) as u8);
        }
    }

    // Chroma at quarter resolution: slow gradients plus object tints.
    let cw = w / 2;
    let ch = h / 2;
    for y in 0..ch {
        for x in 0..cw {
            let px = (x * 2) as f64;
            let py = (y * 2) as f64;
            let mut u = 128.0 + 14.0 * ((px + pan.0) * fx * 0.21 + scene.bg_phase_x).sin();
            let mut vv = 128.0 + 14.0 * ((py + pan.1) * fy * 0.19 + scene.bg_phase_y).cos();
            for o in &scene.objects {
                let dx = px - o.x;
                let dy = py - o.y;
                if dx >= 0.0 && dx < o.w && dy >= 0.0 && dy < o.h {
                    u = 128.0 + o.tint_u;
                    vv = 128.0 + o.tint_v;
                }
            }
            frame.u_mut().set(x, y, u.clamp(0.0, 255.0) as u8);
            frame.v_mut().set(x, y, vv.clamp(0.0, 255.0) as u8);
        }
    }
    frame
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vbench;

    #[test]
    fn profile_mapping_is_monotone() {
        let lo = ContentProfile::from_entropy(0.2);
        let hi = ContentProfile::from_entropy(7.7);
        assert!(hi.object_count > lo.object_count);
        assert!(hi.motion_px > lo.motion_px);
        assert!(hi.texture_amp > lo.texture_amp);
        assert!(hi.noise_amp > lo.noise_amp);
        assert!(lo.cut_period.is_none());
        assert!(hi.cut_period.is_some());
    }

    #[test]
    fn deterministic_across_calls() {
        let spec = vbench::by_name("cricket").unwrap();
        let a = generate(&spec, 123);
        let b = generate(&spec, 123);
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn different_seeds_differ() {
        let spec = vbench::by_name("cricket").unwrap();
        let a = generate(&spec, 1);
        let b = generate(&spec, 2);
        assert_ne!(a.frames[0], b.frames[0]);
    }

    #[test]
    fn different_names_differ_for_same_seed() {
        let s1 = vbench::by_name("game2").unwrap();
        let s2 = vbench::by_name("girl").unwrap();
        // Same geometry class (720p30), same seed; content must still differ.
        let a = generate(&s1, 9);
        let b = generate(&s2, 9);
        assert_ne!(a.frames[0].y().samples(), b.frames[0].y().samples());
    }

    #[test]
    fn high_entropy_means_more_temporal_change() {
        let calm = generate(&vbench::by_name("desktop").unwrap(), 5);
        let busy = generate(&vbench::by_name("holi").unwrap(), 5);
        let calm_diff = calm.frames[1].mean_abs_luma_diff(&calm.frames[0]).unwrap();
        let busy_diff = busy.frames[1].mean_abs_luma_diff(&busy.frames[0]).unwrap();
        assert!(
            busy_diff > calm_diff * 2.0,
            "busy {busy_diff} vs calm {calm_diff}"
        );
    }

    #[test]
    fn scene_cut_produces_discontinuity() {
        let spec = vbench::by_name("hall").unwrap(); // entropy 7.7 -> frequent cuts
        let profile = ContentProfile::from_entropy(spec.entropy);
        let period = profile.cut_period.unwrap() as usize;
        let v = generate(&spec, 11);
        if period < v.frames.len() {
            let at_cut = v.frames[period]
                .mean_abs_luma_diff(&v.frames[period - 1])
                .unwrap();
            let steady = v.frames[period - 1]
                .mean_abs_luma_diff(&v.frames[period - 2])
                .unwrap();
            assert!(at_cut > steady, "cut {at_cut} vs steady {steady}");
        }
    }
}
