//! Objective quality metrics.
//!
//! The paper reports transcoded video quality as global PSNR in decibels,
//! which is what [`psnr`] computes (combined over Y, U and V with their
//! natural sample weights, the same convention FFmpeg's `-psnr` uses for its
//! "average" figure).

use crate::{Frame, FrameError};

/// PSNR cap used when two signals are bit-identical (MSE = 0).
pub const PSNR_CAP_DB: f64 = 100.0;

/// Mean squared error between two frames over all three planes.
///
/// # Errors
///
/// Returns [`FrameError::GeometryMismatch`] when the frames differ in size.
///
/// # Example
///
/// ```
/// use vtx_frame::{Frame, quality};
///
/// let a = Frame::new(16, 16);
/// let b = Frame::new(16, 16);
/// assert_eq!(quality::mse(&a, &b)?, 0.0);
/// # Ok::<(), vtx_frame::FrameError>(())
/// ```
pub fn mse(a: &Frame, b: &Frame) -> Result<f64, FrameError> {
    let sse = a.y().sse(b.y())? + a.u().sse(b.u())? + a.v().sse(b.v())?;
    Ok(sse as f64 / a.total_samples() as f64)
}

/// Global PSNR in dB between two frames, capped at [`PSNR_CAP_DB`] for
/// identical content.
///
/// # Errors
///
/// Returns [`FrameError::GeometryMismatch`] when the frames differ in size.
pub fn psnr(a: &Frame, b: &Frame) -> Result<f64, FrameError> {
    let m = mse(a, b)?;
    Ok(psnr_from_mse(m))
}

/// Converts an MSE value to PSNR in dB for 8-bit content.
#[inline]
pub fn psnr_from_mse(mse: f64) -> f64 {
    if mse <= 0.0 {
        return PSNR_CAP_DB;
    }
    (10.0 * (255.0f64 * 255.0 / mse).log10()).min(PSNR_CAP_DB)
}

/// Average PSNR across a sequence of (reference, distorted) frame pairs,
/// computed from pooled MSE (the standard way to aggregate sequence PSNR).
///
/// # Errors
///
/// Returns [`FrameError::GeometryMismatch`] on any geometry mismatch and for
/// an empty or length-mismatched pairing.
pub fn sequence_psnr(reference: &[Frame], distorted: &[Frame]) -> Result<f64, FrameError> {
    if reference.is_empty() || reference.len() != distorted.len() {
        return Err(FrameError::GeometryMismatch);
    }
    let mut total = 0.0;
    for (a, b) in reference.iter().zip(distorted) {
        total += mse(a, b)?;
    }
    Ok(psnr_from_mse(total / reference.len() as f64))
}

/// Structural similarity (SSIM) between two luma planes, computed over
/// 8x8 windows with the standard constants — the perceptual companion to
/// PSNR that modern encoder evaluations report alongside bitrate.
///
/// Returns the mean SSIM over all full windows, in `[-1, 1]` (1 = identical).
///
/// # Errors
///
/// Returns [`FrameError::GeometryMismatch`] when the frames differ in size
/// or are smaller than one 8x8 window.
pub fn ssim_luma(a: &Frame, b: &Frame) -> Result<f64, FrameError> {
    if a.width() != b.width() || a.height() != b.height() {
        return Err(FrameError::GeometryMismatch);
    }
    if a.width() < 8 || a.height() < 8 {
        return Err(FrameError::GeometryMismatch);
    }
    const C1: f64 = 6.5025; // (0.01 * 255)^2
    const C2: f64 = 58.5225; // (0.03 * 255)^2

    let mut total = 0.0;
    let mut windows = 0u64;
    for wy in (0..a.height() - 7).step_by(8) {
        for wx in (0..a.width() - 7).step_by(8) {
            let (mut sa, mut sb, mut saa, mut sbb, mut sab) = (0f64, 0f64, 0f64, 0f64, 0f64);
            for y in wy..wy + 8 {
                for x in wx..wx + 8 {
                    let pa = f64::from(a.y().get(x, y));
                    let pb = f64::from(b.y().get(x, y));
                    sa += pa;
                    sb += pb;
                    saa += pa * pa;
                    sbb += pb * pb;
                    sab += pa * pb;
                }
            }
            let n = 64.0;
            let ma = sa / n;
            let mb = sb / n;
            let va = (saa - sa * ma).max(0.0) / (n - 1.0);
            let vb = (sbb - sb * mb).max(0.0) / (n - 1.0);
            let cov = (sab - sa * mb) / (n - 1.0);
            let ssim = ((2.0 * ma * mb + C1) * (2.0 * cov + C2))
                / ((ma * ma + mb * mb + C1) * (va + vb + C2));
            total += ssim;
            windows += 1;
        }
    }
    Ok(total / windows as f64)
}

/// Mean luma SSIM across a sequence of frame pairs.
///
/// # Errors
///
/// Returns [`FrameError::GeometryMismatch`] on empty or mismatched input.
pub fn sequence_ssim(reference: &[Frame], distorted: &[Frame]) -> Result<f64, FrameError> {
    if reference.is_empty() || reference.len() != distorted.len() {
        return Err(FrameError::GeometryMismatch);
    }
    let mut total = 0.0;
    for (a, b) in reference.iter().zip(distorted) {
        total += ssim_luma(a, b)?;
    }
    Ok(total / reference.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_hit_cap() {
        let f = Frame::new(32, 32);
        assert_eq!(psnr(&f, &f).unwrap(), PSNR_CAP_DB);
    }

    #[test]
    fn known_mse_psnr() {
        // Uniform difference of 5 => MSE 25 => PSNR = 10*log10(65025/25) ~ 34.15 dB
        let a = Frame::new(16, 16);
        let mut b = Frame::new(16, 16);
        b.y_mut().fill(133);
        b.u_mut().fill(133);
        b.v_mut().fill(133);
        let p = psnr(&a, &b).unwrap();
        assert!((p - 34.1514).abs() < 0.01, "got {p}");
    }

    #[test]
    fn psnr_monotone_in_distortion() {
        let a = Frame::new(16, 16);
        let mut slightly = a.clone();
        slightly.y_mut().fill(130);
        let mut badly = a.clone();
        badly.y_mut().fill(180);
        assert!(psnr(&a, &slightly).unwrap() > psnr(&a, &badly).unwrap());
    }

    #[test]
    fn sequence_psnr_pools_mse() {
        let a = Frame::new(16, 16);
        let mut b = a.clone();
        b.y_mut().fill(133);
        let seq = sequence_psnr(&[a.clone(), a.clone()], &[a.clone(), b.clone()]).unwrap();
        let single = psnr(&a, &b).unwrap();
        // pooled MSE is half the single-frame MSE => +3.01 dB
        assert!((seq - single - 3.0103).abs() < 0.01);
    }

    #[test]
    fn sequence_psnr_rejects_empty_and_mismatch() {
        let f = Frame::new(16, 16);
        assert!(sequence_psnr(&[], &[]).is_err());
        assert!(sequence_psnr(&[f.clone()], &[]).is_err());
    }

    #[test]
    fn ssim_identical_is_one() {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, ((x * 7 + y * 3) % 251) as u8);
            }
        }
        let s = ssim_luma(&f, &f).unwrap();
        assert!((s - 1.0).abs() < 1e-9, "{s}");
    }

    #[test]
    fn ssim_orders_distortions_like_psnr() {
        let mut f = Frame::new(32, 32);
        for y in 0..32 {
            for x in 0..32 {
                f.y_mut().set(x, y, ((x * 5 + y * 11) % 230) as u8);
            }
        }
        let mut mild = f.clone();
        for v in mild.y_mut().samples_mut() {
            *v = v.saturating_add(3);
        }
        let mut harsh = f.clone();
        for (i, v) in harsh.y_mut().samples_mut().iter_mut().enumerate() {
            *v = v.wrapping_add((i % 61) as u8);
        }
        let s_mild = ssim_luma(&f, &mild).unwrap();
        let s_harsh = ssim_luma(&f, &harsh).unwrap();
        assert!(s_mild > s_harsh, "{s_mild} vs {s_harsh}");
        assert!(s_harsh < 0.99);
    }

    #[test]
    fn ssim_rejects_tiny_or_mismatched() {
        let a = Frame::new(4, 4);
        assert!(ssim_luma(&a, &a).is_err());
        let b = Frame::new(32, 32);
        let c = Frame::new(16, 16);
        assert!(ssim_luma(&b, &c).is_err());
        assert!(sequence_ssim(&[], &[]).is_err());
    }

    #[test]
    fn sequence_ssim_averages() {
        let f = Frame::new(32, 32);
        let s = sequence_ssim(&[f.clone(), f.clone()], &[f.clone(), f.clone()]).unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geometry_mismatch_propagates() {
        let a = Frame::new(16, 16);
        let b = Frame::new(32, 32);
        assert_eq!(psnr(&a, &b), Err(FrameError::GeometryMismatch));
    }
}
