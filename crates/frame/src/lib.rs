//! Frame and video model for the vtx workspace.
//!
//! This crate provides the raw-video substrate used by the transcoder in
//! [`vtx-codec`](https://docs.rs/vtx-codec): 8-bit planar [`Plane`]s, YUV 4:2:0
//! [`Frame`]s, quality metrics ([`quality::psnr`]), and — because the vbench
//! corpus used by the paper is not redistributable — a deterministic
//! *synthetic* video generator ([`synth`]) whose content complexity is driven
//! by the same `entropy` metadata that vbench publishes ([`vbench`]).
//!
//! # Example
//!
//! ```
//! use vtx_frame::vbench;
//!
//! let spec = vbench::catalog().iter().find(|v| v.short_name == "bike").unwrap().clone();
//! let video = vtx_frame::synth::generate(&spec, 42);
//! assert_eq!(video.frames.len(), spec.sim_frames as usize);
//! assert_eq!(video.frames[0].width(), spec.sim_width as usize);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod frame;
mod plane;

pub mod quality;
pub mod synth;
pub mod vbench;
pub mod video;
pub mod y4m;

pub use error::FrameError;
pub use frame::Frame;
pub use plane::Plane;
pub use vbench::VideoSpec;
pub use video::Video;
