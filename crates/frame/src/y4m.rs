//! YUV4MPEG2 (`.y4m`) import/export.
//!
//! The synthetic generator stands in for vbench, but the pipeline is a real
//! transcoder: this module reads and writes the uncompressed `.y4m` format
//! that FFmpeg and most tools speak (`ffmpeg -i in.mp4 out.y4m`), so real
//! footage can be pushed through the instrumented encoder.
//!
//! Only the 4:2:0 chroma layout this workspace uses (`C420`/`C420jpeg`/
//! `C420mpeg2`) is accepted.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use crate::{Frame, Plane, Video, VideoSpec};

/// Errors produced while parsing a `.y4m` stream.
#[derive(Debug)]
pub enum Y4mError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream is not YUV4MPEG2 or uses an unsupported layout.
    Parse {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for Y4mError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Y4mError::Io(e) => write!(f, "y4m i/o error: {e}"),
            Y4mError::Parse { detail } => write!(f, "y4m parse error: {detail}"),
        }
    }
}

impl Error for Y4mError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Y4mError::Io(e) => Some(e),
            Y4mError::Parse { .. } => None,
        }
    }
}

impl From<io::Error> for Y4mError {
    fn from(e: io::Error) -> Self {
        Y4mError::Io(e)
    }
}

fn parse_err(detail: impl Into<String>) -> Y4mError {
    Y4mError::Parse {
        detail: detail.into(),
    }
}

/// Writes frames as a YUV4MPEG2 stream.
///
/// # Errors
///
/// Propagates I/O failures; returns a parse error if `frames` is empty or
/// geometries are inconsistent.
pub fn write_y4m<W: Write>(mut w: W, frames: &[Frame], fps: u32) -> Result<(), Y4mError> {
    let first = frames.first().ok_or_else(|| parse_err("no frames"))?;
    let (width, height) = (first.width(), first.height());
    writeln!(w, "YUV4MPEG2 W{width} H{height} F{fps}:1 Ip A1:1 C420")?;
    for f in frames {
        if f.width() != width || f.height() != height {
            return Err(parse_err("inconsistent frame geometry"));
        }
        w.write_all(b"FRAME\n")?;
        w.write_all(f.y().samples())?;
        w.write_all(f.u().samples())?;
        w.write_all(f.v().samples())?;
    }
    Ok(())
}

/// Reads a YUV4MPEG2 stream: returns the frames and the frame rate.
///
/// # Errors
///
/// Returns [`Y4mError::Parse`] for non-y4m data, unsupported chroma
/// layouts, or odd dimensions, and [`Y4mError::Io`] on truncated reads.
pub fn read_y4m<R: Read>(mut r: R) -> Result<(Vec<Frame>, u32), Y4mError> {
    let header = read_line(&mut r)?;
    let mut tokens = header.split(' ');
    if tokens.next() != Some("YUV4MPEG2") {
        return Err(parse_err("missing YUV4MPEG2 magic"));
    }
    let (mut width, mut height, mut fps) = (0usize, 0usize, 30u32);
    for tok in tokens {
        let (key, val) = tok.split_at(1);
        match key {
            "W" => width = val.parse().map_err(|_| parse_err("bad width"))?,
            "H" => height = val.parse().map_err(|_| parse_err("bad height"))?,
            "F" => {
                let (num, den) = val
                    .split_once(':')
                    .ok_or_else(|| parse_err("bad frame rate"))?;
                let num: u32 = num.parse().map_err(|_| parse_err("bad frame rate"))?;
                let den: u32 = den.parse().map_err(|_| parse_err("bad frame rate"))?;
                fps = (num + den / 2) / den.max(1);
            }
            "C" if !val.starts_with("420") => {
                return Err(parse_err(format!("unsupported chroma layout C{val}")));
            }
            _ => {} // interlacing / aspect / extensions: ignored
        }
    }
    if width == 0 || height == 0 || width % 2 != 0 || height % 2 != 0 {
        return Err(parse_err(format!(
            "unsupported dimensions {width}x{height}"
        )));
    }

    let mut frames = Vec::new();
    loop {
        let mut marker = Vec::new();
        match read_line_into(&mut r, &mut marker) {
            Ok(false) => break, // clean EOF
            Ok(true) => {}
            Err(e) => return Err(e),
        }
        let line = String::from_utf8_lossy(&marker);
        if !line.starts_with("FRAME") {
            return Err(parse_err("missing FRAME marker"));
        }
        let mut y = vec![0u8; width * height];
        let mut u = vec![0u8; width * height / 4];
        let mut v = vec![0u8; width * height / 4];
        r.read_exact(&mut y)?;
        r.read_exact(&mut u)?;
        r.read_exact(&mut v)?;
        let frame = Frame::from_planes(
            Plane::from_raw(width, height, y).map_err(|e| parse_err(e.to_string()))?,
            Plane::from_raw(width / 2, height / 2, u).map_err(|e| parse_err(e.to_string()))?,
            Plane::from_raw(width / 2, height / 2, v).map_err(|e| parse_err(e.to_string()))?,
        )
        .map_err(|e| parse_err(e.to_string()))?;
        frames.push(frame);
    }
    if frames.is_empty() {
        return Err(parse_err("stream contains no frames"));
    }
    Ok((frames, fps.max(1)))
}

/// Reads a `.y4m` stream into a [`Video`] with a custom catalog entry.
///
/// The clip runs at its native resolution (`scale = 1` addressing);
/// `entropy` is the caller's complexity estimate, used only by affinity
/// heuristics.
///
/// # Errors
///
/// Propagates [`Y4mError`]; dimensions must be multiples of 16 to be
/// encodable.
pub fn video_from_y4m<R: Read>(name: &str, entropy: f64, r: R) -> Result<Video, Y4mError> {
    let (frames, fps) = read_y4m(r)?;
    let width = frames[0].width();
    let height = frames[0].height();
    if width % 16 != 0 || height % 16 != 0 {
        return Err(parse_err(format!(
            "{width}x{height} is not macroblock aligned (crop to multiples of 16)"
        )));
    }
    let spec = VideoSpec {
        full_name: format!("{name}_{width}x{height}_{fps}.y4m"),
        short_name: name.to_owned(),
        nominal_width: width as u32,
        nominal_height: height as u32,
        fps,
        entropy,
        sim_width: width as u32,
        sim_height: height as u32,
        sim_frames: frames.len() as u32,
    };
    Ok(Video::new(spec, frames))
}

fn read_line<R: Read>(r: &mut R) -> Result<String, Y4mError> {
    let mut buf = Vec::new();
    if !read_line_into(r, &mut buf)? {
        return Err(parse_err("empty stream"));
    }
    String::from_utf8(buf).map_err(|_| parse_err("non-utf8 header"))
}

/// Reads bytes up to (not including) `\n`. Returns false on immediate EOF.
fn read_line_into<R: Read>(r: &mut R, buf: &mut Vec<u8>) -> Result<bool, Y4mError> {
    let mut byte = [0u8; 1];
    let mut any = false;
    loop {
        match r.read(&mut byte)? {
            0 => return Ok(any),
            _ => {
                any = true;
                if byte[0] == b'\n' {
                    return Ok(true);
                }
                if buf.len() > 256 {
                    return Err(parse_err("header line too long"));
                }
                buf.push(byte[0]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synth, vbench};

    #[test]
    fn roundtrip_preserves_frames() {
        let mut spec = vbench::by_name("cat").unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 4;
        let video = synth::generate(&spec, 5);
        let mut buf = Vec::new();
        write_y4m(&mut buf, &video.frames, video.spec.fps).unwrap();
        let (frames, fps) = read_y4m(buf.as_slice()).unwrap();
        assert_eq!(fps, video.spec.fps);
        assert_eq!(frames, video.frames);
    }

    #[test]
    fn video_from_y4m_builds_native_spec() {
        let mut spec = vbench::by_name("cat").unwrap();
        spec.sim_width = 64;
        spec.sim_height = 48;
        spec.sim_frames = 3;
        let video = synth::generate(&spec, 5);
        let mut buf = Vec::new();
        write_y4m(&mut buf, &video.frames, 25).unwrap();
        let v = video_from_y4m("myclip", 2.0, buf.as_slice()).unwrap();
        assert_eq!(v.spec.short_name, "myclip");
        assert_eq!(v.spec.sim_width, 64);
        assert_eq!(v.spec.nominal_width, 64); // native: scale 1
        assert_eq!(v.spec.fps, 25);
        assert_eq!(v.frames.len(), 3);
    }

    #[test]
    fn rejects_bad_magic_and_layouts() {
        assert!(matches!(
            read_y4m(&b"RIFFxxxx"[..]),
            Err(Y4mError::Parse { .. })
        ));
        let hdr = b"YUV4MPEG2 W64 H48 F30:1 C444\nFRAME\n";
        assert!(matches!(read_y4m(&hdr[..]), Err(Y4mError::Parse { .. })));
        let odd = b"YUV4MPEG2 W63 H48 F30:1 C420\n";
        assert!(matches!(read_y4m(&odd[..]), Err(Y4mError::Parse { .. })));
    }

    #[test]
    fn truncated_frame_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"YUV4MPEG2 W64 H48 F30:1 C420\nFRAME\n");
        buf.extend_from_slice(&[0u8; 100]); // far too short
        assert!(matches!(read_y4m(buf.as_slice()), Err(Y4mError::Io(_))));
    }

    #[test]
    fn fractional_frame_rates_round() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"YUV4MPEG2 W16 H16 F30000:1001 C420\nFRAME\n");
        buf.extend_from_slice(&vec![0u8; 16 * 16 * 3 / 2]);
        let (frames, fps) = read_y4m(buf.as_slice()).unwrap();
        assert_eq!(fps, 30);
        assert_eq!(frames.len(), 1);
    }

    #[test]
    fn non_mb_aligned_video_rejected_for_encoding() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"YUV4MPEG2 W24 H24 F30:1 C420\nFRAME\n");
        buf.extend_from_slice(&vec![0u8; 24 * 24 * 3 / 2]);
        assert!(video_from_y4m("x", 1.0, buf.as_slice()).is_err());
    }
}
