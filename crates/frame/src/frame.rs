use serde::{Deserialize, Serialize};

use crate::{FrameError, Plane};

/// A YUV 4:2:0 picture: full-resolution luma plus half-resolution chroma.
///
/// This is the raw-frame currency exchanged between the synthetic video
/// generator, the encoder, and the decoder.
///
/// # Example
///
/// ```
/// use vtx_frame::Frame;
///
/// let f = Frame::new(64, 32);
/// assert_eq!(f.y().width(), 64);
/// assert_eq!(f.u().width(), 32);
/// assert_eq!(f.v().height(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Frame {
    y: Plane,
    u: Plane,
    v: Plane,
}

impl Frame {
    /// Creates a mid-gray frame.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero or odd (4:2:0 chroma requires
    /// even luma dimensions).
    pub fn new(width: usize, height: usize) -> Self {
        assert!(
            width > 0 && height > 0 && width.is_multiple_of(2) && height.is_multiple_of(2),
            "4:2:0 frames need nonzero even dimensions, got {width}x{height}"
        );
        Frame {
            y: Plane::new(width, height),
            u: Plane::new(width / 2, height / 2),
            v: Plane::new(width / 2, height / 2),
        }
    }

    /// Builds a frame from three already-constructed planes.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::GeometryMismatch`] unless the chroma planes are
    /// exactly half the luma size in both dimensions.
    pub fn from_planes(y: Plane, u: Plane, v: Plane) -> Result<Self, FrameError> {
        let ok = u.width() == y.width() / 2
            && u.height() == y.height() / 2
            && v.width() == u.width()
            && v.height() == u.height();
        if !ok {
            return Err(FrameError::GeometryMismatch);
        }
        Ok(Frame { y, u, v })
    }

    /// Luma width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.y.width()
    }

    /// Luma height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.y.height()
    }

    /// Luma plane.
    #[inline]
    pub fn y(&self) -> &Plane {
        &self.y
    }

    /// Cb chroma plane.
    #[inline]
    pub fn u(&self) -> &Plane {
        &self.u
    }

    /// Cr chroma plane.
    #[inline]
    pub fn v(&self) -> &Plane {
        &self.v
    }

    /// Mutable luma plane.
    #[inline]
    pub fn y_mut(&mut self) -> &mut Plane {
        &mut self.y
    }

    /// Mutable Cb plane.
    #[inline]
    pub fn u_mut(&mut self) -> &mut Plane {
        &mut self.u
    }

    /// Mutable Cr plane.
    #[inline]
    pub fn v_mut(&mut self) -> &mut Plane {
        &mut self.v
    }

    /// Number of luma macroblock columns (16x16 blocks, rounding up).
    #[inline]
    pub fn mb_cols(&self) -> usize {
        self.width().div_ceil(16)
    }

    /// Number of luma macroblock rows (16x16 blocks, rounding up).
    #[inline]
    pub fn mb_rows(&self) -> usize {
        self.height().div_ceil(16)
    }

    /// Total number of pixels across all three planes.
    #[inline]
    pub fn total_samples(&self) -> usize {
        self.y.samples().len() + self.u.samples().len() + self.v.samples().len()
    }

    /// Mean absolute luma difference against another frame — a cheap
    /// inter-frame "activity" measure used by scene-cut detection.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::GeometryMismatch`] when geometries differ.
    pub fn mean_abs_luma_diff(&self, other: &Frame) -> Result<f64, FrameError> {
        if self.width() != other.width() || self.height() != other.height() {
            return Err(FrameError::GeometryMismatch);
        }
        let mut acc = 0u64;
        for (a, b) in self.y.samples().iter().zip(other.y.samples()) {
            acc += u64::from(a.abs_diff(*b));
        }
        Ok(acc as f64 / self.y.samples().len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let f = Frame::new(32, 16);
        assert_eq!(f.mb_cols(), 2);
        assert_eq!(f.mb_rows(), 1);
        assert_eq!(f.total_samples(), 32 * 16 + 2 * 16 * 8);
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_dims_panic() {
        let _ = Frame::new(33, 16);
    }

    #[test]
    fn from_planes_checks_subsampling() {
        let y = Plane::new(16, 16);
        let u = Plane::new(8, 8);
        let v = Plane::new(8, 8);
        assert!(Frame::from_planes(y.clone(), u.clone(), v.clone()).is_ok());
        let bad_v = Plane::new(4, 8);
        assert_eq!(
            Frame::from_planes(y, u, bad_v),
            Err(FrameError::GeometryMismatch)
        );
    }

    #[test]
    fn mb_counts_round_up() {
        let f = Frame::new(34, 18);
        assert_eq!(f.mb_cols(), 3);
        assert_eq!(f.mb_rows(), 2);
    }

    #[test]
    fn mean_abs_diff_zero_on_self() {
        let f = Frame::new(16, 16);
        assert_eq!(f.mean_abs_luma_diff(&f).unwrap(), 0.0);
        let mut g = f.clone();
        g.y_mut().fill(130);
        assert!((f.mean_abs_luma_diff(&g).unwrap() - 2.0).abs() < 1e-9);
    }
}
