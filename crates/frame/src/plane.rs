use serde::{Deserialize, Serialize};

use crate::FrameError;

/// A single 8-bit sample plane (luma or one chroma component).
///
/// Rows are stored contiguously with no padding (`stride == width`). Edge
/// reads are clamped, matching the edge-extension behaviour codecs rely on
/// for motion compensation near frame borders.
///
/// # Example
///
/// ```
/// use vtx_frame::Plane;
///
/// let mut p = Plane::new(16, 16);
/// p.set(3, 4, 200);
/// assert_eq!(p.get(3, 4), 200);
/// // out-of-range access clamps to the nearest edge sample
/// assert_eq!(p.get_clamped(-5, 4), p.get(0, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Plane {
    width: usize,
    height: usize,
    data: Vec<u8>,
}

impl Plane {
    /// Creates a plane of the given size filled with mid-gray (128).
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "plane dimensions must be nonzero");
        Plane {
            width,
            height,
            data: vec![128; width * height],
        }
    }

    /// Creates a plane from raw row-major samples.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::BufferSizeMismatch`] if `data.len() != width * height`
    /// and [`FrameError::InvalidDimensions`] for zero-sized geometry.
    pub fn from_raw(width: usize, height: usize, data: Vec<u8>) -> Result<Self, FrameError> {
        if width == 0 || height == 0 {
            return Err(FrameError::InvalidDimensions { width, height });
        }
        if data.len() != width * height {
            return Err(FrameError::BufferSizeMismatch {
                expected: width * height,
                actual: data.len(),
            });
        }
        Ok(Plane {
            width,
            height,
            data,
        })
    }

    /// Plane width in samples.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plane height in samples.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Immutable view of the raw samples in row-major order.
    #[inline]
    pub fn samples(&self) -> &[u8] {
        &self.data
    }

    /// Mutable view of the raw samples in row-major order.
    #[inline]
    pub fn samples_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Reads the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds; use [`Plane::get_clamped`] for
    /// edge-extended reads.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> u8 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Writes the sample at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if `(x, y)` is out of bounds.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = v;
    }

    /// Reads the sample at `(x, y)`, clamping coordinates to the plane edges.
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> u8 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Borrows one full row of samples.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row(&self, y: usize) -> &[u8] {
        let start = y * self.width;
        &self.data[start..start + self.width]
    }

    /// Mutably borrows one full row of samples.
    ///
    /// # Panics
    ///
    /// Panics if `y >= height`.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [u8] {
        let start = y * self.width;
        &mut self.data[start..start + self.width]
    }

    /// Fills the whole plane with a constant value.
    pub fn fill(&mut self, v: u8) {
        self.data.fill(v);
    }

    /// Copies a `bw x bh` block with its top-left corner at `(x, y)` into `dst`
    /// (row-major), edge-extending reads that fall outside the plane.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() < bw * bh`.
    pub fn copy_block_clamped(&self, x: isize, y: isize, bw: usize, bh: usize, dst: &mut [u8]) {
        assert!(dst.len() >= bw * bh, "destination block too small");
        for by in 0..bh {
            let sy = (y + by as isize).clamp(0, self.height as isize - 1) as usize;
            let row = self.row(sy);
            for bx in 0..bw {
                let sx = (x + bx as isize).clamp(0, self.width as isize - 1) as usize;
                dst[by * bw + bx] = row[sx];
            }
        }
    }

    /// Writes a `bw x bh` row-major block at `(x, y)`, clipping writes that
    /// fall outside the plane.
    pub fn write_block(&mut self, x: usize, y: usize, bw: usize, bh: usize, src: &[u8]) {
        debug_assert!(src.len() >= bw * bh);
        for by in 0..bh {
            let py = y + by;
            if py >= self.height {
                break;
            }
            for bx in 0..bw {
                let px = x + bx;
                if px >= self.width {
                    break;
                }
                self.data[py * self.width + px] = src[by * bw + bx];
            }
        }
    }

    /// Sum of squared differences against another plane of identical geometry.
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::GeometryMismatch`] when the planes differ in size.
    pub fn sse(&self, other: &Plane) -> Result<u64, FrameError> {
        if self.width != other.width || self.height != other.height {
            return Err(FrameError::GeometryMismatch);
        }
        let mut acc = 0u64;
        for (a, b) in self.data.iter().zip(other.data.iter()) {
            let d = i32::from(*a) - i32::from(*b);
            acc += (d * d) as u64;
        }
        Ok(acc)
    }

    /// Sample variance of a `bw x bh` block at `(x, y)` (clamped reads),
    /// scaled by the block area (i.e. `sum((v - mean)^2)`).
    pub fn block_variance(&self, x: isize, y: isize, bw: usize, bh: usize) -> u32 {
        let mut sum = 0u32;
        let mut sq = 0u64;
        for by in 0..bh {
            for bx in 0..bw {
                let v = u32::from(self.get_clamped(x + bx as isize, y + by as isize));
                sum += v;
                sq += u64::from(v * v);
            }
        }
        let n = (bw * bh) as u64;
        let mean_sq = (u64::from(sum) * u64::from(sum)) / n;
        (sq - mean_sq.min(sq)) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_fills_midgray() {
        let p = Plane::new(4, 3);
        assert!(p.samples().iter().all(|&v| v == 128));
        assert_eq!(p.samples().len(), 12);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_dims_panic() {
        let _ = Plane::new(0, 4);
    }

    #[test]
    fn from_raw_validates() {
        assert!(Plane::from_raw(2, 2, vec![0; 4]).is_ok());
        assert_eq!(
            Plane::from_raw(2, 2, vec![0; 5]),
            Err(FrameError::BufferSizeMismatch {
                expected: 4,
                actual: 5
            })
        );
        assert!(matches!(
            Plane::from_raw(0, 2, vec![]),
            Err(FrameError::InvalidDimensions { .. })
        ));
    }

    #[test]
    fn clamped_reads_extend_edges() {
        let mut p = Plane::new(4, 4);
        p.set(0, 0, 10);
        p.set(3, 3, 99);
        assert_eq!(p.get_clamped(-100, -100), 10);
        assert_eq!(p.get_clamped(100, 100), 99);
    }

    #[test]
    fn block_copy_roundtrip() {
        let mut p = Plane::new(8, 8);
        for y in 0..8 {
            for x in 0..8 {
                p.set(x, y, (y * 8 + x) as u8);
            }
        }
        let mut blk = [0u8; 16];
        p.copy_block_clamped(2, 2, 4, 4, &mut blk);
        assert_eq!(blk[0], p.get(2, 2));
        assert_eq!(blk[15], p.get(5, 5));

        let mut q = Plane::new(8, 8);
        q.write_block(2, 2, 4, 4, &blk);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(q.get(2 + x, 2 + y), p.get(2 + x, 2 + y));
            }
        }
    }

    #[test]
    fn write_block_clips_at_edges() {
        let mut p = Plane::new(4, 4);
        let blk = [7u8; 16];
        p.write_block(2, 2, 4, 4, &blk);
        assert_eq!(p.get(3, 3), 7);
        assert_eq!(p.get(1, 1), 128);
    }

    #[test]
    fn sse_zero_for_identical() {
        let p = Plane::new(6, 6);
        assert_eq!(p.sse(&p).unwrap(), 0);
        let q = Plane::new(6, 7);
        assert_eq!(p.sse(&q), Err(FrameError::GeometryMismatch));
    }

    #[test]
    fn variance_flat_block_is_zero_fixed() {
        let p = Plane::new(16, 16);
        assert_eq!(p.block_variance(0, 0, 16, 16), 0);
        let mut q = Plane::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                q.set(x, y, if (x + y) % 2 == 0 { 0 } else { 255 });
            }
        }
        assert!(q.block_variance(0, 0, 16, 16) > 1000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// write_block followed by copy_block_clamped is the identity for
        /// in-bounds blocks of any geometry.
        #[test]
        fn block_write_read_roundtrip(
            w in 8usize..40,
            h in 8usize..40,
            bx in 0usize..8,
            by in 0usize..8,
            fill in proptest::collection::vec(any::<u8>(), 16),
        ) {
            let mut p = Plane::new(w.max(bx + 4), h.max(by + 4));
            p.write_block(bx, by, 4, 4, &fill);
            let mut out = [0u8; 16];
            p.copy_block_clamped(bx as isize, by as isize, 4, 4, &mut out);
            prop_assert_eq!(&out[..], &fill[..]);
        }

        /// Clamped reads always return a value present in the plane.
        #[test]
        fn clamped_read_in_range(
            x in -100isize..100,
            y in -100isize..100,
            seed in any::<u8>(),
        ) {
            let mut p = Plane::new(16, 12);
            p.fill(seed);
            prop_assert_eq!(p.get_clamped(x, y), seed);
        }
    }
}
